#!/usr/bin/env bash
# Local/CI pipeline. Stages:
#
#   unit      fast pre-commit lane: build + `ctest -L 'unit|metrics'`
#   full      build + the whole suite (unit, metrics, property,
#             differential, crash, dist, chaos, service, docs, slow),
#             the bounded-RSS full-universe scale lane, + the bench
#             regression gate
#   service   build + the originscand daemon battery (`ctest -L
#             service`) and the docs consistency checks
#   docs      build + the doc/header consistency checks on their own
#             (`ctest -L docs`: protocol_doc_check incl. its negative
#             self-test, metrics_doc_check)
#   chaos     build + the randomized fault-episode soak on its own
#             (25 rounds by default; ORIGINSCAN_CHAOS_ROUNDS=N deepens
#             or shortens it)
#   bench     build, run the microbenchmarks, and gate against the
#             checked-in BENCH_micro.json (fails on >25% cpu_time
#             regression; refresh baselines with bench/record.sh), the
#             5% metrics-on vs metrics-off overhead bound, and the
#             service loadgen p99 gate against BENCH_wall.json's
#             loadgen_p99_us (>25% regression fails)
#   tsan      ORIGINSCAN_SANITIZE=thread build; runs the suites that
#             exercise the parallel executor, the cell supervisor, the
#             multi-process worker pool, and the fault-injected
#             differential harness under thread sanitizer
#   coverage  -DOSN_COVERAGE=ON build, full suite, gcov aggregation
#   all       unit + full + tsan (default; coverage stays opt-in)
#
# Usage: ./ci.sh [unit|full|bench|chaos|service|docs|tsan|coverage|all]
set -euo pipefail
cd "$(dirname "$0")"

STAGE=${1:-all}
JOBS=$(nproc 2>/dev/null || echo 4)

configure_and_build() { # <dir> [cmake args...]
  local dir=$1
  shift
  cmake -S . -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_unit() {
  configure_and_build build
  # The metrics label covers the observability determinism suite and the
  # registry-vs-docs consistency check — cheap enough for the fast lane.
  (cd build && ctest -L 'unit|metrics' --output-on-failure)
}

run_full() {
  configure_and_build build
  # The whole suite, then the kill/resume matrix and the observability
  # determinism suite by their own labels so a lane failure is obvious
  # in the log. The scale lane (2^28 bounded-RSS procedural sweep,
  # ~2 min) runs last and exactly once; the full 2^32 sweep stays a
  # manual invocation (README "Full-scale sweep").
  (cd build && ctest -LE scale --output-on-failure &&
    ctest -L crash --output-on-failure &&
    ctest -L dist --output-on-failure &&
    ctest -L chaos --output-on-failure &&
    ctest -L metrics --output-on-failure &&
    ctest -L service --output-on-failure &&
    ctest -L docs --output-on-failure &&
    ctest -L scale --output-on-failure)
  run_bench
}

run_service() {
  configure_and_build build
  (cd build && ctest -L 'service|docs' --output-on-failure)
}

run_docs() {
  configure_and_build build
  (cd build && ctest -L docs --output-on-failure)
}

run_chaos() {
  configure_and_build build
  # 25 randomized episodes by default; a nightly can deepen the soak
  # with ORIGINSCAN_CHAOS_ROUNDS=500 without touching the script.
  (cd build && ORIGINSCAN_CHAOS_ROUNDS="${ORIGINSCAN_CHAOS_ROUNDS:-25}" \
    ctest -L chaos --output-on-failure)
}

run_bench() {
  configure_and_build build
  # The committed baseline must cover the batched SoA pipeline
  # (DESIGN.md §13): a baseline recorded before those benches existed
  # would silently exempt the batch hot path from the regression gate.
  for bench in BM_HandleProbeBatch BM_ResolveBatch BM_MixBatch4; do
    if ! grep -q "\"$bench\"" BENCH_micro.json; then
      echo "ci.sh bench: $bench missing from BENCH_micro.json —" >&2
      echo "  re-record with bench/record.sh from a Release build" >&2
      exit 1
    fi
  done
  # Short repetitions keep the lane fast; the 25% gate (bench_gate's
  # default) absorbs the extra noise that buys.
  build/bench/micro_scanner --benchmark_format=json \
    --benchmark_min_time=0.05 > build/BENCH_micro_candidate.json
  build/tools/bench_gate BENCH_micro.json build/BENCH_micro_candidate.json
  # Observability overhead bound: metrics-enabled probing must stay
  # within 5% of disabled (DESIGN.md §9). The pair is measured in its
  # own repeated run and compared by median — a single-shot sample is
  # too noisy for a 5% threshold.
  build/bench/micro_scanner --benchmark_format=json \
    --benchmark_filter='^BM_ProbeTarget' --benchmark_min_time=0.1 \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    > build/BENCH_overhead_candidate.json
  build/tools/bench_gate --overhead build/BENCH_overhead_candidate.json \
    BM_ProbeTarget_median BM_ProbeTargetMetricsOn_median 5
  # Service latency gate: replay the loadgen against an in-process
  # daemon and bound the p99 submit->answer latency against the
  # checked-in BENCH_wall.json. Same 25% allowance as the micro gate.
  if ! grep -q '"loadgen_p99_us"' BENCH_wall.json; then
    echo "ci.sh bench: loadgen_p99_us missing from BENCH_wall.json —" >&2
    echo "  re-record with bench/record.sh from a Release build" >&2
    exit 1
  fi
  build/tools/originscan loadgen --tenants 1000 --requests 1 \
    --connections 16 --scale 12 --no-verify \
    --json-out build/BENCH_loadgen_candidate.json
  build/tools/bench_gate --wall BENCH_wall.json \
    build/BENCH_loadgen_candidate.json loadgen_p99_us 25
}

run_tsan() {
  configure_and_build build-tsan -DORIGINSCAN_SANITIZE=thread
  (cd build-tsan &&
    ctest -R 'parallel_test|scanner_test|sim_test|core_test|journal_test|crash_resume_test|differential_test|dist_test|chaos_test|batch_test|service_test' \
      --output-on-failure)
}

run_coverage() {
  configure_and_build build-coverage -DOSN_COVERAGE=ON \
    -DCMAKE_BUILD_TYPE=Debug
  (cd build-coverage && ctest --output-on-failure)
  tools/coverage.sh build-coverage
}

case "$STAGE" in
  unit) run_unit ;;
  full) run_full ;;
  bench) run_bench ;;
  chaos) run_chaos ;;
  service) run_service ;;
  docs) run_docs ;;
  tsan) run_tsan ;;
  coverage) run_coverage ;;
  all)
    run_unit
    run_full
    run_tsan
    ;;
  *)
    echo "usage: $0 [unit|full|bench|chaos|service|docs|tsan|coverage|all]" >&2
    exit 2
    ;;
esac
