// Benchmark regression gate: compares a candidate google-benchmark JSON
// report against a checked-in baseline and fails (exit 1) when any
// benchmark's cpu_time regressed by more than the threshold.
//
//   bench_gate <baseline.json> <candidate.json> [threshold_percent]
//   bench_gate --overhead <candidate.json> <base> <variant> [threshold]
//   bench_gate --wall <baseline.json> <candidate.json> <field> [threshold]
//
// Threshold defaults to 25% — wide enough to absorb CI machine noise,
// tight enough to catch a hot path re-growing a serialize/parse round
// trip or a lock. Benchmarks present only in the candidate are reported
// and pass (new benchmarks shouldn't require a baseline update to land);
// benchmarks that disappeared from the candidate fail, because a silently
// dropped benchmark is how a gate goes blind.
//
// --overhead compares two benchmarks within ONE report: it fails when
// <variant>'s cpu_time exceeds <base>'s by more than the threshold
// (default 5%). Both run in the same process seconds apart, so the
// machine-noise argument for a wide threshold doesn't apply — this is
// how ci.sh bounds the cost of metrics-enabled scanning over disabled
// (DESIGN.md §9's "cheap when enabled" rule).
//
// --wall compares one named scalar field between two FLAT JSON objects
// (one "key": value pair per line — the shape bench/record.sh keeps in
// BENCH_wall.json and `originscan loadgen --json-out` emits). This is
// how ci.sh bounds the service loadgen's p99 latency:
//   bench_gate --wall BENCH_wall.json candidate.json loadgen_p99_us 25
//
// The parser is deliberately minimal: it extracts "name"/"cpu_time"
// pairs from the `benchmarks` array of google-benchmark's JSON format
// (one key per line, as --benchmark_format=json emits). It is not a
// general JSON parser and doesn't need to be.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

// Extracts the string value of `"key": "value"` from a line, or empty.
std::string string_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto open = line.find('"', pos + needle.size());
  if (open == std::string::npos) return {};
  const auto close = line.find('"', open + 1);
  if (close == std::string::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

// Extracts the numeric value of `"key": 1.23e4` from a line, or NaN.
double number_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::strtod("nan", nullptr);
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

// name -> cpu_time (ns). Aggregate rows (e.g. _mean/_stddev from
// repeated runs) are keyed by their full reported name, so baseline and
// candidate compare like with like.
std::map<std::string, double> load_report(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", path);
    std::exit(2);
  }
  std::map<std::string, double> times;
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    const std::string name = string_value(line, "name");
    if (!name.empty()) current = name;
    const double cpu = number_value(line, "cpu_time");
    if (!current.empty() && cpu == cpu) {  // cpu == cpu: not NaN
      times[current] = cpu;
      current.clear();
    }
  }
  return times;
}

int run_overhead(int argc, char** argv) {
  if (argc < 5 || argc > 6) {
    std::fprintf(stderr,
                 "usage: %s --overhead <candidate.json> <base_benchmark> "
                 "<variant_benchmark> [threshold_percent]\n",
                 argv[0]);
    return 2;
  }
  const double threshold = argc == 6 ? std::strtod(argv[5], nullptr) : 5.0;
  if (!(threshold > 0)) {
    std::fprintf(stderr, "bench_gate: bad threshold %s\n", argv[5]);
    return 2;
  }
  const auto report = load_report(argv[2]);
  const auto base = report.find(argv[3]);
  const auto variant = report.find(argv[4]);
  if (base == report.end() || variant == report.end()) {
    std::fprintf(stderr, "bench_gate: %s missing from %s\n",
                 base == report.end() ? argv[3] : argv[4], argv[2]);
    return 2;
  }
  const double delta_pct =
      (variant->second - base->second) / base->second * 100.0;
  const bool regressed = delta_pct > threshold;
  std::printf("%s %s %.1f ns vs %s %.1f ns  (%+.1f%%, limit +%.0f%%)\n",
              regressed ? "FAIL    " : "ok      ", argv[3], base->second,
              argv[4], variant->second, delta_pct, threshold);
  if (regressed) {
    std::printf("bench_gate: %s costs %.1f%% over %s — the enabled "
                "observability path must stay within %.0f%%\n",
                argv[4], delta_pct, argv[3], threshold);
    return 1;
  }
  return 0;
}

// Reads one `"field": <number>` scalar out of a flat JSON file, NaN if
// absent.
double load_field(const char* path, const std::string& field) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", path);
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const double value = number_value(line, field.c_str());
    if (value == value) return value;
  }
  return std::strtod("nan", nullptr);
}

int run_wall(int argc, char** argv) {
  if (argc < 5 || argc > 6) {
    std::fprintf(stderr,
                 "usage: %s --wall <baseline.json> <candidate.json> <field> "
                 "[threshold_percent]\n",
                 argv[0]);
    return 2;
  }
  const double threshold = argc == 6 ? std::strtod(argv[5], nullptr) : 25.0;
  if (!(threshold > 0)) {
    std::fprintf(stderr, "bench_gate: bad threshold %s\n", argv[5]);
    return 2;
  }
  const std::string field = argv[4];
  const double base = load_field(argv[2], field);
  const double cand = load_field(argv[3], field);
  if (base != base) {
    std::fprintf(stderr,
                 "bench_gate: %s missing from baseline %s — re-record with "
                 "bench/record.sh\n",
                 field.c_str(), argv[2]);
    return 2;
  }
  if (cand != cand) {
    std::fprintf(stderr, "bench_gate: %s missing from candidate %s\n",
                 field.c_str(), argv[3]);
    return 2;
  }
  if (!(base > 0)) {
    std::fprintf(stderr, "bench_gate: baseline %s is %g — not gateable\n",
                 field.c_str(), base);
    return 2;
  }
  const double delta_pct = (cand - base) / base * 100.0;
  const bool regressed = delta_pct > threshold;
  std::printf("%s %-32s %10.1f -> %10.1f  (%+.1f%%, limit +%.0f%%)\n",
              regressed ? "FAIL    " : "ok      ", field.c_str(), base, cand,
              delta_pct, threshold);
  if (regressed) {
    std::printf("bench_gate: %s regressed %.1f%% beyond the %.0f%% gate — "
                "refresh BENCH_wall.json with bench/record.sh only if the "
                "slowdown is intended\n",
                field.c_str(), delta_pct, threshold);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--overhead") == 0) {
    return run_overhead(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--wall") == 0) {
    return run_wall(argc, argv);
  }
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <candidate.json> "
                 "[threshold_percent]\n       %s --overhead <candidate.json> "
                 "<base_benchmark> <variant_benchmark> [threshold_percent]\n",
                 argv[0], argv[0]);
    return 2;
  }
  const double threshold = argc == 4 ? std::strtod(argv[3], nullptr) : 25.0;
  if (!(threshold > 0)) {
    std::fprintf(stderr, "bench_gate: bad threshold %s\n", argv[3]);
    return 2;
  }

  const auto baseline = load_report(argv[1]);
  const auto candidate = load_report(argv[2]);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_gate: no benchmarks in baseline %s\n",
                 argv[1]);
    return 2;
  }

  int failures = 0;
  for (const auto& [name, base_ns] : baseline) {
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      std::printf("MISSING  %-32s (in baseline, not in candidate)\n",
                  name.c_str());
      ++failures;
      continue;
    }
    const double delta_pct = (it->second - base_ns) / base_ns * 100.0;
    const bool regressed = delta_pct > threshold;
    std::printf("%s %-32s %10.1f ns -> %10.1f ns  (%+.1f%%)\n",
                regressed ? "FAIL    " : "ok      ", name.c_str(), base_ns,
                it->second, delta_pct);
    if (regressed) ++failures;
  }
  for (const auto& [name, cpu_ns] : candidate) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("NEW      %-32s %10.1f ns  (no baseline; passes)\n",
                  name.c_str(), cpu_ns);
    }
  }

  if (failures > 0) {
    std::printf("bench_gate: %d regression(s) beyond %.0f%% — refresh the "
                "baseline with bench/record.sh only if the slowdown is "
                "intended\n",
                failures, threshold);
    return 1;
  }
  std::printf("bench_gate: all %zu benchmarks within %.0f%% of baseline\n",
              baseline.size(), threshold);
  return 0;
}
