// Consistency check between the metric registry (the X-macro tables in
// src/obsv/metrics.h) and the generated reference docs/METRICS.md: every
// registered metric name must appear in the document as an inline-code
// literal (`name`). Registered as a ctest under the `metrics` label so
// ci.sh fails when a new metric lands without its doc row.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obsv/metrics.h"

namespace {

const char* kind_name(originscan::obsv::MetricKind kind) {
  switch (kind) {
    case originscan::obsv::MetricKind::kCounter:
      return "counter";
    case originscan::obsv::MetricKind::kGauge:
      return "gauge";
    case originscan::obsv::MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

int main() {
  const std::string path = std::string(OSN_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_doc_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  int missing = 0;
  for (const auto& info : originscan::obsv::all_metrics()) {
    const std::string needle = "`" + std::string(info.name) + "`";
    if (doc.find(needle) == std::string::npos) {
      std::fprintf(stderr,
                   "metrics_doc_check: %s '%.*s' (updated at %.*s) is "
                   "registered in src/obsv/metrics.h but undocumented in "
                   "docs/METRICS.md\n",
                   kind_name(info.kind), static_cast<int>(info.name.size()),
                   info.name.data(), static_cast<int>(info.site.size()),
                   info.site.data());
      ++missing;
    }
  }
  if (missing > 0) {
    std::fprintf(stderr,
                 "metrics_doc_check: %d metric(s) missing from "
                 "docs/METRICS.md — add a table row per metric\n",
                 missing);
    return 1;
  }
  std::printf("metrics_doc_check: %zu metrics documented\n",
              originscan::obsv::all_metrics().size());
  return 0;
}
