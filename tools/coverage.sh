#!/usr/bin/env bash
# Aggregates line coverage for src/ from a -DOSN_COVERAGE=ON build after
# a test run. Prefers gcovr when installed; otherwise falls back to raw
# gcov JSON output aggregated with python3 (both ship with the gcc
# toolchain image, so CI needs no extra packages).
#
# Usage: tools/coverage.sh <build-dir> [source-root]
set -euo pipefail

BUILD_DIR=$(cd "${1:?usage: coverage.sh <build-dir> [source-root]}" && pwd)
SRC_ROOT=$(cd "${2:-$(dirname "$0")/..}" && pwd)

if command -v gcovr >/dev/null 2>&1; then
  exec gcovr -r "$SRC_ROOT" "$BUILD_DIR" --filter "$SRC_ROOT/src/"
fi

if ! find "$BUILD_DIR" -name '*.gcda' -print -quit | grep -q .; then
  echo "coverage.sh: no .gcda files under $BUILD_DIR" >&2
  echo "  (configure with -DOSN_COVERAGE=ON and run ctest first)" >&2
  exit 1
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# One gcov JSON per translation unit; duplicate headers are merged below.
find "$BUILD_DIR" -name '*.gcda' -print0 |
  (cd "$TMP" && xargs -0 gcov --json-format >/dev/null 2>&1 || true)

python3 - "$TMP" "$SRC_ROOT" <<'PY'
import glob, gzip, json, os, sys

tmp, src_root = sys.argv[1], sys.argv[2]
prefix = os.path.join(src_root, "src") + os.sep
# (file, line) -> max execution count across translation units.
lines = {}
for path in glob.glob(os.path.join(tmp, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as handle:
        data = json.load(handle)
    for unit in data.get("files", []):
        name = os.path.normpath(os.path.join(src_root, unit["file"]))
        if not name.startswith(prefix):
            continue
        for line in unit.get("lines", []):
            key = (name, line["line_number"])
            lines[key] = max(lines.get(key, 0), line["count"])

per_file = {}
for (name, _), count in lines.items():
    total, covered = per_file.get(name, (0, 0))
    per_file[name] = (total + 1, covered + (1 if count > 0 else 0))

if not per_file:
    sys.exit("coverage.sh: no instrumented lines under src/")

width = max(len(os.path.relpath(f, src_root)) for f in per_file) + 2
grand_total = grand_covered = 0
for name in sorted(per_file):
    total, covered = per_file[name]
    grand_total += total
    grand_covered += covered
    rel = os.path.relpath(name, src_root)
    print(f"{rel:<{width}} {covered:>5}/{total:<5} {100.0 * covered / total:6.1f}%")
print("-" * (width + 20))
print(f"{'TOTAL':<{width}} {grand_covered:>5}/{grand_total:<5} "
      f"{100.0 * grand_covered / grand_total:6.1f}%")
PY
