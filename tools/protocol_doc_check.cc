// Consistency check between the wire-protocol headers and the spec in
// docs/PROTOCOL.md — the protocol analogue of metrics_doc_check.
//
// The single source of truth is the X-macro tables in the code:
//   * src/service/wire.h — service message types, error codes, session
//     states, version and size constants
//   * src/core/dist.h    — dist message types and segment kinds
//
// For every symbol the check demands that docs/PROTOCOL.md contains
// both the doc-name as an inline-code literal (`NAME`) and its wire
// value in the form `NAME` ... (N) on the same conceptual row — we
// approximate "same row" as the value appearing as "(N)" within the 160
// characters following the name, which is how the spec's tables render.
// Constants (protocol version, frame payload cap, field caps) must
// appear verbatim. Registered as a ctest under the `docs` label; ci.sh
// fails when a protocol change lands without its spec row.
//
// `--self-test` runs the checker against a deliberately mismatched
// in-memory document and exits 0 only if the mismatch is detected —
// the negative test proving the check can actually fail.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/dist.h"
#include "netbase/frame.h"
#include "service/wire.h"

namespace {

struct Row {
  std::string_view table;  // which grammar table the symbol belongs to
  std::string_view name;
  unsigned value;
};

// One flattened view over every protocol symbol the headers define.
std::vector<Row> all_rows() {
  std::vector<Row> rows;
  for (const auto& s : originscan::service::service_message_symbols()) {
    rows.push_back({"service message", s.name, s.value});
  }
  for (const auto& s : originscan::service::service_error_symbols()) {
    rows.push_back({"service error", s.name, s.value});
  }
  for (const auto& s : originscan::service::service_state_symbols()) {
    rows.push_back({"session state", s.name, s.value});
  }
  for (const auto& s : originscan::core::dist_message_symbols()) {
    rows.push_back({"dist message", s.name, s.value});
  }
  for (const auto& s : originscan::core::dist_segment_symbols()) {
    rows.push_back({"dist segment kind", s.name, s.value});
  }
  return rows;
}

struct Constant {
  std::string_view label;
  std::string text;  // must appear verbatim in the doc
};

std::vector<Constant> all_constants() {
  return {
      {"service protocol version",
       std::to_string(originscan::service::kServiceProtocolVersion)},
      {"frame payload cap",
       std::to_string(originscan::net::kMaxFramePayload)},
      {"origin-code byte cap",
       std::to_string(originscan::service::kMaxOriginCodeBytes)},
      {"error-text byte cap",
       std::to_string(originscan::service::kMaxErrorTextBytes)},
  };
}

// Core check, parameterized over the document text so the self-test can
// feed a corrupted doc. Returns the number of failures (0 = consistent).
int check(const std::string& doc, bool verbose) {
  int failures = 0;
  for (const Row& row : all_rows()) {
    const std::string needle = "`" + std::string(row.name) + "`";
    std::size_t at = doc.find(needle);
    if (at == std::string::npos) {
      if (verbose) {
        std::fprintf(stderr,
                     "protocol_doc_check: %.*s %.*s is defined in the "
                     "headers but missing from docs/PROTOCOL.md\n",
                     static_cast<int>(row.table.size()), row.table.data(),
                     static_cast<int>(row.name.size()), row.name.data());
      }
      ++failures;
      continue;
    }
    // The wire value must be stated near *some* mention of the name:
    // "(N)" within the 160 characters after it (names also appear in
    // prose far from their defining table row, so any mention counts).
    const std::string value = "(" + std::to_string(row.value) + ")";
    bool value_stated = false;
    for (; at != std::string::npos && !value_stated;
         at = doc.find(needle, at + 1)) {
      const std::size_t window_end =
          std::min(doc.size(), at + needle.size() + 160);
      const std::string_view window(doc.data() + at, window_end - at);
      value_stated = window.find(value) != std::string_view::npos;
    }
    if (!value_stated) {
      if (verbose) {
        std::fprintf(stderr,
                     "protocol_doc_check: %.*s %.*s is documented but its "
                     "wire value %s is not stated next to it\n",
                     static_cast<int>(row.table.size()), row.table.data(),
                     static_cast<int>(row.name.size()), row.name.data(),
                     value.c_str());
      }
      ++failures;
    }
  }
  for (const Constant& constant : all_constants()) {
    if (doc.find(constant.text) == std::string::npos) {
      if (verbose) {
        std::fprintf(stderr,
                     "protocol_doc_check: the %.*s (%s) is not stated in "
                     "docs/PROTOCOL.md\n",
                     static_cast<int>(constant.label.size()),
                     constant.label.data(), constant.text.c_str());
      }
      ++failures;
    }
  }
  return failures;
}

// Negative test: corrupt a copy of the real doc in every way the check
// claims to catch and assert each corruption is detected.
int self_test(const std::string& doc) {
  if (check(doc, false) != 0) {
    std::fprintf(stderr,
                 "protocol_doc_check --self-test: the real doc must pass "
                 "before corruption\n");
    return 1;
  }
  int undetected = 0;
  const auto expect_failure = [&](std::string corrupted, const char* what) {
    if (check(corrupted, false) == 0) {
      std::fprintf(stderr,
                   "protocol_doc_check --self-test: %s went UNDETECTED\n",
                   what);
      ++undetected;
    }
  };
  {
    // Remove a message row's name entirely.
    std::string corrupted = doc;
    const std::size_t at = corrupted.find("`SUBMIT`");
    if (at != std::string::npos) corrupted.erase(at, std::strlen("`SUBMIT`"));
    expect_failure(std::move(corrupted), "a deleted message name");
  }
  {
    // Renumber a row: SUBMIT's (3) becomes (9) — a doc/header value
    // disagreement, the exact drift this tool exists to catch.
    std::string corrupted = doc;
    const std::size_t name_at = corrupted.find("`SUBMIT`");
    if (name_at != std::string::npos) {
      const std::size_t value_at = corrupted.find("(3)", name_at);
      if (value_at != std::string::npos &&
          value_at < name_at + 160) {
        corrupted.replace(value_at, 3, "(9)");
      }
    }
    expect_failure(std::move(corrupted), "a renumbered wire value");
  }
  {
    // Drop a stated constant (the frame payload cap).
    std::string corrupted = doc;
    const std::string cap =
        std::to_string(originscan::net::kMaxFramePayload);
    const std::size_t at = corrupted.find(cap);
    if (at != std::string::npos) corrupted.erase(at, cap.size());
    expect_failure(std::move(corrupted), "a deleted constant");
  }
  if (undetected > 0) return 1;
  std::printf("protocol_doc_check --self-test: all 3 corruptions detected\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = std::string(OSN_SOURCE_DIR) + "/docs/PROTOCOL.md";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "protocol_doc_check: cannot open %s\n",
                 path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  if (argc > 1 && std::strcmp(argv[1], "--self-test") == 0) {
    return self_test(doc);
  }

  const int failures = check(doc, true);
  if (failures > 0) {
    std::fprintf(stderr,
                 "protocol_doc_check: %d inconsistenc%s between the wire "
                 "headers and docs/PROTOCOL.md — update the spec tables\n",
                 failures, failures == 1 ? "y" : "ies");
    return 1;
  }
  std::printf("protocol_doc_check: %zu symbols + %zu constants consistent\n",
              all_rows().size(), all_constants().size());
  return 0;
}
