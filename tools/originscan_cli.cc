// originscan — command-line front end for the library.
//
// Subcommands (full reference with flags and exit codes: docs/CLI.md):
//   experiment  run the paper experiment and export coverage +
//               classification CSVs
//   scan        run one origin x protocol scan and export raw records
//   sweep       full-universe L4 sweep over a procedural world (bounded
//               memory at any size; prints a determinism digest)
//   serve       run the originscand daemon over a unix socket
//   client      submit one scan to a running daemon (or --shutdown it)
//   loadgen     replay concurrent tenants against an in-process daemon
//   topology    print the simulated world's AS/country inventory
//   origins     print the vantage-point roster
//
// Exit codes follow core/exit_codes.h: 0 ok, 1 failure, 2 usage,
// 3 killed-but-resumable.
//
// Common flags:
//   --scale N     universe exponent (default 16; addresses = 2^N)
//   --seed N      scenario seed (default 0x05CA9)
//   --out DIR     output directory for CSVs (default ".")
//
// scan flags:
//   --origin CODE (default US1)   --protocol http|https|ssh (default http)
//   --trial N     (default 1)     --retries N (default 0)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/access_matrix.h"
#include "core/dist.h"
#include "core/exit_codes.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/service.h"
#include "scanner/orchestrator.h"
#include "sim/scenario.h"
#include "core/analysis/coverage.h"
#include "core/classify.h"
#include "core/chaos.h"
#include "core/experiment.h"
#include "core/journal.h"
#include "core/store.h"
#include "faultinject/faultinject.h"
#include "obsv/metrics.h"
#include "obsv/trace.h"
#include "report/export.h"
#include "report/table.h"

using namespace originscan;

namespace {

struct Args {
  std::string command;
  int scale = 16;
  std::uint64_t seed = 0x05CA9;
  std::string out = ".";
  std::string origin = "US1";
  std::string protocol = "http";
  int trial = 1;
  int retries = 0;
  int jobs = 1;      // worker threads; output is identical for any value
  // sweep: universe exponent for the procedural full-Internet world.
  // Deliberately NOT subject to the --scale [12, 22] clamp — procedural
  // worlds have no per-address tables, so 2^32 is affordable.
  int universe_bits = 28;
  int probes = 2;  // sweep: SYN probes per target
  std::string save;  // experiment: also write raw results here
  std::string in;    // analyze: load raw results from here
  std::string resume_dir;  // experiment/journal: crash-safe journal dir
  std::string faults;      // experiment: fault plan spec
  std::string metrics_out;  // experiment/scan: metrics snapshot JSON
  std::string trace_out;    // experiment/scan: Chrome trace_event JSON
  int workers = 0;  // experiment: worker processes (0 = in-process run)
  int rounds = 25;  // chaos: randomized episodes to run
  bool json = false;  // journal inspect: machine-readable output
  // worker subcommand only (spawned by the master, not by hand):
  int fd = -1;           // inherited socketpair transport fd
  int worker_index = 0;  // index the master assigned this worker
  // serve/client/loadgen (the daemon front ends):
  std::string socket_path;       // serve/client: AF_UNIX socket path
  int executor_threads = 2;      // serve/loadgen: concurrent sessions
  int max_inflight = 4096;       // serve/loadgen: global admission cap
  int max_inflight_per_tenant = 1024;
  int tenant = 0;                // client: fair-share tenant key
  int tenants = 64;              // loadgen: simulated tenants
  int requests = 2;              // loadgen: requests per tenant
  int connections = 8;           // loadgen: multiplexed connections
  std::uint64_t mix_seed = 1;    // loadgen: request-mix seed
  std::string json_out;          // loadgen: write the report JSON here
  bool no_verify = false;        // loadgen: skip byte-identity replay
  bool shutdown = false;         // client: send SHUTDOWN instead of SUBMIT
};

void usage() {
  std::fprintf(
      stderr,
      "usage: originscan "
      "<experiment|analyze|scan|sweep|chaos|topology|origins> [options]\n"
      "       originscan serve --socket PATH [options]\n"
      "       originscan client --socket PATH [--shutdown] [scan flags]\n"
      "       originscan loadgen [--tenants N] [--requests N] [options]\n"
      "       originscan journal inspect --resume-dir DIR [--json]\n"
      "       originscan journal repair --resume-dir DIR\n"
      "  --scale N      universe exponent, 12..22 (default 16)\n"
      "  --universe-bits N  sweep: procedural universe exponent, 20..32\n"
      "                 (default 28; 32 sweeps all 4.3B addresses\n"
      "                 with bounded memory — ~15 min serial)\n"
      "  --probes N     sweep: SYN probes per target (default 2)\n"
      "  --seed N       scenario seed\n"
      "  --out DIR      CSV output directory (default .)\n"
      "  --origin CODE  scan/sweep: AU BR DE JP US1 US64 CEN (default US1)\n"
      "  --protocol P   scan/sweep: http|https|ssh (default http)\n"
      "  --trial N      scan/sweep: trial number 1..3 (default 1)\n"
      "  --retries N    scan: L7 retry budget (default 0)\n"
      "  --jobs N       worker threads for experiment/scan (default 1;\n"
      "                 results are bit-identical for any value)\n"
      "  --workers N    experiment: distribute the grid over N worker\n"
      "                 processes (default 0 = run in-process). Output is\n"
      "                 byte-identical for any --workers x --jobs combo;\n"
      "                 killed workers are respawned and their cells\n"
      "                 retried (see DESIGN.md s11)\n"
      "  --save FILE    experiment: also save raw results (binary)\n"
      "  --in FILE      analyze: load raw results saved by experiment\n"
      "  --resume-dir D experiment: journal each cell into D and resume a\n"
      "                 killed run from it (byte-identical to a run that\n"
      "                 was never interrupted, at any --jobs)\n"
      "  --faults SPEC  experiment: fault plan (see faultinject/)\n"
      "  --metrics-out F  experiment/scan: write the deterministic metrics\n"
      "                 snapshot (JSON; byte-identical for any --jobs and\n"
      "                 across kill/resume — see docs/METRICS.md)\n"
      "  --trace-out F  experiment/scan: write a Chrome trace_event JSON\n"
      "                 timeline of the virtual-clock scan phases (open in\n"
      "                 chrome://tracing or ui.perfetto.dev)\n"
      "  --rounds N     chaos: randomized fault episodes to run (default\n"
      "                 25); each is a pure function of (--seed, round)\n"
      "  --socket PATH  serve/client: AF_UNIX socket the daemon listens on\n"
      "  --executor-threads N  serve/loadgen: concurrent sessions\n"
      "                 (default 2; records are identical for any value)\n"
      "  --max-inflight N  serve/loadgen: global admission cap (4096)\n"
      "  --max-inflight-per-tenant N  per-tenant admission cap (1024)\n"
      "  --tenant N     client: fair-share tenant key (default 0)\n"
      "  --shutdown     client: drain-and-stop the daemon, submit nothing\n"
      "  --tenants N    loadgen: simulated tenants (default 64)\n"
      "  --requests N   loadgen: requests per tenant (default 2)\n"
      "  --connections N  loadgen: multiplexed connections (default 8)\n"
      "  --mix-seed N   loadgen: request-mix seed (default 1)\n"
      "  --json-out F   loadgen: write the loadgen_* report JSON to F\n"
      "  --no-verify    loadgen: skip the byte-identity verification\n"
      "\n"
      "  serve freezes one universe at startup and serves concurrent scan\n"
      "  requests until a client sends SHUTDOWN (docs/OPERATIONS.md).\n"
      "  loadgen replays tenants x requests against an in-process daemon\n"
      "  and fails (exit 1) unless every answer arrived and every RESULT\n"
      "  byte-matched a direct single-run scan (docs/PROTOCOL.md).\n"
      "  analyze re-runs the coverage analysis on saved results; use the\n"
      "  same --scale/--seed the experiment ran with.\n"
      "  chaos soak-tests the recovery machinery: every episode must end\n"
      "  byte-identical to a serial reference or as an honestly labeled\n"
      "  partial grid (exit 0 = no invariant violations, 1 = violations;\n"
      "  --resume-dir overrides the scratch root, --metrics-out dumps the\n"
      "  chaos.*/journal.*/fault.* counters).\n"
      "  journal inspect lists a journal's cells and verifies their\n"
      "  segment checksums; --json emits a machine-readable report.\n"
      "  Exit codes: 0 = every entry verifies, 1 = journal unreadable or\n"
      "  corrupt entries found, 2 = usage error.\n"
      "  journal repair rewrites a damaged run directory in place:\n"
      "  malformed/torn manifest lines and entries failing verification\n"
      "  are dropped (with their chain followers) so the directory is\n"
      "  resumable again. Exit 0 = repaired, 1 = unrepairable, 2 = usage.\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int first_flag = 2;
  if (args.command == "journal") {
    if (argc >= 3 && std::strcmp(argv[2], "inspect") == 0) {
      args.command = "journal-inspect";
    } else if (argc >= 3 && std::strcmp(argv[2], "repair") == 0) {
      args.command = "journal-repair";
    } else {
      std::fprintf(stderr,
                   "journal supports two subcommands: inspect, repair\n");
      return false;
    }
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--json") {  // boolean: consumes no value
      args.json = true;
      --i;
      continue;
    }
    if (flag == "--no-verify") {
      args.no_verify = true;
      --i;
      continue;
    }
    if (flag == "--shutdown") {
      args.shutdown = true;
      --i;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[i + 1];
    if (flag == "--scale") {
      args.scale = std::atoi(value.c_str());
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--out") {
      args.out = value;
    } else if (flag == "--origin") {
      args.origin = value;
    } else if (flag == "--protocol") {
      args.protocol = value;
    } else if (flag == "--trial") {
      args.trial = std::atoi(value.c_str());
    } else if (flag == "--retries") {
      args.retries = std::atoi(value.c_str());
    } else if (flag == "--jobs") {
      args.jobs = std::atoi(value.c_str());
    } else if (flag == "--universe-bits") {
      args.universe_bits = std::atoi(value.c_str());
    } else if (flag == "--probes") {
      args.probes = std::atoi(value.c_str());
    } else if (flag == "--save") {
      args.save = value;
    } else if (flag == "--in") {
      args.in = value;
    } else if (flag == "--resume-dir") {
      args.resume_dir = value;
    } else if (flag == "--faults") {
      args.faults = value;
    } else if (flag == "--metrics-out") {
      args.metrics_out = value;
    } else if (flag == "--trace-out") {
      args.trace_out = value;
    } else if (flag == "--workers") {
      args.workers = std::atoi(value.c_str());
    } else if (flag == "--rounds") {
      args.rounds = std::atoi(value.c_str());
    } else if (flag == "--fd") {
      args.fd = std::atoi(value.c_str());
    } else if (flag == "--worker-index") {
      args.worker_index = std::atoi(value.c_str());
    } else if (flag == "--socket") {
      args.socket_path = value;
    } else if (flag == "--executor-threads") {
      args.executor_threads = std::atoi(value.c_str());
    } else if (flag == "--max-inflight") {
      args.max_inflight = std::atoi(value.c_str());
    } else if (flag == "--max-inflight-per-tenant") {
      args.max_inflight_per_tenant = std::atoi(value.c_str());
    } else if (flag == "--tenant") {
      args.tenant = std::atoi(value.c_str());
    } else if (flag == "--tenants") {
      args.tenants = std::atoi(value.c_str());
    } else if (flag == "--requests") {
      args.requests = std::atoi(value.c_str());
    } else if (flag == "--connections") {
      args.connections = std::atoi(value.c_str());
    } else if (flag == "--mix-seed") {
      args.mix_seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--json-out") {
      args.json_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args.scale < 12 || args.scale > 22) {
    std::fprintf(stderr, "--scale must be in [12, 22]\n");
    return false;
  }
  if (args.universe_bits < 20 || args.universe_bits > 32) {
    std::fprintf(stderr, "--universe-bits must be in [20, 32]\n");
    return false;
  }
  if (args.probes < 1 || args.probes > 8) {
    std::fprintf(stderr, "--probes must be in [1, 8]\n");
    return false;
  }
  if (args.trial < 1 || args.trial > 3) {
    std::fprintf(stderr, "--trial must be in [1, 3]\n");
    return false;
  }
  if (args.jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return false;
  }
  if (args.workers < 0 || args.workers > 64) {
    std::fprintf(stderr, "--workers must be in [0, 64]\n");
    return false;
  }
  if (args.rounds < 1 || args.rounds > 100000) {
    std::fprintf(stderr, "--rounds must be in [1, 100000]\n");
    return false;
  }
  if (args.executor_threads < 1 || args.executor_threads > 64) {
    std::fprintf(stderr, "--executor-threads must be in [1, 64]\n");
    return false;
  }
  if (args.max_inflight < 1 || args.max_inflight_per_tenant < 1) {
    std::fprintf(stderr, "admission caps must be >= 1\n");
    return false;
  }
  if (args.tenants < 1 || args.requests < 1 || args.connections < 1) {
    std::fprintf(stderr,
                 "--tenants/--requests/--connections must be >= 1\n");
    return false;
  }
  return true;
}

std::optional<proto::Protocol> protocol_from(const std::string& name) {
  if (name == "http") return proto::Protocol::kHttp;
  if (name == "https") return proto::Protocol::kHttps;
  if (name == "ssh") return proto::Protocol::kSsh;
  return std::nullopt;
}

core::ExperimentConfig base_config(const Args& args) {
  core::ExperimentConfig config;
  config.scenario.universe_size = 1u << args.scale;
  config.scenario.seed = args.seed;
  config.jobs = args.jobs;
  return config;
}

std::string cell_to_string(const core::CellKey& key) {
  return key.origin_code + " " + std::string(proto::name_of(key.protocol)) +
         " trial " + std::to_string(key.trial + 1);
}

// Writes the observability artifacts requested on the command line. The
// metrics snapshot is deterministic (byte-identical for any --jobs value
// and across kill/resume); the trace is a Chrome trace_event timeline of
// the virtual-clock schedule.
bool write_observability(const Args& args, const obsv::MetricBlock& metrics,
                         const obsv::TraceRecorder* trace) {
  if (!args.metrics_out.empty()) {
    if (!report::write_file(args.metrics_out, obsv::snapshot_json(metrics))) {
      std::fprintf(stderr, "failed to write %s\n", args.metrics_out.c_str());
      return false;
    }
    std::printf("wrote metrics snapshot to %s\n", args.metrics_out.c_str());
  }
  if (!args.trace_out.empty() && trace != nullptr) {
    if (!report::write_file(args.trace_out, trace->chrome_trace_json())) {
      std::fprintf(stderr, "failed to write %s\n", args.trace_out.c_str());
      return false;
    }
    std::printf("wrote trace to %s (open in chrome://tracing)\n",
                args.trace_out.c_str());
  }
  return true;
}

int cmd_experiment(const Args& args) {
  auto config = base_config(args);
  std::optional<fault::FaultInjector> injector;
  if (!args.faults.empty()) {
    std::string error;
    const auto plan = fault::FaultPlan::parse(args.faults, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "bad --faults spec: %s\n", error.c_str());
      return cli::kUsage;
    }
    injector.emplace(*plan, args.seed);
    config.faults = &*injector;
  }
  obsv::MetricsRegistry registry;
  obsv::TraceRecorder trace;
  if (!args.metrics_out.empty()) config.metrics = &registry;
  if (!args.trace_out.empty()) config.trace = &trace;
  core::Experiment experiment(config);
  std::printf("running %d trials x %zu protocols x %zu origins over %u "
              "addresses...\n",
              config.trials, config.protocols.size(),
              experiment.origin_count(), config.scenario.universe_size);

  const auto progress = [](std::string_view line) {
    std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
  };
  if (args.workers > 0) {
    if (!args.trace_out.empty()) {
      std::fprintf(stderr,
                   "--trace-out is not supported with --workers: trace spans "
                   "are produced inside the worker processes\n");
      return cli::kUsage;
    }
    std::optional<core::ExperimentJournal> journal;
    if (!args.resume_dir.empty()) {
      std::string error;
      journal = core::ExperimentJournal::open(
          args.resume_dir, experiment.config_fingerprint(), &error);
      if (!journal.has_value()) {
        std::fprintf(stderr, "cannot open journal %s: %s\n",
                     args.resume_dir.c_str(), error.c_str());
        return cli::kFailure;
      }
    }
    core::DistOptions dist_options;
    dist_options.workers = args.workers;
    // Exec transport: workers (and respawned replacements) run through
    // this binary's own `worker` subcommand, reconstructing the exact
    // experiment config from forwarded flags. Falls back to the fork
    // transport if /proc/self/exe is unreadable.
    char exe[4096];
    const ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (exe_len > 0) {
      exe[exe_len] = '\0';
      dist_options.worker_argv = {std::string(exe),
                                  "worker",
                                  "--scale",
                                  std::to_string(args.scale),
                                  "--seed",
                                  std::to_string(args.seed),
                                  "--jobs",
                                  std::to_string(args.jobs)};
      if (!args.faults.empty()) {
        dist_options.worker_argv.push_back("--faults");
        dist_options.worker_argv.push_back(args.faults);
      }
    }
    obsv::MetricBlock dist_block;
    const core::RunReport report = core::run_distributed(
        experiment, journal.has_value() ? &*journal : nullptr,
        core::SupervisorPolicy{}, dist_options, &dist_block, progress);
    std::printf("cells: %zu total, %zu adopted from journal, %zu run, "
                "%zu lost (%llu retries)\n",
                report.cells_total, report.cells_adopted, report.cells_run,
                report.cells_lost,
                static_cast<unsigned long long>(report.retries));
    std::printf(
        "dist: %llu workers spawned (%llu restarted, %llu failed), "
        "%llu segments merged\n",
        static_cast<unsigned long long>(
            dist_block.counter(obsv::Counter::kDistWorkersSpawned)),
        static_cast<unsigned long long>(
            dist_block.counter(obsv::Counter::kDistWorkersRestarted)),
        static_cast<unsigned long long>(
            dist_block.counter(obsv::Counter::kDistWorkersFailed)),
        static_cast<unsigned long long>(
            dist_block.counter(obsv::Counter::kDistSegmentsReceived)));
    if (report.status == core::RunReport::Status::kKilled) {
      std::fprintf(stderr, "run killed (%s)%s\n", report.kill_reason.c_str(),
                   args.resume_dir.empty()
                       ? ""
                       : "; completed cells are journaled — rerun with the "
                         "same --resume-dir to finish");
      return cli::kKilled;
    }
    for (const auto& key : report.lost) {
      std::printf("  lost cell (retry budget exhausted): %s\n",
                  cell_to_string(key).c_str());
    }
    if (report.status == core::RunReport::Status::kPartial) {
      std::printf("partial grid: analysis excludes the lost cells and CSV "
                  "headers label them\n");
    }
  } else if (args.resume_dir.empty()) {
    experiment.run(progress);
  } else {
    std::string error;
    auto journal = core::ExperimentJournal::open(
        args.resume_dir, experiment.config_fingerprint(), &error);
    if (!journal.has_value()) {
      std::fprintf(stderr, "cannot open journal %s: %s\n",
                   args.resume_dir.c_str(), error.c_str());
      return cli::kFailure;
    }
    const core::RunReport report =
        experiment.run_journaled(&*journal, core::SupervisorPolicy{},
                                 progress);
    std::printf("cells: %zu total, %zu adopted from journal, %zu run, "
                "%zu lost (%llu retries)\n",
                report.cells_total, report.cells_adopted, report.cells_run,
                report.cells_lost,
                static_cast<unsigned long long>(report.retries));
    if (report.status == core::RunReport::Status::kKilled) {
      // No metrics/trace artifacts for a killed run: the per-cell deltas
      // live in the journal, and the resumed run's snapshot will equal an
      // uninterrupted run's.
      std::fprintf(stderr,
                   "run killed (%s); completed cells are journaled in %s — "
                   "rerun with the same --resume-dir to finish\n",
                   report.kill_reason.c_str(), args.resume_dir.c_str());
      return cli::kKilled;
    }
    for (const auto& key : report.lost) {
      std::printf("  lost cell (retry budget exhausted): %s\n",
                  cell_to_string(key).c_str());
    }
    if (report.status == core::RunReport::Status::kPartial) {
      std::printf("partial grid: analysis excludes the lost cells and CSV "
                  "headers label them\n");
    }
  }
  if (!args.save.empty()) {
    if (!core::save_results(args.save, experiment.all_results())) {
      std::fprintf(stderr, "failed to save results to %s\n",
                   args.save.c_str());
      return cli::kFailure;
    }
    std::printf("saved raw results to %s\n", args.save.c_str());
  }
  if (!write_observability(args, registry.snapshot(), &trace)) return cli::kFailure;

  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const auto coverage = core::compute_coverage(matrix);
    const core::Classification classification(matrix);
    const std::string stem =
        args.out + "/" + std::string(proto::name_of(protocol));

    if (!report::write_file(stem + "_coverage.csv",
                            report::coverage_csv(coverage)) ||
        !report::write_file(
            stem + "_classification.csv",
            report::classification_csv(classification,
                                       experiment.world().topology))) {
      std::fprintf(stderr, "failed to write CSVs under %s\n",
                   args.out.c_str());
      return cli::kFailure;
    }
    std::printf("wrote %s_coverage.csv and %s_classification.csv\n",
                stem.c_str(), stem.c_str());

    report::Table table({"origin", "mean 2-probe", "mean 1-probe"});
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      table.add_row({matrix.origin_codes()[o],
                     report::Table::percent(coverage.mean_two_probe(o)),
                     report::Table::percent(coverage.mean_single_probe(o))});
    }
    std::printf("\n%s summary:\n%s",
                std::string(proto::name_of(protocol)).c_str(),
                table.to_string().c_str());
  }
  return cli::kOk;
}

// Worker-process entry point for the distributed experiment runner. Not
// meant to be invoked by hand: the master spawns `originscan worker
// --fd N --worker-index I <config flags>` over an inherited socketpair
// and this process claims and executes grid cells until told to stop
// (see core/dist.h).
int cmd_worker(const Args& args) {
  if (args.fd < 0) {
    std::fprintf(stderr,
                 "worker is spawned by `originscan experiment --workers N`, "
                 "not by hand (missing --fd)\n");
    return cli::kUsage;
  }
  auto config = base_config(args);
  std::optional<fault::FaultInjector> injector;
  if (!args.faults.empty()) {
    std::string error;
    const auto plan = fault::FaultPlan::parse(args.faults, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "bad --faults spec: %s\n", error.c_str());
      return cli::kUsage;
    }
    injector.emplace(*plan, args.seed);
    config.faults = &*injector;
  }
  core::Experiment experiment(config);
  core::run_worker(args.fd, args.worker_index, experiment);
  return cli::kOk;
}

int cmd_scan(const Args& args) {
  const auto protocol = protocol_from(args.protocol);
  if (!protocol) {
    std::fprintf(stderr, "unknown protocol: %s\n", args.protocol.c_str());
    return cli::kFailure;
  }
  auto config = base_config(args);
  config.protocols = {*protocol};
  core::Experiment experiment(config);
  const auto origin = experiment.origin_id(args.origin);
  if (origin == ~sim::OriginId{0}) {
    std::fprintf(stderr, "unknown origin: %s\n", args.origin.c_str());
    return cli::kFailure;
  }

  std::printf("scanning %s from %s (trial %d, retries %d)...\n",
              args.protocol.c_str(), args.origin.c_str(), args.trial,
              args.retries);
  scan::ScanOptions options;
  options.l7_retries = args.retries;
  options.keep_banners = true;
  options.jobs = args.jobs;
  obsv::MetricBlock metrics;
  obsv::TraceRecorder trace;
  if (!args.metrics_out.empty()) options.metrics = &metrics;
  if (!args.trace_out.empty()) {
    options.trace = &trace;
    options.trace_track = args.origin + "/" + args.protocol + "/t" +
                          std::to_string(args.trial);
  }
  const auto result = experiment.run_extra_scan(args.trial - 1, *protocol,
                                                origin, options);

  const std::string path = args.out + "/scan_" + args.origin + "_" +
                           args.protocol + "_t" + std::to_string(args.trial) +
                           ".csv";
  if (!report::write_file(path, report::scan_result_csv(result))) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return cli::kFailure;
  }

  std::map<std::string, int> outcomes;
  for (const auto& record : result.records) {
    ++outcomes[std::string(sim::to_string(record.l7))];
  }
  std::printf("responsive targets: %zu, completed handshakes: %zu\n",
              result.records.size(), result.completed_count());
  for (const auto& [outcome, count] : outcomes) {
    std::printf("  %-22s %d\n", outcome.c_str(), count);
  }
  std::printf("wrote %s\n", path.c_str());
  if (!write_observability(args, metrics, &trace)) return cli::kFailure;
  return cli::kOk;
}

// Full-universe L4 sweep over a procedural world (DESIGN.md §10): no
// per-address tables, no stored records — memory stays bounded at any
// universe size. Prints commutative aggregates plus an order-independent
// digest; two runs that print the same digest produced identical
// per-target outcomes, so comparing digests across --jobs values checks
// parallel determinism at full scale.
int cmd_sweep(const Args& args) {
  const auto protocol = protocol_from(args.protocol);
  if (!protocol) {
    std::fprintf(stderr, "unknown protocol: %s\n", args.protocol.c_str());
    return cli::kFailure;
  }
  auto scenario = sim::ScenarioConfig::full_internet(args.universe_bits);
  scenario.seed = args.seed;
  std::printf("building procedural universe of %u addresses (2^%d)...\n",
              scenario.universe_size, args.universe_bits);
  const auto world = sim::build_world(
      scenario, sim::paper_origins(scenario.universe_size));
  const auto origin = world.origin_id(args.origin);
  if (origin == ~sim::OriginId{0}) {
    std::fprintf(stderr, "unknown origin: %s\n", args.origin.c_str());
    return cli::kFailure;
  }

  sim::TrialContext context;
  context.trial = args.trial - 1;
  context.experiment_seed = scenario.seed;
  context.simultaneous_origins = static_cast<int>(world.origins.size());
  sim::PersistentState persistent;
  sim::Internet internet(&world, context, &persistent);

  std::printf("sweeping %s from %s (trial %d, probes %d, jobs %d)...\n",
              args.protocol.c_str(), args.origin.c_str(), args.trial,
              args.probes, args.jobs);
  scan::SweepOptions options;
  options.probes = args.probes;
  options.jobs = args.jobs;
  obsv::MetricBlock metrics;
  if (!args.metrics_out.empty()) options.metrics = &metrics;
  const auto result = scan::run_l4_sweep(internet, origin, *protocol, options);

  std::printf(
      "targets probed:    %llu\n"
      "packets sent:      %llu\n"
      "responsive:        %llu (%llu SYN-ACK, %llu RST-only)\n"
      "result digest:     %016llx\n",
      static_cast<unsigned long long>(result.l4_stats.targets_probed),
      static_cast<unsigned long long>(result.l4_stats.packets_sent),
      static_cast<unsigned long long>(result.responsive),
      static_cast<unsigned long long>(result.synack_targets),
      static_cast<unsigned long long>(result.rst_only_targets),
      static_cast<unsigned long long>(result.digest));
  if (!write_observability(args, metrics, nullptr)) return cli::kFailure;
  return cli::kOk;
}

int cmd_analyze(const Args& args) {
  if (args.in.empty()) {
    std::fprintf(stderr, "analyze requires --in FILE\n");
    return cli::kFailure;
  }
  auto results = core::load_results(args.in);
  if (!results) {
    std::fprintf(stderr, "could not parse %s\n", args.in.c_str());
    return cli::kFailure;
  }
  auto config = base_config(args);
  core::Experiment experiment(config);
  std::string error;
  if (!experiment.adopt_results(std::move(*results), &error)) {
    std::fprintf(stderr,
                 "results in %s do not match this experiment's shape: %s\n"
                 "(pass the original --scale/--seed)\n",
                 args.in.c_str(), error.c_str());
    return cli::kFailure;
  }
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const auto coverage = core::compute_coverage(matrix);
    report::Table table({"origin", "mean 2-probe", "mean 1-probe"});
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      table.add_row({matrix.origin_codes()[o],
                     report::Table::percent(coverage.mean_two_probe(o)),
                     report::Table::percent(coverage.mean_single_probe(o))});
    }
    std::printf("\n%s (from saved results):\n%s",
                std::string(proto::name_of(protocol)).c_str(),
                table.to_string().c_str());
  }
  return cli::kOk;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int cmd_journal_inspect(const Args& args) {
  if (args.resume_dir.empty()) {
    std::fprintf(stderr, "journal inspect requires --resume-dir DIR\n");
    return cli::kUsage;
  }
  std::string error;
  const auto journal =
      core::ExperimentJournal::open(args.resume_dir, /*fingerprint=*/"",
                                    &error);
  if (!journal.has_value()) {
    if (args.json) {
      std::printf("{\"dir\": \"%s\", \"error\": \"%s\"}\n",
                  json_escape(args.resume_dir).c_str(),
                  json_escape(error).c_str());
    } else {
      std::fprintf(stderr, "cannot open journal %s: %s\n",
                   args.resume_dir.c_str(), error.c_str());
    }
    return cli::kFailure;
  }

  // Per-cell verdicts: every done entry's segment + sidecars are fully
  // verified (CRC frames, store checksums, manifest digest).
  struct Verdict {
    const core::JournalEntry* entry;
    bool ok = false;
    std::size_t records = 0;
    std::string detail;  // load error (corrupt) or loss reason (lost)
  };
  std::vector<Verdict> verdicts;
  std::size_t done = 0;
  std::size_t lost = 0;
  std::size_t corrupt = 0;
  for (const auto& entry : journal->entries()) {
    Verdict verdict{&entry};
    if (entry.status == core::JournalEntry::Status::kLost) {
      ++lost;
      verdict.ok = true;  // an honest loss is not an integrity failure
      verdict.detail = entry.reason;
    } else {
      ++done;
      std::string load_error;
      const auto result = journal->load_cell(entry, nullptr, &load_error);
      if (result.has_value()) {
        verdict.ok = true;
        verdict.records = result->records.size();
      } else {
        ++corrupt;
        verdict.detail = load_error;
      }
    }
    verdicts.push_back(std::move(verdict));
  }

  if (args.json) {
    std::printf("{\n");
    std::printf("  \"dir\": \"%s\",\n", json_escape(journal->dir()).c_str());
    std::printf("  \"fingerprint\": \"%s\",\n",
                journal->fingerprint().c_str());
    std::printf("  \"entries\": %zu,\n", journal->entries().size());
    std::printf("  \"done\": %zu,\n", done);
    std::printf("  \"lost\": %zu,\n", lost);
    // Corrupt entries are what a resume (or `journal repair`) will
    // quarantine; the torn flag records a crash mid-manifest-append.
    std::printf("  \"quarantine_candidates\": %zu,\n", corrupt);
    std::printf("  \"torn_line_dropped\": %s,\n",
                journal->dropped_torn_line() ? "true" : "false");
    std::printf("  \"cells\": [\n");
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const Verdict& verdict = verdicts[i];
      const core::JournalEntry& entry = *verdict.entry;
      std::printf("    {\"origin\": \"%s\", \"protocol\": \"%s\", "
                  "\"trial\": %d, \"status\": \"%s\", \"attempts\": %d, "
                  "\"records\": %zu, \"verdict\": \"%s\"",
                  json_escape(entry.key.origin_code).c_str(),
                  std::string(proto::name_of(entry.key.protocol)).c_str(),
                  entry.key.trial + 1,
                  entry.status == core::JournalEntry::Status::kLost ? "lost"
                                                                    : "done",
                  entry.attempts, verdict.records,
                  entry.status == core::JournalEntry::Status::kLost
                      ? "lost"
                      : (verdict.ok ? "ok" : "corrupt"));
      if (!verdict.detail.empty()) {
        std::printf(", \"detail\": \"%s\"",
                    json_escape(verdict.detail).c_str());
      }
      std::printf("}%s\n", i + 1 < verdicts.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return corrupt == 0 ? 0 : 1;
  }

  std::printf("journal %s\nfingerprint %s\n", journal->dir().c_str(),
              journal->fingerprint().c_str());
  report::Table table({"cell", "status", "attempts", "records", "integrity"});
  for (const Verdict& verdict : verdicts) {
    const core::JournalEntry& entry = *verdict.entry;
    if (entry.status == core::JournalEntry::Status::kLost) {
      table.add_row({cell_to_string(entry.key), "lost",
                     std::to_string(entry.attempts), "-",
                     "(" + verdict.detail + ")"});
    } else if (verdict.ok) {
      table.add_row({cell_to_string(entry.key), "done",
                     std::to_string(entry.attempts),
                     std::to_string(verdict.records), "ok"});
    } else {
      table.add_row({cell_to_string(entry.key), "done",
                     std::to_string(entry.attempts), "-",
                     "CORRUPT: " + verdict.detail});
    }
  }
  std::printf("%s%zu entries, %zu corrupt\n", table.to_string().c_str(),
              journal->entries().size(), corrupt);
  if (corrupt > 0) {
    std::printf("run `originscan journal repair --resume-dir %s` to drop "
                "the corrupt entries and make the directory resumable\n",
                args.resume_dir.c_str());
  }
  return corrupt == 0 ? 0 : 1;
}

int cmd_journal_repair(const Args& args) {
  if (args.resume_dir.empty()) {
    std::fprintf(stderr, "journal repair requires --resume-dir DIR\n");
    return cli::kUsage;
  }
  std::string error;
  const auto report = core::ExperimentJournal::repair(args.resume_dir, &error);
  if (!report.has_value()) {
    std::fprintf(stderr, "cannot repair journal %s: %s\n",
                 args.resume_dir.c_str(), error.c_str());
    return cli::kFailure;
  }
  std::printf("repaired journal %s (fingerprint %s)\n"
              "  entries kept:               %zu\n"
              "  manifest lines dropped:     %zu (malformed or torn)\n"
              "  corrupt entries dropped:    %zu\n"
              "  chain followers dropped:    %zu\n",
              args.resume_dir.c_str(), report->fingerprint.c_str(),
              report->entries_kept, report->lines_dropped_malformed,
              report->entries_dropped_corrupt,
              report->entries_dropped_followers);
  std::printf("resume with the original flags and the same --resume-dir to "
              "re-run the dropped cells\n");
  return cli::kOk;
}

int cmd_chaos(const Args& args) {
  core::ChaosOptions options;
  options.rounds = args.rounds;
  options.seed = args.seed;
  if (!args.resume_dir.empty()) options.work_dir = args.resume_dir;
  obsv::MetricsRegistry registry;
  options.metrics = &registry;
  options.progress = [](std::string_view line) {
    std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
  };
  std::printf("chaos soak: %d rounds, seed %llu\n", args.rounds,
              static_cast<unsigned long long>(args.seed));
  const core::ChaosReport report = core::run_chaos_soak(options);

  const auto snapshot = registry.snapshot();
  std::printf(
      "episodes: %d (%d resumed after a kill, %d ended as labeled partial "
      "grids)\n"
      "quarantined: %llu corrupt cells + %llu chain followers\n"
      "storage: %llu journal writes failed (fault.enospc=%llu)\n",
      report.rounds, report.resumes, report.partial_grids,
      static_cast<unsigned long long>(report.quarantined_cells),
      static_cast<unsigned long long>(report.quarantined_followers),
      static_cast<unsigned long long>(
          snapshot.counter(obsv::Counter::kJournalWritesFailed)),
      static_cast<unsigned long long>(
          snapshot.counter(obsv::Counter::kFaultEnospc)));
  if (!write_observability(args, snapshot, nullptr)) return cli::kFailure;
  if (!report.passed()) {
    for (const std::string& violation : report.violations) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", violation.c_str());
    }
    std::fprintf(stderr, "%zu invariant violation(s) — reproduce any round "
                 "with the same --seed\n",
                 report.violations.size());
    return cli::kFailure;
  }
  std::printf("0 invariant violations\n");
  return cli::kOk;
}

// `originscan serve` — the originscand daemon. Freezes one universe,
// listens on an AF_UNIX socket, and serves concurrent scan requests
// until a client sends SHUTDOWN (docs/OPERATIONS.md is the runbook).
int cmd_serve(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n");
    return cli::kUsage;
  }
  service::ServiceConfig config;
  config.scenario.universe_size = 1u << args.scale;
  config.scenario.seed = args.seed;
  config.executor_threads = args.executor_threads;
  config.scan_jobs = args.jobs;
  config.max_inflight = static_cast<std::uint32_t>(args.max_inflight);
  config.max_inflight_per_tenant =
      static_cast<std::uint32_t>(args.max_inflight_per_tenant);
  config.log = [](std::string_view line) {
    std::printf("originscand: %.*s\n", static_cast<int>(line.size()),
                line.data());
    std::fflush(stdout);
  };

  std::string error;
  const int listen_fd = service::make_unix_listener(args.socket_path, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "cannot listen on %s: %s\n",
                 args.socket_path.c_str(), error.c_str());
    return cli::kFailure;
  }
  std::printf("originscand: universe scale %d seed %llu, %d executor "
              "thread(s), listening on %s\n",
              args.scale, static_cast<unsigned long long>(args.seed),
              args.executor_threads, args.socket_path.c_str());
  std::fflush(stdout);

  service::Originscand daemon(config);
  daemon.serve(listen_fd);
  ::close(listen_fd);
  ::unlink(args.socket_path.c_str());

  const auto& m = daemon.service_metrics();
  std::printf(
      "originscand: drained. connections %llu, accepted %llu, rejected "
      "%llu, completed %llu, cancelled %llu\n",
      static_cast<unsigned long long>(
          m.counter(obsv::Counter::kServiceConnections)),
      static_cast<unsigned long long>(
          m.counter(obsv::Counter::kServiceRequestsAccepted)),
      static_cast<unsigned long long>(
          m.counter(obsv::Counter::kServiceRequestsRejected)),
      static_cast<unsigned long long>(
          m.counter(obsv::Counter::kServiceRequestsCompleted)),
      static_cast<unsigned long long>(
          m.counter(obsv::Counter::kServiceRequestsCancelled)));
  if (!args.metrics_out.empty()) {
    if (!report::write_file(args.metrics_out, obsv::snapshot_json(m))) {
      std::fprintf(stderr, "failed to write %s\n", args.metrics_out.c_str());
      return cli::kFailure;
    }
  }
  return cli::kOk;
}

// `originscan client` — submit one scan to a running daemon and export
// the RESULT records as CSV, or --shutdown the daemon.
int cmd_client(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "client requires --socket PATH\n");
    return cli::kUsage;
  }
  const auto protocol = protocol_from(args.protocol);
  if (!protocol) {
    std::fprintf(stderr, "unknown protocol: %s\n", args.protocol.c_str());
    return cli::kUsage;
  }
  std::string error;
  const int fd = service::connect_unix(args.socket_path, &error);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n",
                 args.socket_path.c_str(), error.c_str());
    return cli::kFailure;
  }
  service::ServiceClient client(fd);
  if (!client.hello()) {
    std::fprintf(stderr, "handshake failed: %s\n", client.error().c_str());
    return cli::kFailure;
  }
  if (args.shutdown) {
    service::ServiceWire message;
    message.type = service::ServiceMsg::kShutdown;
    if (!client.send(message)) {
      std::fprintf(stderr, "send failed: %s\n", client.error().c_str());
      return cli::kFailure;
    }
    std::printf("sent SHUTDOWN; daemon drains and exits\n");
    return cli::kOk;
  }

  service::SessionSpec spec;
  spec.origin_code = args.origin;
  spec.protocol = *protocol;
  spec.trial = args.trial;
  spec.probes = args.probes;
  spec.retries = args.retries;
  std::printf("submitting %s from %s (trial %d) to daemon at %s "
              "(universe seed %llu, %u addresses)...\n",
              args.protocol.c_str(), args.origin.c_str(), args.trial,
              args.socket_path.c_str(),
              static_cast<unsigned long long>(client.universe_seed()),
              client.universe_size());
  if (!client.submit(1, static_cast<std::uint32_t>(args.tenant), spec)) {
    std::fprintf(stderr, "submit failed: %s\n", client.error().c_str());
    return cli::kFailure;
  }
  const auto answer = client.wait_for(1);
  if (!answer) {
    std::fprintf(stderr, "no answer: %s\n", client.error().c_str());
    return cli::kFailure;
  }
  if (answer->type == service::ServiceMsg::kError) {
    std::fprintf(stderr, "daemon refused: %s (%s)\n",
                 std::string(service::service_error_name(answer->error))
                     .c_str(),
                 answer->text.c_str());
    return cli::kFailure;
  }
  const auto results = core::parse_results(answer->records);
  if (!results || results->size() != 1) {
    std::fprintf(stderr, "RESULT payload failed to parse\n");
    return cli::kFailure;
  }
  const scan::ScanResult& result = results->front();
  const std::string path = args.out + "/scan_" + args.origin + "_" +
                           args.protocol + "_t" + std::to_string(args.trial) +
                           ".csv";
  if (!report::write_file(path, report::scan_result_csv(result))) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return cli::kFailure;
  }
  std::printf("responsive targets: %zu, completed handshakes: %zu\n",
              result.records.size(), result.completed_count());
  std::printf("wrote %s\n", path.c_str());
  return cli::kOk;
}

// `originscan loadgen` — the concurrency proof: replay tenants against
// an in-process daemon and byte-compare every RESULT with a direct run.
int cmd_loadgen(const Args& args) {
  service::ServiceConfig config;
  config.scenario.universe_size = 1u << args.scale;
  config.scenario.seed = args.seed;
  config.executor_threads = args.executor_threads;
  config.scan_jobs = args.jobs;
  config.max_inflight = static_cast<std::uint32_t>(args.max_inflight);
  config.max_inflight_per_tenant =
      static_cast<std::uint32_t>(args.max_inflight_per_tenant);

  service::LoadgenOptions options;
  options.tenants = static_cast<std::uint32_t>(args.tenants);
  options.requests_per_tenant = static_cast<std::uint32_t>(args.requests);
  options.connections = static_cast<std::uint32_t>(args.connections);
  options.mix_seed = args.mix_seed;
  options.verify = !args.no_verify;

  std::printf("loadgen: %d tenant(s) x %d request(s) over %d connection(s), "
              "scale %d, %d executor thread(s)%s...\n",
              args.tenants, args.requests, args.connections, args.scale,
              args.executor_threads,
              options.verify ? ", verifying byte-identity" : "");
  std::fflush(stdout);

  const service::LoadgenReport report = service::run_loadgen(config, options);
  std::printf(
      "loadgen: %llu/%llu answered, %llu rejected, %llu distinct spec(s), "
      "%llu verified, %llu mismatch(es)\n"
      "loadgen: latency p50 %lld us, p99 %lld us, max %lld us, wall %lld us\n",
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.requests),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.distinct_specs),
      static_cast<unsigned long long>(report.verified_specs),
      static_cast<unsigned long long>(report.byte_mismatches),
      static_cast<long long>(report.p50_us),
      static_cast<long long>(report.p99_us),
      static_cast<long long>(report.max_us),
      static_cast<long long>(report.wall_us));
  if (!args.json_out.empty()) {
    if (!report::write_file(args.json_out,
                            service::loadgen_report_json(report))) {
      std::fprintf(stderr, "failed to write %s\n", args.json_out.c_str());
      return cli::kFailure;
    }
    std::printf("wrote %s\n", args.json_out.c_str());
  }
  if (!report.ok) {
    std::fprintf(stderr, "loadgen FAILED: %s\n", report.error.c_str());
    return cli::kFailure;
  }
  std::printf(options.verify
                  ? "loadgen OK: every answer byte-identical to direct runs\n"
                  : "loadgen OK (byte-identity verification skipped)\n");
  return cli::kOk;
}

int cmd_topology(const Args& args) {
  auto config = base_config(args);
  const auto world = sim::build_world(
      config.scenario, sim::paper_origins(config.scenario.universe_size));
  report::Table table({"AS", "country", "/24s", "addresses"});
  std::size_t shown = 0;
  for (const auto& as : world.topology.ases()) {
    if (shown++ >= 40) break;
    table.add_row({as.name, as.country.to_string(),
                   std::to_string(as.prefixes.size()),
                   std::to_string(as.address_count())});
  }
  std::printf("%zu ASes, %zu hosts over %u addresses; first 40 ASes:\n%s",
              world.topology.as_count(), world.hosts.size(),
              world.universe_size, table.to_string().c_str());
  return cli::kOk;
}

int cmd_origins(const Args& args) {
  auto config = base_config(args);
  const auto origins = sim::paper_origins(config.scenario.universe_size);
  report::Table table({"code", "name", "country", "source IPs",
                       "reputation", "loss multiplier"});
  for (const auto& origin : origins) {
    table.add_row({origin.code, origin.display_name,
                   origin.country.to_string(),
                   std::to_string(origin.source_ips.size()),
                   report::Table::num(origin.scan_reputation, 2),
                   report::Table::num(origin.loss_multiplier, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return cli::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return cli::kUsage;
  }
  if (args.command == "experiment") return cmd_experiment(args);
  if (args.command == "worker") return cmd_worker(args);
  if (args.command == "journal-inspect") return cmd_journal_inspect(args);
  if (args.command == "journal-repair") return cmd_journal_repair(args);
  if (args.command == "chaos") return cmd_chaos(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "scan") return cmd_scan(args);
  if (args.command == "sweep") return cmd_sweep(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "client") return cmd_client(args);
  if (args.command == "loadgen") return cmd_loadgen(args);
  if (args.command == "topology") return cmd_topology(args);
  if (args.command == "origins") return cmd_origins(args);
  usage();
  return cli::kUsage;
}
