// Golden-trace recorder/checker.
//
//   goldens               verify every scenario against tests/goldens/
//   goldens --update      re-record the goldens (digest JSON + full
//                         record .osnr for readable diffs)
//   goldens --scenario N  restrict to one scenario
//   goldens --jobs N      run the scans with N worker threads (the
//                         recorded output is identical for any N — that
//                         is the point of the harness)
//   goldens --dir DIR     use DIR instead of <source>/tests/goldens
//   goldens --via-resume  produce paper_small by killing a journaled run
//                         mid-grid and resuming it — the committed
//                         digests double as the resume-determinism
//                         oracle (clean_small is not an Experiment grid
//                         and falls back to a direct run)
//
// Exit status: 0 when all checked scenarios match, 1 on any divergence
// (with the first diverging record printed, not just a hash mismatch),
// 2 on usage or I/O errors.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/goldens.h"
#include "core/journal.h"
#include "core/store.h"
#include "faultinject/faultinject.h"

namespace {

using namespace originscan;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

// Verifies one scenario against its committed golden. Returns true on a
// byte-identical match.
bool check_scenario(const std::string& dir, std::string_view name,
                    const std::vector<scan::ScanResult>& results) {
  const std::string base = dir + "/" + std::string(name);
  const auto json = read_file(base + ".json");
  if (!json) {
    std::fprintf(stderr, "[%.*s] missing golden %s.json (run goldens --update)\n",
                 static_cast<int>(name.size()), name.data(), base.c_str());
    return false;
  }
  const auto golden = core::GoldenFile::from_json(*json);
  if (!golden) {
    std::fprintf(stderr, "[%.*s] unparseable golden %s.json\n",
                 static_cast<int>(name.size()), name.data(), base.c_str());
    return false;
  }
  const auto mismatch =
      core::compare_digests(golden->digests, core::digest_all(results));
  if (!mismatch) {
    std::printf("[%.*s] OK (%zu results)\n", static_cast<int>(name.size()),
                name.data(), results.size());
    return true;
  }
  std::fprintf(stderr, "[%.*s] %s\n", static_cast<int>(name.size()),
               name.data(), mismatch->c_str());
  // The committed .osnr holds the full golden records: report the first
  // diverging record, not just the digest delta.
  if (auto golden_results = core::load_results(base + ".osnr")) {
    const auto report = core::compare_results(*golden_results, results);
    std::fprintf(stderr, "%s\n", report.summary().c_str());
  } else {
    std::fprintf(stderr,
                 "(no %s.osnr golden records available for a record-level "
                 "diff)\n",
                 base.c_str());
  }
  return false;
}

bool update_scenario(const std::string& dir, std::string_view name,
                     const std::vector<scan::ScanResult>& results) {
  const std::string base = dir + "/" + std::string(name);
  core::GoldenFile golden;
  golden.scenario = std::string(name);
  golden.digests = core::digest_all(results);
  if (!write_file(base + ".json", golden.to_json())) {
    std::fprintf(stderr, "cannot write %s.json\n", base.c_str());
    return false;
  }
  if (!core::save_results(base + ".osnr", results)) {
    std::fprintf(stderr, "cannot write %s.osnr\n", base.c_str());
    return false;
  }
  std::printf("[%.*s] recorded %zu results\n", static_cast<int>(name.size()),
              name.data(), results.size());
  return true;
}

// Reproduces paper_small through the crash-safe path: a jobs=1 run is
// killed by a cell_crash fault halfway through the grid, then a fresh
// Experiment resumes from the journal at the requested jobs value. The
// caller checks the output against the same committed digests as a
// direct run — byte-identity across the kill is the journal's contract.
std::optional<std::vector<scan::ScanResult>> run_paper_small_via_resume(
    int jobs) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "osn_goldens_via_resume_journal";
  std::error_code ec;
  fs::remove_all(dir, ec);

  core::ExperimentConfig config = core::paper_small_config();
  const std::size_t total_cells =
      static_cast<std::size_t>(config.trials) * config.protocols.size() *
      sim::paper_origins(config.scenario.universe_size).size();

  {
    std::string error;
    const auto plan = fault::FaultPlan::parse(
        "cell_crash:cell=" + std::to_string(total_cells / 2), &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "via-resume: bad kill plan: %s\n", error.c_str());
      return std::nullopt;
    }
    const fault::FaultInjector injector(*plan, 0xFA57BEEFULL);
    core::ExperimentConfig killed_config = config;
    killed_config.jobs = 1;
    killed_config.faults = &injector;
    core::Experiment experiment(killed_config);
    auto journal = core::ExperimentJournal::open(
        dir.string(), experiment.config_fingerprint(), &error);
    if (!journal.has_value()) {
      std::fprintf(stderr, "via-resume: %s\n", error.c_str());
      return std::nullopt;
    }
    const auto report = experiment.run_journaled(&*journal);
    if (report.status != core::RunReport::Status::kKilled) {
      std::fprintf(stderr, "via-resume: kill fault did not fire\n");
      return std::nullopt;
    }
  }

  config.jobs = jobs;
  core::Experiment experiment(config);
  std::string error;
  auto journal = core::ExperimentJournal::open(
      dir.string(), experiment.config_fingerprint(), &error);
  if (!journal.has_value()) {
    std::fprintf(stderr, "via-resume: %s\n", error.c_str());
    return std::nullopt;
  }
  const auto report = experiment.run_journaled(&*journal);
  if (!report.complete()) {
    std::fprintf(stderr, "via-resume: resumed run did not complete\n");
    return std::nullopt;
  }
  std::printf("[paper_small] via-resume: killed after %zu of %zu cells, "
              "resumed at jobs %d\n",
              report.cells_adopted, report.cells_total, jobs);
  fs::remove_all(dir, ec);
  return experiment.all_results();
}

}  // namespace

int main(int argc, char** argv) {
  bool update = false;
  bool via_resume = false;
  int jobs = 1;
  std::string dir = std::string(OSN_SOURCE_DIR) + "/tests/goldens";
  std::string only_scenario;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--via-resume") {
      via_resume = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) jobs = 1;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      only_scenario = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: goldens [--update] [--via-resume] "
                   "[--scenario NAME] [--jobs N] [--dir DIR]\n");
      return 2;
    }
  }
  if (update && via_resume) {
    std::fprintf(stderr,
                 "--via-resume checks the resume path against the committed "
                 "goldens; it cannot be combined with --update\n");
    return 2;
  }

  bool all_ok = true;
  bool matched = false;
  for (std::string_view name : core::golden_scenario_names()) {
    if (!only_scenario.empty() && name != only_scenario) continue;
    matched = true;
    std::vector<scan::ScanResult> results;
    if (via_resume && name == "paper_small") {
      auto resumed = run_paper_small_via_resume(jobs);
      if (!resumed.has_value()) {
        all_ok = false;
        continue;
      }
      results = std::move(*resumed);
    } else {
      if (via_resume) {
        std::printf("[%.*s] via-resume: not an Experiment grid, direct run\n",
                    static_cast<int>(name.size()), name.data());
      }
      results = core::run_golden_scenario(name, jobs);
    }
    const bool ok = update ? update_scenario(dir, name, results)
                           : check_scenario(dir, name, results);
    all_ok = all_ok && ok;
  }
  if (!matched) {
    std::fprintf(stderr, "unknown scenario: %s\n", only_scenario.c_str());
    return 2;
  }
  return all_ok ? 0 : 1;
}
