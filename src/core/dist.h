// Multi-process experiment grids: a master process forks N workers,
// connects each over a socketpair speaking a CRC32-framed message
// protocol (netbase/frame.h), and distributes the grid's origin chains
// to them. See DESIGN.md §11 for the protocol state machine and the
// claim/rollback invariants.
//
// Wire protocol (every message is one frame; payload starts with a
// message-type byte):
//
//   worker → master   HELLO   {worker_index}
//   worker → master   CLAIM   {}                 "give me a chain"
//   master → worker   GRANT   {origin, chain_pos, grant, snapshot}
//   worker → master   SEGMENT {slot, kind, bytes}   kind ∈ {records,
//                                                    ids, metrics}
//   worker → master   DONE    {slot, attempts, lost, reason, sha256}
//   master → worker   ABORT   {}                 clean shutdown
//   worker → master   ABORT   {reason}           run killed (cell_crash)
//
// Why the distribution unit is the origin chain: origins own disjoint
// source IPs, and the only cross-cell mutable state is the per-AS IDS
// counters keyed by source IP — so an origin's cells must run serially,
// in chain order, but whole chains are independent. A GRANT carries the
// chain's latest IDS snapshot (exactly what the journal's `.ids`
// sidecars persist), so ANY worker can pick a chain up mid-way: resume
// after a worker death is the same operation as resume after a process
// kill, just over a socket instead of a directory.
//
// Merge commutativity: the master keys every received segment by
// (cell slot, kind). Cell outputs are deterministic — a re-granted
// cell's re-streamed segments are byte-identical to the originals — so
// keyed merging is order-independent and the final grid, CSVs, and
// metrics snapshot are byte-identical for any --workers × --jobs
// combination, and to the single-process run (tests/dist_test.cc,
// tests/differential_test.cc).
//
// Failure handling: a worker that dies (SIGKILL, torn mid-frame write)
// or stalls past its deadline is detected by the master, its un-DONEd
// cell's segments are dropped, and the chain is re-queued from its
// first un-DONEd cell with the grant-failure count incremented. When a
// cell's grant failures exhaust the supervisor budget
// (SupervisorPolicy::max_attempts), the cell is recorded lost and the
// chain continues past it — the same labeled-partial-grid degradation a
// single-process run exhibits. A worker-reported ABORT (cell_crash
// fault) degrades the whole run to RunReport::kKilled, mirroring
// run_journaled.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/journal.h"
#include "core/supervisor.h"
#include "obsv/metrics.h"

namespace originscan::core {

// ---- Wire protocol ---------------------------------------------------
// The X-macro tables are the single source of truth for the dist
// protocol's symbol/value pairs: docs/PROTOCOL.md is checked against
// them by tools/protocol_doc_check (ctest label `docs`), the same way
// the metric tables back docs/METRICS.md.

// X(symbol, wire_value, "DOC-NAME")
#define OSN_DIST_MESSAGES(X)                                                  \
  X(kHello, 1, "HELLO")                                                       \
  X(kClaim, 2, "CLAIM")                                                       \
  X(kGrant, 3, "GRANT")                                                       \
  X(kSegment, 4, "SEGMENT")                                                   \
  X(kDone, 5, "DONE")                                                         \
  X(kAbort, 6, "ABORT")

enum class MsgType : std::uint8_t {
#define OSN_X(symbol, value, name) symbol = value,
  OSN_DIST_MESSAGES(OSN_X)
#undef OSN_X
};

// SEGMENT payload kinds:
//   RECORDS  serialize_results({result}) — the cell's .osnr bytes
//   IDS      serialize_cell_sidecar(...) — the cell's .ids bytes
//   METRICS  MetricBlock::serialize() — the cell's .metrics bytes
#define OSN_DIST_SEGMENT_KINDS(X)                                             \
  X(kRecords, 0, "RECORDS")                                                   \
  X(kIds, 1, "IDS")                                                           \
  X(kMetrics, 2, "METRICS")

enum class SegmentKind : std::uint8_t {
#define OSN_X(symbol, value, name) symbol = value,
  OSN_DIST_SEGMENT_KINDS(OSN_X)
#undef OSN_X
};

[[nodiscard]] std::string_view segment_kind_name(SegmentKind kind);

// Introspection rows (doc-name, wire-value) in definition order, for
// tools/protocol_doc_check. Mirrors service::ProtocolSymbol.
struct DistProtocolSymbol {
  std::string_view name;
  unsigned value;
};
[[nodiscard]] std::span<const DistProtocolSymbol> dist_message_symbols();
[[nodiscard]] std::span<const DistProtocolSymbol> dist_segment_symbols();

// One decoded protocol message. Fields are populated per type; unused
// fields keep their defaults on the wire (encode writes only the typed
// fields, decode rejects payloads with trailing or missing bytes).
struct WireMessage {
  MsgType type = MsgType::kHello;
  // HELLO
  std::uint32_t worker = 0;
  // GRANT
  std::uint32_t origin = 0;
  std::uint32_t chain_pos = 0;  // first chain position the worker runs
  std::uint32_t grant = 0;      // prior failed grants of the start cell
  bool have_snapshot = false;
  std::vector<std::uint8_t> snapshot;  // serialized IdsSnapshot
  // SEGMENT
  std::uint64_t slot = 0;  // also DONE
  SegmentKind kind = SegmentKind::kRecords;
  std::vector<std::uint8_t> bytes;
  // DONE
  std::uint32_t attempts = 1;
  bool lost = false;
  std::string sha256;  // done (not lost): worker-side record digest
  std::string text;    // DONE lost reason / worker-ABORT kill reason
};

// Encodes `message` as one complete frame (length + payload + CRC),
// ready to write to the transport.
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    const WireMessage& message);

// Decodes one frame payload. nullopt = structurally invalid (unknown
// type, truncated fields, trailing bytes) — the caller must treat the
// peer as faulty; there is no resynchronization.
[[nodiscard]] std::optional<WireMessage> decode_message(
    std::span<const std::uint8_t> payload);

// ---- Segment merging -------------------------------------------------

// Commutative segment store: segments are keyed by (slot, kind), so any
// arrival interleaving of deterministic per-cell segments produces the
// same final state (fuzz_test.cc asserts digest equality over random
// interleavings). drop_slot implements the master's rollback of an
// un-DONEd cell when its worker dies.
class SegmentMerger {
 public:
  void add(std::uint64_t slot, SegmentKind kind,
           std::vector<std::uint8_t> bytes);
  void drop_slot(std::uint64_t slot);
  [[nodiscard]] const std::vector<std::uint8_t>* get(std::uint64_t slot,
                                                     SegmentKind kind) const;
  [[nodiscard]] bool complete(std::uint64_t slot) const;  // all three kinds
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  // Order-independent content digest (hex SHA-256 over the sorted keyed
  // contents).
  [[nodiscard]] std::string digest() const;

 private:
  std::map<std::pair<std::uint64_t, std::uint8_t>, std::vector<std::uint8_t>>
      segments_;
};

// ---- Distributed run -------------------------------------------------

struct DistOptions {
  int workers = 2;
  // A spawned worker must HELLO within this wall-clock budget (covers
  // fork/exec plus world construction), and an active worker must show
  // protocol progress (any message) at least this often.
  std::chrono::milliseconds hello_timeout{60'000};
  std::chrono::milliseconds cell_timeout{600'000};
  // Total replacement workers the master may spawn after failures before
  // it gives up (throws). Each dead worker consumes one.
  int respawn_budget = 32;
  // Exec transport: argv for worker processes (argv[0] = executable);
  // the master appends "--fd N --worker-index I". Empty = fork mode: the
  // child calls `worker_main(fd, index)` — or, when that is also empty,
  // builds `Experiment(master.config())` and calls run_worker with the
  // master's policy. Tests with custom worlds supply worker_main.
  std::vector<std::string> worker_argv;
  std::function<void(int fd, int worker_index)> worker_main;
};

// Worker-process entry point: HELLO, then CLAIM/execute/stream until the
// master ABORTs or closes the transport. `experiment` must be freshly
// constructed (never run) from the master's exact config; its
// config().faults injector drives the worker_kill / worker_stall
// checkpoints. Returns on clean shutdown; does not return if a kill or
// stall fault fires.
void run_worker(int fd, int worker_index, Experiment& experiment,
                const SupervisorPolicy& policy = {});

// Master entry point: distributes `experiment`'s grid over
// `options.workers` processes and fills the experiment's results exactly
// as run_journaled would have. `journal` (optional) is both the resume
// source — settled cells are adopted, not re-granted — and the durable
// ledger the master records streamed cells into. `dist_metrics`
// (optional) receives the master-side dist.* counters; they are kept
// out of the run registry so metrics snapshots stay byte-identical
// across worker counts. The caller must be single-threaded (fork).
// Throws std::runtime_error on protocol-fatal conditions (journal
// corruption, respawn budget exhausted).
RunReport run_distributed(
    Experiment& experiment, ExperimentJournal* journal,
    const SupervisorPolicy& policy, const DistOptions& options,
    obsv::MetricBlock* dist_metrics = nullptr,
    const std::function<void(std::string_view)>& progress = {});

}  // namespace originscan::core
