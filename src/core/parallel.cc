#include "core/parallel.h"

#include <algorithm>
#include <utility>

namespace originscan::core {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void run_parallel(int jobs, std::vector<std::function<void()>> tasks) {
  if (jobs <= 1 || tasks.size() <= 1) {
    for (auto& task : tasks) task();
    return;
  }

  // Each slot captures its task's exception; after the pool drains, the
  // lowest-indexed failure is rethrown — the same error a serial run
  // would have hit first.
  std::vector<std::exception_ptr> errors(tasks.size());
  ThreadPool pool(std::min<int>(jobs, static_cast<int>(tasks.size())));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    pool.submit([&tasks, &errors, i] {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace originscan::core
