#include "core/goldens.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "netbase/rng.h"
#include "netbase/sha256.h"
#include "sim/scenario.h"

namespace originscan::core {
namespace {

std::string dotted(net::Ipv4Addr addr) {
  const std::uint32_t v = addr.value();
  return std::to_string((v >> 24) & 255) + "." + std::to_string((v >> 16) & 255) +
         "." + std::to_string((v >> 8) & 255) + "." + std::to_string(v & 255);
}

std::optional<proto::Protocol> protocol_from_name(std::string_view name) {
  for (proto::Protocol p : proto::kAllProtocols) {
    if (proto::name_of(p) == name) return p;
  }
  return std::nullopt;
}

// ---- Scenario worlds ------------------------------------------------

// The clean world: three ASes, full service coverage, zero loss, zero
// outages, no policies, no MaxStartups. Nothing in it depends on the
// virtual time or attempt index of a handshake, which is what upgrades
// "the retry ladder absorbed the fault" to "the output is byte-identical".
sim::World build_clean_world() {
  sim::World world;
  world.seed = 0xC1EA5ULL;
  constexpr std::uint32_t kBlocksPerAs = 4;
  world.universe_size = 3 * kBlocksPerAs * 256;

  auto make_origin = [&](const char* code, sim::CountryCode country, int ips,
                         int index) {
    sim::OriginSpec spec;
    spec.code = code;
    spec.display_name = code;
    spec.country = country;
    for (int i = 0; i < ips; ++i) {
      spec.source_ips.emplace_back(
          world.universe_size + static_cast<std::uint32_t>(256 * index + i + 10));
    }
    return spec;
  };
  world.origins.push_back(make_origin("ONE", sim::country::kUS, 1, 0));
  world.origins.push_back(make_origin("FOUR", sim::country::kDE, 4, 1));

  const char* names[3] = {"Alpha", "Beta", "Gamma"};
  const sim::CountryCode countries[3] = {sim::country::kUS, sim::country::kJP,
                                         sim::country::kCN};
  std::uint32_t block = 0;
  for (int a = 0; a < 3; ++a) {
    const sim::AsId as = world.topology.add_as(names[a], countries[a]);
    for (std::uint32_t b = 0; b < kBlocksPerAs; ++b) {
      world.topology.add_prefix(as, net::Prefix(net::Ipv4Addr(block * 256), 24));
      ++block;
    }
  }
  world.topology.freeze();

  constexpr double kDensity = 0.9;
  for (std::uint32_t addr = 0; addr < world.universe_size; ++addr) {
    const std::uint64_t h = net::mix_u64(world.seed, addr, 0xDE57u);
    if (static_cast<double>(h >> 11) * 0x1.0p-53 >= kDensity) continue;
    sim::Host host;
    host.addr = net::Ipv4Addr(addr);
    host.as = *world.topology.as_of(host.addr);
    host.services = 0b111;
    host.seed = net::mix_u64(world.seed, addr, 0x5EEDu);
    world.hosts.add(host);
  }
  world.hosts.freeze();

  sim::PathProfile clean;
  clean.good_loss = 0;
  clean.bad_loss = 0;
  clean.bad_fraction = 0;
  world.paths.set_default_profile(clean);
  world.outages.pair_rate = 0;
  world.outages.wide_event_probability = 0;
  return world;
}

std::vector<scan::ScanResult> run_clean_small(
    int jobs, const fault::FaultInjector* faults) {
  static const sim::World world = build_clean_world();
  sim::PersistentState persistent;

  sim::TrialContext context;
  context.trial = 0;
  context.experiment_seed = world.seed;
  context.simultaneous_origins = static_cast<int>(world.origins.size());
  context.scan_duration = net::VirtualTime::from_hours(1);
  sim::Internet internet(&world, context, &persistent);
  internet.set_fault_injector(faults);

  scan::ScanOptions options;
  options.probes = 2;
  // Retry budget sized to absorb any clause the differential tests
  // inject (attempts <= 3), including banner-level failures. The golden
  // run uses the *same* options: the retry ladder only engages when a
  // fault fires, so the fault-free run is untouched by the headroom.
  options.l7_retries = 3;
  options.retry_banner_failures = true;
  options.keep_banners = true;
  options.scan_duration = context.scan_duration;
  options.jobs = jobs;
  options.faults = faults;

  std::vector<scan::ScanResult> results;
  for (sim::OriginId origin = 0; origin < world.origins.size(); ++origin) {
    for (proto::Protocol protocol : proto::kAllProtocols) {
      results.push_back(scan::run_scan(internet, origin, protocol, options));
    }
  }
  return results;
}

std::vector<scan::ScanResult> run_paper_small(
    int jobs, const fault::FaultInjector* faults) {
  ExperimentConfig config = paper_small_config();
  config.jobs = jobs;
  config.faults = faults;
  Experiment experiment(config);
  experiment.run();
  return experiment.all_results();
}

}  // namespace

ExperimentConfig paper_small_config() {
  ExperimentConfig config;
  config.scenario = sim::ScenarioConfig::paper_default();
  config.scenario.universe_size = 1u << 13;
  config.trials = 2;
  config.protocols = {proto::Protocol::kHttp, proto::Protocol::kSsh};
  config.l7_retries = 1;
  return config;
}

// ---- Digests --------------------------------------------------------

ResultDigest digest_of(const scan::ScanResult& result) {
  ResultDigest digest;
  digest.origin_code = result.origin_code;
  digest.trial = result.trial;
  digest.protocol = result.protocol;
  digest.record_count = result.records.size();
  digest.completed = result.completed_count();
  digest.synacks = result.l4_stats.synacks;

  net::Sha256 record_hash;
  for (const auto& record : result.records) {
    const std::uint32_t addr = record.addr.value();
    const std::uint32_t second = record.probe_second;
    const std::uint8_t packed[12] = {
        static_cast<std::uint8_t>(addr >> 24),
        static_cast<std::uint8_t>(addr >> 16),
        static_cast<std::uint8_t>(addr >> 8),
        static_cast<std::uint8_t>(addr),
        record.synack_mask,
        record.rst_mask,
        static_cast<std::uint8_t>(record.l7),
        static_cast<std::uint8_t>(record.explicit_close ? 1 : 0),
        static_cast<std::uint8_t>(second >> 24),
        static_cast<std::uint8_t>(second >> 16),
        static_cast<std::uint8_t>(second >> 8),
        static_cast<std::uint8_t>(second),
    };
    record_hash.update(packed);
  }
  digest.record_sha256 = net::Sha256::hex(record_hash.finish());

  if (!result.banners.empty()) {
    net::Sha256 banner_hash;
    for (const auto& banner : result.banners) {
      banner_hash.update(std::span(
          reinterpret_cast<const std::uint8_t*>(banner.data()), banner.size()));
      const std::uint8_t separator = '\n';
      banner_hash.update(std::span(&separator, 1));
    }
    digest.banner_sha256 = net::Sha256::hex(banner_hash.finish());
  }
  return digest;
}

std::vector<ResultDigest> digest_all(
    const std::vector<scan::ScanResult>& results) {
  std::vector<ResultDigest> digests;
  digests.reserve(results.size());
  for (const auto& result : results) digests.push_back(digest_of(result));
  return digests;
}

// ---- JSON -----------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

// Minimal parser for the exact shape to_json emits: objects, arrays,
// strings (with \" and \\ escapes), and non-negative integers.
struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    failed = true;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  std::string string() {
    if (!eat('"')) return {};
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) c = text[pos++];
      out.push_back(c);
    }
    if (pos >= text.size()) {
      failed = true;
      return {};
    }
    ++pos;  // closing quote
    return out;
  }
  std::uint64_t number() {
    skip_ws();
    std::uint64_t value = 0;
    bool any = false;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) failed = true;
    return value;
  }
};

}  // namespace

std::string GoldenFile::to_json() const {
  std::string out = "{\n  \"scenario\": \"";
  append_escaped(out, scenario);
  out += "\",\n  \"digests\": [\n";
  for (std::size_t i = 0; i < digests.size(); ++i) {
    const ResultDigest& d = digests[i];
    out += "    {\"origin\": \"";
    append_escaped(out, d.origin_code);
    out += "\", \"trial\": " + std::to_string(d.trial);
    out += ", \"protocol\": \"";
    out += proto::name_of(d.protocol);
    out += "\", \"records\": " + std::to_string(d.record_count);
    out += ", \"completed\": " + std::to_string(d.completed);
    out += ", \"synacks\": " + std::to_string(d.synacks);
    out += ", \"record_sha256\": \"" + d.record_sha256 + "\"";
    out += ", \"banner_sha256\": \"" + d.banner_sha256 + "\"}";
    if (i + 1 < digests.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::optional<GoldenFile> GoldenFile::from_json(std::string_view text) {
  JsonCursor cursor{text};
  GoldenFile golden;
  if (!cursor.eat('{')) return std::nullopt;
  bool first_key = true;
  while (!cursor.peek('}')) {
    if (!first_key && !cursor.eat(',')) return std::nullopt;
    first_key = false;
    const std::string key = cursor.string();
    if (!cursor.eat(':')) return std::nullopt;
    if (key == "scenario") {
      golden.scenario = cursor.string();
    } else if (key == "digests") {
      if (!cursor.eat('[')) return std::nullopt;
      bool first_entry = true;
      while (!cursor.peek(']')) {
        if (!first_entry && !cursor.eat(',')) return std::nullopt;
        first_entry = false;
        if (!cursor.eat('{')) return std::nullopt;
        ResultDigest digest;
        bool first_field = true;
        while (!cursor.peek('}')) {
          if (!first_field && !cursor.eat(',')) return std::nullopt;
          first_field = false;
          const std::string field = cursor.string();
          if (!cursor.eat(':')) return std::nullopt;
          if (field == "origin") {
            digest.origin_code = cursor.string();
          } else if (field == "trial") {
            digest.trial = static_cast<int>(cursor.number());
          } else if (field == "protocol") {
            const auto protocol = protocol_from_name(cursor.string());
            if (!protocol) return std::nullopt;
            digest.protocol = *protocol;
          } else if (field == "records") {
            digest.record_count = cursor.number();
          } else if (field == "completed") {
            digest.completed = cursor.number();
          } else if (field == "synacks") {
            digest.synacks = cursor.number();
          } else if (field == "record_sha256") {
            digest.record_sha256 = cursor.string();
          } else if (field == "banner_sha256") {
            digest.banner_sha256 = cursor.string();
          } else {
            return std::nullopt;  // unknown field: not our format
          }
          if (cursor.failed) return std::nullopt;
        }
        if (!cursor.eat('}')) return std::nullopt;
        golden.digests.push_back(std::move(digest));
      }
      if (!cursor.eat(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (cursor.failed) return std::nullopt;
  }
  if (!cursor.eat('}')) return std::nullopt;
  cursor.skip_ws();
  if (cursor.pos != text.size()) return std::nullopt;
  return golden;
}

// ---- Scenario registry ----------------------------------------------

std::vector<std::string_view> golden_scenario_names() {
  return {"clean_small", "paper_small"};
}

std::vector<scan::ScanResult> run_golden_scenario(
    std::string_view name, int jobs, const fault::FaultInjector* faults) {
  if (name == "clean_small") return run_clean_small(jobs, faults);
  if (name == "paper_small") return run_paper_small(jobs, faults);
  throw std::invalid_argument("unknown golden scenario: " + std::string(name));
}

// ---- Differential comparison ----------------------------------------

std::string_view degradation_name(DegradationClass klass) {
  switch (klass) {
    case DegradationClass::kIdentical:
      return "identical";
    case DegradationClass::kL4Loss:
      return "l4_loss";
    case DegradationClass::kL7Degradation:
      return "l7_degradation";
    case DegradationClass::kMixed:
      return "mixed";
    case DegradationClass::kStructural:
      return "structural";
  }
  return "unknown";
}

namespace {

std::string describe_record(const scan::ScanRecord& record) {
  return "{synack_mask=" + std::to_string(record.synack_mask) +
         " rst_mask=" + std::to_string(record.rst_mask) +
         " l7=" + std::string(sim::to_string(record.l7)) +
         " explicit_close=" + std::to_string(record.explicit_close ? 1 : 0) +
         " probe_second=" + std::to_string(record.probe_second) + "}";
}

constexpr std::size_t kMaxDivergences = 8;

void add_divergence(DifferentialReport& report, std::size_t result_index,
                    const scan::ScanResult& golden, std::string description) {
  if (report.divergences.size() >= kMaxDivergences) return;
  RecordDivergence divergence;
  divergence.result_index = result_index;
  divergence.origin_code = golden.origin_code;
  divergence.trial = golden.trial;
  divergence.protocol = golden.protocol;
  divergence.description = std::move(description);
  report.divergences.push_back(std::move(divergence));
}

}  // namespace

DifferentialReport compare_results(
    const std::vector<scan::ScanResult>& golden,
    const std::vector<scan::ScanResult>& actual) {
  DifferentialReport report;
  if (golden.size() != actual.size()) {
    report.klass = DegradationClass::kStructural;
    RecordDivergence divergence;
    divergence.description =
        "result grid mismatch: golden has " + std::to_string(golden.size()) +
        " results, actual has " + std::to_string(actual.size());
    report.divergences.push_back(std::move(divergence));
    return report;
  }

  bool structural = false;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const scan::ScanResult& g = golden[i];
    const scan::ScanResult& a = actual[i];
    if (g.origin_code != a.origin_code || g.trial != a.trial ||
        g.protocol != a.protocol) {
      structural = true;
      add_divergence(report, i, g,
                     "result identity mismatch: golden (" + g.origin_code +
                         ", trial " + std::to_string(g.trial) + ", " +
                         std::string(proto::name_of(g.protocol)) +
                         ") vs actual (" + a.origin_code + ", trial " +
                         std::to_string(a.trial) + ", " +
                         std::string(proto::name_of(a.protocol)) + ")");
      continue;
    }
    report.records_golden += g.records.size();
    report.records_actual += a.records.size();

    // Both record lists are address-sorted (the orchestrator's canonical
    // order): a linear merge join finds every divergence.
    std::size_t gi = 0, ai = 0;
    while (gi < g.records.size() || ai < a.records.size()) {
      if (ai >= a.records.size() ||
          (gi < g.records.size() &&
           g.records[gi].addr < a.records[ai].addr)) {
        ++report.missing_records;
        add_divergence(report, i, g,
                       "record " + dotted(g.records[gi].addr) +
                           " present in golden " +
                           describe_record(g.records[gi]) +
                           ", missing from actual");
        ++gi;
        continue;
      }
      if (gi >= g.records.size() || a.records[ai].addr < g.records[gi].addr) {
        ++report.extra_records;
        add_divergence(report, i, g,
                       "record " + dotted(a.records[ai].addr) +
                           " absent from golden, present in actual " +
                           describe_record(a.records[ai]));
        ++ai;
        continue;
      }
      const scan::ScanRecord& gr = g.records[gi];
      const scan::ScanRecord& ar = a.records[ai];
      if (!(gr == ar)) {
        const bool l4_diff = gr.synack_mask != ar.synack_mask ||
                             gr.rst_mask != ar.rst_mask ||
                             gr.probe_second != ar.probe_second;
        const bool l7_diff =
            gr.l7 != ar.l7 || gr.explicit_close != ar.explicit_close;
        if (l4_diff) ++report.l4_diffs;
        if (l7_diff) ++report.l7_diffs;
        add_divergence(report, i, g,
                       "record " + dotted(gr.addr) + " diverges: golden " +
                           describe_record(gr) + " vs actual " +
                           describe_record(ar));
      } else if (!g.banners.empty() && !a.banners.empty() &&
                 gi < g.banners.size() && ai < a.banners.size() &&
                 g.banners[gi] != a.banners[ai]) {
        ++report.l7_diffs;
        add_divergence(report, i, g,
                       "record " + dotted(gr.addr) + " banner diverges: \"" +
                           g.banners[gi] + "\" vs \"" + a.banners[ai] + "\"");
      }
      ++gi;
      ++ai;
    }
  }

  const std::uint64_t l4_damage =
      report.missing_records + report.extra_records + report.l4_diffs;
  if (structural) {
    report.klass = DegradationClass::kStructural;
  } else if (l4_damage > 0 && report.l7_diffs > 0) {
    report.klass = DegradationClass::kMixed;
  } else if (l4_damage > 0) {
    report.klass = DegradationClass::kL4Loss;
  } else if (report.l7_diffs > 0) {
    report.klass = DegradationClass::kL7Degradation;
  } else {
    report.klass = DegradationClass::kIdentical;
  }
  return report;
}

std::string DifferentialReport::summary() const {
  std::string out = "class=" + std::string(degradation_name(klass)) +
                    " golden_records=" + std::to_string(records_golden) +
                    " actual_records=" + std::to_string(records_actual) +
                    " missing=" + std::to_string(missing_records) +
                    " extra=" + std::to_string(extra_records) +
                    " l4_diffs=" + std::to_string(l4_diffs) +
                    " l7_diffs=" + std::to_string(l7_diffs);
  if (!divergences.empty()) {
    out += "\nfirst divergence (" + divergences.front().origin_code +
           ", trial " + std::to_string(divergences.front().trial) + ", " +
           std::string(proto::name_of(divergences.front().protocol)) +
           "): " + divergences.front().description;
  }
  return out;
}

std::optional<std::string> compare_digests(
    const std::vector<ResultDigest>& golden,
    const std::vector<ResultDigest>& actual) {
  if (golden.size() != actual.size()) {
    return "digest count mismatch: golden has " +
           std::to_string(golden.size()) + ", actual has " +
           std::to_string(actual.size());
  }
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const ResultDigest& g = golden[i];
    const ResultDigest& a = actual[i];
    if (g == a) continue;
    std::string out = "digest mismatch at entry " + std::to_string(i) + " (" +
                      g.origin_code + ", trial " + std::to_string(g.trial) +
                      ", " + std::string(proto::name_of(g.protocol)) + "):";
    if (g.origin_code != a.origin_code || g.trial != a.trial ||
        g.protocol != a.protocol) {
      out += " identity differs (actual: " + a.origin_code + ", trial " +
             std::to_string(a.trial) + ", " +
             std::string(proto::name_of(a.protocol)) + ")";
      return out;
    }
    if (g.record_count != a.record_count) {
      out += " records " + std::to_string(g.record_count) + " -> " +
             std::to_string(a.record_count);
    }
    if (g.completed != a.completed) {
      out += " completed " + std::to_string(g.completed) + " -> " +
             std::to_string(a.completed);
    }
    if (g.synacks != a.synacks) {
      out += " synacks " + std::to_string(g.synacks) + " -> " +
             std::to_string(a.synacks);
    }
    if (g.record_sha256 != a.record_sha256) out += " record_sha256 differs";
    if (g.banner_sha256 != a.banner_sha256) out += " banner_sha256 differs";
    return out;
  }
  return std::nullopt;
}

}  // namespace originscan::core
