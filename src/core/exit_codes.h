// The one exit-code convention every `originscan` subcommand follows —
// the table in docs/CLI.md renders these values and tests/cli_test.cc
// asserts the two stay in lockstep. Historically each subcommand grew
// its own ad-hoc codes; this header is the fix for that drift.
//
//   0  kOk       the subcommand did what was asked and verified it
//   1  kFailure  the work ran but failed (corrupt input, violation,
//                write error, refused request)
//   2  kUsage    the command line itself was invalid (unknown flag,
//                missing required flag, out-of-range value)
//   3  kKilled   an injected fault killed the run mid-flight but the
//                journal makes it resumable (experiment --resume-dir)
#pragma once

namespace originscan::cli {

inline constexpr int kOk = 0;
inline constexpr int kFailure = 1;
inline constexpr int kUsage = 2;
inline constexpr int kKilled = 3;

}  // namespace originscan::cli
