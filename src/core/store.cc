#include "core/store.h"

#include <cassert>
#include <cstdio>

#include "netbase/byteio.h"
#include "netbase/crc32.h"

namespace originscan::core {
namespace {

constexpr std::uint32_t kMagic = 0x4F534E52;  // "OSNR"

}  // namespace

std::vector<std::uint8_t> serialize_results(
    const std::vector<scan::ScanResult>& results, std::uint32_t version) {
  assert(version == kStoreVersionNoCrc || version == kStoreVersion);
  std::vector<std::uint8_t> out;
  net::ByteWriter w(out);
  w.u32(kMagic);
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& result : results) {
    const std::size_t block_start = out.size();
    w.u16(static_cast<std::uint16_t>(result.origin_code.size()));
    w.bytes(std::span(
        reinterpret_cast<const std::uint8_t*>(result.origin_code.data()),
        result.origin_code.size()));
    w.u8(static_cast<std::uint8_t>(result.protocol));
    w.u32(static_cast<std::uint32_t>(result.trial));
    w.u64(result.records.size());
    for (const auto& record : result.records) {
      w.u32(record.addr.value());
      w.u8(record.synack_mask);
      w.u8(record.rst_mask);
      w.u8(static_cast<std::uint8_t>(record.l7));
      w.u8(record.explicit_close ? 1 : 0);
      w.u32(record.probe_second);
    }
    if (version >= kStoreVersion) {
      w.u32(net::crc32(
          std::span(out.data() + block_start, out.size() - block_start)));
    }
  }
  return out;
}

std::optional<std::vector<scan::ScanResult>> parse_results(
    std::span<const std::uint8_t> data) {
  net::ByteReader r(data);
  if (r.u32() != kMagic) return std::nullopt;
  const std::uint32_t version = r.u32();
  if (version != kStoreVersionNoCrc && version != kStoreVersion)
    return std::nullopt;
  const std::uint32_t count = r.u32();
  if (!r.ok()) return std::nullopt;
  // Each result needs at least its 15-byte header; bound the allocation
  // by what the stream could possibly hold.
  if (count > r.remaining() / 15) return std::nullopt;

  std::vector<scan::ScanResult> results;
  results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    scan::ScanResult result;
    const std::size_t block_start = r.position();
    const std::uint16_t code_length = r.u16();
    auto code = r.bytes(code_length);
    if (!r.ok()) return std::nullopt;
    result.origin_code.assign(code.begin(), code.end());
    const std::uint8_t protocol = r.u8();
    if (protocol > 2) return std::nullopt;
    result.protocol = static_cast<proto::Protocol>(protocol);
    result.trial = static_cast<int>(r.u32());
    const std::uint64_t record_count = r.u64();
    if (!r.ok()) return std::nullopt;
    // Sanity bound: each record needs 12 bytes of remaining stream.
    // (Divide rather than multiply — a hostile count must not overflow.)
    if (record_count > r.remaining() / 12) return std::nullopt;
    result.records.reserve(record_count);
    for (std::uint64_t j = 0; j < record_count; ++j) {
      scan::ScanRecord record;
      record.addr = net::Ipv4Addr(r.u32());
      record.synack_mask = r.u8();
      record.rst_mask = r.u8();
      record.l7 = static_cast<sim::L7Outcome>(r.u8());
      record.explicit_close = r.u8() != 0;
      record.probe_second = r.u32();
      result.records.push_back(record);
    }
    if (!r.ok()) return std::nullopt;
    if (version >= kStoreVersion) {
      const std::uint32_t want = net::crc32(
          data.subspan(block_start, r.position() - block_start));
      if (r.u32() != want || !r.ok()) return std::nullopt;
    }
    results.push_back(std::move(result));
  }
  if (r.remaining() != 0) return std::nullopt;
  return results;
}

bool save_results(const std::string& path,
                  const std::vector<scan::ScanResult>& results) {
  const auto bytes = serialize_results(results);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file);
  const int close_result = std::fclose(file);
  return written == bytes.size() && close_result == 0;
}

bool save_results(const std::string& path,
                  const std::vector<scan::ScanResult>& results,
                  const fault::FaultInjector* faults, SaveStats* stats,
                  obsv::MetricBlock* metrics) {
  constexpr std::size_t kChunk = 64 * 1024;
  // A transient error on the same chunk can recur (each retry is a new
  // physical write with its own injected-fault decision), so bound the
  // total number of resume cycles rather than loop forever on a plan
  // that fails every write.
  constexpr std::uint64_t kMaxResumes = 256;

  SaveStats local;
  const auto bytes = serialize_results(results);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;

  std::size_t committed = 0;  // bytes durably written so far
  std::uint64_t write_index = 0;
  bool ok = true;
  while (committed < bytes.size()) {
    const std::size_t len = std::min(kChunk, bytes.size() - committed);
    if (faults != nullptr && faults->enospc(committed)) {
      // Permanent no-space failure: unlike EIO, the disk does not come
      // back on a reopen, so the retry ladder would only spin. Abandon
      // the save; the caller fails the cell, not the run.
      if (metrics != nullptr) metrics->add(obsv::Counter::kFaultEnospc);
      local.storage_exhausted = true;
      ok = false;
      break;
    }
    const bool injected_eio =
        faults != nullptr && faults->store_write_fails(write_index);
    if (injected_eio && metrics != nullptr) {
      metrics->add(obsv::Counter::kFaultStoreEio);
    }
    ++write_index;
    ++local.writes;
    std::size_t written = 0;
    if (!injected_eio) {
      written = std::fwrite(bytes.data() + committed, 1, len, file);
    }
    if (written == len) {
      committed += len;
      continue;
    }
    // Transient EIO (injected or real short write): checkpoint/resume.
    // Reopen the file and seek back to the last committed offset — the
    // bytes before it are durable; everything after is rewritten.
    ++local.transient_errors;
    if (local.resumes >= kMaxResumes) {
      ok = false;
      break;
    }
    ++local.resumes;
    if (metrics != nullptr) metrics->add(obsv::Counter::kStoreWriteRetries);
    std::fclose(file);
    file = std::fopen(path.c_str(), "r+b");
    if (file == nullptr ||
        std::fseek(file, static_cast<long>(committed), SEEK_SET) != 0) {
      ok = false;
      break;
    }
  }
  if (file != nullptr && std::fclose(file) != 0) ok = false;
  if (stats != nullptr) *stats = local;
  return ok && committed == bytes.size();
}

std::optional<std::vector<scan::ScanResult>> load_results(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buffer[65536];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.insert(data.end(), buffer, buffer + read);
  }
  std::fclose(file);
  return parse_results(data);
}

}  // namespace originscan::core
