// Crash-safe experiment journal: every completed (trial, protocol,
// origin) cell is persisted the moment it finishes, so a run killed at
// any instant resumes from its journal and completes with byte-identical
// output (see DESIGN.md §6d and Experiment::run_journaled).
//
// On-disk layout — one directory per run:
//
//   MANIFEST                      append-only, fsync'd per line:
//     osnr-journal v1 fingerprint=<hex>         (header, written at open)
//     done <origin> <proto> <trial> attempts=N sha256=<hex> segment=<stem>
//     lost <origin> <proto> <trial> attempts=N reason=<text>
//   <stem>.osnr                   single-cell store segment (v2, CRC'd)
//   <stem>.ids                    framed sidecar: the origin's post-cell
//                                 IDS snapshot + the result fields the
//                                 store format omits (L4 stats, attempt
//                                 histogram) so adopted cells reproduce
//                                 golden digests exactly
//   <stem>.metrics                framed sidecar: the cell's metric delta
//
// Both sidecars are wrapped in the shared length-prefixed CRC32 frame
// (netbase/frame.h) — the same codec the distributed worker protocol
// streams segments with. The frame's length check means a reader never
// trusts a corrupt length prefix and over-reads past the end of the
// file; sidecars written before framing existed (raw payload, own CRC
// footer) are still accepted as a legacy fallback.
//
// The manifest line is appended only *after* both sidecar files are
// durably written, so a crash between cell completion and manifest
// append simply re-runs the cell: every state the journal can be left in
// is either "cell fully recorded" or "cell absent". A torn trailing line
// (crash mid-append) is detected by the missing newline and dropped.
//
// Why IDS snapshots make cell-granular resume sound: the only mutable
// cross-cell state in the simulation is PersistentState's per-AS IDS
// counters, keyed by source IP. Origins own disjoint source IPs and an
// origin's cells run as one serial chain, so the snapshot taken after an
// origin's k-th cell is exactly the state its (k+1)-th cell started from
// — restoring the origin's latest snapshot and re-running its remaining
// cells reproduces the uninterrupted run byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "faultinject/faultinject.h"
#include "obsv/metrics.h"
#include "proto/protocol.h"
#include "scanner/orchestrator.h"
#include "sim/policy.h"

namespace originscan::core {

// One origin's view of the cross-trial IDS state, captured after a cell
// completes. Only entries keyed by the origin's own source IPs are
// included — that is the entire slice of PersistentState the origin's
// chain can read or write.
struct IdsSnapshot {
  struct AsEntry {
    sim::AsId as = 0;
    // (source IP, value) pairs, sorted by IP (map iteration order).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> probe_counts;
    std::vector<std::pair<std::uint32_t, int>> blocked_ips;

    friend bool operator==(const AsEntry&, const AsEntry&) = default;
  };
  std::vector<AsEntry> entries;  // sorted by AS id

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<IdsSnapshot> parse(std::span<const std::uint8_t> data);

  friend bool operator==(const IdsSnapshot&, const IdsSnapshot&) = default;
};

// Captures the slice of `state` keyed by `source_ips` (one origin's
// addresses). Takes the per-AS shard locks, so it is safe while other
// origins' chains are scanning.
[[nodiscard]] IdsSnapshot capture_ids(
    sim::PersistentState& state, std::span<const net::Ipv4Addr> source_ips);

// Restores the origin's slice: erases every entry keyed by `source_ips`,
// then reinserts the snapshot's. Other origins' entries are untouched.
void restore_ids(sim::PersistentState& state,
                 std::span<const net::Ipv4Addr> source_ips,
                 const IdsSnapshot& snapshot);

// The `.ids` sidecar payload: the origin's IDS snapshot plus the result
// fields the `.osnr` segment cannot carry (L4 stats and the attempt
// histogram live outside the store format, but golden digests include
// the SYN-ACK count, so an adopted — or remotely executed — cell must
// reproduce them exactly). Public because the distributed runtime's
// SEGMENT messages carry exactly these bytes: a worker serializes the
// sidecar once and the master persists it verbatim, so the journal a
// distributed run writes is byte-identical to a single-process one.
[[nodiscard]] std::vector<std::uint8_t> serialize_cell_sidecar(
    const IdsSnapshot& ids, const scan::ZMapScanner::Stats& stats,
    const std::vector<std::uint64_t>& histogram);
[[nodiscard]] bool parse_cell_sidecar(std::span<const std::uint8_t> data,
                                      IdsSnapshot& ids,
                                      scan::ZMapScanner::Stats& stats,
                                      std::vector<std::uint64_t>& histogram);

// Identity of one grid cell, as spelled in the manifest.
struct CellKey {
  std::string origin_code;
  proto::Protocol protocol{};
  int trial = 0;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

struct JournalEntry {
  enum class Status { kDone, kLost };
  Status status = Status::kDone;
  CellKey key;
  int attempts = 1;
  std::string record_sha256;  // done only: digest of the packed records
  std::string segment;        // done only: sidecar file stem
  std::string reason;         // lost only
};

// Outcome of ExperimentJournal::repair — how much of a damaged run
// directory survived.
struct RepairReport {
  std::size_t entries_kept = 0;
  // Manifest lines that did not parse (plus a torn trailing line).
  std::size_t lines_dropped_malformed = 0;
  // Done entries whose segment/sidecar failed CRC or digest checks.
  std::size_t entries_dropped_corrupt = 0;
  // Entries demoted because an earlier cell of their origin's chain was
  // dropped: adopting them would violate the chain-prefix invariant.
  std::size_t entries_dropped_followers = 0;
  std::string fingerprint;
};

// Append-only journal over one experiment run. Open once per process;
// record_* calls are not internally synchronized (Experiment serializes
// them behind a mutex).
class ExperimentJournal {
 public:
  // Opens (creating if needed) the journal directory. `fingerprint`
  // identifies the experiment configuration (Experiment::
  // config_fingerprint); opening an existing journal with a different
  // fingerprint fails — resuming under a changed config would silently
  // produce a franken-run. An empty fingerprint is inspect mode: the
  // journal must already exist and its own fingerprint is adopted
  // (read-only use; never record cells through such a handle).
  static std::optional<ExperimentJournal> open(const std::string& dir,
                                               const std::string& fingerprint,
                                               std::string* error = nullptr);

  // Rewrites a damaged run directory in place so that everything
  // survivable becomes resumable: malformed and torn manifest lines are
  // dropped, done entries whose segment/sidecar fails verification are
  // dropped, and — because an origin's cells form a serial chain —
  // every entry after a dropped one in the same origin's chain is
  // demoted too (adopting it would violate the chain-prefix invariant).
  // The MANIFEST is rebuilt via a durable tmp-write + rename; orphaned
  // segment files are left on disk (resume overwrites them). Requires a
  // readable header line; everything after it is salvage.
  static std::optional<RepairReport> repair(const std::string& dir,
                                            std::string* error = nullptr);

  ExperimentJournal(ExperimentJournal&&) = default;
  ExperimentJournal& operator=(ExperimentJournal&&) = default;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }
  // Entries replayed from the manifest at open, in append order. A later
  // line for an already-seen cell replaces the earlier entry and takes
  // its position at the end — last-wins, which is what makes quarantined
  // cells re-recordable: the fresh `done` line appended after a
  // re-execution supersedes the line whose segment went bad.
  [[nodiscard]] const std::vector<JournalEntry>& entries() const {
    return entries_;
  }
  // Whether open() dropped a torn trailing manifest line (crash
  // mid-append). Diagnostic only; the referenced cell simply re-runs.
  [[nodiscard]] bool dropped_torn_line() const { return dropped_torn_line_; }

  // Optional deterministic fault injection for the chaos harness: when
  // set, durable writes consult the injector's enospc/segment_corrupt
  // points. `fault_metrics` (optional, single-writer like every
  // MetricBlock) receives the fault.* counts.
  void set_fault_injector(const fault::FaultInjector* faults,
                          obsv::MetricBlock* fault_metrics = nullptr) {
    faults_ = faults;
    fault_metrics_ = fault_metrics;
  }
  // Latched true after any durable-write failure (real or injected).
  // Storage does not come back within a run: callers fail remaining
  // cells fast instead of burning retry budget on a dead disk.
  [[nodiscard]] bool storage_dead() const { return storage_dead_; }
  // Cumulative payload bytes this handle has durably written (segments,
  // sidecars, and manifest appends) — the enospc clause's clock.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] const JournalEntry* find(const CellKey& key) const;
  // Demotes a cell to absent (adopt_journal's quarantine path: the
  // entry's segment or sidecar failed verification, or it follows a
  // quarantined cell in its origin's chain). Only the in-memory view
  // changes — the manifest line stays on disk, superseded by the fresh
  // line the re-execution appends (last-wins replay at the next open).
  void quarantine(const CellKey& key);
  // Claim check for the distributed master: a settled cell (done or
  // lost) must never be granted again — its outcome is already durable.
  [[nodiscard]] bool settled(const CellKey& key) const {
    return find(key) != nullptr;
  }

  // Loads a done cell's segment, verifying the store CRCs and the
  // manifest's record digest. `snapshot` (optional out) receives the
  // cell's IDS sidecar. `metrics` (optional out) receives the cell's
  // persisted metric delta; a journal written before metrics existed has
  // no `.metrics` sidecar and yields an all-zero block (documented in
  // docs/METRICS.md), but a *corrupt* one fails the load. Returns
  // nullopt (with `error`) on any integrity failure — a corrupt segment
  // means the cell must be re-run, never silently adopted.
  std::optional<scan::ScanResult> load_cell(
      const JournalEntry& entry, IdsSnapshot* snapshot = nullptr,
      std::string* error = nullptr, obsv::MetricBlock* metrics = nullptr) const;

  // Persists a completed cell: writes segment + IDS sidecar, fsyncs
  // them, then appends (and fsyncs) the manifest line. When `metrics` is
  // non-null it receives this cell's journal-layer counters
  // (journal.cells_recorded, journal.segments_fsynced, the segment-size
  // histogram) and is then persisted as a CRC'd `<stem>.metrics` sidecar
  // — before the manifest append, so a recorded cell always carries its
  // delta and a resumed run reproduces an uninterrupted run's metrics
  // byte for byte.
  bool record_done(const CellKey& key, const scan::ScanResult& result,
                   const IdsSnapshot& snapshot, int attempts,
                   std::string* error = nullptr);
  bool record_done(const CellKey& key, const scan::ScanResult& result,
                   const IdsSnapshot& snapshot, int attempts,
                   obsv::MetricBlock* metrics, std::string* error);

  // Marks a cell lost (retry budget exhausted). Analysis treats the cell
  // as absent; resume does not re-run it (see Experiment::run_journaled).
  bool record_lost(const CellKey& key, int attempts, const std::string& reason,
                   std::string* error = nullptr);

 private:
  ExperimentJournal() = default;

  bool append_manifest_line(const std::string& line, std::string* error);
  bool durable_write(const std::string& path,
                     std::span<const std::uint8_t> data, std::string* error);
  void push_entry(JournalEntry entry);

  std::string dir_;
  std::string fingerprint_;
  std::vector<JournalEntry> entries_;
  bool dropped_torn_line_ = false;
  const fault::FaultInjector* faults_ = nullptr;
  obsv::MetricBlock* fault_metrics_ = nullptr;
  bool storage_dead_ = false;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t files_written_ = 0;  // segment_corrupt's file= index
};

}  // namespace originscan::core
