// Section 3's missing-host taxonomy. For each (origin, host):
//
//   accessible  — origin completed L7 in every trial the host was present;
//   transient   — missed in some present trials, seen in others;
//   long-term   — missed in every present trial (>= 2 trials present);
//   unknown     — host present in only one trial and missed there.
//
// The same split is applied at /24 granularity: a /24 with at least two
// ground-truth hosts whose classifications agree is treated as a network
// unit, separating "networks that block" from "hosts that flap".
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/access_matrix.h"

namespace originscan::core {

enum class HostClass : std::uint8_t {
  kAccessible = 0,
  kTransient,
  kLongTerm,
  kUnknown,
  kNotInGroundTruth,  // host never present with >= 1 trial (cannot happen
                      // for matrix hosts, but keeps switches exhaustive)
};

class Classification {
 public:
  // Classifies every (origin, host) pair of the matrix.
  explicit Classification(const AccessMatrix& matrix);

  [[nodiscard]] const AccessMatrix& matrix() const { return *matrix_; }

  [[nodiscard]] HostClass host_class(std::size_t origin, HostIdx h) const {
    return static_cast<HostClass>(classes_[origin][h]);
  }

  // Whether this host, for this origin, is missing in the given trial
  // (present in ground truth but not accessible). A lost (trial, origin)
  // cell is never "missing" — the origin did not get to scan it.
  [[nodiscard]] bool missing(int trial, std::size_t origin, HostIdx h) const {
    return matrix_->has_cell(trial, origin) && matrix_->present(trial, h) &&
           !matrix_->accessible(trial, origin, h);
  }

  // ---- Aggregates ----------------------------------------------------

  struct Breakdown {
    std::uint64_t transient_host = 0;   // transiently missing, host-level
    std::uint64_t transient_net = 0;    // ... as part of a /24-level unit
    std::uint64_t longterm_host = 0;
    std::uint64_t longterm_net = 0;
    std::uint64_t unknown = 0;

    [[nodiscard]] std::uint64_t total() const {
      return transient_host + transient_net + longterm_host + longterm_net +
             unknown;
    }
  };

  // Counts of missing hosts for (origin, trial), split by class and by
  // host-vs-network granularity (Fig 2).
  [[nodiscard]] Breakdown breakdown(std::size_t origin, int trial) const;

  // Union across trials: number of distinct hosts long-term (resp.
  // transiently) inaccessible from the origin.
  [[nodiscard]] std::uint64_t longterm_count(std::size_t origin) const;
  [[nodiscard]] std::uint64_t transient_count(std::size_t origin) const;

  // Whether a host's /24 behaves as a consistent network unit for this
  // origin (>= 2 ground-truth hosts in the /24, all with the same class).
  [[nodiscard]] bool network_level(std::size_t origin, HostIdx h) const;

 private:
  void classify_networks();

  const AccessMatrix* matrix_;
  // classes_[origin][host] — HostClass as uint8.
  std::vector<std::vector<std::uint8_t>> classes_;
  // network_level_[origin][host] — part of a consistent /24.
  std::vector<std::vector<bool>> network_level_;
};

}  // namespace originscan::core
