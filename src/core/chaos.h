// Chaos soak harness: runs seed-derived randomized fault episodes
// (faultinject/chaos.h) against a small experiment grid and checks the
// recovery invariant after every one — an episode must end either
// byte-identical to the serial reference run or as an honestly labeled
// partial grid, never as silent divergence.
//
// Per round the driver:
//   1. draws an episode (fault plan + jobs + workers) from (seed, round);
//   2. runs a serial reference under the plan minus its kill-class
//      clauses (cell_crash, worker faults, enospc, segment_corrupt,
//      frame_garble) — fault decisions are seed-pure, so this is the
//      exact expected output of any execution that survives the kills;
//   3. runs the full plan, journaled, at the drawn jobs/workers; if the
//      plan kills the run (cell_crash / worker faults), resumes from the
//      journal with the kill-class clauses stripped;
//   4. checks the oracle: present cells byte-identical to the reference,
//      present cells a prefix of each origin's chain, absent cells
//      exactly the report's labeled losses;
//   5. re-opens the journal directory in a fresh experiment and runs to
//      completion — the salvage pass: quarantined cells (segment_corrupt
//      damage) and unpersisted cells re-run, and the final grid must
//      reproduce the reference byte for byte.
//
// Every quarantine / storage-death event is visible in the metrics
// registry (journal.quarantined_*, journal.writes_failed, chaos.*).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obsv/metrics.h"

namespace originscan::core {

struct ChaosOptions {
  int rounds = 25;
  std::uint64_t seed = 0x05CA9;
  // Universe exponent for the soak grid's world (kept small: the value
  // of a soak is episode count, not universe size).
  int scale = 12;
  // Scratch root for per-round journal directories; empty = the system
  // temp directory. Each round's directory is removed up front and left
  // behind afterwards for post-mortem only when the round violated.
  std::string work_dir;
  // Optional sinks: `metrics` receives the chaos.* counters plus every
  // journal/fault counter the episodes generate; `progress` gets one
  // line per round.
  obsv::MetricsRegistry* metrics = nullptr;
  std::function<void(std::string_view)> progress;
};

struct ChaosReport {
  int rounds = 0;
  int resumes = 0;         // episodes killed and resumed from the journal
  int partial_grids = 0;   // episodes that ended as labeled partial grids
  std::uint64_t quarantined_cells = 0;      // corrupt cells demoted
  std::uint64_t quarantined_followers = 0;  // chain-mates demoted with them
  // One message per violated invariant, prefixed "round N:". Empty =
  // the soak passed.
  std::vector<std::string> violations;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

ChaosReport run_chaos_soak(const ChaosOptions& options);

}  // namespace originscan::core
