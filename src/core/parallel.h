// Deterministic parallel execution primitives for the scan executor: a
// small fixed-size thread pool plus a run-to-completion helper.
//
// Parallelism in this codebase never changes *what* is computed, only
// *when*: callers partition work into tasks whose outputs land in
// disjoint slots, and any cross-task state is either content-addressed
// (seeded caches) or explicitly ordered by the task structure (the
// per-origin scan chains, the order-sensitive IDS lane). See the
// "Parallel execution & determinism contract" section of DESIGN.md.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace originscan::core {

// A fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks start in submission order but complete in any
  // order. Must not be called concurrently with the destructor.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void wait();

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals wait(): queue drained
  std::size_t in_flight_ = 0;        // tasks currently executing
  bool stop_ = false;
};

// Number of useful worker threads on this machine (>= 1).
int hardware_jobs();

// Runs `tasks` to completion on up to `jobs` worker threads. With
// jobs <= 1 (or fewer than two tasks) everything runs inline on the
// calling thread, in order — the serial paths pay no threading cost.
// If tasks throw, the exception of the lowest-indexed failing task is
// rethrown after all tasks have finished, so error reporting does not
// depend on scheduling.
void run_parallel(int jobs, std::vector<std::function<void()>> tasks);

}  // namespace originscan::core
