#include "core/access_matrix.h"

#include <algorithm>
#include <cassert>

namespace originscan::core {

AccessMatrix AccessMatrix::build(const Experiment& experiment,
                                 proto::Protocol protocol) {
  assert(experiment.has_run());
  AccessMatrix m;
  m.protocol_ = protocol;
  m.trials_ = experiment.config().trials;
  for (const auto& origin : experiment.world().origins) {
    m.origin_codes_.push_back(origin.code);
  }
  const std::size_t origin_count = m.origin_codes_.size();

  m.cell_present_.resize(static_cast<std::size_t>(m.trials_) * origin_count);
  for (int t = 0; t < m.trials_; ++t) {
    for (std::size_t o = 0; o < origin_count; ++o) {
      m.cell_present_[m.cell(t, o)] =
          experiment.has_cell(t, protocol, static_cast<sim::OriginId>(o));
    }
  }

  // Pass 1: the ground-truth host set — every address that completed an
  // L7 handshake with at least one origin in at least one trial. Lost
  // cells contribute nothing (their result slots are empty), which is
  // exactly the partial-grid semantics: ground truth shrinks to what the
  // surviving scans observed.
  for (int t = 0; t < m.trials_; ++t) {
    for (std::size_t o = 0; o < origin_count; ++o) {
      if (!m.cell_present_[m.cell(t, o)]) continue;
      const auto& result =
          experiment.result(t, protocol, static_cast<sim::OriginId>(o));
      for (const auto& record : result.records) {
        if (record.l7_completed()) m.hosts_.push_back(record.addr);
      }
    }
  }
  std::sort(m.hosts_.begin(), m.hosts_.end());
  m.hosts_.erase(std::unique(m.hosts_.begin(), m.hosts_.end()),
                 m.hosts_.end());

  const std::size_t n = m.hosts_.size();
  m.host_as_.resize(n, sim::kNoAs);
  m.host_country_.resize(n);
  const auto& topology = experiment.world().topology;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto as = topology.as_of(m.hosts_[i])) m.host_as_[i] = *as;
    m.host_country_[i] = topology.country_of(m.hosts_[i]);
  }

  m.present_.assign(m.trials_, std::vector<bool>(n, false));
  m.probe_hour_.assign(m.trials_, std::vector<std::uint8_t>(n, 0));
  const std::size_t cells = static_cast<std::size_t>(m.trials_) * origin_count;
  m.accessible_.assign(cells, std::vector<bool>(n, false));
  m.synack_mask_.assign(cells, std::vector<std::uint8_t>(n, 0));
  m.outcome_.assign(cells, std::vector<std::uint8_t>(n, 0));
  m.explicit_close_.assign(cells, std::vector<bool>(n, false));

  // Pass 2: fill the per-cell detail by walking each scan's (sorted)
  // records against the (sorted) host list.
  for (int t = 0; t < m.trials_; ++t) {
    for (std::size_t o = 0; o < origin_count; ++o) {
      if (!m.cell_present_[m.cell(t, o)]) continue;
      const auto& result =
          experiment.result(t, protocol, static_cast<sim::OriginId>(o));
      const std::size_t cell_index = m.cell(t, o);
      std::size_t host_cursor = 0;
      for (const auto& record : result.records) {
        while (host_cursor < n && m.hosts_[host_cursor] < record.addr) {
          ++host_cursor;
        }
        if (host_cursor >= n || m.hosts_[host_cursor] != record.addr) {
          continue;  // a responder that never completed L7 anywhere
        }
        const auto h = static_cast<HostIdx>(host_cursor);
        m.synack_mask_[cell_index][h] = record.synack_mask;
        m.outcome_[cell_index][h] = static_cast<std::uint8_t>(record.l7);
        m.explicit_close_[cell_index][h] = record.explicit_close;
        m.probe_hour_[t][h] = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(record.probe_hour(), 255));
        if (record.l7_completed()) {
          m.accessible_[cell_index][h] = true;
          m.present_[t][h] = true;
        }
      }
    }
  }
  return m;
}

std::size_t AccessMatrix::present_count(int trial) const {
  std::size_t count = 0;
  for (bool p : present_[trial]) count += p ? 1 : 0;
  return count;
}

std::vector<std::pair<int, std::string>> AccessMatrix::lost_cells() const {
  std::vector<std::pair<int, std::string>> lost;
  if (cell_present_.empty()) return lost;
  for (int t = 0; t < trials_; ++t) {
    for (std::size_t o = 0; o < origin_codes_.size(); ++o) {
      if (!cell_present_[cell(t, o)]) {
        lost.emplace_back(t, origin_codes_[o]);
      }
    }
  }
  return lost;
}

}  // namespace originscan::core
