// Experiment orchestration: the paper's nine synchronized scans —
// `trials` x `protocols` x origin roster — run against one simulated
// Internet, with cross-trial policy state (tripped IDSes) carried between
// trials exactly as it would persist in the real world.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "proto/protocol.h"
#include "scanner/orchestrator.h"
#include "sim/internet.h"
#include "sim/scenario.h"

namespace originscan::core {

struct ExperimentConfig {
  sim::ScenarioConfig scenario = sim::ScenarioConfig::paper_default();

  enum class Roster {
    kPaper,             // AU BR DE JP US1 US64 CEN
    kPaperWithCarinet,  // + CAR (one-trial origin, Section 2)
    kColocated,         // AU DE JP US1 CEN + HE NTT TELIA (follow-up)
  };
  Roster roster = Roster::kPaper;

  int trials = 3;
  std::vector<proto::Protocol> protocols = {proto::Protocol::kHttp,
                                            proto::Protocol::kHttps,
                                            proto::Protocol::kSsh};
  int probes = 2;
  net::VirtualTime probe_interval;  // delay between probes to one target
  int l7_retries = 0;
  // Ablation: strip the burst structure from path loss (see
  // sim::World::uniform_random_loss).
  bool uniform_random_loss = false;
  scan::Blocklist blocklist;  // synchronized across all origins
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  // Worker threads for Experiment::run. With jobs > 1 the (trial,
  // protocol, origin) cells fan out as one serial chain per origin —
  // origins own disjoint source IPs, so their IDS trajectories cannot
  // interact — and the results are bit-identical to jobs == 1 (see
  // "Parallel execution" in DESIGN.md).
  int jobs = 1;
  // Extend the L7 retry ladder to banner-level failures (see
  // scan::RetryPolicy::retry_banner_failures).
  bool retry_banner_failures = false;
  // Deterministic fault injection, attached to every per-trial Internet
  // and threaded into the scan engines. Null = no faults. The injector
  // must outlive the experiment run.
  const fault::FaultInjector* faults = nullptr;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs the experiment against a caller-supplied world instead of the
  // paper scenario (custom topologies, tests). The config's scenario
  // settings are ignored except for the seed, which must match the
  // world's.
  Experiment(ExperimentConfig config, sim::World world);

  // Runs every scan. `progress` (optional) receives one line per scan.
  void run(const std::function<void(std::string_view)>& progress = {});

  // Adopts previously saved results (core/store.h) instead of scanning.
  // The results must cover exactly this experiment's trials x protocols
  // x origins grid (matched by origin code, protocol, and trial);
  // returns false and leaves the experiment unrun otherwise.
  bool adopt_results(std::vector<scan::ScanResult> results);

  // Flat view of all results, e.g. for core::save_results.
  [[nodiscard]] const std::vector<scan::ScanResult>& all_results() const {
    return results_;
  }

  [[nodiscard]] const sim::World& world() const { return world_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] std::size_t origin_count() const {
    return world_.origins.size();
  }
  [[nodiscard]] sim::OriginId origin_id(std::string_view code) const {
    return world_.origin_id(code);
  }

  [[nodiscard]] const scan::ScanResult& result(int trial,
                                               proto::Protocol protocol,
                                               sim::OriginId origin) const;
  [[nodiscard]] bool has_run() const { return !results_.empty(); }

  // Ad-hoc extra scans against this experiment's world (used by the
  // retry experiment of Section 6 and the fresh-IP confirmation of
  // Section 7). `trial` selects host liveness; persistent IDS state is
  // shared with the main runs.
  scan::ScanResult run_extra_scan(int trial, proto::Protocol protocol,
                                  sim::OriginId origin,
                                  const scan::ScanOptions& options);

 private:
  [[nodiscard]] std::size_t index(int trial, std::size_t protocol_index,
                                  sim::OriginId origin) const;

  ExperimentConfig config_;
  sim::World world_;
  sim::PersistentState persistent_;
  std::vector<scan::ScanResult> results_;
};

}  // namespace originscan::core
