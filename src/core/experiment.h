// Experiment orchestration: the paper's nine synchronized scans —
// `trials` x `protocols` x origin roster — run against one simulated
// Internet, with cross-trial policy state (tripped IDSes) carried between
// trials exactly as it would persist in the real world.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/journal.h"
#include "core/supervisor.h"
#include "proto/protocol.h"
#include "scanner/orchestrator.h"
#include "sim/internet.h"
#include "sim/scenario.h"

namespace originscan::core {

struct ExperimentConfig {
  sim::ScenarioConfig scenario = sim::ScenarioConfig::paper_default();

  enum class Roster {
    kPaper,             // AU BR DE JP US1 US64 CEN
    kPaperWithCarinet,  // + CAR (one-trial origin, Section 2)
    kColocated,         // AU DE JP US1 CEN + HE NTT TELIA (follow-up)
  };
  Roster roster = Roster::kPaper;

  int trials = 3;
  std::vector<proto::Protocol> protocols = {proto::Protocol::kHttp,
                                            proto::Protocol::kHttps,
                                            proto::Protocol::kSsh};
  int probes = 2;
  net::VirtualTime probe_interval;  // delay between probes to one target
  int l7_retries = 0;
  // Ablation: strip the burst structure from path loss (see
  // sim::World::uniform_random_loss).
  bool uniform_random_loss = false;
  scan::Blocklist blocklist;  // synchronized across all origins
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  // Worker threads for Experiment::run. With jobs > 1 the (trial,
  // protocol, origin) cells fan out as one serial chain per origin —
  // origins own disjoint source IPs, so their IDS trajectories cannot
  // interact — and the results are bit-identical to jobs == 1 (see
  // "Parallel execution" in DESIGN.md).
  int jobs = 1;
  // Extend the L7 retry ladder to banner-level failures (see
  // scan::RetryPolicy::retry_banner_failures).
  bool retry_banner_failures = false;
  // Deterministic fault injection, attached to every per-trial Internet
  // and threaded into the scan engines. Null = no faults. The injector
  // must outlive the experiment run.
  const fault::FaultInjector* faults = nullptr;
  // Observability sinks (both null by default = disabled at zero cost;
  // see DESIGN.md §9). `metrics` aggregates per-cell deltas: each cell
  // accumulates into a single-writer block (successful attempt's scan
  // counters + supervisor fault taps + journal counters), the block is
  // persisted as the cell's `.metrics` sidecar, then merged here — so a
  // killed-and-resumed run's snapshot is byte-identical to an
  // uninterrupted run's. `trace` receives virtual-clock spans for every
  // executed scan plus journal.replay / supervisor.retry instants. Both
  // are deliberately excluded from config_fingerprint: observing a run
  // must not change its identity.
  obsv::MetricsRegistry* metrics = nullptr;
  obsv::TraceRecorder* trace = nullptr;
};

// Outcome of one (possibly resumed, possibly degraded) experiment run.
struct RunReport {
  enum class Status {
    kComplete,  // every cell present
    kPartial,   // some cells lost (retry budget exhausted); grid usable
    kKilled,    // simulated process death; results cleared, resume from
                // the journal with a fresh Experiment
  };
  Status status = Status::kComplete;
  std::size_t cells_total = 0;
  std::size_t cells_adopted = 0;  // taken from the journal, not re-run
  std::size_t cells_run = 0;
  std::size_t cells_lost = 0;
  std::uint64_t retries = 0;  // attempts beyond the first, summed
  std::vector<CellKey> lost;  // lost cells, grid order
  std::string kill_reason;    // kKilled only

  [[nodiscard]] bool complete() const { return status == Status::kComplete; }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs the experiment against a caller-supplied world instead of the
  // paper scenario (custom topologies, tests). The config's scenario
  // settings are ignored except for the seed, which must match the
  // world's.
  Experiment(ExperimentConfig config, sim::World world);

  // Runs every scan. `progress` (optional) receives one line per scan.
  // Throws std::runtime_error if a cell_crash fault kills the run (use
  // run_journaled with a journal to make that recoverable).
  void run(const std::function<void(std::string_view)>& progress = {});

  // Crash-safe run: journaled cells are adopted (skipping their scans,
  // restoring the persisted IDS snapshots), missing cells run under the
  // CellSupervisor and are journaled as they complete. The determinism
  // contract extends across the kill: a run killed after any cell and
  // resumed — at any jobs value — produces results byte-identical to an
  // uninterrupted run. `journal` may be null (plain supervised run, no
  // persistence). A journaled cell whose segment or sidecar fails
  // verification is quarantined — demoted to absent along with every
  // later cell of its origin's chain (counted in journal.quarantined_*)
  // and re-executed — rather than aborting the resume. A journal write
  // failure (ENOSPC, I/O error) fails the cell, not the run: the cell
  // is recorded lost and, once the journal reports storage_dead,
  // remaining cells fail fast instead of scanning into a dead disk.
  // Throws std::runtime_error only on structural mismatch: unknown
  // origins, entries outside the grid, or a journal that is not a
  // per-origin chain prefix of this grid.
  RunReport run_journaled(
      ExperimentJournal* journal, const SupervisorPolicy& policy = {},
      const std::function<void(std::string_view)>& progress = {});

  // Hex fingerprint of everything that determines this experiment's
  // output (seed, universe, roster, grid shape, scan parameters —
  // deliberately not jobs or faults). Journals are bound to it so a
  // resume under a changed config fails loudly.
  [[nodiscard]] std::string config_fingerprint() const;

  // Adopts previously saved results (core/store.h) instead of scanning.
  // The results must cover exactly this experiment's trials x protocols
  // x origins grid (matched by origin code, protocol, and trial);
  // returns false and leaves the experiment unrun otherwise. The
  // diagnostic overload explains the first mismatch (expected/got cell
  // listing) in `error`.
  bool adopt_results(std::vector<scan::ScanResult> results);
  bool adopt_results(std::vector<scan::ScanResult> results,
                     std::string* error);

  // Flat view of all results, e.g. for core::save_results.
  [[nodiscard]] const std::vector<scan::ScanResult>& all_results() const {
    return results_;
  }

  [[nodiscard]] const sim::World& world() const { return world_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] std::size_t origin_count() const {
    return world_.origins.size();
  }
  [[nodiscard]] sim::OriginId origin_id(std::string_view code) const {
    return world_.origin_id(code);
  }

  [[nodiscard]] const scan::ScanResult& result(int trial,
                                               proto::Protocol protocol,
                                               sim::OriginId origin) const;
  [[nodiscard]] bool has_run() const { return !results_.empty(); }

  // Partial-grid support: whether this cell's scan actually completed
  // (false for cells lost to an exhausted retry budget — their result
  // slots are empty and analysis must exclude them).
  [[nodiscard]] bool has_cell(int trial, proto::Protocol protocol,
                              sim::OriginId origin) const;
  [[nodiscard]] std::vector<CellKey> lost_cells() const;

  // Ad-hoc extra scans against this experiment's world (used by the
  // retry experiment of Section 6 and the fresh-IP confirmation of
  // Section 7). `trial` selects host liveness; persistent IDS state is
  // shared with the main runs.
  scan::ScanResult run_extra_scan(int trial, proto::Protocol protocol,
                                  sim::OriginId origin,
                                  const scan::ScanOptions& options);

  // Grid geometry, public for the distributed runtime (core/dist.h) and
  // tests. Cells are numbered in serial execution order:
  // (trial * protocols + protocol_index) * origins + origin. An origin's
  // chain therefore occupies slots {c * origins + origin} for chain
  // positions c in [0, trials * protocols).
  [[nodiscard]] std::size_t cell_count() const {
    return static_cast<std::size_t>(config_.trials) *
           config_.protocols.size() * world_.origins.size();
  }
  [[nodiscard]] CellKey cell_key_at(std::size_t slot) const;

 private:
  friend class CellEngine;
  friend class GridMaster;

  [[nodiscard]] std::size_t index(int trial, std::size_t protocol_index,
                                  sim::OriginId origin) const;

  // Journal adoption, shared by run_journaled and the distributed
  // master. Validates every entry against the grid, adopts the
  // per-origin chain prefixes into results_/lost_ (merging persisted
  // metric deltas, emitting journal.replay trace instants), and returns
  // each origin's latest IDS snapshot WITHOUT restoring it — only a
  // process that will actually scan needs live IDS state. run_journaled
  // restores once its internets exist; the master never does (workers
  // restore from the snapshots its GRANTs carry). results_/lost_ must be
  // sized to cell_count() before the call.
  struct AdoptionPlan {
    std::vector<bool> adopted;            // per slot
    std::vector<IdsSnapshot> latest;      // per origin
    std::vector<bool> have_snapshot;      // per origin
    std::vector<CellKey> lost_keys;       // journaled-lost, chain order
    std::size_t adopted_count = 0;
  };
  AdoptionPlan adopt_journal(ExperimentJournal& journal);

  ExperimentConfig config_;
  sim::World world_;
  sim::PersistentState persistent_;
  std::vector<scan::ScanResult> results_;
  // Parallel to results_ once run: true for cells lost to the retry
  // budget. Empty (= all present) for adopted result sets.
  std::vector<bool> lost_;
};

// The per-cell execution engine: the supervised scan machinery shared by
// Experiment::run_journaled (in-process chains) and core::run_worker
// (distributed worker processes). Owns the per-trial Internets — the
// PolicyEngine constructors pre-insert the persistent IDS map entries
// serially at construction, which must precede any restore_origin call
// (restore writes into those entries). One engine per process; run_cell
// is thread-safe across distinct origins' chains, serial within one.
class CellEngine {
 public:
  explicit CellEngine(Experiment& experiment);

  // Runs one cell under `supervisor`: prewarm, supervised scan with
  // per-attempt IDS rollback, and — when `cell_block` is non-null — the
  // cell's metric attribution (the successful attempt's counters, the
  // supervisor's fault taps, retry/backoff accounting). The caller owns
  // everything around the outcome: journal recording, report bookkeeping,
  // progress lines.
  [[nodiscard]] CellOutcome run_cell(std::size_t slot,
                                     CellSupervisor& supervisor,
                                     obsv::MetricBlock* cell_block);

  // The origin's current IDS slice (for journaling a completed cell or
  // streaming it to the distributed master).
  [[nodiscard]] IdsSnapshot capture_origin(sim::OriginId origin) const;
  // Overwrites the origin's IDS slice with `snapshot` (an empty snapshot
  // clears it). How a worker adopts the chain state a GRANT carries.
  void restore_origin(sim::OriginId origin, const IdsSnapshot& snapshot);

  // Thread count for the scans themselves (scan::ScanOptions::jobs,
  // bit-identical for any value). run_journaled keeps this at 1 — its
  // parallelism is across origin chains; distributed workers run chains
  // serially and parallelize inside the scan instead.
  void set_scan_jobs(int jobs) { scan_jobs_ = std::max(1, jobs); }

 private:
  Experiment& experiment_;
  std::vector<std::unique_ptr<sim::Internet>> internets_;
  int scan_jobs_ = 1;
};

}  // namespace originscan::core
