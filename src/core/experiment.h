// Experiment orchestration: the paper's nine synchronized scans —
// `trials` x `protocols` x origin roster — run against one simulated
// Internet, with cross-trial policy state (tripped IDSes) carried between
// trials exactly as it would persist in the real world.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/journal.h"
#include "core/supervisor.h"
#include "proto/protocol.h"
#include "scanner/orchestrator.h"
#include "sim/internet.h"
#include "sim/scenario.h"

namespace originscan::core {

struct ExperimentConfig {
  sim::ScenarioConfig scenario = sim::ScenarioConfig::paper_default();

  enum class Roster {
    kPaper,             // AU BR DE JP US1 US64 CEN
    kPaperWithCarinet,  // + CAR (one-trial origin, Section 2)
    kColocated,         // AU DE JP US1 CEN + HE NTT TELIA (follow-up)
  };
  Roster roster = Roster::kPaper;

  int trials = 3;
  std::vector<proto::Protocol> protocols = {proto::Protocol::kHttp,
                                            proto::Protocol::kHttps,
                                            proto::Protocol::kSsh};
  int probes = 2;
  net::VirtualTime probe_interval;  // delay between probes to one target
  int l7_retries = 0;
  // Ablation: strip the burst structure from path loss (see
  // sim::World::uniform_random_loss).
  bool uniform_random_loss = false;
  scan::Blocklist blocklist;  // synchronized across all origins
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  // Worker threads for Experiment::run. With jobs > 1 the (trial,
  // protocol, origin) cells fan out as one serial chain per origin —
  // origins own disjoint source IPs, so their IDS trajectories cannot
  // interact — and the results are bit-identical to jobs == 1 (see
  // "Parallel execution" in DESIGN.md).
  int jobs = 1;
  // Extend the L7 retry ladder to banner-level failures (see
  // scan::RetryPolicy::retry_banner_failures).
  bool retry_banner_failures = false;
  // Deterministic fault injection, attached to every per-trial Internet
  // and threaded into the scan engines. Null = no faults. The injector
  // must outlive the experiment run.
  const fault::FaultInjector* faults = nullptr;
  // Observability sinks (both null by default = disabled at zero cost;
  // see DESIGN.md §9). `metrics` aggregates per-cell deltas: each cell
  // accumulates into a single-writer block (successful attempt's scan
  // counters + supervisor fault taps + journal counters), the block is
  // persisted as the cell's `.metrics` sidecar, then merged here — so a
  // killed-and-resumed run's snapshot is byte-identical to an
  // uninterrupted run's. `trace` receives virtual-clock spans for every
  // executed scan plus journal.replay / supervisor.retry instants. Both
  // are deliberately excluded from config_fingerprint: observing a run
  // must not change its identity.
  obsv::MetricsRegistry* metrics = nullptr;
  obsv::TraceRecorder* trace = nullptr;
};

// Outcome of one (possibly resumed, possibly degraded) experiment run.
struct RunReport {
  enum class Status {
    kComplete,  // every cell present
    kPartial,   // some cells lost (retry budget exhausted); grid usable
    kKilled,    // simulated process death; results cleared, resume from
                // the journal with a fresh Experiment
  };
  Status status = Status::kComplete;
  std::size_t cells_total = 0;
  std::size_t cells_adopted = 0;  // taken from the journal, not re-run
  std::size_t cells_run = 0;
  std::size_t cells_lost = 0;
  std::uint64_t retries = 0;  // attempts beyond the first, summed
  std::vector<CellKey> lost;  // lost cells, grid order
  std::string kill_reason;    // kKilled only

  [[nodiscard]] bool complete() const { return status == Status::kComplete; }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs the experiment against a caller-supplied world instead of the
  // paper scenario (custom topologies, tests). The config's scenario
  // settings are ignored except for the seed, which must match the
  // world's.
  Experiment(ExperimentConfig config, sim::World world);

  // Runs every scan. `progress` (optional) receives one line per scan.
  // Throws std::runtime_error if a cell_crash fault kills the run (use
  // run_journaled with a journal to make that recoverable).
  void run(const std::function<void(std::string_view)>& progress = {});

  // Crash-safe run: journaled cells are adopted (skipping their scans,
  // restoring the persisted IDS snapshots), missing cells run under the
  // CellSupervisor and are journaled as they complete. The determinism
  // contract extends across the kill: a run killed after any cell and
  // resumed — at any jobs value — produces results byte-identical to an
  // uninterrupted run. `journal` may be null (plain supervised run, no
  // persistence). Throws std::runtime_error on journal corruption or a
  // journal that is not a per-origin chain prefix of this grid.
  RunReport run_journaled(
      ExperimentJournal* journal, const SupervisorPolicy& policy = {},
      const std::function<void(std::string_view)>& progress = {});

  // Hex fingerprint of everything that determines this experiment's
  // output (seed, universe, roster, grid shape, scan parameters —
  // deliberately not jobs or faults). Journals are bound to it so a
  // resume under a changed config fails loudly.
  [[nodiscard]] std::string config_fingerprint() const;

  // Adopts previously saved results (core/store.h) instead of scanning.
  // The results must cover exactly this experiment's trials x protocols
  // x origins grid (matched by origin code, protocol, and trial);
  // returns false and leaves the experiment unrun otherwise. The
  // diagnostic overload explains the first mismatch (expected/got cell
  // listing) in `error`.
  bool adopt_results(std::vector<scan::ScanResult> results);
  bool adopt_results(std::vector<scan::ScanResult> results,
                     std::string* error);

  // Flat view of all results, e.g. for core::save_results.
  [[nodiscard]] const std::vector<scan::ScanResult>& all_results() const {
    return results_;
  }

  [[nodiscard]] const sim::World& world() const { return world_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] std::size_t origin_count() const {
    return world_.origins.size();
  }
  [[nodiscard]] sim::OriginId origin_id(std::string_view code) const {
    return world_.origin_id(code);
  }

  [[nodiscard]] const scan::ScanResult& result(int trial,
                                               proto::Protocol protocol,
                                               sim::OriginId origin) const;
  [[nodiscard]] bool has_run() const { return !results_.empty(); }

  // Partial-grid support: whether this cell's scan actually completed
  // (false for cells lost to an exhausted retry budget — their result
  // slots are empty and analysis must exclude them).
  [[nodiscard]] bool has_cell(int trial, proto::Protocol protocol,
                              sim::OriginId origin) const;
  [[nodiscard]] std::vector<CellKey> lost_cells() const;

  // Ad-hoc extra scans against this experiment's world (used by the
  // retry experiment of Section 6 and the fresh-IP confirmation of
  // Section 7). `trial` selects host liveness; persistent IDS state is
  // shared with the main runs.
  scan::ScanResult run_extra_scan(int trial, proto::Protocol protocol,
                                  sim::OriginId origin,
                                  const scan::ScanOptions& options);

 private:
  [[nodiscard]] std::size_t index(int trial, std::size_t protocol_index,
                                  sim::OriginId origin) const;

  ExperimentConfig config_;
  sim::World world_;
  sim::PersistentState persistent_;
  std::vector<scan::ScanResult> results_;
  // Parallel to results_ once run: true for cells lost to the retry
  // budget. Empty (= all present) for adopted result sets.
  std::vector<bool> lost_;
};

}  // namespace originscan::core
