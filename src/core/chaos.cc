#include "core/chaos.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "core/dist.h"
#include "core/experiment.h"
#include "core/goldens.h"
#include "core/journal.h"
#include "faultinject/chaos.h"
#include "faultinject/faultinject.h"

namespace originscan::core {
namespace {

namespace fs = std::filesystem;

// The soak grid: 2 trials x 1 protocol x the paper roster (7 origins).
// Small enough that four grid runs per round stay cheap, large enough
// that distributed episodes exercise real chain scheduling.
ExperimentConfig soak_config(const ChaosOptions& options,
                             const fault::FaultPlan& full_plan) {
  ExperimentConfig config;
  config.scenario.universe_size = 1u << options.scale;
  config.scenario.seed = options.seed;
  config.trials = 2;
  config.protocols = {proto::Protocol::kHttp};
  config.probes = 2;
  // Sized to the FULL plan for every run of the round — reference,
  // episode, resume, salvage. The retry budget is a no-op for unfaulted
  // hosts, and keeping it constant keeps the config fingerprint (and so
  // the journal binding) constant across the round's runs.
  config.l7_retries = full_plan.min_l7_retries();
  config.retry_banner_failures = full_plan.needs_banner_retry();
  return config;
}

// The reference/resume/salvage plan: the full plan minus the clauses
// that kill runs or decay storage. This is both what the oracle's serial
// reference runs under and what resume runs under — deliberately the
// same plan. Scan-layer and L7 fault decisions are pure functions of
// (seed, slot/host), so a serial run under these clauses is the exact
// expected output of any execution that survives the kill-class faults:
// recoverable faults consume retries and shift handshake times (which
// perturbs the lossy world's draws — see core/goldens.h), so they must
// be IN the reference, while kills, worker deaths, storage exhaustion,
// and corruption only interrupt persistence or transport and must leave
// the scan bytes of every surviving cell untouched.
fault::FaultPlan without_kill_class(const fault::FaultPlan& plan) {
  std::string spec;
  for (const fault::FaultClause& clause : plan.clauses()) {
    switch (clause.point) {
      case fault::Point::kCellCrash:
      case fault::Point::kWorkerKill:
      case fault::Point::kWorkerStall:
      case fault::Point::kEnospc:
      case fault::Point::kSegmentCorrupt:
      case fault::Point::kFrameGarble:
        break;
      default:
        if (!spec.empty()) spec += ';';
        spec += clause.to_string();
        break;
    }
  }
  if (spec.empty()) return {};
  return *fault::FaultPlan::parse(spec);
}

struct GridView {
  std::vector<bool> present;
  std::vector<std::string> sha;  // present slots only
};

GridView view_of(const Experiment& experiment) {
  GridView view;
  const std::size_t total = experiment.cell_count();
  view.present.assign(total, false);
  view.sha.resize(total);
  for (std::size_t slot = 0; slot < total; ++slot) {
    const CellKey key = experiment.cell_key_at(slot);
    const sim::OriginId origin = experiment.origin_id(key.origin_code);
    if (!experiment.has_cell(key.trial, key.protocol, origin)) continue;
    view.present[slot] = true;
    view.sha[slot] =
        digest_of(experiment.result(key.trial, key.protocol, origin))
            .record_sha256;
  }
  return view;
}

std::string cell_name(const CellKey& key) {
  return key.origin_code + "/" + std::string(proto::name_of(key.protocol)) +
         "/t" + std::to_string(key.trial);
}

}  // namespace

ChaosReport run_chaos_soak(const ChaosOptions& options) {
  ChaosReport report;
  const fs::path root = options.work_dir.empty()
                            ? fs::temp_directory_path() / "osn-chaos"
                            : fs::path(options.work_dir);
  fs::create_directories(root);

  for (int round = 0; round < options.rounds; ++round) {
    ++report.rounds;
    if (options.metrics != nullptr) {
      options.metrics->add(obsv::Counter::kChaosEpisodes);
    }
    const std::size_t violations_before = report.violations.size();
    const auto violate = [&](const std::string& what) {
      report.violations.push_back("round " + std::to_string(round) + ": " +
                                  what);
      if (options.metrics != nullptr) {
        options.metrics->add(obsv::Counter::kChaosViolations);
      }
    };

    // ---- Serial reference: the oracle's expected bytes. -------------
    // (Also the source of the round's grid geometry — cell keys, origin
    // count — so the oracle below never rebuilds a world per lookup.)
    fault::FaultPlan full_plan;
    {
      // Grid geometry is plan-independent; the generator only needs the
      // cell count (2 trials x 1 protocol x 7 paper origins) and the
      // universe to scale its windows.
      const fault::ChaosEpisode drawn = fault::make_chaos_episode(
          options.seed, static_cast<std::uint64_t>(round), 2 * 7,
          1u << options.scale);
      if (!drawn.plan_spec.empty()) {
        std::string parse_error;
        auto parsed = fault::FaultPlan::parse(drawn.plan_spec, &parse_error);
        if (!parsed.has_value()) {
          // The generator emitted a spec its own parser rejects — a bug
          // in the harness itself, reported like any other violation.
          violate("generated plan failed to parse (" + parse_error +
                  "): " + drawn.plan_spec);
          continue;
        }
        full_plan = std::move(*parsed);
      }
    }
    const fault::ChaosEpisode episode = fault::make_chaos_episode(
        options.seed, static_cast<std::uint64_t>(round), 2 * 7,
        1u << options.scale);
    const fault::FaultInjector full_injector(full_plan, options.seed);
    const fault::FaultPlan salvage_plan = without_kill_class(full_plan);
    const fault::FaultInjector salvage_injector(salvage_plan, options.seed);

    const ExperimentConfig base = soak_config(options, full_plan);
    GridView reference;
    std::vector<CellKey> keys;
    std::size_t origin_count = 0;
    {
      ExperimentConfig config = base;
      config.faults = salvage_plan.empty() ? nullptr : &salvage_injector;
      Experiment experiment(config);
      const RunReport ref_report = experiment.run_journaled(nullptr);
      if (!ref_report.complete()) {
        violate("reference run not complete (plan \"" +
                salvage_plan.to_string() + "\")");
        continue;
      }
      reference = view_of(experiment);
      origin_count = experiment.origin_count();
      keys.reserve(experiment.cell_count());
      for (std::size_t slot = 0; slot < experiment.cell_count(); ++slot) {
        keys.push_back(experiment.cell_key_at(slot));
      }
    }
    const std::size_t total = keys.size();

    const fs::path dir = root / ("round-" + std::to_string(round));
    fs::remove_all(dir);

    // Per-round registry: run_journaled / the master count quarantine
    // and write-failure events into it; merged into the caller's sink
    // at the end of the round.
    obsv::MetricsRegistry round_metrics;

    // ---- The episode itself. ----------------------------------------
    bool resumed = false;
    std::optional<GridView> episode_view;
    RunReport episode_report;
    try {
      ExperimentConfig config = base;
      config.faults = full_plan.empty() ? nullptr : &full_injector;
      config.jobs = episode.jobs;
      config.metrics = &round_metrics;
      Experiment experiment(config);
      auto journal = ExperimentJournal::open(dir.string(),
                                             experiment.config_fingerprint());
      if (!journal.has_value()) {
        violate("journal open failed for " + dir.string());
        continue;
      }
      if (episode.workers > 0) {
        DistOptions dist_options;
        dist_options.workers = episode.workers;
        // Soak-friendly deadlines: a stalled worker must cost seconds,
        // not the production ten minutes.
        dist_options.hello_timeout = std::chrono::milliseconds(10'000);
        dist_options.cell_timeout = std::chrono::milliseconds(3'000);
        // The master's own block (grant bookkeeping, journal fault and
        // write-failure counts) feeds the round registry like any cell
        // delta would.
        obsv::MetricBlock master_block;
        episode_report =
            run_distributed(experiment, &*journal, SupervisorPolicy{},
                            dist_options, &master_block, {});
        round_metrics.merge_block(master_block);
      } else {
        episode_report = experiment.run_journaled(&*journal);
      }

      if (episode_report.status == RunReport::Status::kKilled) {
        // Simulated process death: resume from the journal without the
        // kill-class clauses, like an operator restarting on a healthy
        // machine. Quarantine (segment_corrupt damage) happens here, at
        // adoption.
        resumed = true;
        ++report.resumes;
        if (options.metrics != nullptr) {
          options.metrics->add(obsv::Counter::kChaosResumes);
        }
        ExperimentConfig resume_config = base;
        resume_config.faults =
            salvage_plan.empty() ? nullptr : &salvage_injector;
        resume_config.jobs = episode.jobs;
        resume_config.metrics = &round_metrics;
        Experiment resume_experiment(resume_config);
        auto resume_journal = ExperimentJournal::open(
            dir.string(), resume_experiment.config_fingerprint());
        if (!resume_journal.has_value()) {
          violate("journal reopen failed after kill");
          continue;
        }
        episode_report = resume_experiment.run_journaled(&*resume_journal);
        if (episode_report.status == RunReport::Status::kKilled) {
          violate("resume was killed with no kill-class clauses in play");
          continue;
        }
        episode_view = view_of(resume_experiment);
      } else {
        episode_view = view_of(experiment);
      }
    } catch (const std::exception& e) {
      violate(std::string("episode threw: ") + e.what());
      continue;
    }

    if (episode_report.status == RunReport::Status::kPartial) {
      ++report.partial_grids;
      if (options.metrics != nullptr) {
        options.metrics->add(obsv::Counter::kChaosPartialGrids);
      }
    }

    // ---- Oracle: byte-identical or honestly labeled. ----------------
    const GridView& grid = *episode_view;
    // 1. Losses are chain suffixes: the generator bounds every
    //    retry-class fault under its budget, so a cell can only be lost
    //    to storage death — which takes the whole rest of the chain
    //    with it. A live cell after a lost one would have run from the
    //    wrong IDS state.
    for (std::size_t origin = 0; origin < origin_count; ++origin) {
      bool seen_absent = false;
      for (std::size_t slot = origin; slot < total; slot += origin_count) {
        if (!grid.present[slot]) {
          seen_absent = true;
        } else if (seen_absent) {
          violate("cell " + cell_name(keys[slot]) +
                  " is present after a lost cell in its origin chain");
        }
      }
    }
    // 2. Present cells are byte-identical to the reference; absent
    //    cells are exactly the labeled losses.
    std::size_t absent = 0;
    for (std::size_t slot = 0; slot < total; ++slot) {
      const bool lost_labeled =
          std::find(episode_report.lost.begin(), episode_report.lost.end(),
                    keys[slot]) != episode_report.lost.end();
      if (grid.present[slot]) {
        if (lost_labeled) {
          violate("cell " + cell_name(keys[slot]) +
                  " present but labeled lost");
        }
        if (grid.sha[slot] != reference.sha[slot]) {
          violate("cell " + cell_name(keys[slot]) +
                  " diverges from the serial reference");
        }
      } else {
        ++absent;
        if (!lost_labeled) {
          violate("cell " + cell_name(keys[slot]) +
                  " silently missing (not in the lost list)");
        }
      }
    }
    if (absent != episode_report.lost.size()) {
      violate("lost list names " +
              std::to_string(episode_report.lost.size()) + " cells but " +
              std::to_string(absent) + " are absent");
    }

    // ---- Salvage pass: the journal directory must carry the run to a
    // complete, reference-identical grid once storage and processes are
    // healthy again. This is where segment_corrupt damage meets the
    // quarantine machinery and gets re-scanned.
    try {
      ExperimentConfig config = base;
      config.faults = salvage_plan.empty() ? nullptr : &salvage_injector;
      config.metrics = &round_metrics;
      Experiment experiment(config);
      auto journal = ExperimentJournal::open(dir.string(),
                                             experiment.config_fingerprint());
      if (!journal.has_value()) {
        violate("journal reopen failed for the salvage pass");
      } else {
        const RunReport final_report = experiment.run_journaled(&*journal);
        const GridView final_view = view_of(experiment);
        for (std::size_t slot = 0; slot < total; ++slot) {
          const bool lost_labeled =
              std::find(final_report.lost.begin(), final_report.lost.end(),
                        keys[slot]) != final_report.lost.end();
          if (final_view.present[slot]) {
            if (final_view.sha[slot] != reference.sha[slot]) {
              violate("salvaged cell " + cell_name(keys[slot]) +
                      " diverges from the serial reference");
            }
          } else if (!lost_labeled) {
            violate("salvaged grid silently missing cell " +
                    cell_name(keys[slot]));
          }
        }
      }
    } catch (const std::exception& e) {
      violate(std::string("salvage pass threw: ") + e.what());
    }

    const obsv::MetricBlock round_block = round_metrics.snapshot();
    const std::uint64_t quarantined =
        round_block.counter(obsv::Counter::kJournalQuarantinedCells);
    const std::uint64_t followers =
        round_block.counter(obsv::Counter::kJournalQuarantinedFollowers);
    report.quarantined_cells += quarantined;
    report.quarantined_followers += followers;
    if (options.metrics != nullptr) {
      options.metrics->add(obsv::Counter::kChaosQuarantines,
                           quarantined + followers);
      options.metrics->merge_block(round_block);
    }

    const bool clean = report.violations.size() == violations_before;
    if (clean) fs::remove_all(dir);
    if (options.progress) {
      std::string line = "round " + std::to_string(round) +
                         ": jobs=" + std::to_string(episode.jobs) +
                         " workers=" + std::to_string(episode.workers);
      line += episode.plan_spec.empty() ? " plan=<none>"
                                        : " plan=" + episode.plan_spec;
      if (resumed) line += " [resumed]";
      if (episode_report.status == RunReport::Status::kPartial) {
        line += " [partial " + std::to_string(episode_report.lost.size()) +
                " lost]";
      }
      if (quarantined + followers > 0) {
        line += " [quarantined " + std::to_string(quarantined + followers) +
                "]";
      }
      line += clean ? " ok" : " VIOLATION";
      options.progress(line);
    }
  }
  return report;
}

}  // namespace originscan::core
