#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/parallel.h"

namespace originscan::core {
namespace {

std::vector<sim::OriginSpec> roster_for(const ExperimentConfig& config) {
  switch (config.roster) {
    case ExperimentConfig::Roster::kPaper:
      return sim::paper_origins(config.scenario.universe_size);
    case ExperimentConfig::Roster::kPaperWithCarinet:
      return sim::paper_origins_with_carinet(config.scenario.universe_size);
    case ExperimentConfig::Roster::kColocated:
      return sim::colocated_origins(config.scenario.universe_size);
  }
  return sim::paper_origins(config.scenario.universe_size);
}

}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      world_(sim::build_world(config_.scenario, roster_for(config_))) {
  world_.uniform_random_loss = config_.uniform_random_loss;
}

Experiment::Experiment(ExperimentConfig config, sim::World world)
    : config_(std::move(config)), world_(std::move(world)) {
  config_.scenario.seed = world_.seed;
}

std::size_t Experiment::index(int trial, std::size_t protocol_index,
                              sim::OriginId origin) const {
  return (static_cast<std::size_t>(trial) * config_.protocols.size() +
          protocol_index) *
             world_.origins.size() +
         origin;
}

void Experiment::run(const std::function<void(std::string_view)>& progress) {
  assert(results_.empty() && "Experiment::run called twice");
  results_.resize(static_cast<std::size_t>(config_.trials) *
                  config_.protocols.size() * world_.origins.size());

  // One Internet per trial, created up front: the PolicyEngine
  // constructors pre-insert the persistent IDS map entries serially,
  // before any worker thread can touch them.
  std::vector<std::unique_ptr<sim::Internet>> internets;
  internets.reserve(static_cast<std::size_t>(config_.trials));
  for (int trial = 0; trial < config_.trials; ++trial) {
    sim::TrialContext context;
    context.trial = trial;
    context.experiment_seed = config_.scenario.seed;
    context.simultaneous_origins =
        static_cast<int>(world_.origins.size());
    context.scan_duration = config_.scan_duration;
    internets.push_back(
        std::make_unique<sim::Internet>(&world_, context, &persistent_));
    internets.back()->set_fault_injector(config_.faults);
  }

  std::mutex progress_mutex;
  const auto run_cell = [&](int trial, std::size_t p, sim::OriginId origin) {
    scan::ScanOptions options;
    options.probes = config_.probes;
    options.probe_interval = config_.probe_interval;
    options.l7_retries = config_.l7_retries;
    options.blocklist = config_.blocklist;
    options.scan_duration = config_.scan_duration;
    options.retry_banner_failures = config_.retry_banner_failures;
    options.faults = config_.faults;
    auto result = scan::run_scan(*internets[static_cast<std::size_t>(trial)],
                                 origin, config_.protocols[p], options);
    if (progress) {
      std::scoped_lock lock(progress_mutex);
      progress("trial " + std::to_string(trial + 1) + " " +
               std::string(proto::name_of(config_.protocols[p])) + " " +
               result.origin_code + ": " +
               std::to_string(result.completed_count()) + " hosts");
    }
    results_[index(trial, p, origin)] = std::move(result);
  };

  const int jobs = std::max(1, config_.jobs);
  if (jobs == 1) {
    for (int trial = 0; trial < config_.trials; ++trial) {
      for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
        for (sim::OriginId origin = 0; origin < world_.origins.size();
             ++origin) {
          run_cell(trial, p, origin);
        }
      }
    }
    return;
  }

  // Parallel fan-out: one serial chain per origin, each running its
  // cells in (trial, protocol) order. An origin's IDS counter keys are
  // its own source IPs, so per-key mutation order — the only thing the
  // simulation's outputs can observe — matches the serial schedule no
  // matter how the chains interleave. Scans inside a chain stay
  // single-threaded (no nested pools).
  std::vector<std::function<void()>> chains;
  chains.reserve(world_.origins.size());
  for (sim::OriginId origin = 0; origin < world_.origins.size(); ++origin) {
    chains.push_back([this, &run_cell, origin] {
      for (int trial = 0; trial < config_.trials; ++trial) {
        for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
          run_cell(trial, p, origin);
        }
      }
    });
  }
  run_parallel(jobs, std::move(chains));
}

bool Experiment::adopt_results(std::vector<scan::ScanResult> results) {
  if (!results_.empty()) return false;
  const std::size_t expected = static_cast<std::size_t>(config_.trials) *
                               config_.protocols.size() *
                               world_.origins.size();
  if (results.size() != expected) return false;

  std::vector<scan::ScanResult> arranged(expected);
  std::vector<bool> filled(expected, false);
  for (auto& result : results) {
    const sim::OriginId origin = world_.origin_id(result.origin_code);
    if (origin == ~sim::OriginId{0}) return false;
    std::size_t protocol_index = config_.protocols.size();
    for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
      if (config_.protocols[p] == result.protocol) protocol_index = p;
    }
    if (protocol_index == config_.protocols.size()) return false;
    if (result.trial < 0 || result.trial >= config_.trials) return false;
    const std::size_t slot = index(result.trial, protocol_index, origin);
    if (filled[slot]) return false;
    arranged[slot] = std::move(result);
    filled[slot] = true;
  }
  for (bool f : filled) {
    if (!f) return false;
  }
  results_ = std::move(arranged);
  return true;
}

const scan::ScanResult& Experiment::result(int trial,
                                           proto::Protocol protocol,
                                           sim::OriginId origin) const {
  for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
    if (config_.protocols[p] == protocol) {
      return results_.at(index(trial, p, origin));
    }
  }
  throw std::out_of_range("protocol not part of this experiment");
}

scan::ScanResult Experiment::run_extra_scan(int trial,
                                            proto::Protocol protocol,
                                            sim::OriginId origin,
                                            const scan::ScanOptions& options) {
  sim::TrialContext context;
  context.trial = trial;
  context.experiment_seed = config_.scenario.seed;
  // Extra scans are one-origin follow-ups: no synchronized burst.
  context.simultaneous_origins = 1;
  context.scan_duration = options.scan_duration;
  sim::Internet internet(&world_, context, &persistent_);
  internet.set_fault_injector(config_.faults);
  return scan::run_scan(internet, origin, protocol, options);
}

}  // namespace originscan::core
