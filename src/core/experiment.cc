#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/parallel.h"
#include "netbase/sha256.h"

namespace originscan::core {
namespace {

std::vector<sim::OriginSpec> roster_for(const ExperimentConfig& config) {
  switch (config.roster) {
    case ExperimentConfig::Roster::kPaper:
      return sim::paper_origins(config.scenario.universe_size);
    case ExperimentConfig::Roster::kPaperWithCarinet:
      return sim::paper_origins_with_carinet(config.scenario.universe_size);
    case ExperimentConfig::Roster::kColocated:
      return sim::colocated_origins(config.scenario.universe_size);
  }
  return sim::paper_origins(config.scenario.universe_size);
}

}  // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      world_(sim::build_world(config_.scenario, roster_for(config_))) {
  world_.uniform_random_loss = config_.uniform_random_loss;
}

Experiment::Experiment(ExperimentConfig config, sim::World world)
    : config_(std::move(config)), world_(std::move(world)) {
  config_.scenario.seed = world_.seed;
}

std::size_t Experiment::index(int trial, std::size_t protocol_index,
                              sim::OriginId origin) const {
  return (static_cast<std::size_t>(trial) * config_.protocols.size() +
          protocol_index) *
             world_.origins.size() +
         origin;
}

CellKey Experiment::cell_key_at(std::size_t slot) const {
  const std::size_t origin_count = world_.origins.size();
  const std::size_t protocol_count = config_.protocols.size();
  const std::size_t origin = slot % origin_count;
  const std::size_t p = (slot / origin_count) % protocol_count;
  const int trial = static_cast<int>(slot / (origin_count * protocol_count));
  return CellKey{world_.origins[origin].code, config_.protocols[p], trial};
}

// ---- CellEngine ------------------------------------------------------

CellEngine::CellEngine(Experiment& experiment) : experiment_(experiment) {
  // One Internet per trial, created up front: the PolicyEngine
  // constructors pre-insert the persistent IDS map entries serially,
  // before any worker thread can touch them. This must also precede any
  // journal adoption restore — restore_ids writes into those entries.
  const ExperimentConfig& config = experiment_.config_;
  internets_.reserve(static_cast<std::size_t>(config.trials));
  for (int trial = 0; trial < config.trials; ++trial) {
    sim::TrialContext context;
    context.trial = trial;
    context.experiment_seed = config.scenario.seed;
    context.simultaneous_origins =
        static_cast<int>(experiment_.world_.origins.size());
    context.scan_duration = config.scan_duration;
    internets_.push_back(std::make_unique<sim::Internet>(
        &experiment_.world_, context, &experiment_.persistent_));
    internets_.back()->set_fault_injector(config.faults);
  }
}

IdsSnapshot CellEngine::capture_origin(sim::OriginId origin) const {
  return capture_ids(experiment_.persistent_,
                     experiment_.world_.origins[origin].source_ips);
}

void CellEngine::restore_origin(sim::OriginId origin,
                                const IdsSnapshot& snapshot) {
  restore_ids(experiment_.persistent_,
              experiment_.world_.origins[origin].source_ips, snapshot);
}

CellOutcome CellEngine::run_cell(std::size_t slot, CellSupervisor& supervisor,
                                 obsv::MetricBlock* cell_block) {
  const ExperimentConfig& config = experiment_.config_;
  const sim::World& world = experiment_.world_;
  const std::size_t origin_count = world.origins.size();
  const std::size_t protocol_count = config.protocols.size();
  const sim::OriginId origin = slot % origin_count;
  const std::size_t p = (slot / origin_count) % protocol_count;
  const int trial =
      static_cast<int>(slot / (origin_count * protocol_count));
  const CellKey key = experiment_.cell_key_at(slot);
  const std::string track = key.origin_code + "/" +
                            std::string(proto::name_of(key.protocol)) +
                            "/t" + std::to_string(key.trial);
  const auto source_ips =
      std::span<const net::Ipv4Addr>(world.origins[origin].source_ips);

  // Per-cell metric attribution: `attempt_block` is a fresh scratch
  // block per attempt — an aborted attempt's counters are simply thrown
  // away with it, mirroring the IDS rollback. `cell_block` is the cell's
  // durable delta: the supervisor's fault taps, the successful attempt's
  // counters, and the retry accounting.
  obsv::MetricBlock attempt_block;

  CellOutcome outcome = supervisor.run_cell(
      slot,
      [&](const scan::CancelToken& token) {
        // Warm the (origin, protocol) loss/outage caches before the
        // sweep: the scan's ProbeContexts then resolve against warm
        // entries, and neither the probe hot loop nor the ZGrab
        // connect path ever takes the cache writer lock — regardless
        // of how concurrently-running origin chains interleave.
        internets_[static_cast<std::size_t>(trial)]->prewarm(
            origin, config.protocols[p]);
        scan::ScanOptions options;
        options.probes = config.probes;
        options.probe_interval = config.probe_interval;
        options.l7_retries = config.l7_retries;
        options.blocklist = config.blocklist;
        options.scan_duration = config.scan_duration;
        options.retry_banner_failures = config.retry_banner_failures;
        options.faults = config.faults;
        options.cancel = &token;
        options.jobs = scan_jobs_;
        if (cell_block != nullptr) {
          attempt_block = obsv::MetricBlock{};
          options.metrics = &attempt_block;
        }
        options.trace = config.trace;
        options.trace_track = track;
        return scan::run_scan(*internets_[static_cast<std::size_t>(trial)],
                              origin, config.protocols[p], options);
      },
      [&] { return capture_ids(experiment_.persistent_, source_ips); },
      [&](const IdsSnapshot& snapshot) {
        restore_ids(experiment_.persistent_, source_ips, snapshot);
      },
      cell_block);

  if (outcome.status == CellOutcome::Status::kDone && cell_block != nullptr) {
    const std::uint64_t retries =
        static_cast<std::uint64_t>(std::max(0, outcome.attempts - 1));
    cell_block->merge_from(attempt_block);
    cell_block->add(obsv::Counter::kSupervisorRetries, retries);
    if (retries > 0) {
      cell_block->observe(
          obsv::Histogram::kSupervisorBackoffMicros,
          static_cast<std::uint64_t>(outcome.backoff_total.micros()));
    }
  }
  return outcome;
}

void Experiment::run(const std::function<void(std::string_view)>& progress) {
  const RunReport report = run_journaled(nullptr, SupervisorPolicy{}, progress);
  if (report.status == RunReport::Status::kKilled) {
    throw std::runtime_error(
        "experiment killed (" + report.kill_reason +
        "); run with a journal (--resume-dir) to make this recoverable");
  }
}

std::string Experiment::config_fingerprint() const {
  // Canonical description of everything that determines the output.
  // jobs and faults are deliberately excluded: a journal written at one
  // jobs value resumes at any other, and resuming *without* the fault
  // that killed the original run is the whole point.
  std::string canon = "seed=" + std::to_string(config_.scenario.seed);
  canon += ";universe=" + std::to_string(world_.universe_size);
  canon += ";origins=";
  for (const auto& origin : world_.origins) canon += origin.code + ",";
  canon += ";trials=" + std::to_string(config_.trials);
  canon += ";protocols=";
  for (proto::Protocol p : config_.protocols) {
    canon += std::string(proto::name_of(p)) + ",";
  }
  canon += ";probes=" + std::to_string(config_.probes);
  canon +=
      ";probe_interval=" + std::to_string(config_.probe_interval.micros());
  canon += ";l7_retries=" + std::to_string(config_.l7_retries);
  canon += ";uniform_loss=" +
           std::to_string(config_.uniform_random_loss ? 1 : 0);
  canon += ";duration=" + std::to_string(config_.scan_duration.micros());
  canon += ";banner_retry=" +
           std::to_string(config_.retry_banner_failures ? 1 : 0);
  canon += ";blocklist=" + std::to_string(config_.blocklist.blocked_count());
  return net::Sha256::hex(net::Sha256::of(std::span(
      reinterpret_cast<const std::uint8_t*>(canon.data()), canon.size())));
}

Experiment::AdoptionPlan Experiment::adopt_journal(ExperimentJournal& journal) {
  assert(results_.size() == cell_count() && lost_.size() == cell_count());
  const std::size_t protocol_count = config_.protocols.size();
  const std::size_t origin_count = world_.origins.size();

  AdoptionPlan plan;
  plan.adopted.assign(cell_count(), false);
  plan.latest.resize(origin_count);
  plan.have_snapshot.assign(origin_count, false);

  // Every journal entry must map into this grid (the fingerprint check
  // at open makes a mismatch here a corrupt journal, not a config
  // change).
  for (const JournalEntry& entry : journal.entries()) {
    const sim::OriginId origin = world_.origin_id(entry.key.origin_code);
    if (origin == ~sim::OriginId{0}) {
      throw std::runtime_error("journal names unknown origin \"" +
                               entry.key.origin_code + "\"");
    }
    bool known_protocol = false;
    for (proto::Protocol p : config_.protocols) {
      known_protocol = known_protocol || p == entry.key.protocol;
    }
    if (!known_protocol || entry.key.trial < 0 ||
        entry.key.trial >= config_.trials) {
      throw std::runtime_error(
          "journal entry outside the experiment grid: " +
          entry.key.origin_code + " " +
          std::string(proto::name_of(entry.key.protocol)) + " trial " +
          std::to_string(entry.key.trial));
    }
  }

  // Adopt per origin, in chain order. Entries must form a prefix of
  // the origin's chain: the journal appends in execution order, so a
  // gap means lost manifest lines — the IDS snapshots after the gap
  // would no longer describe the state their cells actually saw.
  for (sim::OriginId origin = 0; origin < origin_count; ++origin) {
    bool gap = false;
    // Set when a cell of this origin's chain fails segment/sidecar
    // verification: the cell is quarantined (demoted to absent, re-run on
    // this resume) and every later entry in the chain is demoted with it
    // — their IDS provenance includes the cell that went bad.
    bool quarantined = false;
    for (int trial = 0; trial < config_.trials; ++trial) {
      for (std::size_t p = 0; p < protocol_count; ++p) {
        const CellKey key{world_.origins[origin].code, config_.protocols[p],
                          trial};
        const JournalEntry* entry = journal.find(key);
        const std::size_t slot = index(trial, p, origin);
        if (entry == nullptr) {
          gap = true;
          continue;
        }
        if (quarantined) {
          journal.quarantine(key);
          if (config_.metrics != nullptr) {
            config_.metrics->add(obsv::Counter::kJournalQuarantinedFollowers);
          }
          continue;
        }
        if (gap) {
          throw std::runtime_error(
              "journal for origin " + key.origin_code +
              " is not a chain prefix: cell " +
              std::string(proto::name_of(key.protocol)) + " trial " +
              std::to_string(key.trial) + " follows a missing cell");
        }
        if (entry->status == JournalEntry::Status::kDone) {
          std::string load_error;
          IdsSnapshot snapshot;
          obsv::MetricBlock delta;
          auto result = journal.load_cell(
              *entry, &snapshot, &load_error,
              config_.metrics != nullptr ? &delta : nullptr);
          if (!result.has_value()) {
            // Salvage, not abort: the segment or a sidecar failed CRC /
            // digest / parse checks. Demote the cell to absent — it
            // re-runs from the origin's last good snapshot and its fresh
            // manifest line supersedes the bad one (last-wins replay).
            journal.quarantine(key);
            if (config_.metrics != nullptr) {
              config_.metrics->add(obsv::Counter::kJournalQuarantinedCells);
            }
            if (config_.trace != nullptr) {
              config_.trace->instant(
                  "journal", "journal.quarantine", net::VirtualTime{},
                  {{"cell", key.origin_code + "/" +
                                std::string(proto::name_of(key.protocol)) +
                                "/t" + std::to_string(key.trial)},
                   {"error", load_error}});
            }
            quarantined = true;
            continue;
          }
          // Replaying the cell's persisted delta (instead of its scan)
          // is what makes resumed and uninterrupted runs' snapshots
          // byte-identical.
          if (config_.metrics != nullptr) {
            config_.metrics->merge_block(delta);
          }
          if (config_.trace != nullptr) {
            config_.trace->instant(
                "journal", "journal.replay", net::VirtualTime{},
                {{"cell", key.origin_code + "/" +
                              std::string(proto::name_of(key.protocol)) +
                              "/t" + std::to_string(key.trial)},
                 {"records", std::to_string(result->records.size())}});
          }
          results_[slot] = std::move(*result);
          plan.adopted[slot] = true;
          // The latest done cell's snapshot is cumulative for the origin
          // (serial chain, disjoint source IPs): restoring it puts the
          // IDS exactly where the chain's next un-run cell expects it.
          plan.latest[origin] = std::move(snapshot);
          plan.have_snapshot[origin] = true;
          ++plan.adopted_count;
        } else {
          // A lost cell stays lost on resume: its chain already moved
          // past it, so re-running it now would see later IDS state.
          lost_[slot] = true;
          plan.lost_keys.push_back(key);
        }
      }
    }
  }
  return plan;
}

RunReport Experiment::run_journaled(
    ExperimentJournal* journal, const SupervisorPolicy& policy,
    const std::function<void(std::string_view)>& progress) {
  assert(results_.empty() && "Experiment::run called twice");
  const std::size_t protocol_count = config_.protocols.size();
  const std::size_t origin_count = world_.origins.size();
  const std::size_t total = cell_count();
  results_.resize(total);
  lost_.assign(total, false);

  RunReport report;
  report.cells_total = total;

  // The engine builds the per-trial Internets; construction must precede
  // the snapshot restores below (see CellEngine).
  CellEngine engine(*this);

  const auto cell_key = [&](int trial, std::size_t p,
                            sim::OriginId origin) {
    return CellKey{world_.origins[origin].code, config_.protocols[p], trial};
  };

  std::vector<bool> adopted(total, false);
  if (journal != nullptr) {
    AdoptionPlan plan = adopt_journal(*journal);
    adopted = std::move(plan.adopted);
    report.cells_adopted = plan.adopted_count;
    report.lost = std::move(plan.lost_keys);
    for (sim::OriginId origin = 0; origin < origin_count; ++origin) {
      if (plan.have_snapshot[origin]) {
        engine.restore_origin(origin, plan.latest[origin]);
      }
    }
  }

  CellSupervisor supervisor(policy, config_.faults, config_.scenario.seed);
  std::mutex mutex;  // guards journal appends, report, progress
  std::vector<std::size_t> lost_slots;

  // Chaos hooks: the journal's durable writes consult the injector's
  // enospc / segment_corrupt points; their counts land in `fault_block`
  // (written only under `mutex`, merged into the registry at the end).
  obsv::MetricBlock fault_block;
  if (journal != nullptr) {
    journal->set_fault_injector(
        config_.faults, config_.metrics != nullptr ? &fault_block : nullptr);
  }

  // Runs one cell under the supervisor; false aborts the caller's chain
  // (simulated process death).
  const auto run_cell = [&](int trial, std::size_t p,
                            sim::OriginId origin) -> bool {
    const std::size_t slot = index(trial, p, origin);
    if (adopted[slot] || lost_[slot]) return true;
    const CellKey key = cell_key(trial, p, origin);
    if (journal != nullptr && journal->storage_dead()) {
      // Storage died earlier in this run. Scanning would only burn time
      // on a result that cannot be persisted — fail the cell fast. No
      // manifest line can be written, so a resume on a healthy disk
      // simply re-runs it.
      std::scoped_lock lock(mutex);
      lost_[slot] = true;
      lost_slots.push_back(slot);
      if (progress) {
        progress("trial " + std::to_string(trial + 1) + " " +
                 std::string(proto::name_of(config_.protocols[p])) + " " +
                 key.origin_code + ": LOST (journal storage dead)");
      }
      return true;
    }
    const std::string track = key.origin_code + "/" +
                              std::string(proto::name_of(key.protocol)) +
                              "/t" + std::to_string(key.trial);
    const auto source_ips =
        std::span<const net::Ipv4Addr>(world_.origins[origin].source_ips);

    // `cell_block` is the cell's durable metric delta: the engine's
    // supervised-scan attribution plus (via record_done) the journal
    // counters. It is persisted with the cell and merged into the
    // registry, so an adopted cell replays exactly what a live run of it
    // would have contributed.
    obsv::MetricBlock cell_block;

    CellOutcome outcome = engine.run_cell(
        slot, supervisor, config_.metrics != nullptr ? &cell_block : nullptr);

    if (outcome.status == CellOutcome::Status::kKilled) {
      // The killed process never writes a snapshot, but its supervisor
      // taps (fault.cell_crash) are still observable in-process.
      if (config_.metrics != nullptr) config_.metrics->merge_block(cell_block);
      return false;
    }

    std::scoped_lock lock(mutex);
    const std::uint64_t retries =
        static_cast<std::uint64_t>(std::max(0, outcome.attempts - 1));
    report.retries += retries;
    if (config_.trace != nullptr) {
      for (std::uint64_t r = 0; r < retries; ++r) {
        config_.trace->instant(track + "/supervisor", "supervisor.retry",
                               net::VirtualTime{},
                               {{"attempt", std::to_string(r + 2)}});
      }
    }
    if (outcome.status == CellOutcome::Status::kDone) {
      if (journal != nullptr && !supervisor.killed()) {
        const IdsSnapshot post = capture_ids(persistent_, source_ips);
        std::string journal_error;
        if (!journal->record_done(
                key, outcome.result, post, outcome.attempts,
                config_.metrics != nullptr ? &cell_block : nullptr,
                &journal_error)) {
          // Storage-exhaustion degradation: the scan completed but its
          // outcome cannot be made durable, so the cell — not the run —
          // fails. It is dropped from the grid (an unpersisted result
          // would silently vanish on resume) and marked lost best-effort;
          // if even that line cannot be appended, the cell is simply
          // absent and a resume on a healthy disk re-runs it.
          fault_block.add(obsv::Counter::kJournalWritesFailed);
          lost_[slot] = true;
          lost_slots.push_back(slot);
          std::string lost_error;
          journal->record_lost(key, outcome.attempts,
                               "journal write failed: " + journal_error,
                               &lost_error);
          if (progress) {
            progress("trial " + std::to_string(trial + 1) + " " +
                     std::string(proto::name_of(config_.protocols[p])) + " " +
                     key.origin_code + ": LOST (journal write failed: " +
                     journal_error + ")");
          }
          return true;
        }
      }
      if (config_.metrics != nullptr) config_.metrics->merge_block(cell_block);
      if (progress) {
        progress("trial " + std::to_string(trial + 1) + " " +
                 std::string(proto::name_of(config_.protocols[p])) + " " +
                 outcome.result.origin_code + ": " +
                 std::to_string(outcome.result.completed_count()) + " hosts");
      }
      results_[slot] = std::move(outcome.result);
      ++report.cells_run;
    } else {  // kLost
      // A lost cell contributes nothing to the registry: on resume it is
      // adopted as lost without re-running, so counting its attempts here
      // would make uninterrupted and resumed snapshots diverge. Its loss
      // is accounted once, deterministically, via experiment.cells_lost
      // at the end of the run.
      lost_[slot] = true;
      lost_slots.push_back(slot);
      if (journal != nullptr && !supervisor.killed()) {
        std::string journal_error;
        if (!journal->record_lost(key, outcome.attempts, outcome.reason,
                                  &journal_error)) {
          // The cell is already lost in-memory; a failed lost-line append
          // just means a resume re-runs it instead of adopting the loss.
          fault_block.add(obsv::Counter::kJournalWritesFailed);
        }
      }
      if (progress) {
        progress("trial " + std::to_string(trial + 1) + " " +
                 std::string(proto::name_of(config_.protocols[p])) + " " +
                 key.origin_code + ": LOST (" + outcome.reason + ")");
      }
    }
    return true;
  };

  const int jobs = std::max(1, config_.jobs);
  if (jobs == 1) {
    bool alive = true;
    for (int trial = 0; alive && trial < config_.trials; ++trial) {
      for (std::size_t p = 0; alive && p < protocol_count; ++p) {
        for (sim::OriginId origin = 0; alive && origin < origin_count;
             ++origin) {
          alive = run_cell(trial, p, origin);
        }
      }
    }
  } else {
    // Parallel fan-out: one serial chain per origin, each running its
    // cells in (trial, protocol) order. An origin's IDS counter keys are
    // its own source IPs, so per-key mutation order — the only thing the
    // simulation's outputs can observe — matches the serial schedule no
    // matter how the chains interleave. Scans inside a chain stay
    // single-threaded (no nested pools).
    std::vector<std::function<void()>> chains;
    chains.reserve(origin_count);
    for (sim::OriginId origin = 0; origin < origin_count; ++origin) {
      chains.push_back([this, &run_cell, &protocol_count, origin] {
        for (int trial = 0; trial < config_.trials; ++trial) {
          for (std::size_t p = 0; p < protocol_count; ++p) {
            if (!run_cell(trial, p, origin)) return;
          }
        }
      });
    }
    run_parallel(jobs, std::move(chains));
  }

  if (supervisor.killed()) {
    // Simulated process death: the in-memory grid is as gone as it would
    // be under a real SIGKILL. Everything recoverable lives in the
    // journal; resume with a fresh Experiment over the same journal dir.
    results_.clear();
    lost_.clear();
    report.status = RunReport::Status::kKilled;
    report.kill_reason = "cell_crash fault";
    if (config_.metrics != nullptr) config_.metrics->merge_block(fault_block);
    return report;
  }

  // Lost cells adopted from the journal are already in report.lost (in
  // chain order); add the freshly lost ones and normalize to grid order.
  for (std::size_t slot : lost_slots) {
    const std::size_t origin = slot % origin_count;
    const std::size_t p = (slot / origin_count) % protocol_count;
    const int trial = static_cast<int>(slot / (origin_count * protocol_count));
    report.lost.push_back(cell_key(trial, p, origin));
  }
  std::sort(report.lost.begin(), report.lost.end(),
            [&](const CellKey& a, const CellKey& b) {
              const auto slot_of = [&](const CellKey& k) {
                std::size_t p = 0;
                for (std::size_t i = 0; i < protocol_count; ++i) {
                  if (config_.protocols[i] == k.protocol) p = i;
                }
                return index(k.trial, p, world_.origin_id(k.origin_code));
              };
              return slot_of(a) < slot_of(b);
            });
  report.cells_lost = report.lost.size();
  report.status = report.lost.empty() ? RunReport::Status::kComplete
                                      : RunReport::Status::kPartial;
  if (config_.metrics != nullptr) {
    // Grid-level figures come from the final report, which is identical
    // for resumed and uninterrupted runs by construction.
    config_.metrics->gauge_max(obsv::Gauge::kExperimentCellsTotal, total);
    config_.metrics->add(obsv::Counter::kExperimentCellsLost,
                         report.cells_lost);
    config_.metrics->merge_block(fault_block);
  }
  return report;
}

bool Experiment::adopt_results(std::vector<scan::ScanResult> results) {
  return adopt_results(std::move(results), nullptr);
}

bool Experiment::adopt_results(std::vector<scan::ScanResult> results,
                               std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  const auto cell_name = [this](int trial, proto::Protocol protocol,
                                std::string_view code) {
    return std::string(code) + " " + std::string(proto::name_of(protocol)) +
           " trial " + std::to_string(trial);
  };

  if (!results_.empty()) return fail("experiment has already run");
  const std::size_t expected = static_cast<std::size_t>(config_.trials) *
                               config_.protocols.size() *
                               world_.origins.size();
  if (results.size() != expected) {
    return fail("expected " + std::to_string(expected) + " results (" +
                std::to_string(config_.trials) + " trials x " +
                std::to_string(config_.protocols.size()) + " protocols x " +
                std::to_string(world_.origins.size()) + " origins), got " +
                std::to_string(results.size()));
  }

  std::vector<scan::ScanResult> arranged(expected);
  std::vector<bool> filled(expected, false);
  for (auto& result : results) {
    const sim::OriginId origin = world_.origin_id(result.origin_code);
    if (origin == ~sim::OriginId{0}) {
      std::string roster;
      for (const auto& spec : world_.origins) {
        if (!roster.empty()) roster += " ";
        roster += spec.code;
      }
      return fail("unknown origin code \"" + result.origin_code +
                  "\" (roster: " + roster + ")");
    }
    std::size_t protocol_index = config_.protocols.size();
    for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
      if (config_.protocols[p] == result.protocol) protocol_index = p;
    }
    if (protocol_index == config_.protocols.size()) {
      return fail("protocol " + std::string(proto::name_of(result.protocol)) +
                  " is not part of this experiment");
    }
    if (result.trial < 0 || result.trial >= config_.trials) {
      return fail("trial " + std::to_string(result.trial) +
                  " outside 0.." + std::to_string(config_.trials - 1) +
                  " for cell " +
                  cell_name(result.trial, result.protocol,
                            result.origin_code));
    }
    const std::size_t slot = index(result.trial, protocol_index, origin);
    if (filled[slot]) {
      return fail("duplicate cell " + cell_name(result.trial, result.protocol,
                                                result.origin_code));
    }
    arranged[slot] = std::move(result);
    filled[slot] = true;
  }
  for (std::size_t slot = 0; slot < filled.size(); ++slot) {
    if (!filled[slot]) {
      const std::size_t origin = slot % world_.origins.size();
      const std::size_t p =
          (slot / world_.origins.size()) % config_.protocols.size();
      const int trial = static_cast<int>(
          slot / (world_.origins.size() * config_.protocols.size()));
      return fail("missing cell " +
                  cell_name(trial, config_.protocols[p],
                            world_.origins[origin].code));
    }
  }
  results_ = std::move(arranged);
  lost_.assign(expected, false);
  return true;
}

bool Experiment::has_cell(int trial, proto::Protocol protocol,
                          sim::OriginId origin) const {
  if (results_.empty()) return false;
  for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
    if (config_.protocols[p] == protocol) {
      const std::size_t slot = index(trial, p, origin);
      return lost_.empty() || !lost_[slot];
    }
  }
  return false;
}

std::vector<CellKey> Experiment::lost_cells() const {
  std::vector<CellKey> lost;
  if (results_.empty() || lost_.empty()) return lost;
  for (int trial = 0; trial < config_.trials; ++trial) {
    for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
      for (sim::OriginId origin = 0; origin < world_.origins.size();
           ++origin) {
        if (lost_[index(trial, p, origin)]) {
          lost.push_back(CellKey{world_.origins[origin].code,
                                 config_.protocols[p], trial});
        }
      }
    }
  }
  return lost;
}

const scan::ScanResult& Experiment::result(int trial,
                                           proto::Protocol protocol,
                                           sim::OriginId origin) const {
  for (std::size_t p = 0; p < config_.protocols.size(); ++p) {
    if (config_.protocols[p] == protocol) {
      return results_.at(index(trial, p, origin));
    }
  }
  throw std::out_of_range("protocol not part of this experiment");
}

scan::ScanResult Experiment::run_extra_scan(int trial,
                                            proto::Protocol protocol,
                                            sim::OriginId origin,
                                            const scan::ScanOptions& options) {
  sim::TrialContext context;
  context.trial = trial;
  context.experiment_seed = config_.scenario.seed;
  // Extra scans are one-origin follow-ups: no synchronized burst.
  context.simultaneous_origins = 1;
  context.scan_duration = options.scan_duration;
  sim::Internet internet(&world_, context, &persistent_);
  internet.set_fault_injector(config_.faults);
  return scan::run_scan(internet, origin, protocol, options);
}

}  // namespace originscan::core
