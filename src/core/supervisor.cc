#include "core/supervisor.h"

#include <algorithm>

#include "netbase/rng.h"

namespace originscan::core {

net::VirtualTime CellSupervisor::backoff_for(std::uint64_t cell_index,
                                             int attempt) const {
  const std::int64_t base =
      std::min(policy_.backoff_cap.micros(),
               policy_.backoff_base.micros() << attempt);
  // ±25% jitter, integer-only: offset uniform in [-base/4, +base/4],
  // drawn from mix(seed, cell, attempt) so it replays exactly on resume
  // and never synchronizes across origins' chains.
  const std::int64_t span = base / 2;
  if (span <= 0) return net::VirtualTime::from_micros(base);
  const std::uint64_t h =
      net::mix_u64(seed_, cell_index, static_cast<std::uint64_t>(attempt),
                   0xB0FFC0DEULL);
  const std::int64_t offset =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(span + 1)) -
      span / 2;
  return net::VirtualTime::from_micros(base + offset);
}

CellOutcome CellSupervisor::run_cell(
    std::uint64_t cell_index,
    const std::function<scan::ScanResult(const scan::CancelToken&)>&
        run_attempt,
    const std::function<IdsSnapshot()>& capture,
    const std::function<void(const IdsSnapshot&)>& restore,
    obsv::MetricBlock* metrics) {
  CellOutcome outcome;

  if (kill_.cancelled()) {
    outcome.status = CellOutcome::Status::kKilled;
    outcome.reason = "run already killed";
    return outcome;
  }
  if (faults_ != nullptr && faults_->cell_crash(cell_index)) {
    // Simulated process death: trip the shared kill token so every other
    // chain aborts at its next batch check. No longjmp, no exception —
    // the run winds down cooperatively and reports kKilled.
    kill_.cancel();
    if (metrics != nullptr) metrics->add(obsv::Counter::kFaultCellCrash);
    outcome.status = CellOutcome::Status::kKilled;
    outcome.reason = "cell_crash at cell " + std::to_string(cell_index);
    return outcome;
  }

  const IdsSnapshot pre = capture();
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    scan::CancelToken attempt_token(&kill_);
    const std::uint64_t hang_seconds =
        faults_ == nullptr ? 0
                           : faults_->cell_hang_seconds(cell_index, attempt);
    if (hang_seconds > 0 &&
        net::VirtualTime::from_seconds(static_cast<double>(hang_seconds)) >
            policy_.cell_deadline) {
      // The attempt would stall past its deadline. Deterministic stand-in
      // for a watchdog firing: pre-trip the attempt's token so the scan
      // aborts at its first batch check, before mutating any IDS state.
      attempt_token.cancel();
      if (metrics != nullptr) metrics->add(obsv::Counter::kFaultCellHang);
    }

    scan::ScanResult result = run_attempt(attempt_token);
    ++outcome.attempts;
    if (kill_.cancelled()) {
      outcome.status = CellOutcome::Status::kKilled;
      outcome.reason = "killed during cell " + std::to_string(cell_index);
      return outcome;
    }
    if (!result.aborted) {
      outcome.status = CellOutcome::Status::kDone;
      outcome.result = std::move(result);
      return outcome;
    }

    // Failed attempt: roll the origin's IDS slice back to the pre-cell
    // snapshot (a partial sweep may have fed counters) and back off.
    restore(pre);
    outcome.backoff_total += backoff_for(cell_index, attempt);
  }

  restore(pre);
  outcome.status = CellOutcome::Status::kLost;
  outcome.reason = "deadline exceeded in all " +
                   std::to_string(policy_.max_attempts) + " attempts";
  return outcome;
}

}  // namespace originscan::core
