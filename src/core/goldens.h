// Golden-trace differential harness: canonical scan scenarios, compact
// run digests (per-result record SHA-256 + summary stats) persisted as
// JSON under tests/goldens/, and a record-level differ that reports the
// first diverging record readably instead of a bare hash mismatch.
//
// Two registered scenarios:
//
//   clean_small  A loss-free, outage-free, policy-free world (no
//                MaxStartups): every injected *recoverable* fault must be
//                absorbed invisibly, so runs under any recoverable plan —
//                at any --jobs level — are byte-identical to the golden.
//   paper_small  A scaled-down paper world (loss bursts, outages,
//                policies): the no-fault regression anchor, and the stage
//                for classifying *degrading* plans (probe_drop, outage,
//                mac_corrupt), whose damage no retry can undo.
//
// The split matters: recoverable L7 faults consume retry attempts and
// shift handshake times, which in a lossy world perturbs the simulation's
// deterministic draws. Only the clean world makes "recovered" mean
// "byte-identical"; the paper world instead gets a structured
// DegradationClass verdict. tools/goldens records and checks the digests;
// tests/differential_test.cc replays the matrix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "faultinject/faultinject.h"
#include "scanner/orchestrator.h"

namespace originscan::core {

// ---- Digests --------------------------------------------------------

// Compact fingerprint of one ScanResult: identity, summary stats, and
// SHA-256 over the packed record stream (store format, 12 bytes per
// record) plus the banner list.
struct ResultDigest {
  std::string origin_code;
  int trial = 0;
  proto::Protocol protocol{};
  std::uint64_t record_count = 0;
  std::uint64_t completed = 0;
  std::uint64_t synacks = 0;
  std::string record_sha256;  // lowercase hex
  std::string banner_sha256;  // empty when banners were not kept

  friend bool operator==(const ResultDigest&, const ResultDigest&) = default;
};

[[nodiscard]] ResultDigest digest_of(const scan::ScanResult& result);
[[nodiscard]] std::vector<ResultDigest> digest_all(
    const std::vector<scan::ScanResult>& results);

// A committed golden: scenario name + its digest list, serialized as
// JSON (tests/goldens/<scenario>.json).
struct GoldenFile {
  std::string scenario;
  std::vector<ResultDigest> digests;

  [[nodiscard]] std::string to_json() const;
  static std::optional<GoldenFile> from_json(std::string_view text);

  friend bool operator==(const GoldenFile&, const GoldenFile&) = default;
};

// ---- Scenario registry ----------------------------------------------

[[nodiscard]] std::vector<std::string_view> golden_scenario_names();

// Runs a registered scenario and returns its flat result list (the same
// grid order regardless of jobs). `faults` threads a fault injector
// through every layer; the scan options are otherwise identical with and
// without faults — that is what makes the golden a valid oracle.
// Throws std::invalid_argument for an unknown scenario name.
[[nodiscard]] std::vector<scan::ScanResult> run_golden_scenario(
    std::string_view name, int jobs = 1,
    const fault::FaultInjector* faults = nullptr);

// The paper_small scenario's ExperimentConfig (jobs/faults at their
// defaults). Exported so tools/goldens --via-resume can reproduce the
// scenario through a kill-and-resume journal cycle and check the result
// against the same committed digests.
[[nodiscard]] ExperimentConfig paper_small_config();

// ---- Differential comparison ----------------------------------------

// How a faulted run's output relates to the golden run's.
enum class DegradationClass {
  kIdentical,      // byte-identical records (recovered or untouched)
  kL4Loss,         // records missing or probe masks weakened only
  kL7Degradation,  // same L4 view, handshake outcomes/banners degraded
  kMixed,          // both L4 and L7 damage
  kStructural,     // result grids don't even line up
};

[[nodiscard]] std::string_view degradation_name(DegradationClass klass);

// One readable record-level difference.
struct RecordDivergence {
  std::size_t result_index = 0;  // index into the flat result list
  std::string origin_code;
  int trial = 0;
  proto::Protocol protocol{};
  std::string description;  // field-by-field account of the difference
};

struct DifferentialReport {
  DegradationClass klass = DegradationClass::kIdentical;
  std::uint64_t records_golden = 0;
  std::uint64_t records_actual = 0;
  std::uint64_t missing_records = 0;  // in golden, absent from actual
  std::uint64_t extra_records = 0;    // in actual, absent from golden
  std::uint64_t l4_diffs = 0;         // shared addr, different L4 view
  std::uint64_t l7_diffs = 0;         // shared addr + L4, different L7
  // First few divergences, in grid order (capped; enough to read).
  std::vector<RecordDivergence> divergences;

  [[nodiscard]] bool identical() const {
    return klass == DegradationClass::kIdentical;
  }
  [[nodiscard]] std::string summary() const;
};

// Record-level comparison of two runs of the same scenario grid.
[[nodiscard]] DifferentialReport compare_results(
    const std::vector<scan::ScanResult>& golden,
    const std::vector<scan::ScanResult>& actual);

// Digest-level comparison: nullopt when equal, otherwise a readable
// account of the first mismatching entry (used when only the committed
// digests — not full golden records — are available).
[[nodiscard]] std::optional<std::string> compare_digests(
    const std::vector<ResultDigest>& golden,
    const std::vector<ResultDigest>& actual);

}  // namespace originscan::core
