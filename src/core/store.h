// Binary persistence for scan results: save a completed experiment's
// records to disk and reload them later for analysis without re-running
// the scans (the Scans.io-repository analog for this library).
//
// Format (network byte order, versioned):
//   magic "OSNR" | u32 version | u32 result_count
//   per result:
//     u16 origin_code_len | bytes | u8 protocol | u32 trial
//     u64 record_count | packed records (addr u32, synack u8, rst u8,
//                        l7 u8, explicit u8, probe_second u32)
//     u32 crc32 over the result block (v2 only)
//
// Version 2 appends a CRC32 footer to every result block so bit-rot and
// mid-record truncation are detected instead of parsing into garbage;
// v1 streams (no footers) still parse for old saved files and goldens.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "faultinject/faultinject.h"
#include "obsv/metrics.h"
#include "scanner/orchestrator.h"

namespace originscan::core {

// Diagnostics from one checkpointed save (see the fault-aware
// save_results overload).
struct SaveStats {
  std::uint64_t writes = 0;            // physical write attempts issued
  std::uint64_t transient_errors = 0;  // writes that failed with EIO
  std::uint64_t resumes = 0;           // reopen-and-seek recoveries
  // Save abandoned on a permanent no-space failure (enospc fault point).
  // Unlike EIO, exhausted storage does not recover within a run, so the
  // retry ladder is skipped and the save fails immediately.
  bool storage_exhausted = false;
};

// The current (default) and oldest-still-parseable format versions.
inline constexpr std::uint32_t kStoreVersion = 2;
inline constexpr std::uint32_t kStoreVersionNoCrc = 1;

// Serializes results to the on-disk format. `version` must be 1 or 2;
// writing v1 exists for back-compat tests and migration tooling only.
std::vector<std::uint8_t> serialize_results(
    const std::vector<scan::ScanResult>& results,
    std::uint32_t version = kStoreVersion);

// Parses results; nullopt on any structural error (bad magic, truncated
// stream, unknown version).
std::optional<std::vector<scan::ScanResult>> parse_results(
    std::span<const std::uint8_t> data);

// File convenience wrappers.
bool save_results(const std::string& path,
                  const std::vector<scan::ScanResult>& results);

// Checkpointing save: writes in 64 KiB chunks, tracking the committed
// offset after every successful chunk. A transient write error — real,
// or injected through `faults` (store_eio fault point, keyed by the
// physical write-attempt index) — triggers a reopen of the file and a
// seek back to the last committed offset, then the write resumes. The
// resulting file is byte-identical to an error-free save. The enospc
// fault point (keyed by cumulative committed bytes) is a *permanent*
// failure: the save stops without retrying — storage exhaustion does
// not heal on a reopen. `stats` (optional) reports the recovery work
// done; `metrics` (optional) taps fault.store_eio / fault.enospc per
// injected failure and store.write_retries per recovery write.
bool save_results(const std::string& path,
                  const std::vector<scan::ScanResult>& results,
                  const fault::FaultInjector* faults,
                  SaveStats* stats = nullptr,
                  obsv::MetricBlock* metrics = nullptr);
std::optional<std::vector<scan::ScanResult>> load_results(
    const std::string& path);

}  // namespace originscan::core
