// Binary persistence for scan results: save a completed experiment's
// records to disk and reload them later for analysis without re-running
// the scans (the Scans.io-repository analog for this library).
//
// Format (little-endian, versioned):
//   magic "OSNR" | u32 version | u32 result_count
//   per result:
//     u16 origin_code_len | bytes | u8 protocol | u32 trial
//     u64 record_count | packed records (addr u32, synack u8, rst u8,
//                        l7 u8, explicit u8, probe_second u32)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scanner/orchestrator.h"

namespace originscan::core {

// Serializes results to the on-disk format.
std::vector<std::uint8_t> serialize_results(
    const std::vector<scan::ScanResult>& results);

// Parses results; nullopt on any structural error (bad magic, truncated
// stream, unknown version).
std::optional<std::vector<scan::ScanResult>> parse_results(
    std::span<const std::uint8_t> data);

// File convenience wrappers.
bool save_results(const std::string& path,
                  const std::vector<scan::ScanResult>& results);
std::optional<std::vector<scan::ScanResult>> load_results(
    const std::string& path);

}  // namespace originscan::core
