// Per-cell execution supervision: deadlines, bounded retries with capped
// backoff, and simulated process death. The supervisor wraps the
// execution of one experiment grid cell (Experiment::run_journaled); its
// fault hooks are the cell_crash / cell_hang injection points.
//
// Failure ladder for one cell:
//   1. cell_crash fires at the cell's start: the process-wide kill token
//      trips, every chain winds down at its next batch check, and the
//      run reports kKilled — resumable from the journal, nothing else.
//   2. An attempt exceeds the per-cell deadline (cell_hang): the attempt
//      is aborted, the origin's IDS state is rolled back to the pre-cell
//      snapshot, and the cell retries after a capped exponential backoff
//      (accounted in virtual time — nothing actually sleeps).
//   3. The retry budget runs out: the cell is recorded lost and the run
//      degrades to a partial grid (see AccessMatrix::lost_cells).
//
// Rollback before every retry is what keeps retries deterministic: an
// aborted attempt may have fed IDS counters for a prefix of the sweep,
// and replaying on top of that would double-count probes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/journal.h"
#include "faultinject/faultinject.h"
#include "netbase/vtime.h"
#include "scanner/cancel.h"
#include "scanner/orchestrator.h"

namespace originscan::core {

struct SupervisorPolicy {
  // Attempts per cell before it is declared lost.
  int max_attempts = 3;
  // An attempt stalling longer than this (virtual time) is aborted. The
  // default comfortably clears a 21-hour scan plus retry slack.
  net::VirtualTime cell_deadline = net::VirtualTime::from_hours(48);
  // Exponential backoff between attempts: base << attempt, capped, then
  // jittered ±25% (deterministically — see CellSupervisor::backoff_for).
  net::VirtualTime backoff_base = net::VirtualTime::from_seconds(1);
  net::VirtualTime backoff_cap = net::VirtualTime::from_seconds(64);
};

struct CellOutcome {
  enum class Status {
    kDone,    // an attempt completed; `result` is valid
    kLost,    // retry budget exhausted; cell excluded from the grid
    kKilled,  // process death (cell_crash or an already-tripped kill)
  };
  Status status = Status::kDone;
  scan::ScanResult result;
  int attempts = 0;  // attempts consumed (including the successful one)
  // Total backoff charged between attempts, in virtual time.
  net::VirtualTime backoff_total;
  std::string reason;  // kLost/kKilled: human-readable cause
};

class CellSupervisor {
 public:
  // `seed` drives the deterministic backoff jitter; pass the experiment
  // seed so every execution mode (serial, --jobs N, --workers N, resume)
  // charges identical backoff to the same cell.
  CellSupervisor(SupervisorPolicy policy, const fault::FaultInjector* faults,
                 std::uint64_t seed = 0)
      : policy_(policy), faults_(faults), seed_(seed) {}

  // Backoff charged after failed attempt `attempt` of cell `cell_index`:
  // min(cap, base << attempt) jittered by ±25%, where the jitter is a
  // pure integer function of (seed, cell_index, attempt) — the cell
  // index encodes the origin, so retries of different origins' cells
  // never synchronize, yet every re-execution of the same cell charges
  // the exact same virtual time (the byte-identity contract).
  [[nodiscard]] net::VirtualTime backoff_for(std::uint64_t cell_index,
                                             int attempt) const;

  // The process-wide kill token. Chains poll it (via per-attempt child
  // tokens) so a simulated process death stops the whole run, not just
  // the crashing cell.
  [[nodiscard]] const scan::CancelToken& kill_token() const { return kill_; }
  [[nodiscard]] bool killed() const { return kill_.cancelled(); }

  // Runs one cell to an outcome. `run_attempt` executes the scan under a
  // per-attempt cancel token; `capture`/`restore` snapshot and roll back
  // the origin's IDS slice around failed attempts. Thread-safe across
  // cells (distinct origins), serial within one origin's chain.
  // `metrics` (optional) is the CELL-level metric block: the supervisor's
  // fault points (fault.cell_crash, fault.cell_hang) tap into it, never
  // into a per-attempt block — an aborted attempt's block is discarded on
  // rollback, but the hang that aborted it is part of the cell's history.
  CellOutcome run_cell(
      std::uint64_t cell_index,
      const std::function<scan::ScanResult(const scan::CancelToken&)>&
          run_attempt,
      const std::function<IdsSnapshot()>& capture,
      const std::function<void(const IdsSnapshot&)>& restore,
      obsv::MetricBlock* metrics = nullptr);

 private:
  SupervisorPolicy policy_;
  const fault::FaultInjector* faults_;
  std::uint64_t seed_ = 0;
  scan::CancelToken kill_;
};

}  // namespace originscan::core
