// The per-protocol accessibility matrix: ground truth (the union of hosts
// that completed an L7 handshake with any origin in a trial — Section 2's
// "Limitations") crossed with which origin saw which host in which trial,
// plus the probe-level detail (which of the two SYNs was answered, L7
// outcome, probe hour) the deeper analyses need.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "netbase/ipv4.h"
#include "sim/country.h"
#include "sim/types.h"

namespace originscan::core {

// Index into the matrix's ground-truth host list.
using HostIdx = std::uint32_t;

class AccessMatrix {
 public:
  // Builds the matrix for one protocol from a completed experiment.
  static AccessMatrix build(const Experiment& experiment,
                            proto::Protocol protocol);

  [[nodiscard]] proto::Protocol protocol() const { return protocol_; }
  [[nodiscard]] int trials() const { return trials_; }
  [[nodiscard]] std::size_t origins() const { return origin_codes_.size(); }
  [[nodiscard]] const std::vector<std::string>& origin_codes() const {
    return origin_codes_;
  }

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] net::Ipv4Addr host_addr(HostIdx h) const { return hosts_[h]; }
  [[nodiscard]] sim::AsId host_as(HostIdx h) const { return host_as_[h]; }
  [[nodiscard]] sim::CountryCode host_country(HostIdx h) const {
    return host_country_[h];
  }

  // Host was in the trial's ground truth (completed L7 with >= 1 origin).
  [[nodiscard]] bool present(int trial, HostIdx h) const {
    return present_[trial][h];
  }
  [[nodiscard]] int trials_present(HostIdx h) const {
    int count = 0;
    for (int t = 0; t < trials_; ++t) count += present(t, h) ? 1 : 0;
    return count;
  }

  // Origin completed the L7 handshake with the host in the trial.
  [[nodiscard]] bool accessible(int trial, std::size_t origin,
                                HostIdx h) const {
    return accessible_[cell(trial, origin)][h];
  }

  // Which of the two back-to-back probes were answered with a SYN-ACK
  // (bit 0 = first probe, bit 1 = second).
  [[nodiscard]] std::uint8_t synack_mask(int trial, std::size_t origin,
                                         HostIdx h) const {
    return synack_mask_[cell(trial, origin)][h];
  }

  // The recorded L7 outcome (kNotAttempted when the host never made it
  // past L4 for this origin/trial).
  [[nodiscard]] sim::L7Outcome outcome(int trial, std::size_t origin,
                                       HostIdx h) const {
    return static_cast<sim::L7Outcome>(outcome_[cell(trial, origin)][h]);
  }
  [[nodiscard]] bool explicit_close(int trial, std::size_t origin,
                                    HostIdx h) const {
    return explicit_close_[cell(trial, origin)][h];
  }

  // Hour (0-20) in which the host was probed during the trial. All
  // synchronized origins share the permutation, so this is per-trial.
  [[nodiscard]] std::uint8_t probe_hour(int trial, HostIdx h) const {
    return probe_hour_[trial][h];
  }

  // Single-probe simulation (Section 5): the host counts as seen by a
  // 1-probe scan only when both probes were answered, matching the
  // paper's conservative rule.
  [[nodiscard]] bool accessible_single_probe(int trial, std::size_t origin,
                                             HostIdx h) const {
    return accessible(trial, origin, h) &&
           synack_mask(trial, origin, h) == 0b11;
  }

  // Ground-truth host count for a trial.
  [[nodiscard]] std::size_t present_count(int trial) const;

  // Partial-grid support: false when the (trial, origin) scan was lost
  // to the supervisor's retry budget (Experiment::has_cell). A lost
  // cell's rows read as all-inaccessible; analyses that average over
  // trials must exclude it rather than count it as a miss.
  [[nodiscard]] bool has_cell(int trial, std::size_t origin) const {
    return cell_present_.empty() || cell_present_[cell(trial, origin)];
  }
  // Lost cells as (trial, origin code) pairs, grid order.
  [[nodiscard]] std::vector<std::pair<int, std::string>> lost_cells() const;
  [[nodiscard]] bool partial() const { return !lost_cells().empty(); }

 private:
  [[nodiscard]] std::size_t cell(int trial, std::size_t origin) const {
    return static_cast<std::size_t>(trial) * origin_codes_.size() + origin;
  }

  proto::Protocol protocol_{};
  int trials_ = 0;
  std::vector<std::string> origin_codes_;

  std::vector<net::Ipv4Addr> hosts_;  // sorted
  std::vector<sim::AsId> host_as_;
  std::vector<sim::CountryCode> host_country_;

  std::vector<std::vector<bool>> present_;             // [trial][host]
  std::vector<std::vector<bool>> accessible_;          // [cell][host]
  std::vector<std::vector<std::uint8_t>> synack_mask_; // [cell][host]
  std::vector<std::vector<std::uint8_t>> outcome_;     // [cell][host]
  std::vector<std::vector<bool>> explicit_close_;      // [cell][host]
  std::vector<std::vector<std::uint8_t>> probe_hour_;  // [trial][host]
  std::vector<bool> cell_present_;                     // [cell]; empty = all
};

}  // namespace originscan::core
