#include "core/journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include "core/goldens.h"
#include "core/store.h"
#include "netbase/byteio.h"
#include "netbase/crc32.h"
#include "netbase/frame.h"

namespace originscan::core {
namespace {

constexpr std::uint32_t kIdsMagic = 0x4F534944;  // "OSID"
constexpr std::uint32_t kIdsVersion = 1;
constexpr std::uint32_t kSidecarMagic = 0x4F534353;  // "OSCS"
constexpr std::uint32_t kSidecarVersion = 1;

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// The failing syscall's errno, rendered for error text. Write and fsync
// failures must name their cause — "short write" alone cannot tell a
// full disk from a yanked one.
std::string errno_text() {
  const int err = errno;
  if (err == 0) return "unknown error";
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

// Writes `data` to `path` durably: the file contents and its metadata
// are on stable storage before this returns true. The manifest line that
// references the file is appended only afterwards.
bool write_file_durable(const std::string& path,
                        std::span<const std::uint8_t> data,
                        std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return set_error(error, "cannot create " + path + ": " + errno_text());
  }
  errno = 0;
  const bool written = std::fwrite(data.data(), 1, data.size(), file) ==
                       data.size();
  const bool flushed = written && std::fflush(file) == 0 &&
                       ::fsync(::fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!(written && flushed && closed)) {
    return set_error(error, "short write to " + path + ": " + errno_text());
  }
  return true;
}

// Flips one byte of an already-written file in place (the
// segment_corrupt fault point: bit-rot landing between a successful
// fsync and the next read).
void flip_byte_in_file(const std::string& path, std::uint64_t offset) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) return;
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0) {
    const int byte = std::fgetc(file);
    if (byte != EOF &&
        std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0) {
      std::fputc(byte ^ 0x40, file);
    }
  }
  std::fclose(file);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buffer[65536];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.insert(data.end(), buffer, buffer + read);
  }
  std::fclose(file);
  return data;
}

std::optional<proto::Protocol> protocol_from_name(std::string_view name) {
  for (proto::Protocol p : proto::kAllProtocols) {
    if (proto::name_of(p) == name) return p;
  }
  return std::nullopt;
}

std::string lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::set<std::uint32_t> ip_set(std::span<const net::Ipv4Addr> source_ips) {
  std::set<std::uint32_t> out;
  for (net::Ipv4Addr ip : source_ips) out.insert(ip.value());
  return out;
}

// Parses one manifest body line ("done ..." / "lost ...") into an
// entry. Returns nullopt on any malformation — open() treats that as a
// hard error, repair() as a droppable line.
std::optional<JournalEntry> parse_manifest_line(std::string_view line) {
  const std::vector<std::string_view> tokens = split_ws(line);
  if (tokens.size() < 5 || (tokens[0] != "done" && tokens[0] != "lost")) {
    return std::nullopt;
  }
  JournalEntry entry;
  entry.status = tokens[0] == "done" ? JournalEntry::Status::kDone
                                     : JournalEntry::Status::kLost;
  entry.key.origin_code = std::string(tokens[1]);
  const auto protocol = protocol_from_name(tokens[2]);
  if (!protocol.has_value()) return std::nullopt;
  entry.key.protocol = *protocol;
  entry.key.trial = std::atoi(std::string(tokens[3]).c_str());
  for (std::size_t t = 4; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    if (token.rfind("attempts=", 0) == 0) {
      entry.attempts = std::atoi(std::string(token.substr(9)).c_str());
    } else if (token.rfind("sha256=", 0) == 0) {
      entry.record_sha256 = std::string(token.substr(7));
    } else if (token.rfind("segment=", 0) == 0) {
      entry.segment = std::string(token.substr(8));
    } else if (token.rfind("reason=", 0) == 0) {
      // The reason is the rest of the line (it may contain spaces).
      const std::size_t pos = line.find("reason=");
      entry.reason = std::string(line.substr(pos + 7));
      break;
    } else {
      return std::nullopt;
    }
  }
  const bool complete = entry.status == JournalEntry::Status::kDone
                            ? !entry.record_sha256.empty() &&
                                  !entry.segment.empty()
                            : !entry.reason.empty();
  if (!complete) return std::nullopt;
  return entry;
}

// Reads a sidecar file written as one shared-codec frame
// (netbase/frame.h), returning the framed payload. Files from before
// framing existed carry the raw payload with its own CRC footer — those
// fall back to the whole buffer, which the payload parser's CRC then
// vets. The frame path is what enforces "never over-read a lying length
// prefix" for sidecars.
std::span<const std::uint8_t> unframe_sidecar(
    std::span<const std::uint8_t> data) {
  std::span<const std::uint8_t> payload;
  if (net::parse_single_frame(data, payload) == net::FrameError::kNone) {
    return payload;
  }
  return data;  // legacy raw sidecar; inner CRC still applies
}

}  // namespace

std::vector<std::uint8_t> serialize_cell_sidecar(
    const IdsSnapshot& ids, const scan::ZMapScanner::Stats& stats,
    const std::vector<std::uint64_t>& histogram) {
  std::vector<std::uint8_t> out;
  net::ByteWriter w(out);
  w.u32(kSidecarMagic);
  w.u32(kSidecarVersion);
  const auto ids_bytes = ids.serialize();
  w.u32(static_cast<std::uint32_t>(ids_bytes.size()));
  w.bytes(ids_bytes);
  w.u64(stats.targets_probed);
  w.u64(stats.packets_sent);
  w.u64(stats.blocklisted_skipped);
  w.u64(stats.synacks);
  w.u64(stats.rsts);
  w.u64(stats.validation_failures);
  w.u32(static_cast<std::uint32_t>(histogram.size()));
  for (std::uint64_t bucket : histogram) w.u64(bucket);
  w.u32(net::crc32(std::span(out.data(), out.size())));
  return out;
}

bool parse_cell_sidecar(std::span<const std::uint8_t> raw, IdsSnapshot& ids,
                        scan::ZMapScanner::Stats& stats,
                        std::vector<std::uint64_t>& histogram) {
  const std::span<const std::uint8_t> data = unframe_sidecar(raw);
  if (data.size() < 16) return false;
  const std::uint32_t want = net::crc32(data.subspan(0, data.size() - 4));
  net::ByteReader footer(data.subspan(data.size() - 4));
  if (footer.u32() != want) return false;

  net::ByteReader r(data.subspan(0, data.size() - 4));
  if (r.u32() != kSidecarMagic) return false;
  if (r.u32() != kSidecarVersion) return false;
  const std::uint32_t ids_len = r.u32();
  if (!r.ok() || ids_len > r.remaining()) return false;
  auto parsed_ids = IdsSnapshot::parse(r.bytes(ids_len));
  if (!parsed_ids.has_value()) return false;
  ids = std::move(*parsed_ids);
  stats.targets_probed = r.u64();
  stats.packets_sent = r.u64();
  stats.blocklisted_skipped = r.u64();
  stats.synacks = r.u64();
  stats.rsts = r.u64();
  stats.validation_failures = r.u64();
  const std::uint32_t histogram_len = r.u32();
  if (!r.ok() || histogram_len > r.remaining() / 8) return false;
  histogram.clear();
  histogram.reserve(histogram_len);
  for (std::uint32_t i = 0; i < histogram_len; ++i) {
    histogram.push_back(r.u64());
  }
  return r.ok() && r.remaining() == 0;
}

// ---- IdsSnapshot ----------------------------------------------------

std::vector<std::uint8_t> IdsSnapshot::serialize() const {
  std::vector<std::uint8_t> out;
  net::ByteWriter w(out);
  w.u32(kIdsMagic);
  w.u32(kIdsVersion);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const AsEntry& entry : entries) {
    w.u32(static_cast<std::uint32_t>(entry.as));
    w.u32(static_cast<std::uint32_t>(entry.probe_counts.size()));
    for (const auto& [ip, count] : entry.probe_counts) {
      w.u32(ip);
      w.u32(count);
    }
    w.u32(static_cast<std::uint32_t>(entry.blocked_ips.size()));
    for (const auto& [ip, trial] : entry.blocked_ips) {
      w.u32(ip);
      w.u32(static_cast<std::uint32_t>(trial));
    }
  }
  w.u32(net::crc32(std::span(out.data(), out.size())));
  return out;
}

std::optional<IdsSnapshot> IdsSnapshot::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 16) return std::nullopt;
  const std::uint32_t want =
      net::crc32(data.subspan(0, data.size() - 4));
  net::ByteReader footer(data.subspan(data.size() - 4));
  if (footer.u32() != want) return std::nullopt;

  net::ByteReader r(data.subspan(0, data.size() - 4));
  if (r.u32() != kIdsMagic) return std::nullopt;
  if (r.u32() != kIdsVersion) return std::nullopt;
  const std::uint32_t entry_count = r.u32();
  if (!r.ok() || entry_count > r.remaining() / 12) return std::nullopt;

  IdsSnapshot snapshot;
  snapshot.entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    AsEntry entry;
    entry.as = static_cast<sim::AsId>(r.u32());
    const std::uint32_t probe_count = r.u32();
    if (!r.ok() || probe_count > r.remaining() / 8) return std::nullopt;
    entry.probe_counts.reserve(probe_count);
    for (std::uint32_t j = 0; j < probe_count; ++j) {
      const std::uint32_t ip = r.u32();
      const std::uint32_t count = r.u32();
      entry.probe_counts.emplace_back(ip, count);
    }
    const std::uint32_t blocked_count = r.u32();
    if (!r.ok() || blocked_count > r.remaining() / 8) return std::nullopt;
    entry.blocked_ips.reserve(blocked_count);
    for (std::uint32_t j = 0; j < blocked_count; ++j) {
      const std::uint32_t ip = r.u32();
      const int trial = static_cast<int>(r.u32());
      entry.blocked_ips.emplace_back(ip, trial);
    }
    if (!r.ok()) return std::nullopt;
    snapshot.entries.push_back(std::move(entry));
  }
  if (r.remaining() != 0) return std::nullopt;
  return snapshot;
}

IdsSnapshot capture_ids(sim::PersistentState& state,
                        std::span<const net::Ipv4Addr> source_ips) {
  const std::set<std::uint32_t> ips = ip_set(source_ips);
  IdsSnapshot snapshot;
  // The outer map is structurally immutable once the PolicyEngines are
  // built, so iterating it without a lock is safe; only the inner
  // counters need the per-AS shard lock.
  for (auto& [as, counters] : state.ids) {
    IdsSnapshot::AsEntry entry;
    entry.as = as;
    {
      std::scoped_lock lock(state.ids_lock(as));
      for (const auto& [ip, count] : counters.probe_counts) {
        if (ips.count(ip) != 0) entry.probe_counts.emplace_back(ip, count);
      }
      for (const auto& [ip, trial] : counters.blocked_ips) {
        if (ips.count(ip) != 0) entry.blocked_ips.emplace_back(ip, trial);
      }
    }
    if (!entry.probe_counts.empty() || !entry.blocked_ips.empty()) {
      snapshot.entries.push_back(std::move(entry));
    }
  }
  return snapshot;
}

void restore_ids(sim::PersistentState& state,
                 std::span<const net::Ipv4Addr> source_ips,
                 const IdsSnapshot& snapshot) {
  const std::set<std::uint32_t> ips = ip_set(source_ips);
  for (auto& [as, counters] : state.ids) {
    std::scoped_lock lock(state.ids_lock(as));
    for (std::uint32_t ip : ips) {
      counters.probe_counts.erase(ip);
      counters.blocked_ips.erase(ip);
    }
  }
  for (const IdsSnapshot::AsEntry& entry : snapshot.entries) {
    auto it = state.ids.find(entry.as);
    // An AS absent from the live state means the snapshot came from a
    // different policy configuration; the fingerprint check should have
    // caught that, so dropping the entry here is only defense in depth.
    if (it == state.ids.end()) continue;
    std::scoped_lock lock(state.ids_lock(entry.as));
    for (const auto& [ip, count] : entry.probe_counts) {
      it->second.probe_counts[ip] = count;
    }
    for (const auto& [ip, trial] : entry.blocked_ips) {
      it->second.blocked_ips[ip] = trial;
    }
  }
}

// ---- ExperimentJournal ----------------------------------------------

std::optional<ExperimentJournal> ExperimentJournal::open(
    const std::string& dir, const std::string& fingerprint,
    std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    set_error(error, "cannot create journal dir " + dir);
    return std::nullopt;
  }

  ExperimentJournal journal;
  journal.dir_ = dir;
  journal.fingerprint_ = fingerprint;

  const std::string manifest_path = dir + "/MANIFEST";
  const auto data = read_file(manifest_path);
  if (!data.has_value()) {
    if (fingerprint.empty()) {
      // Inspect mode (empty fingerprint = adopt whatever the manifest
      // says) only makes sense for a journal that already exists.
      set_error(error, "no journal manifest in " + dir);
      return std::nullopt;
    }
    // Fresh journal: write the header before any cell can be recorded.
    if (!journal.append_manifest_line(
            "osnr-journal v1 fingerprint=" + fingerprint, error)) {
      return std::nullopt;
    }
    return journal;
  }

  // Replay an existing manifest. A crash mid-append leaves a torn final
  // line with no newline; it references sidecars that were fully synced
  // before the append started, so dropping the line merely re-runs an
  // already-complete cell — safe, if wasteful.
  const std::string text(data->begin(), data->end());
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      journal.dropped_torn_line_ = true;  // torn trailing line: dropped
      break;
    }
    lines.push_back(std::string_view(text).substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) {
    set_error(error, "journal manifest has no complete header line");
    return std::nullopt;
  }
  constexpr std::string_view kHeaderPrefix = "osnr-journal v1 fingerprint=";
  if (fingerprint.empty()) {
    // Inspect mode: adopt the manifest's own fingerprint.
    if (!lines.front().starts_with(kHeaderPrefix)) {
      set_error(error,
                "unrecognized journal header: " + std::string(lines.front()));
      return std::nullopt;
    }
    journal.fingerprint_ =
        std::string(lines.front().substr(kHeaderPrefix.size()));
  } else {
    const std::string expected_header =
        std::string(kHeaderPrefix) + fingerprint;
    if (lines.front() != expected_header) {
      set_error(error, "journal fingerprint mismatch: manifest says \"" +
                           std::string(lines.front()) + "\", experiment is \"" +
                           expected_header + "\"");
      return std::nullopt;
    }
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto entry = parse_manifest_line(lines[i]);
    if (!entry.has_value()) {
      set_error(error, "malformed journal line: " + std::string(lines[i]));
      return std::nullopt;
    }
    journal.push_entry(std::move(*entry));
  }
  return journal;
}

// Last-wins: a re-recorded cell (quarantine + re-execution appends a
// fresh `done` line for a key that already has one) supersedes the
// earlier entry and takes its chain position at the end — which is the
// order the re-execution actually ran in.
void ExperimentJournal::push_entry(JournalEntry entry) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const JournalEntry& existing) {
                                  return existing.key == entry.key;
                                }),
                 entries_.end());
  entries_.push_back(std::move(entry));
}

std::optional<RepairReport> ExperimentJournal::repair(const std::string& dir,
                                                      std::string* error) {
  const std::string manifest_path = dir + "/MANIFEST";
  const auto data = read_file(manifest_path);
  if (!data.has_value()) {
    set_error(error, "no journal manifest in " + dir);
    return std::nullopt;
  }
  RepairReport report;

  const std::string text(data->begin(), data->end());
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      ++report.lines_dropped_malformed;  // torn trailing line
      break;
    }
    lines.push_back(std::string_view(text).substr(start, nl - start));
    start = nl + 1;
  }
  constexpr std::string_view kHeaderPrefix = "osnr-journal v1 fingerprint=";
  if (lines.empty() || !lines.front().starts_with(kHeaderPrefix)) {
    // Without the header there is no fingerprint to bind a resume to —
    // nothing below it can be trusted to belong to any experiment.
    set_error(error, "journal header unreadable; nothing salvageable in " +
                         manifest_path);
    return std::nullopt;
  }
  report.fingerprint = std::string(lines.front().substr(kHeaderPrefix.size()));

  // Replay tolerantly: malformed lines are dropped (counted), later
  // lines for a key supersede earlier ones exactly as open() does.
  ExperimentJournal scanner;
  scanner.dir_ = dir;
  scanner.fingerprint_ = report.fingerprint;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto entry = parse_manifest_line(lines[i]);
    if (!entry.has_value()) {
      ++report.lines_dropped_malformed;
      continue;
    }
    scanner.push_entry(std::move(*entry));
  }

  // Verify every done entry's artifacts and enforce the chain-prefix
  // invariant per origin: once one of an origin's cells is dropped, every
  // later entry of that origin rode on state that will now be re-derived,
  // so it is demoted too (resume re-runs the whole suffix).
  std::set<std::string> broken_origins;
  std::vector<const JournalEntry*> kept;
  for (const JournalEntry& entry : scanner.entries_) {
    if (broken_origins.count(entry.key.origin_code) != 0) {
      ++report.entries_dropped_followers;
      continue;
    }
    if (entry.status == JournalEntry::Status::kDone) {
      std::string load_error;
      if (!scanner.load_cell(entry, nullptr, &load_error).has_value()) {
        ++report.entries_dropped_corrupt;
        broken_origins.insert(entry.key.origin_code);
        continue;
      }
    }
    kept.push_back(&entry);
  }
  report.entries_kept = kept.size();

  // Rebuild the MANIFEST durably: tmp write + atomic rename, so a crash
  // mid-repair leaves either the old manifest or the repaired one.
  std::string rebuilt = std::string(kHeaderPrefix) + report.fingerprint + "\n";
  for (const JournalEntry* entry : kept) {
    const std::string prefix =
        entry->key.origin_code + " " +
        std::string(proto::name_of(entry->key.protocol)) + " " +
        std::to_string(entry->key.trial) +
        " attempts=" + std::to_string(entry->attempts);
    if (entry->status == JournalEntry::Status::kDone) {
      rebuilt += "done " + prefix + " sha256=" + entry->record_sha256 +
                 " segment=" + entry->segment + "\n";
    } else {
      rebuilt += "lost " + prefix + " reason=" + entry->reason + "\n";
    }
  }
  const std::string tmp_path = manifest_path + ".repair";
  if (!write_file_durable(
          tmp_path,
          std::span(reinterpret_cast<const std::uint8_t*>(rebuilt.data()),
                    rebuilt.size()),
          error)) {
    return std::nullopt;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, manifest_path, ec);
  if (ec) {
    set_error(error, "cannot replace " + manifest_path + ": " + ec.message());
    return std::nullopt;
  }
  return report;
}

const JournalEntry* ExperimentJournal::find(const CellKey& key) const {
  for (const JournalEntry& entry : entries_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

void ExperimentJournal::quarantine(const CellKey& key) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const JournalEntry& entry) {
                                  return entry.key == key;
                                }),
                 entries_.end());
}

std::optional<scan::ScanResult> ExperimentJournal::load_cell(
    const JournalEntry& entry, IdsSnapshot* snapshot, std::string* error,
    obsv::MetricBlock* metrics) const {
  if (entry.status != JournalEntry::Status::kDone) {
    set_error(error, "cell was journaled as lost");
    return std::nullopt;
  }
  const std::string segment_path = dir_ + "/" + entry.segment + ".osnr";
  const auto segment_bytes = read_file(segment_path);
  if (!segment_bytes.has_value()) {
    set_error(error, "missing segment " + segment_path);
    return std::nullopt;
  }
  auto results = parse_results(*segment_bytes);
  if (!results.has_value() || results->size() != 1) {
    set_error(error, "corrupt segment " + segment_path);
    return std::nullopt;
  }
  // The store CRCs catch bit-rot inside the segment; the manifest digest
  // additionally pins the segment to the manifest line, catching a
  // segment swapped in from another run.
  const std::string digest = digest_of(results->front()).record_sha256;
  if (digest != entry.record_sha256) {
    set_error(error, "segment digest mismatch for " + segment_path +
                         ": manifest " + entry.record_sha256 + ", file " +
                         digest);
    return std::nullopt;
  }
  scan::ScanResult result = std::move(results->front());

  const std::string ids_path = dir_ + "/" + entry.segment + ".ids";
  const auto ids_bytes = read_file(ids_path);
  if (!ids_bytes.has_value()) {
    set_error(error, "missing sidecar " + ids_path);
    return std::nullopt;
  }
  IdsSnapshot sidecar_ids;
  if (!parse_cell_sidecar(*ids_bytes, sidecar_ids, result.l4_stats,
                          result.attempt_histogram)) {
    set_error(error, "corrupt sidecar " + ids_path);
    return std::nullopt;
  }
  if (snapshot != nullptr) *snapshot = std::move(sidecar_ids);

  if (metrics != nullptr) {
    const std::string metrics_path = dir_ + "/" + entry.segment + ".metrics";
    const auto metrics_bytes = read_file(metrics_path);
    if (!metrics_bytes.has_value()) {
      // Pre-metrics journal: the cell simply carries a zero delta.
      *metrics = obsv::MetricBlock{};
    } else {
      auto parsed = obsv::MetricBlock::parse(unframe_sidecar(*metrics_bytes));
      if (!parsed.has_value()) {
        set_error(error, "corrupt metrics sidecar " + metrics_path);
        return std::nullopt;
      }
      *metrics = std::move(*parsed);
    }
  }
  return result;
}

bool ExperimentJournal::record_done(const CellKey& key,
                                    const scan::ScanResult& result,
                                    const IdsSnapshot& snapshot, int attempts,
                                    std::string* error) {
  return record_done(key, result, snapshot, attempts, /*metrics=*/nullptr,
                     error);
}

// A durable file write as seen by the fault layer: enospc can refuse it
// (storage latches dead), segment_corrupt can flip a byte after the
// write lands. Real failures also latch storage_dead_ — a journal whose
// disk errored once must not be trusted with further cells.
bool ExperimentJournal::durable_write(const std::string& path,
                                      std::span<const std::uint8_t> data,
                                      std::string* error) {
  if (faults_ != nullptr && faults_->enospc(bytes_written_)) {
    if (fault_metrics_ != nullptr) {
      fault_metrics_->add(obsv::Counter::kFaultEnospc);
    }
    storage_dead_ = true;
    return set_error(error, "no space left on device writing " + path +
                                " (injected ENOSPC after " +
                                std::to_string(bytes_written_) + " bytes)");
  }
  if (!write_file_durable(path, data, error)) {
    storage_dead_ = true;
    return false;
  }
  bytes_written_ += data.size();
  const std::uint64_t file_index = files_written_++;
  if (faults_ != nullptr && faults_->segment_corrupt(file_index)) {
    if (fault_metrics_ != nullptr) {
      fault_metrics_->add(obsv::Counter::kFaultSegmentCorrupt);
    }
    flip_byte_in_file(path, faults_->corrupt_offset(file_index, data.size()));
  }
  return true;
}

bool ExperimentJournal::record_done(const CellKey& key,
                                    const scan::ScanResult& result,
                                    const IdsSnapshot& snapshot, int attempts,
                                    obsv::MetricBlock* metrics,
                                    std::string* error) {
  const std::string stem = "cell_" + key.origin_code + "_" +
                           lower(proto::name_of(key.protocol)) + "_t" +
                           std::to_string(key.trial);
  const auto segment_bytes = serialize_results({result});
  if (!durable_write(dir_ + "/" + stem + ".osnr", segment_bytes, error)) {
    return false;
  }
  const auto sidecar_bytes =
      serialize_cell_sidecar(snapshot, result.l4_stats,
                             result.attempt_histogram);
  if (!durable_write(dir_ + "/" + stem + ".ids",
                     net::encode_frame(sidecar_bytes), error)) {
    return false;
  }
  if (metrics != nullptr) {
    // The journal's own counters go into the cell's block *before* it is
    // serialized, so an adopted cell replays them too and a resumed run's
    // totals match an uninterrupted run's exactly. Three fsync'd files per
    // cell: .osnr, .ids, .metrics. The segment-size histogram observes the
    // two data files; the metrics sidecar itself is fixed-size bookkeeping.
    metrics->add(obsv::Counter::kJournalCellsRecorded);
    metrics->add(obsv::Counter::kJournalSegmentsFsynced, 3);
    metrics->observe(obsv::Histogram::kJournalSegmentBytes,
                     segment_bytes.size());
    metrics->observe(obsv::Histogram::kJournalSegmentBytes,
                     sidecar_bytes.size());
    if (!durable_write(dir_ + "/" + stem + ".metrics",
                       net::encode_frame(metrics->serialize()), error)) {
      return false;
    }
  }

  JournalEntry entry;
  entry.status = JournalEntry::Status::kDone;
  entry.key = key;
  entry.attempts = attempts;
  entry.record_sha256 = digest_of(result).record_sha256;
  entry.segment = stem;
  const std::string line =
      "done " + key.origin_code + " " +
      std::string(proto::name_of(key.protocol)) + " " +
      std::to_string(key.trial) + " attempts=" + std::to_string(attempts) +
      " sha256=" + entry.record_sha256 + " segment=" + stem;
  if (!append_manifest_line(line, error)) return false;
  push_entry(std::move(entry));
  return true;
}

bool ExperimentJournal::record_lost(const CellKey& key, int attempts,
                                    const std::string& reason,
                                    std::string* error) {
  JournalEntry entry;
  entry.status = JournalEntry::Status::kLost;
  entry.key = key;
  entry.attempts = attempts;
  entry.reason = reason.empty() ? "unspecified" : reason;
  const std::string line =
      "lost " + key.origin_code + " " +
      std::string(proto::name_of(key.protocol)) + " " +
      std::to_string(key.trial) + " attempts=" + std::to_string(attempts) +
      " reason=" + entry.reason;
  if (!append_manifest_line(line, error)) return false;
  push_entry(std::move(entry));
  return true;
}

bool ExperimentJournal::append_manifest_line(const std::string& line,
                                             std::string* error) {
  const std::string path = dir_ + "/MANIFEST";
  if (faults_ != nullptr && faults_->enospc(bytes_written_)) {
    if (fault_metrics_ != nullptr) {
      fault_metrics_->add(obsv::Counter::kFaultEnospc);
    }
    storage_dead_ = true;
    return set_error(error, "no space left on device appending to " + path +
                                " (injected ENOSPC after " +
                                std::to_string(bytes_written_) + " bytes)");
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    storage_dead_ = true;
    return set_error(error, "cannot open " + path + ": " + errno_text());
  }
  errno = 0;
  const std::string with_newline = line + "\n";
  const bool written = std::fwrite(with_newline.data(), 1,
                                   with_newline.size(),
                                   file) == with_newline.size();
  const bool flushed = written && std::fflush(file) == 0 &&
                       ::fsync(::fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!(written && flushed && closed)) {
    storage_dead_ = true;
    return set_error(error, "short append to " + path + ": " + errno_text());
  }
  bytes_written_ += with_newline.size();
  return true;
}

}  // namespace originscan::core
