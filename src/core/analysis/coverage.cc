#include "core/analysis/coverage.h"

namespace originscan::core {

CoverageTable compute_coverage(const AccessMatrix& matrix) {
  CoverageTable table;
  table.origin_codes = matrix.origin_codes();
  const int trials = matrix.trials();
  const std::size_t origins = matrix.origins();
  const std::size_t n = matrix.host_count();

  table.two_probe.assign(trials, std::vector<double>(origins, 0.0));
  table.single_probe.assign(trials, std::vector<double>(origins, 0.0));
  table.union_size.assign(trials, 0);
  table.intersection_fraction.assign(trials, 0.0);
  table.cell_present.assign(trials, std::vector<bool>(origins, true));
  for (int t = 0; t < trials; ++t) {
    for (std::size_t o = 0; o < origins; ++o) {
      table.cell_present[t][o] = matrix.has_cell(t, o);
    }
  }
  table.lost_cells = matrix.lost_cells();

  for (int t = 0; t < trials; ++t) {
    std::uint64_t present = 0;
    std::uint64_t intersection = 0;
    std::vector<std::uint64_t> seen_two(origins, 0);
    std::vector<std::uint64_t> seen_one(origins, 0);

    for (HostIdx h = 0; h < n; ++h) {
      if (!matrix.present(t, h)) continue;
      ++present;
      bool all = true;
      for (std::size_t o = 0; o < origins; ++o) {
        if (!table.cell_present[t][o]) continue;  // lost: no vote either way
        if (matrix.accessible(t, o, h)) {
          ++seen_two[o];
          if (matrix.accessible_single_probe(t, o, h)) ++seen_one[o];
        } else {
          all = false;
        }
      }
      if (all) ++intersection;
    }

    table.union_size[t] = present;
    if (present > 0) {
      table.intersection_fraction[t] =
          static_cast<double>(intersection) / static_cast<double>(present);
      for (std::size_t o = 0; o < origins; ++o) {
        table.two_probe[t][o] =
            static_cast<double>(seen_two[o]) / static_cast<double>(present);
        table.single_probe[t][o] =
            static_cast<double>(seen_one[o]) / static_cast<double>(present);
      }
    }
  }
  return table;
}

double CoverageTable::mean_two_probe(std::size_t origin) const {
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < two_probe.size(); ++t) {
    if (!cell_present.empty() && !cell_present[t][origin]) continue;
    sum += two_probe[t][origin];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double CoverageTable::mean_single_probe(std::size_t origin) const {
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < single_probe.size(); ++t) {
    if (!cell_present.empty() && !cell_present[t][origin]) continue;
    sum += single_probe[t][origin];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace originscan::core
