#include "core/analysis/significance.h"

namespace originscan::core {

std::vector<PairwiseSignificance> pairwise_mcnemar(const AccessMatrix& matrix,
                                                   int trial) {
  const std::size_t origins = matrix.origins();
  std::vector<PairwiseSignificance> out;

  for (std::size_t a = 0; a < origins; ++a) {
    for (std::size_t b = a + 1; b < origins; ++b) {
      std::uint64_t yy = 0, yn = 0, ny = 0, nn = 0;
      for (HostIdx h = 0; h < matrix.host_count(); ++h) {
        if (!matrix.present(trial, h)) continue;
        const bool sa = matrix.accessible(trial, a, h);
        const bool sb = matrix.accessible(trial, b, h);
        if (sa && sb) {
          ++yy;
        } else if (sa) {
          ++yn;
        } else if (sb) {
          ++ny;
        } else {
          ++nn;
        }
      }
      PairwiseSignificance entry;
      entry.origin_a = a;
      entry.origin_b = b;
      entry.label = matrix.origin_codes()[a] + " vs " +
                    matrix.origin_codes()[b];
      entry.mcnemar = stats::mcnemar_test(yy, yn, ny, nn);
      out.push_back(std::move(entry));
    }
  }

  std::vector<double> raw;
  raw.reserve(out.size());
  for (const auto& entry : out) raw.push_back(entry.mcnemar.p_value);
  const auto adjusted = stats::bonferroni(raw);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].bonferroni_p = adjusted[i];
  }
  return out;
}

stats::CochranQResult cochran_q_all_origins(const AccessMatrix& matrix,
                                            int trial) {
  std::vector<std::vector<bool>> table;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (!matrix.present(trial, h)) continue;
    std::vector<bool> row(matrix.origins());
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      row[o] = matrix.accessible(trial, o, h);
    }
    table.push_back(std::move(row));
  }
  return stats::cochran_q(table);
}

}  // namespace originscan::core
