#include "core/analysis/transient.h"

#include <algorithm>
#include <map>

namespace originscan::core {

double AsTransient::max_rate() const {
  return rate.empty() ? 0.0 : *std::max_element(rate.begin(), rate.end());
}

double AsTransient::min_rate() const {
  return rate.empty() ? 0.0 : *std::min_element(rate.begin(), rate.end());
}

std::uint64_t AsTransient::diff_hosts() const {
  if (transient_hosts.empty()) return 0;
  const auto [min_it, max_it] =
      std::minmax_element(transient_hosts.begin(), transient_hosts.end());
  return *max_it - *min_it;
}

double AsTransient::ratio() const {
  if (transient_hosts.empty()) return 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(transient_hosts.begin(), transient_hosts.end());
  const double denominator = *min_it == 0 ? 1.0 : static_cast<double>(*min_it);
  return static_cast<double>(*max_it) / denominator;
}

std::vector<AsTransient> transient_by_as(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  std::map<sim::AsId, AsTransient> per_as;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& entry = per_as[matrix.host_as(h)];
    if (entry.transient_hosts.empty()) {
      entry.as = matrix.host_as(h);
      entry.transient_hosts.assign(origins, 0);
    }
    ++entry.ground_truth_hosts;
    for (std::size_t o = 0; o < origins; ++o) {
      if (classification.host_class(o, h) == HostClass::kTransient) {
        ++entry.transient_hosts[o];
      }
    }
  }

  std::vector<AsTransient> out;
  for (auto& [as, entry] : per_as) {
    if (entry.ground_truth_hosts < min_hosts) continue;
    if (as != sim::kNoAs) {
      entry.name = topology.as_info(as).name;
      entry.country = topology.as_info(as).country.to_string();
    } else {
      entry.name = "(unrouted)";
      entry.country = "??";
    }
    entry.rate.assign(entry.transient_hosts.size(), 0.0);
    for (std::size_t o = 0; o < entry.transient_hosts.size(); ++o) {
      entry.rate[o] = static_cast<double>(entry.transient_hosts[o]) /
                      static_cast<double>(entry.ground_truth_hosts);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

TransientSpread transient_spread(const std::vector<AsTransient>& by_as) {
  TransientSpread spread;
  for (const auto& entry : by_as) {
    spread.differences.push_back(entry.max_rate() - entry.min_rate());
    spread.weights.push_back(static_cast<double>(entry.ground_truth_hosts));
  }
  return spread;
}

std::vector<AsTransient> largest_transient_spread(
    std::vector<AsTransient> by_as, std::size_t top_by_size,
    std::size_t take) {
  std::sort(by_as.begin(), by_as.end(),
            [](const AsTransient& a, const AsTransient& b) {
              return a.ground_truth_hosts > b.ground_truth_hosts;
            });
  if (by_as.size() > top_by_size) by_as.resize(top_by_size);
  std::sort(by_as.begin(), by_as.end(),
            [](const AsTransient& a, const AsTransient& b) {
              return a.diff_hosts() > b.diff_hosts();
            });
  if (by_as.size() > take) by_as.resize(take);
  return by_as;
}

}  // namespace originscan::core
