// Origin-overlap histograms (Fig 3 and Fig 8): of the hosts that are
// long-term (resp. transiently) inaccessible from at least one origin,
// how many origins miss each?
#pragma once

#include <cstdint>
#include <vector>

#include "core/classify.h"

namespace originscan::core {

struct OverlapHistogram {
  // bucket[k] = number of hosts missed (in the given sense) by exactly
  // k+1 origins. Size = number of origins considered.
  std::vector<std::uint64_t> buckets;
  std::uint64_t total = 0;

  [[nodiscard]] double fraction(std::size_t k_origins) const {
    return total == 0 ? 0.0
                      : static_cast<double>(buckets[k_origins - 1]) /
                            static_cast<double>(total);
  }
};

// `exclude` lists origin indices to leave out (the paper excludes Censys
// from its "nearly half missed by only one origin" statistic).
OverlapHistogram longterm_overlap(const Classification& classification,
                                  const std::vector<std::size_t>& exclude = {});
OverlapHistogram transient_overlap(const Classification& classification,
                                   const std::vector<std::size_t>& exclude = {});

}  // namespace originscan::core
