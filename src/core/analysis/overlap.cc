#include "core/analysis/overlap.h"

#include <algorithm>

namespace originscan::core {
namespace {

OverlapHistogram overlap_for(const Classification& classification,
                             HostClass target,
                             const std::vector<std::size_t>& exclude) {
  const AccessMatrix& matrix = classification.matrix();
  std::vector<bool> excluded(matrix.origins(), false);
  for (std::size_t o : exclude) excluded[o] = true;

  std::size_t considered = 0;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    if (!excluded[o]) ++considered;
  }

  OverlapHistogram histogram;
  histogram.buckets.assign(considered, 0);
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    std::size_t missing_from = 0;
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      if (excluded[o]) continue;
      if (classification.host_class(o, h) == target) ++missing_from;
    }
    if (missing_from > 0) {
      ++histogram.buckets[missing_from - 1];
      ++histogram.total;
    }
  }
  return histogram;
}

}  // namespace

OverlapHistogram longterm_overlap(const Classification& classification,
                                  const std::vector<std::size_t>& exclude) {
  return overlap_for(classification, HostClass::kLongTerm, exclude);
}

OverlapHistogram transient_overlap(const Classification& classification,
                                   const std::vector<std::size_t>& exclude) {
  return overlap_for(classification, HostClass::kTransient, exclude);
}

}  // namespace originscan::core
