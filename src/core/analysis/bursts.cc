#include "core/analysis/bursts.h"

#include <map>
#include <set>

#include "stats/timeseries.h"

namespace originscan::core {

BurstReport detect_burst_outages(const Classification& classification,
                                 const BurstOptions& options) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();
  const int trials = matrix.trials();

  BurstReport report;
  report.origin_codes = matrix.origin_codes();
  report.single_origin_bursts.assign(origins, 0);
  report.simultaneity.assign(origins, 0);

  // Group hosts by AS.
  std::map<sim::AsId, std::vector<HostIdx>> hosts_by_as;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) > 0) {
      hosts_by_as[matrix.host_as(h)].push_back(h);
    }
  }

  // Scan hour span: max probe hour + 1.
  std::uint32_t hours = 1;
  for (int t = 0; t < trials; ++t) {
    for (HostIdx h = 0; h < matrix.host_count(); ++h) {
      hours = std::max<std::uint32_t>(hours, matrix.probe_hour(t, h) + 1u);
    }
  }

  // (trial, as, hour) -> set of origins with a burst there, to measure
  // simultaneity.
  std::map<std::tuple<int, sim::AsId, std::size_t>, std::vector<std::size_t>>
      burst_origins;

  for (const auto& [as, hosts] : hosts_by_as) {
    if (hosts.size() < options.min_as_hosts) continue;
    bool as_has_transient = false;
    bool as_has_burst = false;

    for (std::size_t o = 0; o < origins; ++o) {
      for (int t = 0; t < trials; ++t) {
        std::vector<double> hourly(hours, 0.0);
        std::uint64_t total = 0;
        for (HostIdx h : hosts) {
          if (classification.host_class(o, h) == HostClass::kTransient &&
              classification.missing(t, o, h)) {
            hourly[matrix.probe_hour(t, h)] += 1.0;
            ++total;
          }
        }
        if (total == 0) continue;
        as_has_transient = true;
        report.transient_loss_total += total;

        const std::size_t window = stats::best_smoothing_window(
            hourly, options.min_window, options.max_window);
        const auto detection =
            stats::detect_bursts(hourly, window, options.sigma);
        if (detection.burst_indices.empty()) continue;
        as_has_burst = true;
        for (std::size_t hour : detection.burst_indices) {
          report.transient_loss_in_bursts +=
              static_cast<std::uint64_t>(hourly[hour]);
          burst_origins[{t, as, hour}].push_back(o);
        }
      }
    }
    if (as_has_transient) {
      ++report.ases_with_transients;
      if (as_has_burst) ++report.ases_with_bursts;
    }
  }

  for (const auto& [key, origin_list] : burst_origins) {
    const std::size_t k = origin_list.size();
    if (k >= 1 && k <= origins) ++report.simultaneity[k - 1];
    if (k == 1) ++report.single_origin_bursts[origin_list.front()];
  }
  return report;
}

}  // namespace originscan::core
