// SSH-specific behaviour (Section 6): temporal network-wide RST blocking
// (Fig 12), handshake-retry recovery of probabilistic temporary blocking
// (Fig 13, data produced by Experiment::run_extra_scan), and the missing-
// host cause breakdown (Fig 14).
//
// Causes are inferred from *observed* behaviour, as the paper does — not
// from the simulation's configuration:
//   * temporal blocking     — connection RST immediately after the TCP
//                             handshake (the Alibaba signature);
//   * probabilistic blocking— connection explicitly closed before the
//                             identification string by a host that
//                             completed the handshake with some other
//                             origin in the same trial;
//   * long-term / transient / unknown — the Section-3 taxonomy for the
//                             remainder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"
#include "scanner/orchestrator.h"
#include "sim/topology.h"

namespace originscan::core {

// Fig 12: hourly fraction of an AS's SSH hosts answering RST-after-
// accept, per origin, in one trial.
struct TemporalBlockingSeries {
  std::string as_name;
  std::vector<std::string> origin_codes;
  // series[origin][hour] = fraction of the AS's hosts probed that hour
  // that were RST immediately after the TCP handshake.
  std::vector<std::vector<double>> series;
};

TemporalBlockingSeries temporal_blocking_series(const AccessMatrix& matrix,
                                                const sim::Topology& topology,
                                                sim::AsId as, int trial);

// ASes whose hosts exhibit network-wide RST-after-accept behaviour for
// some single-IP origin (candidates for the Alibaba archetype), ranked by
// affected host count.
struct TemporalBlocker {
  sim::AsId as = sim::kNoAs;
  std::string name;
  std::uint64_t rst_hosts = 0;
  std::uint64_t ssh_hosts = 0;
};
std::vector<TemporalBlocker> find_temporal_blockers(
    const AccessMatrix& matrix, const sim::Topology& topology,
    double min_rst_share = 0.2, std::uint64_t min_hosts = 20);

// Fig 14: the cause breakdown of missing SSH host-instances per origin
// (aggregated over trials).
struct SshMissBreakdown {
  std::vector<std::string> origin_codes;
  std::vector<std::uint64_t> temporal_blocking;      // RST after accept
  std::vector<std::uint64_t> probabilistic_blocking; // MaxStartups signature
  std::vector<std::uint64_t> longterm_other;
  std::vector<std::uint64_t> transient_other;
  std::vector<std::uint64_t> unknown;

  [[nodiscard]] std::uint64_t total(std::size_t origin) const {
    return temporal_blocking[origin] + probabilistic_blocking[origin] +
           longterm_other[origin] + transient_other[origin] + unknown[origin];
  }
};

SshMissBreakdown ssh_miss_breakdown(const Classification& classification);

// Fig 13 reduction: success rate of a retried subnet scan. `results[k]`
// must be the scan produced with max_retries = k; returns, per k, the
// fraction of responding addresses (L4 SYN-ACK) that completed the SSH
// handshake.
std::vector<double> retry_success_curve(
    const std::vector<scan::ScanResult>& results);

}  // namespace originscan::core
