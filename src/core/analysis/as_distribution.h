// AS-level views of long-term inaccessibility (Fig 4, Fig 5): which
// networks concentrate an origin's missing hosts, and how many ASes are
// 100% / >=75% / >=50% unreachable from each origin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"

namespace originscan::core {

struct AsShare {
  sim::AsId as = sim::kNoAs;
  std::string name;
  std::uint64_t longterm_hosts = 0;  // origin's long-term misses in this AS
  std::uint64_t ground_truth_hosts = 0;
  double share_of_origin_misses = 0;  // fraction of the origin's LT misses
};

// Per origin: ASes sorted by their share of the origin's long-term
// inaccessible hosts (descending) — the Fig 4 CDF's underlying data.
std::vector<std::vector<AsShare>> longterm_by_as(
    const Classification& classification, const sim::Topology& topology);

struct InaccessibleAsCounts {
  std::string origin_code;
  std::uint64_t fully = 0;          // 100% of GT hosts long-term missed
  std::uint64_t at_least_75 = 0;
  std::uint64_t at_least_50 = 0;
};

// Fig 5: count of ASes fully (and mostly) inaccessible per origin. An
// AS counts toward a threshold by the fraction of its ground-truth hosts
// the origin NEVER completed a handshake with in any trial (robust to
// host churn, which would otherwise keep a fully-blocked AS below 100%).
// Only ASes with at least `min_hosts` ground-truth hosts count.
std::vector<InaccessibleAsCounts> inaccessible_as_counts(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts = 2);

}  // namespace originscan::core
