// Section 3's statistical validation: McNemar's test on every pair of
// origins' host visibility, with a Bonferroni correction across the
// pairwise family, plus Cochran's Q for comparison (the paper explains
// why it prefers the pairwise tests).
#pragma once

#include <string>
#include <vector>

#include "core/access_matrix.h"
#include "stats/hypothesis.h"

namespace originscan::core {

struct PairwiseSignificance {
  std::size_t origin_a = 0;
  std::size_t origin_b = 0;
  std::string label;  // "AU vs DE"
  stats::McNemarResult mcnemar;
  double bonferroni_p = 1.0;
};

// All origin pairs for one trial. Hosts considered are the trial's
// ground truth; "sees" = completed L7 handshake.
std::vector<PairwiseSignificance> pairwise_mcnemar(const AccessMatrix& matrix,
                                                   int trial);

// Cochran's Q across all origins for one trial.
stats::CochranQResult cochran_q_all_origins(const AccessMatrix& matrix,
                                            int trial);

}  // namespace originscan::core
