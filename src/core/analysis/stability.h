// Origin-stability of transient loss (Section 5.1, Fig 11): per
// destination AS and trial, which origin missed the fewest/most hosts;
// how often the best origin flips to worst across trials; which origins
// are consistently best or worst.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"
#include "sim/topology.h"

namespace originscan::core {

struct StabilityResult {
  std::vector<std::string> origin_codes;

  std::uint64_t ases_considered = 0;
  // ASes where some origin is best in one trial and worst in another.
  std::uint64_t flip_ases = 0;
  // ASes with the same unique best (resp. worst) origin in all trials.
  std::uint64_t consistent_best_ases = 0;
  std::uint64_t consistent_worst_ases = 0;
  // Who the consistent best/worst origin is, per origin index.
  std::vector<std::uint64_t> consistent_best_by_origin;
  std::vector<std::uint64_t> consistent_worst_by_origin;

  [[nodiscard]] double flip_fraction() const {
    return ases_considered == 0
               ? 0.0
               : static_cast<double>(flip_ases) /
                     static_cast<double>(ases_considered);
  }
};

// Only ASes with at least `min_hosts` ground-truth hosts and at least one
// missing host in some trial are considered (rank noise otherwise).
StabilityResult compute_stability(const Classification& classification,
                                  std::uint64_t min_hosts = 10);

}  // namespace originscan::core
