#include "core/analysis/exclusivity.h"

namespace originscan::core {
namespace {

// True when origin o saw the host in every trial it was present (and it
// was present at least once).
bool always_accessible(const AccessMatrix& matrix, std::size_t origin,
                       HostIdx h) {
  int present = 0;
  for (int t = 0; t < matrix.trials(); ++t) {
    if (!matrix.present(t, h)) continue;
    ++present;
    if (!matrix.accessible(t, origin, h)) return false;
  }
  return present > 0;
}

// True when origin o never saw the host in any trial.
bool never_accessible(const AccessMatrix& matrix, std::size_t origin,
                      HostIdx h) {
  for (int t = 0; t < matrix.trials(); ++t) {
    if (matrix.present(t, h) && matrix.accessible(t, origin, h)) return false;
  }
  return true;
}

}  // namespace

ExclusivityResult compute_exclusivity(const Classification& classification) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  ExclusivityResult result;
  result.origin_codes = matrix.origin_codes();
  result.exclusively_accessible.assign(origins, 0);
  result.exclusively_inaccessible.assign(origins, 0);
  result.accessible_by_country.resize(origins);
  result.accessible_by_as.resize(origins);

  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    // Exclusive accessibility: exactly one origin always sees the host
    // and every other origin never does.
    std::size_t always = origins;  // sentinel
    std::size_t always_count = 0;
    std::size_t never_count = 0;
    for (std::size_t o = 0; o < origins; ++o) {
      if (always_accessible(matrix, o, h)) {
        always = o;
        ++always_count;
      } else if (never_accessible(matrix, o, h)) {
        ++never_count;
      }
    }
    if (always_count == 1 && never_count == origins - 1) {
      ++result.exclusively_accessible[always];
      ++result.accessible_by_country[always][matrix.host_country(h)];
      ++result.accessible_by_as[always][matrix.host_as(h)];
    }

    // Exclusive inaccessibility: exactly one origin is long-term
    // inaccessible and nobody else is.
    std::size_t longterm = origins;
    std::size_t longterm_count = 0;
    for (std::size_t o = 0; o < origins; ++o) {
      if (classification.host_class(o, h) == HostClass::kLongTerm) {
        longterm = o;
        ++longterm_count;
      }
    }
    if (longterm_count == 1) {
      ++result.exclusively_inaccessible[longterm];
    }
  }
  return result;
}

std::vector<double> ExclusivityResult::accessible_percent() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : exclusively_accessible) total += v;
  std::vector<double> out;
  for (std::uint64_t v : exclusively_accessible) {
    out.push_back(total == 0 ? 0.0
                             : 100.0 * static_cast<double>(v) /
                                   static_cast<double>(total));
  }
  return out;
}

std::vector<double> ExclusivityResult::inaccessible_percent() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : exclusively_inaccessible) total += v;
  std::vector<double> out;
  for (std::uint64_t v : exclusively_inaccessible) {
    out.push_back(total == 0 ? 0.0
                             : 100.0 * static_cast<double>(v) /
                                   static_cast<double>(total));
  }
  return out;
}

std::vector<InCountryExclusive> in_country_exclusives(
    const Classification& classification,
    const std::vector<sim::CountryCode>& origin_countries) {
  const AccessMatrix& matrix = classification.matrix();
  auto exclusivity = compute_exclusivity(classification);

  std::vector<InCountryExclusive> out;
  for (std::size_t o = 0; o < origin_countries.size(); ++o) {
    InCountryExclusive entry;
    entry.country = origin_countries[o];
    if (!entry.country.valid()) {
      out.push_back(entry);
      continue;
    }
    // Hosts in this origin's own country that only it can reach.
    if (auto it = exclusivity.accessible_by_country[o].find(entry.country);
        it != exclusivity.accessible_by_country[o].end()) {
      entry.exclusive_hosts = it->second;
    }
    for (HostIdx h = 0; h < matrix.host_count(); ++h) {
      if (matrix.host_country(h) == entry.country &&
          matrix.trials_present(h) > 0) {
        ++entry.country_hosts;
      }
    }
    out.push_back(entry);
  }
  return out;
}

}  // namespace originscan::core
