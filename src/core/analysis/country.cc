#include "core/analysis/country.h"

#include <algorithm>

#include "stats/hypothesis.h"

namespace originscan::core {

CountryTable compute_country_table(const Classification& classification,
                                   const sim::Topology& topology) {
  (void)topology;
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  struct Accumulator {
    std::uint64_t ground_truth = 0;
    std::vector<std::uint64_t> longterm;          // per origin
    std::map<sim::AsId, std::uint64_t> by_as_max;  // worst-origin AS split
    std::vector<std::map<sim::AsId, std::uint64_t>> by_as;
  };
  std::map<sim::CountryCode, Accumulator> accumulators;

  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& acc = accumulators[matrix.host_country(h)];
    if (acc.longterm.empty()) {
      acc.longterm.assign(origins, 0);
      acc.by_as.resize(origins);
    }
    ++acc.ground_truth;
    for (std::size_t o = 0; o < origins; ++o) {
      if (classification.host_class(o, h) == HostClass::kLongTerm) {
        ++acc.longterm[o];
        ++acc.by_as[o][matrix.host_as(h)];
      }
    }
  }

  CountryTable table;
  table.origin_codes = matrix.origin_codes();
  for (auto& [country, acc] : accumulators) {
    CountryRow row;
    row.country = country;
    row.ground_truth_hosts = acc.ground_truth;
    row.inaccessible_percent.assign(origins, 0.0);
    std::size_t worst_origin = 0;
    double worst = -1;
    for (std::size_t o = 0; o < origins; ++o) {
      const double pct = acc.ground_truth == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(acc.longterm[o]) /
                                   static_cast<double>(acc.ground_truth);
      row.inaccessible_percent[o] = pct;
      if (pct > worst) {
        worst = pct;
        worst_origin = o;
      }
    }
    // How many ASes cover the majority of the worst origin's misses?
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto& [as, count] : acc.by_as[worst_origin]) {
      counts.push_back(count);
      total += count;
    }
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t covered = 0;
    for (std::uint64_t count : counts) {
      covered += count;
      ++row.dominating_ases;
      if (2 * covered > total) break;
    }
    table.rows.push_back(std::move(row));
  }
  std::sort(table.rows.begin(), table.rows.end(),
            [](const CountryRow& a, const CountryRow& b) {
              return a.ground_truth_hosts > b.ground_truth_hosts;
            });
  return table;
}

std::vector<std::vector<CountryRow>> bucket_top_countries(
    const CountryTable& table, int per_bucket) {
  std::vector<std::vector<CountryRow>> buckets(4);
  if (table.rows.empty()) return buckets;

  const double largest =
      static_cast<double>(table.rows.front().ground_truth_hosts);
  // Paper buckets >1M/>100K/>10K/>1K against a largest country of ~20M
  // hosts; express the boundaries as the same relative fractions.
  const double bounds[4] = {largest / 20.0, largest / 200.0,
                            largest / 2000.0, largest / 20000.0};

  for (int b = 0; b < 4; ++b) {
    const double upper =
        b == 0 ? largest + 1 : bounds[b - 1];
    std::vector<CountryRow> candidates;
    for (const auto& row : table.rows) {
      const auto hosts = static_cast<double>(row.ground_truth_hosts);
      if (hosts > bounds[b] && hosts <= upper) candidates.push_back(row);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const CountryRow& a, const CountryRow& b2) {
                const double ma = *std::max_element(
                    a.inaccessible_percent.begin(),
                    a.inaccessible_percent.end());
                const double mb = *std::max_element(
                    b2.inaccessible_percent.begin(),
                    b2.inaccessible_percent.end());
                return ma > mb;
              });
    if (static_cast<int>(candidates.size()) > per_bucket) {
      candidates.resize(per_bucket);
    }
    buckets[b] = std::move(candidates);
  }
  return buckets;
}

double host_count_inaccessibility_correlation(
    const Classification& classification) {
  const AccessMatrix& matrix = classification.matrix();
  std::map<sim::CountryCode, std::pair<double, double>> per_country;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& [hosts, missing] = per_country[matrix.host_country(h)];
    hosts += 1;
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      if (classification.host_class(o, h) == HostClass::kLongTerm) {
        missing += 1;
        break;  // count the host once, as "inaccessible from >=1 origin"
      }
    }
  }
  std::vector<double> xs, ys;
  for (const auto& [country, pair] : per_country) {
    xs.push_back(pair.first);
    ys.push_back(pair.second);
  }
  return stats::spearman(xs, ys).rho;
}

}  // namespace originscan::core
