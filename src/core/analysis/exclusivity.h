// Exclusive accessibility analysis (Table 1, Fig 6, Fig 7):
//   * exclusively accessible from origin o — o completed the handshake in
//     every trial the host was present, and no other origin ever did;
//   * exclusively inaccessible from o — o is long-term inaccessible and
//     no other origin is.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/classify.h"
#include "sim/country.h"

namespace originscan::core {

struct ExclusivityResult {
  std::vector<std::string> origin_codes;
  // Host counts per origin.
  std::vector<std::uint64_t> exclusively_accessible;
  std::vector<std::uint64_t> exclusively_inaccessible;

  // Row-normalized percentages (Table 1's layout).
  [[nodiscard]] std::vector<double> accessible_percent() const;
  [[nodiscard]] std::vector<double> inaccessible_percent() const;

  // For Fig 6/7 drill-down: per origin, exclusive-accessible hosts keyed
  // by destination country and by AS.
  std::vector<std::map<sim::CountryCode, std::uint64_t>>
      accessible_by_country;
  std::vector<std::map<sim::AsId, std::uint64_t>> accessible_by_as;
};

ExclusivityResult compute_exclusivity(const Classification& classification);

// Fig 6 core claim: for an origin country, the number of that country's
// hosts only reachable from within the country.
struct InCountryExclusive {
  sim::CountryCode country;
  std::uint64_t exclusive_hosts = 0;  // reachable only from the in-country origin
  std::uint64_t country_hosts = 0;    // the country's ground-truth hosts
};

std::vector<InCountryExclusive> in_country_exclusives(
    const Classification& classification,
    const std::vector<sim::CountryCode>& origin_countries);

}  // namespace originscan::core
