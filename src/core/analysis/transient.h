// Transient-loss analysis across destination ASes (Fig 9, Table 3): per
// (AS, origin) transient loss rates, the spread between the best and the
// worst origin, and the ASes where that spread is largest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/classify.h"
#include "sim/topology.h"

namespace originscan::core {

struct AsTransient {
  sim::AsId as = sim::kNoAs;
  std::string name;
  std::string country;
  std::uint64_t ground_truth_hosts = 0;
  // Per origin: distinct hosts transiently missed (union over trials).
  std::vector<std::uint64_t> transient_hosts;
  // Per origin: rate = transient_hosts / ground_truth_hosts.
  std::vector<double> rate;

  [[nodiscard]] double max_rate() const;
  [[nodiscard]] double min_rate() const;
  // The paper's Table 3 columns.
  [[nodiscard]] double delta_percent() const {
    return 100.0 * (max_rate() - min_rate());
  }
  [[nodiscard]] std::uint64_t diff_hosts() const;
  [[nodiscard]] double ratio() const;  // max/min host counts (min>=1)
};

// Per-AS transient statistics for all ASes with >= min_hosts GT hosts.
std::vector<AsTransient> transient_by_as(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts = 2);

// Fig 9: the distribution of (max-min) transient-loss-rate differences,
// optionally weighted by AS size. Returns the raw per-AS differences and
// weights so callers can build ECDFs.
struct TransientSpread {
  std::vector<double> differences;  // per AS, in rate units [0,1]
  std::vector<double> weights;      // AS ground-truth host counts
};
TransientSpread transient_spread(const std::vector<AsTransient>& by_as);

// Table 3: ASes with the largest host-count spread (`Diff`), restricted
// to the top `top_by_size` ASes by host count as the paper does.
std::vector<AsTransient> largest_transient_spread(
    std::vector<AsTransient> by_as, std::size_t top_by_size = 100,
    std::size_t take = 6);

}  // namespace originscan::core
