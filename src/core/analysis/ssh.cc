#include "core/analysis/ssh.h"

#include <algorithm>
#include <map>

namespace originscan::core {

TemporalBlockingSeries temporal_blocking_series(const AccessMatrix& matrix,
                                                const sim::Topology& topology,
                                                sim::AsId as, int trial) {
  TemporalBlockingSeries series;
  series.as_name = as == sim::kNoAs ? "(unrouted)" : topology.as_info(as).name;
  series.origin_codes = matrix.origin_codes();

  std::uint32_t hours = 1;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    hours = std::max<std::uint32_t>(hours, matrix.probe_hour(trial, h) + 1u);
  }

  const std::size_t origins = matrix.origins();
  series.series.assign(origins, std::vector<double>(hours, 0.0));
  std::vector<std::vector<double>> probed(
      origins, std::vector<double>(hours, 0.0));

  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.host_as(h) != as) continue;
    const std::uint8_t hour = matrix.probe_hour(trial, h);
    for (std::size_t o = 0; o < origins; ++o) {
      const sim::L7Outcome outcome = matrix.outcome(trial, o, h);
      if (outcome == sim::L7Outcome::kNotAttempted) continue;
      probed[o][hour] += 1.0;
      if (outcome == sim::L7Outcome::kResetAfterAccept) {
        series.series[o][hour] += 1.0;
      }
    }
  }
  for (std::size_t o = 0; o < origins; ++o) {
    for (std::uint32_t hr = 0; hr < hours; ++hr) {
      if (probed[o][hr] > 0) series.series[o][hr] /= probed[o][hr];
    }
  }
  return series;
}

std::vector<TemporalBlocker> find_temporal_blockers(
    const AccessMatrix& matrix, const sim::Topology& topology,
    double min_rst_share, std::uint64_t min_hosts) {
  struct Counts {
    std::uint64_t rst = 0;
    std::uint64_t hosts = 0;
  };
  std::map<sim::AsId, Counts> per_as;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& counts = per_as[matrix.host_as(h)];
    ++counts.hosts;
    bool rst = false;
    for (int t = 0; t < matrix.trials() && !rst; ++t) {
      for (std::size_t o = 0; o < matrix.origins() && !rst; ++o) {
        if (matrix.outcome(t, o, h) == sim::L7Outcome::kResetAfterAccept) {
          rst = true;
        }
      }
    }
    if (rst) ++counts.rst;
  }

  std::vector<TemporalBlocker> out;
  for (const auto& [as, counts] : per_as) {
    if (counts.hosts < min_hosts) continue;
    const double share = static_cast<double>(counts.rst) /
                         static_cast<double>(counts.hosts);
    if (share < min_rst_share) continue;
    TemporalBlocker blocker;
    blocker.as = as;
    blocker.name =
        as == sim::kNoAs ? "(unrouted)" : topology.as_info(as).name;
    blocker.rst_hosts = counts.rst;
    blocker.ssh_hosts = counts.hosts;
    out.push_back(std::move(blocker));
  }
  std::sort(out.begin(), out.end(),
            [](const TemporalBlocker& a, const TemporalBlocker& b) {
              return a.rst_hosts > b.rst_hosts;
            });
  return out;
}

SshMissBreakdown ssh_miss_breakdown(const Classification& classification) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  SshMissBreakdown breakdown;
  breakdown.origin_codes = matrix.origin_codes();
  breakdown.temporal_blocking.assign(origins, 0);
  breakdown.probabilistic_blocking.assign(origins, 0);
  breakdown.longterm_other.assign(origins, 0);
  breakdown.transient_other.assign(origins, 0);
  breakdown.unknown.assign(origins, 0);

  // Temporal (Alibaba-style) blocking is a *network-wide* RST signature
  // — the paper notes Alibaba is the only network that RSTs every host
  // once tripped. A lone RST (the occasional MaxStartups refusal) does
  // not qualify. Compute the per-(trial, origin, AS) RST share first.
  struct Cell {
    std::uint64_t attempted = 0;
    std::uint64_t rst = 0;
  };
  std::map<std::tuple<int, std::size_t, sim::AsId>, Cell> as_rst;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    for (std::size_t o = 0; o < origins; ++o) {
      for (int t = 0; t < matrix.trials(); ++t) {
        const sim::L7Outcome outcome = matrix.outcome(t, o, h);
        if (outcome == sim::L7Outcome::kNotAttempted) continue;
        auto& cell = as_rst[{t, o, matrix.host_as(h)}];
        ++cell.attempted;
        if (outcome == sim::L7Outcome::kResetAfterAccept) ++cell.rst;
      }
    }
  }
  const auto network_wide_rst = [&](int t, std::size_t o, sim::AsId as) {
    const auto it = as_rst.find({t, o, as});
    if (it == as_rst.end() || it->second.attempted < 5) return false;
    return it->second.rst * 2 > it->second.attempted;
  };

  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    for (std::size_t o = 0; o < origins; ++o) {
      for (int t = 0; t < matrix.trials(); ++t) {
        if (!classification.missing(t, o, h)) continue;
        const sim::L7Outcome outcome = matrix.outcome(t, o, h);
        if (outcome == sim::L7Outcome::kResetAfterAccept &&
            network_wide_rst(t, o, matrix.host_as(h))) {
          ++breakdown.temporal_blocking[o];
        } else if (outcome == sim::L7Outcome::kResetAfterAccept ||
                   outcome == sim::L7Outcome::kClosedBeforeData ||
                   (matrix.explicit_close(t, o, h) &&
                    outcome != sim::L7Outcome::kNotAttempted)) {
          // Explicitly refused pre-banner while someone else completed
          // the handshake: the MaxStartups signature.
          ++breakdown.probabilistic_blocking[o];
        } else {
          switch (classification.host_class(o, h)) {
            case HostClass::kLongTerm:
              ++breakdown.longterm_other[o];
              break;
            case HostClass::kTransient:
              ++breakdown.transient_other[o];
              break;
            default:
              ++breakdown.unknown[o];
              break;
          }
        }
      }
    }
  }
  return breakdown;
}

std::vector<double> retry_success_curve(
    const std::vector<scan::ScanResult>& results) {
  std::vector<double> out;
  for (const auto& result : results) {
    std::uint64_t responding = 0;
    std::uint64_t completed = 0;
    for (const auto& record : result.records) {
      if (record.synack_mask == 0) continue;
      ++responding;
      if (record.l7_completed()) ++completed;
    }
    out.push_back(responding == 0 ? 0.0
                                  : static_cast<double>(completed) /
                                        static_cast<double>(responding));
  }
  return out;
}

}  // namespace originscan::core
