#include "core/analysis/stability.h"

#include <algorithm>
#include <map>

namespace originscan::core {

StabilityResult compute_stability(const Classification& classification,
                                  std::uint64_t min_hosts) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();
  const int trials = matrix.trials();

  StabilityResult result;
  result.origin_codes = matrix.origin_codes();
  result.consistent_best_by_origin.assign(origins, 0);
  result.consistent_worst_by_origin.assign(origins, 0);

  // Per AS: misses[trial][origin] over ground-truth hosts of that trial.
  struct AsCounts {
    std::uint64_t ground_truth = 0;
    std::vector<std::vector<std::uint64_t>> misses;  // [trial][origin]
    bool any_missing = false;
  };
  std::map<sim::AsId, AsCounts> per_as;

  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& entry = per_as[matrix.host_as(h)];
    if (entry.misses.empty()) {
      entry.misses.assign(trials, std::vector<std::uint64_t>(origins, 0));
    }
    ++entry.ground_truth;
    for (int t = 0; t < trials; ++t) {
      if (!matrix.present(t, h)) continue;
      for (std::size_t o = 0; o < origins; ++o) {
        // Section 5.1 ranks origins by *transient* loss: long-term
        // blocking would otherwise make every blocked origin trivially
        // "consistently worst".
        if (!matrix.accessible(t, o, h) &&
            classification.host_class(o, h) == HostClass::kTransient) {
          ++entry.misses[t][o];
          entry.any_missing = true;
        }
      }
    }
  }

  for (const auto& [as, entry] : per_as) {
    if (entry.ground_truth < min_hosts || !entry.any_missing) continue;
    ++result.ases_considered;

    // Unique best/worst origin per trial (ties disqualify).
    std::vector<int> best(trials, -1);
    std::vector<int> worst(trials, -1);
    for (int t = 0; t < trials; ++t) {
      const auto& row = entry.misses[t];
      const auto [min_it, max_it] =
          std::minmax_element(row.begin(), row.end());
      if (std::count(row.begin(), row.end(), *min_it) == 1) {
        best[t] = static_cast<int>(min_it - row.begin());
      }
      if (std::count(row.begin(), row.end(), *max_it) == 1) {
        worst[t] = static_cast<int>(max_it - row.begin());
      }
    }

    // Flip: some origin is best in one trial and worst in another.
    bool flipped = false;
    for (int t1 = 0; t1 < trials && !flipped; ++t1) {
      for (int t2 = 0; t2 < trials && !flipped; ++t2) {
        if (best[t1] >= 0 && best[t1] == worst[t2]) flipped = true;
      }
    }
    if (flipped) ++result.flip_ases;

    const bool best_consistent =
        best[0] >= 0 &&
        std::all_of(best.begin(), best.end(),
                    [&](int b) { return b == best[0]; });
    if (best_consistent) {
      ++result.consistent_best_ases;
      ++result.consistent_best_by_origin[static_cast<std::size_t>(best[0])];
    }
    const bool worst_consistent =
        worst[0] >= 0 &&
        std::all_of(worst.begin(), worst.end(),
                    [&](int w) { return w == worst[0]; });
    if (worst_consistent) {
      ++result.consistent_worst_ases;
      ++result.consistent_worst_by_origin[static_cast<std::size_t>(worst[0])];
    }
  }
  return result;
}

}  // namespace originscan::core
