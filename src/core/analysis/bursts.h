// Burst-outage detection (Section 5.3): build the hourly time series of
// transiently missed hosts per (origin, destination AS, trial), smooth it
// with the MSE-minimizing rolling window, and flag hours whose noise
// component exceeds two standard deviations. Reports the share of
// transient loss that coincides with bursts and how many origins share
// each burst.
#pragma once

#include <cstdint>
#include <vector>

#include "core/classify.h"

namespace originscan::core {

struct BurstReport {
  std::vector<std::string> origin_codes;

  std::uint64_t transient_loss_total = 0;     // host-instances
  std::uint64_t transient_loss_in_bursts = 0; // ... during a burst hour
  // ASes (with >= 1 transiently missing host) that had >= 1 burst.
  std::uint64_t ases_with_transients = 0;
  std::uint64_t ases_with_bursts = 0;
  // Distribution of how many origins share a burst (same AS+trial+hour):
  // simultaneity[k] = bursts seen by exactly k+1 origins.
  std::vector<std::uint64_t> simultaneity;
  // Of single-origin bursts, how many belong to each origin.
  std::vector<std::uint64_t> single_origin_bursts;

  [[nodiscard]] double burst_loss_fraction() const {
    return transient_loss_total == 0
               ? 0.0
               : static_cast<double>(transient_loss_in_bursts) /
                     static_cast<double>(transient_loss_total);
  }
};

struct BurstOptions {
  std::size_t min_window = 2;
  std::size_t max_window = 8;
  double sigma = 2.0;
  std::uint64_t min_as_hosts = 50;  // skip tiny ASes (noise)
};

BurstReport detect_burst_outages(const Classification& classification,
                                 const BurstOptions& options = {});

}  // namespace originscan::core
