#include "core/analysis/packet_loss.h"

#include <map>

namespace originscan::core {
namespace {

// Counts a host toward the estimate when it answered >= 1 probe with a
// SYN-ACK and is in the trial's ground truth (the paper's filters).
void accumulate(const AccessMatrix& matrix, int trial, std::size_t origin,
                HostIdx h, LossEstimate& estimate) {
  const std::uint8_t mask = matrix.synack_mask(trial, origin, h);
  if (mask == 0b11) {
    ++estimate.double_response_hosts;
  } else if (mask == 0b01 || mask == 0b10) {
    ++estimate.single_response_hosts;
  }
}

}  // namespace

std::vector<std::vector<LossEstimate>> global_loss(
    const AccessMatrix& matrix) {
  std::vector<std::vector<LossEstimate>> out(
      matrix.trials(), std::vector<LossEstimate>(matrix.origins()));
  for (int t = 0; t < matrix.trials(); ++t) {
    for (HostIdx h = 0; h < matrix.host_count(); ++h) {
      if (!matrix.present(t, h)) continue;
      for (std::size_t o = 0; o < matrix.origins(); ++o) {
        accumulate(matrix, t, o, h, out[t][o]);
      }
    }
  }
  return out;
}

std::vector<AsLoss> loss_by_as(const AccessMatrix& matrix,
                               const sim::Topology& topology,
                               std::uint64_t min_hosts) {
  std::map<sim::AsId, AsLoss> per_as;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& entry = per_as[matrix.host_as(h)];
    if (entry.per_origin.empty()) {
      entry.as = matrix.host_as(h);
      entry.per_origin.assign(matrix.origins(), LossEstimate{});
    }
    ++entry.ground_truth_hosts;
    for (int t = 0; t < matrix.trials(); ++t) {
      if (!matrix.present(t, h)) continue;
      for (std::size_t o = 0; o < matrix.origins(); ++o) {
        accumulate(matrix, t, o, h, entry.per_origin[o]);
      }
    }
  }
  std::vector<AsLoss> out;
  for (auto& [as, entry] : per_as) {
    if (entry.ground_truth_hosts < min_hosts) continue;
    entry.name =
        as == sim::kNoAs ? "(unrouted)" : topology.as_info(as).name;
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<stats::SpearmanResult> loss_vs_transient_correlation(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts) {
  const AccessMatrix& matrix = classification.matrix();
  const auto losses = loss_by_as(matrix, topology, min_hosts);

  // Transient rate per (AS, origin).
  std::map<sim::AsId, std::vector<double>> transient_rate;
  std::map<sim::AsId, std::uint64_t> ground_truth;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& rates = transient_rate[matrix.host_as(h)];
    if (rates.empty()) rates.assign(matrix.origins(), 0.0);
    ++ground_truth[matrix.host_as(h)];
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      if (classification.host_class(o, h) == HostClass::kTransient) {
        rates[o] += 1.0;
      }
    }
  }

  std::vector<stats::SpearmanResult> out;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    std::vector<double> xs, ys;
    for (const auto& entry : losses) {
      auto it = transient_rate.find(entry.as);
      if (it == transient_rate.end()) continue;
      xs.push_back(entry.per_origin[o].rate());
      ys.push_back(it->second[o] /
                   static_cast<double>(ground_truth[entry.as]));
    }
    out.push_back(stats::spearman(xs, ys));
  }
  return out;
}

stats::SpearmanResult per_as_loss_vs_transient(
    const Classification& classification, const AsLoss& as_loss,
    const std::vector<std::uint64_t>& transient_hosts_per_origin) {
  (void)classification;
  std::vector<double> xs, ys;
  for (std::size_t o = 0; o < as_loss.per_origin.size(); ++o) {
    xs.push_back(as_loss.per_origin[o].rate());
    ys.push_back(static_cast<double>(transient_hosts_per_origin[o]));
  }
  return stats::spearman(xs, ys);
}

}  // namespace originscan::core
