// Packet-drop estimation (Section 5.2, Fig 10). ZMap sends two
// back-to-back SYNs; a host answering exactly one of them witnessed one
// dropped packet (in either direction). Following the paper, the
// estimator excludes RST responders, restricts itself to hosts that
// completed an L7 handshake with some origin in the trial, and is a
// lower bound because double losses are indistinguishable from dead
// hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/classify.h"
#include "sim/topology.h"
#include "stats/hypothesis.h"

namespace originscan::core {

struct LossEstimate {
  std::uint64_t single_response_hosts = 0;  // exactly one probe answered
  std::uint64_t double_response_hosts = 0;
  // singles / (singles + 2*doubles): the per-probe drop-rate lower bound.
  [[nodiscard]] double rate() const {
    const std::uint64_t probes =
        single_response_hosts + 2 * double_response_hosts;
    return probes == 0 ? 0.0
                       : static_cast<double>(single_response_hosts) /
                             static_cast<double>(probes);
  }
};

// Global per (origin, trial) drop estimates.
std::vector<std::vector<LossEstimate>> global_loss(
    const AccessMatrix& matrix);  // [trial][origin]

struct AsLoss {
  sim::AsId as = sim::kNoAs;
  std::string name;
  std::uint64_t ground_truth_hosts = 0;
  std::vector<LossEstimate> per_origin;  // aggregated over trials
};

std::vector<AsLoss> loss_by_as(const AccessMatrix& matrix,
                               const sim::Topology& topology,
                               std::uint64_t min_hosts = 10);

// Per-origin Spearman correlation across ASes between estimated packet
// loss and transient host-loss rate (the paper reports rho = 0.40-0.52).
std::vector<stats::SpearmanResult> loss_vs_transient_correlation(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts = 10);

// Fig 10 per-AS view: across origins, does the origin with more packet
// loss miss more hosts in this AS?
stats::SpearmanResult per_as_loss_vs_transient(
    const Classification& classification, const AsLoss& as_loss,
    const std::vector<std::uint64_t>& transient_hosts_per_origin);

}  // namespace originscan::core
