// Coverage analysis (Fig 1, Appendix A Table 4): the fraction of each
// trial's ground-truth hosts seen by each origin, for 1- and 2-probe
// scans, plus intersection/union statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/access_matrix.h"

namespace originscan::core {

struct CoverageTable {
  std::vector<std::string> origin_codes;
  // coverage[trial][origin], as a fraction in [0, 1].
  std::vector<std::vector<double>> two_probe;
  std::vector<std::vector<double>> single_probe;
  // Ground-truth union size per trial, and the fraction of hosts every
  // origin agreed on (the intersection).
  std::vector<std::uint64_t> union_size;
  std::vector<double> intersection_fraction;
  // Partial-grid bookkeeping: cell_present[trial][origin] is false when
  // that scan was lost to the supervisor's retry budget. A lost cell's
  // coverage entries read 0 and are excluded from the per-origin means
  // and from the trial's intersection; lost_cells lists them as
  // (trial, origin code) pairs for report headers.
  std::vector<std::vector<bool>> cell_present;
  std::vector<std::pair<int, std::string>> lost_cells;

  // Mean across trials for one origin, excluding trials whose cell was
  // lost (never dividing a shrunken sum by the full trial count).
  [[nodiscard]] double mean_two_probe(std::size_t origin) const;
  [[nodiscard]] double mean_single_probe(std::size_t origin) const;
};

CoverageTable compute_coverage(const AccessMatrix& matrix);

}  // namespace originscan::core
