// Country-level long-term inaccessibility (Table 2 / Table 5): for each
// (origin, country), the percentage of the country's ground-truth hosts
// long-term inaccessible from the origin, plus the per-country AS
// concentration that the paper color-codes (how many ASes it takes to
// cover the majority of the country's missing hosts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/classify.h"
#include "sim/country.h"
#include "sim/topology.h"

namespace originscan::core {

struct CountryRow {
  sim::CountryCode country;
  std::uint64_t ground_truth_hosts = 0;
  // Per origin: % of this country's hosts long-term inaccessible.
  std::vector<double> inaccessible_percent;
  // Smallest number of ASes that together hold > 50% of the country's
  // long-term missing hosts, maximized over origins with significant
  // loss; 1 = one AS dominates (the paper's red cells).
  int dominating_ases = 0;
};

struct CountryTable {
  std::vector<std::string> origin_codes;
  std::vector<CountryRow> rows;  // sorted by ground-truth size, descending
};

CountryTable compute_country_table(const Classification& classification,
                                   const sim::Topology& topology);

// Selects, for each host-count bucket boundary, the `per_bucket` rows
// with the highest max-over-origins inaccessibility (the paper's Table 2
// layout: 5 columns each for >1M, >100K, >10K, >1K equivalent sizes).
// Bucket boundaries are given as fractions of the largest country's
// host count, since the simulation is scale-reduced.
std::vector<std::vector<CountryRow>> bucket_top_countries(
    const CountryTable& table, int per_bucket = 5);

// Spearman correlation between a country's host count and its number of
// inaccessible hosts (Section 4.4 reports rho = 0.92).
double host_count_inaccessibility_correlation(
    const Classification& classification);

}  // namespace originscan::core
