#include "core/analysis/multi_origin.h"

#include <algorithm>

#include "stats/combinatorics.h"

namespace originscan::core {
namespace {

std::string label_for(const AccessMatrix& matrix,
                      const std::vector<std::size_t>& indices) {
  std::string label;
  for (std::size_t index : indices) {
    if (!label.empty()) label += '+';
    label += matrix.origin_codes()[index];
  }
  return label;
}

// Coverage of the union of `indices` in one trial.
void trial_coverage(const AccessMatrix& matrix,
                    const std::vector<std::size_t>& indices, int trial,
                    double& two_probe, double& single_probe) {
  std::uint64_t present = 0, covered2 = 0, covered1 = 0;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (!matrix.present(trial, h)) continue;
    ++present;
    bool any2 = false, any1 = false;
    for (std::size_t o : indices) {
      if (matrix.accessible(trial, o, h)) {
        any2 = true;
        if (matrix.accessible_single_probe(trial, o, h)) any1 = true;
      }
    }
    if (any2) ++covered2;
    if (any1) ++covered1;
  }
  two_probe = present == 0 ? 0.0
                           : static_cast<double>(covered2) /
                                 static_cast<double>(present);
  single_probe = present == 0 ? 0.0
                              : static_cast<double>(covered1) /
                                    static_cast<double>(present);
}

}  // namespace

ComboCoverage combo_coverage(const AccessMatrix& matrix,
                             const std::vector<std::size_t>& origin_indices) {
  ComboCoverage combo;
  combo.origin_indices = origin_indices;
  combo.label = label_for(matrix, origin_indices);
  for (int t = 0; t < matrix.trials(); ++t) {
    double two = 0, one = 0;
    trial_coverage(matrix, origin_indices, t, two, one);
    combo.mean_two_probe += two;
    combo.mean_single_probe += one;
  }
  if (matrix.trials() > 0) {
    combo.mean_two_probe /= matrix.trials();
    combo.mean_single_probe /= matrix.trials();
  }
  return combo;
}

MultiOriginResult multi_origin_coverage(
    const AccessMatrix& matrix, int k,
    const std::vector<std::size_t>& exclude) {
  MultiOriginResult result;
  result.k = k;

  std::vector<std::size_t> pool;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    if (std::find(exclude.begin(), exclude.end(), o) == exclude.end()) {
      pool.push_back(o);
    }
  }
  const auto subsets =
      stats::k_subsets(pool.size(), static_cast<std::size_t>(k));

  for (const auto& subset : subsets) {
    std::vector<std::size_t> indices;
    indices.reserve(subset.size());
    for (std::size_t i : subset) indices.push_back(pool[i]);

    ComboCoverage combo;
    combo.origin_indices = indices;
    combo.label = label_for(matrix, indices);
    for (int t = 0; t < matrix.trials(); ++t) {
      double two = 0, one = 0;
      trial_coverage(matrix, indices, t, two, one);
      combo.mean_two_probe += two;
      combo.mean_single_probe += one;
      result.samples_two_probe.push_back(two);
      result.samples_single_probe.push_back(one);
    }
    if (matrix.trials() > 0) {
      combo.mean_two_probe /= matrix.trials();
      combo.mean_single_probe /= matrix.trials();
    }
    result.combos.push_back(std::move(combo));
  }
  return result;
}

const ComboCoverage* MultiOriginResult::best() const {
  const ComboCoverage* best = nullptr;
  for (const auto& combo : combos) {
    if (best == nullptr || combo.mean_two_probe > best->mean_two_probe) {
      best = &combo;
    }
  }
  return best;
}

const ComboCoverage* MultiOriginResult::worst() const {
  const ComboCoverage* worst = nullptr;
  for (const auto& combo : combos) {
    if (worst == nullptr || combo.mean_two_probe < worst->mean_two_probe) {
      worst = &combo;
    }
  }
  return worst;
}

}  // namespace originscan::core
