// Multi-origin coverage (Section 7, Fig 15/17/18): for every k-subset of
// origins, the union coverage of the trial's ground truth, for 1- and
// 2-probe scans. Reports the distribution across subsets x trials.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_matrix.h"
#include "stats/descriptive.h"

namespace originscan::core {

struct ComboCoverage {
  std::vector<std::size_t> origin_indices;
  std::string label;       // e.g. "AU+US1"
  double mean_two_probe = 0;   // across trials
  double mean_single_probe = 0;
};

struct MultiOriginResult {
  int k = 0;
  std::vector<ComboCoverage> combos;
  // All per-(combo, trial) coverage samples, for distribution summaries.
  std::vector<double> samples_two_probe;
  std::vector<double> samples_single_probe;

  [[nodiscard]] stats::Summary summary_two_probe() const {
    return stats::summarize(samples_two_probe);
  }
  [[nodiscard]] stats::Summary summary_single_probe() const {
    return stats::summarize(samples_single_probe);
  }
  // Best combo by mean two-probe coverage.
  [[nodiscard]] const ComboCoverage* best() const;
  [[nodiscard]] const ComboCoverage* worst() const;
};

// `exclude` removes origins from the pool (the paper excludes US64 and
// Carinet from the multi-origin analysis).
MultiOriginResult multi_origin_coverage(
    const AccessMatrix& matrix, int k,
    const std::vector<std::size_t>& exclude = {});

// Coverage of one specific combination (used to compare the colocated
// HE-NTT-TELIA triad against geographically diverse triads).
ComboCoverage combo_coverage(const AccessMatrix& matrix,
                             const std::vector<std::size_t>& origin_indices);

}  // namespace originscan::core
