#include "core/analysis/as_distribution.h"

#include <algorithm>
#include <map>

namespace originscan::core {

std::vector<std::vector<AsShare>> longterm_by_as(
    const Classification& classification, const sim::Topology& topology) {
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  // Ground-truth host count per AS (hosts present in >= 1 trial).
  std::map<sim::AsId, std::uint64_t> ground_truth;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) > 0) ++ground_truth[matrix.host_as(h)];
  }

  std::vector<std::vector<AsShare>> out(origins);
  for (std::size_t o = 0; o < origins; ++o) {
    std::map<sim::AsId, std::uint64_t> misses;
    std::uint64_t total = 0;
    for (HostIdx h = 0; h < matrix.host_count(); ++h) {
      if (classification.host_class(o, h) == HostClass::kLongTerm) {
        ++misses[matrix.host_as(h)];
        ++total;
      }
    }
    for (const auto& [as, count] : misses) {
      AsShare share;
      share.as = as;
      share.name = as == sim::kNoAs ? "(unrouted)" : topology.as_info(as).name;
      share.longterm_hosts = count;
      share.ground_truth_hosts = ground_truth[as];
      share.share_of_origin_misses =
          total == 0 ? 0.0
                     : static_cast<double>(count) / static_cast<double>(total);
      out[o].push_back(std::move(share));
    }
    std::sort(out[o].begin(), out[o].end(),
              [](const AsShare& a, const AsShare& b) {
                return a.longterm_hosts > b.longterm_hosts;
              });
  }
  return out;
}

std::vector<InaccessibleAsCounts> inaccessible_as_counts(
    const Classification& classification, const sim::Topology& topology,
    std::uint64_t min_hosts) {
  (void)topology;
  const AccessMatrix& matrix = classification.matrix();
  const std::size_t origins = matrix.origins();

  // Per (AS, origin): ground-truth hosts vs hosts the origin never saw.
  struct Counts {
    std::uint64_t ground_truth = 0;
    std::vector<std::uint64_t> never_seen;
  };
  std::map<sim::AsId, Counts> per_as;
  for (HostIdx h = 0; h < matrix.host_count(); ++h) {
    if (matrix.trials_present(h) == 0) continue;
    auto& counts = per_as[matrix.host_as(h)];
    if (counts.never_seen.empty()) counts.never_seen.assign(origins, 0);
    ++counts.ground_truth;
    for (std::size_t o = 0; o < origins; ++o) {
      bool seen = false;
      for (int t = 0; t < matrix.trials(); ++t) {
        if (matrix.present(t, h) && matrix.accessible(t, o, h)) seen = true;
      }
      if (!seen) ++counts.never_seen[o];
    }
  }

  std::vector<InaccessibleAsCounts> out(origins);
  for (std::size_t o = 0; o < origins; ++o) {
    out[o].origin_code = matrix.origin_codes()[o];
  }
  for (const auto& [as, counts] : per_as) {
    if (counts.ground_truth < min_hosts) continue;
    for (std::size_t o = 0; o < origins; ++o) {
      const double fraction = static_cast<double>(counts.never_seen[o]) /
                              static_cast<double>(counts.ground_truth);
      if (fraction >= 1.0) ++out[o].fully;
      if (fraction >= 0.75) ++out[o].at_least_75;
      if (fraction >= 0.50) ++out[o].at_least_50;
    }
  }
  return out;
}

}  // namespace originscan::core
