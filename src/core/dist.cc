#include "core/dist.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/goldens.h"
#include "core/store.h"
#include "netbase/byteio.h"
#include "netbase/frame.h"
#include "netbase/sha256.h"

namespace originscan::core {
namespace {

// ---- Transport helpers -----------------------------------------------

// MSG_NOSIGNAL everywhere: a peer death must surface as EPIPE, never as
// a process-wide SIGPIPE.
bool write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_message(int fd, const WireMessage& message) {
  return write_all(fd, encode_message(message));
}

// Blocking read of the next protocol message (worker side — the worker
// has exactly one peer and nothing else to do). nullopt = EOF, transport
// error, or an undecodable frame; the worker treats all three as "the
// master is gone" and exits.
std::optional<WireMessage> read_message(int fd, net::FrameDecoder& decoder) {
  for (;;) {
    if (auto payload = decoder.next()) return decode_message(*payload);
    if (decoder.error() != net::FrameError::kNone) return std::nullopt;
    std::uint8_t buffer[65536];
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;
    decoder.feed(std::span(buffer, static_cast<std::size_t>(n)));
  }
}

void put_string(net::ByteWriter& writer, std::string_view s) {
  writer.u32(static_cast<std::uint32_t>(s.size()));
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()));
}

std::string get_string(net::ByteReader& reader) {
  const std::uint32_t n = reader.u32();
  const auto bytes = reader.bytes(n);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::vector<std::uint8_t> get_bytes(net::ByteReader& reader) {
  const std::uint32_t n = reader.u32();
  const auto bytes = reader.bytes(n);
  return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
}

}  // namespace

// ---- Wire protocol ---------------------------------------------------

std::string_view segment_kind_name(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kRecords:
      return "records";
    case SegmentKind::kIds:
      return "ids";
    case SegmentKind::kMetrics:
      return "metrics";
  }
  return "?";
}

namespace {
#define OSN_X(symbol, value, name) DistProtocolSymbol{name, value},
constexpr DistProtocolSymbol kDistMessageSymbols[] = {
    OSN_DIST_MESSAGES(OSN_X)};
constexpr DistProtocolSymbol kDistSegmentSymbols[] = {
    OSN_DIST_SEGMENT_KINDS(OSN_X)};
#undef OSN_X
}  // namespace

std::span<const DistProtocolSymbol> dist_message_symbols() {
  return kDistMessageSymbols;
}
std::span<const DistProtocolSymbol> dist_segment_symbols() {
  return kDistSegmentSymbols;
}

std::vector<std::uint8_t> encode_message(const WireMessage& message) {
  std::vector<std::uint8_t> payload;
  net::ByteWriter writer(payload);
  writer.u8(static_cast<std::uint8_t>(message.type));
  switch (message.type) {
    case MsgType::kHello:
      writer.u32(message.worker);
      break;
    case MsgType::kClaim:
      break;
    case MsgType::kGrant:
      writer.u32(message.origin);
      writer.u32(message.chain_pos);
      writer.u32(message.grant);
      writer.u8(message.have_snapshot ? 1 : 0);
      writer.u32(static_cast<std::uint32_t>(message.snapshot.size()));
      writer.bytes(message.snapshot);
      break;
    case MsgType::kSegment:
      writer.u64(message.slot);
      writer.u8(static_cast<std::uint8_t>(message.kind));
      writer.u32(static_cast<std::uint32_t>(message.bytes.size()));
      writer.bytes(message.bytes);
      break;
    case MsgType::kDone:
      writer.u64(message.slot);
      writer.u32(message.attempts);
      writer.u8(message.lost ? 1 : 0);
      put_string(writer, message.sha256);
      put_string(writer, message.text);
      break;
    case MsgType::kAbort:
      put_string(writer, message.text);
      break;
  }
  return net::encode_frame(payload);
}

std::optional<WireMessage> decode_message(
    std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  WireMessage message;
  const std::uint8_t type = reader.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kAbort)) {
    return std::nullopt;
  }
  message.type = static_cast<MsgType>(type);
  switch (message.type) {
    case MsgType::kHello:
      message.worker = reader.u32();
      break;
    case MsgType::kClaim:
      break;
    case MsgType::kGrant:
      message.origin = reader.u32();
      message.chain_pos = reader.u32();
      message.grant = reader.u32();
      message.have_snapshot = reader.u8() != 0;
      message.snapshot = get_bytes(reader);
      break;
    case MsgType::kSegment: {
      message.slot = reader.u64();
      const std::uint8_t kind = reader.u8();
      if (kind > static_cast<std::uint8_t>(SegmentKind::kMetrics)) {
        return std::nullopt;
      }
      message.kind = static_cast<SegmentKind>(kind);
      message.bytes = get_bytes(reader);
      break;
    }
    case MsgType::kDone:
      message.slot = reader.u64();
      message.attempts = reader.u32();
      message.lost = reader.u8() != 0;
      message.sha256 = get_string(reader);
      message.text = get_string(reader);
      break;
    case MsgType::kAbort:
      message.text = get_string(reader);
      break;
  }
  if (!reader.ok() || reader.remaining() != 0) return std::nullopt;
  return message;
}

// ---- Segment merging -------------------------------------------------

void SegmentMerger::add(std::uint64_t slot, SegmentKind kind,
                        std::vector<std::uint8_t> bytes) {
  // Last write wins: a re-granted cell's segments are byte-identical by
  // the determinism contract, so overwriting is idempotent (and the
  // fuzz suite's duplicated frames land here harmlessly).
  segments_[{slot, static_cast<std::uint8_t>(kind)}] = std::move(bytes);
}

void SegmentMerger::drop_slot(std::uint64_t slot) {
  for (std::uint8_t kind = 0; kind <= 2; ++kind) {
    segments_.erase({slot, kind});
  }
}

const std::vector<std::uint8_t>* SegmentMerger::get(std::uint64_t slot,
                                                    SegmentKind kind) const {
  const auto it = segments_.find({slot, static_cast<std::uint8_t>(kind)});
  return it == segments_.end() ? nullptr : &it->second;
}

bool SegmentMerger::complete(std::uint64_t slot) const {
  return get(slot, SegmentKind::kRecords) != nullptr &&
         get(slot, SegmentKind::kIds) != nullptr &&
         get(slot, SegmentKind::kMetrics) != nullptr;
}

std::string SegmentMerger::digest() const {
  std::vector<std::uint8_t> canon;
  net::ByteWriter writer(canon);
  for (const auto& [key, bytes] : segments_) {
    writer.u64(key.first);
    writer.u8(key.second);
    writer.u32(static_cast<std::uint32_t>(bytes.size()));
    writer.bytes(bytes);
  }
  return net::Sha256::hex(net::Sha256::of(canon));
}

// ---- Worker ----------------------------------------------------------

namespace {

// A kill fault is a real SIGKILL — no destructors, no flushes, exactly
// what the master must be able to absorb. A stall is a worker that
// never progresses; only the master's deadline can end it.
[[noreturn]] void fault_kill() {
  ::raise(SIGKILL);
  std::_Exit(137);  // unreachable; placates noreturn
}

[[noreturn]] void fault_stall() {
  for (;;) ::pause();
}

// Queries both worker fault points at a protocol checkpoint. `torn`
// (optional) is a fully framed message the kill tears in half on the
// wire first — the mid-SEGMENT death leaves the master a partial frame,
// which its decoder must classify, not choke on.
void worker_checkpoint(const fault::FaultInjector* faults, int worker,
                       fault::WorkerPhase phase, std::uint64_t cell,
                       int grant, int fd,
                       const std::vector<std::uint8_t>* torn) {
  if (faults == nullptr) return;
  if (faults->worker_kill(worker, phase, cell, grant)) {
    if (torn != nullptr && torn->size() >= 2) {
      (void)write_all(fd, std::span(torn->data(), torn->size() / 2));
    }
    fault_kill();
  }
  if (faults->worker_stall(worker, phase, cell, grant)) {
    fault_stall();
  }
}

}  // namespace

void run_worker(int fd, int worker_index, Experiment& experiment,
                const SupervisorPolicy& policy) {
  const fault::FaultInjector* faults = experiment.config().faults;
  worker_checkpoint(faults, worker_index, fault::WorkerPhase::kHello, 0, 0,
                    fd, nullptr);

  // All worker->master traffic funnels through here so the frame_garble
  // fault point sees one monotone frame index per process. A garbled
  // frame fails the master's CRC/decode check (dist.frame_errors), which
  // fails this worker and re-grants its chain — transport corruption is
  // absorbed by the same machinery as a worker death.
  std::uint64_t frames_sent = 0;
  const auto send_frame = [&](std::vector<std::uint8_t> frame) {
    const std::uint64_t frame_index = frames_sent++;
    if (faults != nullptr && !frame.empty() &&
        faults->frame_garble(worker_index, frame_index)) {
      const std::uint64_t offset =
          faults->garble_offset(worker_index, frame_index, frame.size());
      frame[offset] ^= 0x40;
      if (experiment.config().metrics != nullptr) {
        experiment.config().metrics->add(obsv::Counter::kFaultFrameGarble);
      }
    }
    return write_all(fd, frame);
  };
  const auto send = [&](const WireMessage& message) {
    return send_frame(encode_message(message));
  };

  WireMessage hello;
  hello.type = MsgType::kHello;
  hello.worker = static_cast<std::uint32_t>(worker_index);
  if (!send(hello)) return;

  const std::size_t origin_count = experiment.world().origins.size();
  const std::size_t chain_len = experiment.cell_count() / origin_count;

  // Engine and supervisor are built lazily on the first grant: a worker
  // that only ever parks (more workers than chains) never pays for the
  // per-trial Internets.
  std::optional<CellEngine> engine;
  std::optional<CellSupervisor> supervisor;
  net::FrameDecoder decoder;

  for (;;) {
    WireMessage claim;
    claim.type = MsgType::kClaim;
    if (!send(claim)) return;

    const auto grant_msg = read_message(fd, decoder);
    if (!grant_msg.has_value() || grant_msg->type != MsgType::kGrant) {
      return;  // ABORT, EOF, or protocol breakage: shut down
    }
    if (grant_msg->origin >= origin_count ||
        grant_msg->chain_pos >= chain_len) {
      return;
    }

    if (!engine.has_value()) {
      engine.emplace(experiment);
      engine->set_scan_jobs(experiment.config().jobs);
      supervisor.emplace(policy, faults, experiment.config().scenario.seed);
    }

    const auto origin = static_cast<sim::OriginId>(grant_msg->origin);
    IdsSnapshot snapshot;  // empty = chain start
    if (grant_msg->have_snapshot) {
      auto parsed = IdsSnapshot::parse(grant_msg->snapshot);
      if (!parsed.has_value()) return;
      snapshot = std::move(*parsed);
    }
    // Restore unconditionally: a previous grant on this worker may have
    // left another chain's-worth of state for this origin... it cannot
    // have (origins are granted to one worker at a time), but restoring
    // from the master's snapshot is what makes the worker stateless.
    engine->restore_origin(origin, snapshot);

    for (std::size_t pos = grant_msg->chain_pos; pos < chain_len; ++pos) {
      const std::uint64_t slot = pos * origin_count + origin;
      // Only the granted start cell carries a retry count — a re-grant
      // always restarts at the chain's first un-DONEd cell, so every
      // later cell is on its first grant.
      const int grant =
          pos == grant_msg->chain_pos ? static_cast<int>(grant_msg->grant) : 0;
      worker_checkpoint(faults, worker_index, fault::WorkerPhase::kClaim,
                        slot, grant, fd, nullptr);

      obsv::MetricBlock cell_block;
      CellOutcome outcome = engine->run_cell(slot, *supervisor, &cell_block);

      if (outcome.status == CellOutcome::Status::kKilled) {
        WireMessage abort_msg;
        abort_msg.type = MsgType::kAbort;
        abort_msg.text = "cell_crash fault";
        (void)send(abort_msg);
        return;
      }

      WireMessage done;
      done.type = MsgType::kDone;
      done.slot = slot;
      done.attempts = static_cast<std::uint32_t>(outcome.attempts);

      if (outcome.status == CellOutcome::Status::kLost) {
        // The supervisor already rolled the IDS back to the pre-cell
        // snapshot, so the chain continues as if the cell never ran.
        done.lost = true;
        done.text = outcome.reason;
        worker_checkpoint(faults, worker_index, fault::WorkerPhase::kDone,
                          slot, grant, fd, nullptr);
        if (!send(done)) return;
        continue;
      }

      // Stream the cell: exactly the three artifacts the journal would
      // persist, in the bytes the journal would write.
      const IdsSnapshot post = engine->capture_origin(origin);
      WireMessage segment;
      segment.type = MsgType::kSegment;
      segment.slot = slot;

      segment.kind = SegmentKind::kRecords;
      segment.bytes = serialize_results({outcome.result});
      const std::vector<std::uint8_t> records_frame = encode_message(segment);
      worker_checkpoint(faults, worker_index, fault::WorkerPhase::kSegment,
                        slot, grant, fd, &records_frame);
      if (!send_frame(records_frame)) return;

      segment.kind = SegmentKind::kIds;
      segment.bytes = serialize_cell_sidecar(post, outcome.result.l4_stats,
                                             outcome.result.attempt_histogram);
      if (!send(segment)) return;

      segment.kind = SegmentKind::kMetrics;
      segment.bytes = cell_block.serialize();
      if (!send(segment)) return;

      done.sha256 = digest_of(outcome.result).record_sha256;
      worker_checkpoint(faults, worker_index, fault::WorkerPhase::kDone, slot,
                        grant, fd, nullptr);
      if (!send(done)) return;
    }
  }
}

// ---- Master ----------------------------------------------------------

// The distributed master (friend of Experiment): forks workers, grants
// origin chains, merges streamed segments, and records outcomes through
// the same journal path run_journaled uses — which is what makes the
// journal directory, the metrics snapshot, and the final grid
// byte-identical to a single-process run.
class GridMaster {
 public:
  using Clock = std::chrono::steady_clock;

  GridMaster(Experiment& experiment, ExperimentJournal* journal,
             const SupervisorPolicy& policy, const DistOptions& options,
             obsv::MetricBlock* dist_metrics,
             const std::function<void(std::string_view)>& progress)
      : experiment_(experiment),
        journal_(journal),
        policy_(policy),
        options_(options),
        dist_(dist_metrics),
        progress_(progress) {}

  RunReport run();

 private:
  // One origin's serial chain of cells. `pos` is the first un-settled
  // chain position; `snapshot` is the IDS state that position expects
  // (the latest DONEd cell's post-state). `grant_failures` counts worker
  // deaths attributed to the cell at `pos`.
  struct Chain {
    sim::OriginId origin = 0;
    std::size_t pos = 0;
    IdsSnapshot snapshot;
    bool have_snapshot = false;
    int grant_failures = 0;
    bool active = false;  // currently granted to a live worker
  };

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    int index = -1;
    net::FrameDecoder decoder;
    bool helloed = false;
    bool claim_pending = false;  // parked: waiting for a chain
    bool failed = false;         // scheduled for fail_worker this sweep
    bool dead = false;           // reaped; erase at sweep
    int chain = -1;              // index into chains_, -1 = none
    Clock::time_point deadline = Clock::time_point::max();
  };

  void bump(obsv::Counter counter, std::uint64_t by = 1) {
    if (dist_ != nullptr) dist_->add(counter, by);
  }

  [[nodiscard]] std::size_t chain_slot(const Chain& chain) const {
    return chain.pos * experiment_.world_.origins.size() + chain.origin;
  }

  [[nodiscard]] bool all_done() const {
    return std::all_of(chains_.begin(), chains_.end(), [&](const Chain& c) {
      return c.pos >= chain_len_;
    });
  }

  [[nodiscard]] std::size_t chains_remaining() const {
    return static_cast<std::size_t>(
        std::count_if(chains_.begin(), chains_.end(),
                      [&](const Chain& c) { return c.pos < chain_len_; }));
  }

  void spawn_worker();
  void ensure_workers(bool initial);
  void dispatch_ready();
  void refresh_deadline(Worker& worker, Clock::time_point now);
  void handle_message(Worker& worker, WireMessage message,
                      Clock::time_point now);
  void handle_done(Worker& worker, WireMessage message);
  void mark_cell_lost(std::size_t slot, int attempts,
                      const std::string& reason);
  void fail_worker(Worker& worker);
  void reap(Worker& worker);
  void shutdown_all(bool graceful);
  RunReport finalize();

  Experiment& experiment_;
  ExperimentJournal* journal_;
  SupervisorPolicy policy_;
  DistOptions options_;
  obsv::MetricBlock* dist_;
  const std::function<void(std::string_view)>& progress_;

  std::size_t chain_len_ = 0;
  std::vector<Chain> chains_;
  std::deque<std::size_t> ready_;  // chain indices awaiting a grant
  std::vector<std::unique_ptr<Worker>> workers_;
  SegmentMerger merger_;
  RunReport report_;
  std::vector<std::size_t> lost_slots_;  // lost during this run
  int next_index_ = 0;
  int respawns_used_ = 0;
  bool killed_ = false;
  std::string kill_reason_;
};

void GridMaster::spawn_worker() {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error("socketpair failed for worker transport");
  }
  const int index = next_index_++;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error("fork failed spawning worker");
  }
  if (pid == 0) {
    // Child. Drop every master-side fd (ours and the other workers') so
    // the master's EOF detection only depends on actual worker deaths.
    ::close(sv[0]);
    for (const auto& other : workers_) {
      if (other->fd >= 0) ::close(other->fd);
    }
    if (!options_.worker_argv.empty()) {
      std::vector<std::string> argv_strings = options_.worker_argv;
      argv_strings.push_back("--fd");
      argv_strings.push_back(std::to_string(sv[1]));
      argv_strings.push_back("--worker-index");
      argv_strings.push_back(std::to_string(index));
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (std::string& s : argv_strings) argv.push_back(s.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);
    }
    if (options_.worker_main) {
      options_.worker_main(sv[1], index);
    } else {
      // Fork transport: the child runs against its copy-on-write view of
      // the master's (never-run) experiment — same world, same faults,
      // private IDS state. The master is single-threaded here, so the
      // fork is safe even under TSan.
      run_worker(sv[1], index, experiment_, policy_);
    }
    std::_Exit(0);
  }
  ::close(sv[1]);
  auto worker = std::make_unique<Worker>();
  worker->pid = pid;
  worker->fd = sv[0];
  worker->index = index;
  worker->deadline = Clock::now() + options_.hello_timeout;
  workers_.push_back(std::move(worker));
  bump(obsv::Counter::kDistWorkersSpawned);
}

void GridMaster::ensure_workers(bool initial) {
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, options_.workers)),
      chains_remaining());
  while (workers_.size() < want) {
    if (!initial) {
      if (respawns_used_ >= options_.respawn_budget) {
        if (workers_.empty()) {
          shutdown_all(/*graceful=*/false);
          throw std::runtime_error(
              "distributed run stalled: worker respawn budget (" +
              std::to_string(options_.respawn_budget) +
              ") exhausted with " + std::to_string(chains_remaining()) +
              " origin chains unfinished");
        }
        break;
      }
      ++respawns_used_;
      bump(obsv::Counter::kDistWorkersRestarted);
    }
    spawn_worker();
  }
}

void GridMaster::dispatch_ready() {
  if (journal_ != nullptr && journal_->storage_dead()) {
    // Storage died: granting more work would only produce results that
    // cannot be persisted. Drain the queue by failing every waiting
    // chain's remaining cells fast — active workers' in-flight cells
    // degrade one by one through handle_done's write-failure path.
    while (!ready_.empty()) {
      Chain& chain = chains_[ready_.front()];
      ready_.pop_front();
      while (chain.pos < chain_len_) {
        mark_cell_lost(chain_slot(chain), 0, "journal storage dead");
        ++chain.pos;
      }
    }
    return;
  }
  while (!ready_.empty()) {
    Worker* parked = nullptr;
    for (const auto& worker : workers_) {
      if (!worker->failed && !worker->dead && worker->helloed &&
          worker->claim_pending && worker->chain < 0) {
        parked = worker.get();
        break;
      }
    }
    if (parked == nullptr) return;

    const std::size_t ci = ready_.front();
    Chain& chain = chains_[ci];
    WireMessage grant;
    grant.type = MsgType::kGrant;
    grant.origin = static_cast<std::uint32_t>(chain.origin);
    grant.chain_pos = static_cast<std::uint32_t>(chain.pos);
    grant.grant = static_cast<std::uint32_t>(chain.grant_failures);
    grant.have_snapshot = chain.have_snapshot;
    if (chain.have_snapshot) grant.snapshot = chain.snapshot.serialize();
    if (!send_message(parked->fd, grant)) {
      // The worker died between its CLAIM and our grant; the poll loop
      // will reap it. The chain stays queued for the next candidate.
      parked->failed = true;
      continue;
    }
    ready_.pop_front();
    chain.active = true;
    parked->chain = static_cast<int>(ci);
    parked->claim_pending = false;
    parked->deadline = Clock::now() + options_.cell_timeout;
    bump(obsv::Counter::kDistChainsGranted);
    if (chain.grant_failures > 0) bump(obsv::Counter::kDistGrantRetries);
  }
}

void GridMaster::refresh_deadline(Worker& worker, Clock::time_point now) {
  if (!worker.helloed) return;  // hello deadline stays fixed from spawn
  if (worker.chain >= 0) {
    worker.deadline = now + options_.cell_timeout;
  } else if (worker.claim_pending) {
    worker.deadline = Clock::time_point::max();  // parked: no work, no clock
  } else {
    worker.deadline = now + options_.cell_timeout;  // CLAIM expected
  }
}

void GridMaster::mark_cell_lost(std::size_t slot, int attempts,
                                const std::string& reason) {
  const CellKey key = experiment_.cell_key_at(slot);
  if (journal_ != nullptr) {
    std::string journal_error;
    if (!journal_->record_lost(key, attempts, reason, &journal_error)) {
      // The cell is already lost in-memory; a failed lost-line append
      // just means a resume re-runs it instead of adopting the loss.
      bump(obsv::Counter::kJournalWritesFailed);
    }
  }
  experiment_.lost_[slot] = true;
  lost_slots_.push_back(slot);
  bump(obsv::Counter::kDistCellsLost);
  if (progress_) {
    progress_("trial " + std::to_string(key.trial + 1) + " " +
              std::string(proto::name_of(key.protocol)) + " " +
              key.origin_code + ": LOST (" + reason + ")");
  }
}

void GridMaster::handle_done(Worker& worker, WireMessage message) {
  if (worker.chain < 0) {
    worker.failed = true;
    return;
  }
  Chain& chain = chains_[static_cast<std::size_t>(worker.chain)];
  const std::size_t slot = chain_slot(chain);
  if (message.slot != slot) {
    worker.failed = true;
    return;
  }
  const CellKey key = experiment_.cell_key_at(slot);
  report_.retries += static_cast<std::uint64_t>(
      std::max(0, static_cast<int>(message.attempts) - 1));

  if (message.lost) {
    // Supervisor retry budget exhausted inside the worker (cell_hang):
    // same degradation as the single-process run, same manifest line.
    merger_.drop_slot(slot);
    mark_cell_lost(slot, static_cast<int>(message.attempts), message.text);
  } else {
    const auto* records = merger_.get(slot, SegmentKind::kRecords);
    const auto* ids = merger_.get(slot, SegmentKind::kIds);
    const auto* metrics = merger_.get(slot, SegmentKind::kMetrics);
    if (records == nullptr || ids == nullptr || metrics == nullptr) {
      worker.failed = true;  // DONE before its segments: protocol breach
      return;
    }
    auto parsed = parse_results(*records);
    if (!parsed.has_value() || parsed->size() != 1) {
      worker.failed = true;
      return;
    }
    scan::ScanResult result = std::move(parsed->front());
    IdsSnapshot snapshot;
    if (!parse_cell_sidecar(*ids, snapshot, result.l4_stats,
                            result.attempt_histogram)) {
      worker.failed = true;
      return;
    }
    // End-to-end integrity: the digest of the records as the master
    // parsed them must match what the worker computed before streaming.
    if (digest_of(result).record_sha256 != message.sha256) {
      worker.failed = true;
      return;
    }
    obsv::MetricBlock delta;
    if (experiment_.config_.metrics != nullptr) {
      auto parsed_block = obsv::MetricBlock::parse(*metrics);
      if (!parsed_block.has_value()) {
        worker.failed = true;
        return;
      }
      delta = std::move(*parsed_block);
    }
    // Record through the exact single-process path: record_done adds the
    // journal-layer counters to the delta and persists all three
    // sidecars, so the journal directory and the merged registry are
    // byte-identical to run_journaled's.
    if (journal_ != nullptr) {
      std::string journal_error;
      if (!journal_->record_done(
              key, result, snapshot, static_cast<int>(message.attempts),
              experiment_.config_.metrics != nullptr ? &delta : nullptr,
              &journal_error)) {
        // Storage-exhaustion degradation: the worker's result cannot be
        // made durable, so the cell — not the run — fails. Storage does
        // not come back (storage_dead latches), so every later cell of
        // this chain degrades the same way and dispatch_ready stops
        // granting; the chain still advances so the run terminates with
        // an honestly labeled partial grid.
        bump(obsv::Counter::kJournalWritesFailed);
        merger_.drop_slot(slot);
        mark_cell_lost(slot, static_cast<int>(message.attempts),
                       "journal write failed: " + journal_error);
        chain.grant_failures = 0;
        ++chain.pos;
        if (chain.pos >= chain_len_) {
          chain.active = false;
          worker.chain = -1;
        }
        return;
      }
    }
    if (experiment_.config_.metrics != nullptr) {
      experiment_.config_.metrics->merge_block(delta);
    }
    if (progress_) {
      progress_("trial " + std::to_string(key.trial + 1) + " " +
                std::string(proto::name_of(key.protocol)) + " " +
                result.origin_code + ": " +
                std::to_string(result.completed_count()) + " hosts");
    }
    experiment_.results_[slot] = std::move(result);
    ++report_.cells_run;
    bump(obsv::Counter::kDistCellsCompleted);
    merger_.drop_slot(slot);  // recorded; free the buffered copies
    chain.snapshot = std::move(snapshot);
    chain.have_snapshot = true;
  }

  chain.grant_failures = 0;
  ++chain.pos;
  if (chain.pos >= chain_len_) {
    chain.active = false;
    worker.chain = -1;
  }
}

void GridMaster::handle_message(Worker& worker, WireMessage message,
                                Clock::time_point now) {
  switch (message.type) {
    case MsgType::kHello:
      if (worker.helloed ||
          message.worker != static_cast<std::uint32_t>(worker.index)) {
        worker.failed = true;
        return;
      }
      worker.helloed = true;
      break;
    case MsgType::kClaim:
      if (!worker.helloed || worker.chain >= 0) {
        worker.failed = true;
        return;
      }
      worker.claim_pending = true;
      break;
    case MsgType::kSegment: {
      if (worker.chain < 0) {
        worker.failed = true;
        return;
      }
      const Chain& chain = chains_[static_cast<std::size_t>(worker.chain)];
      if (message.slot != chain_slot(chain)) {
        worker.failed = true;
        return;
      }
      merger_.add(message.slot, message.kind, std::move(message.bytes));
      bump(obsv::Counter::kDistSegmentsReceived);
      break;
    }
    case MsgType::kDone:
      handle_done(worker, std::move(message));
      break;
    case MsgType::kAbort:
      // The worker's run was killed (cell_crash): the whole distributed
      // run degrades to kKilled, exactly like run_journaled.
      killed_ = true;
      kill_reason_ =
          message.text.empty() ? "cell_crash fault" : message.text;
      return;
    case MsgType::kGrant:
      worker.failed = true;  // master-only message from a worker
      return;
  }
  refresh_deadline(worker, now);
}

void GridMaster::reap(Worker& worker) {
  if (worker.dead) return;
  worker.dead = true;
  ::kill(worker.pid, SIGKILL);
  int status = 0;
  while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
}

void GridMaster::fail_worker(Worker& worker) {
  if (worker.dead) return;
  reap(worker);
  bump(obsv::Counter::kDistWorkersFailed);
  if (worker.chain >= 0) {
    const auto ci = static_cast<std::size_t>(worker.chain);
    Chain& chain = chains_[ci];
    const std::size_t slot = chain_slot(chain);
    // Roll back: the un-DONEd cell's buffered segments are dropped and
    // the death is charged against that cell's grant budget.
    merger_.drop_slot(slot);
    chain.active = false;
    ++chain.grant_failures;
    if (chain.grant_failures >= policy_.max_attempts) {
      mark_cell_lost(slot, chain.grant_failures,
                     "worker died in all " +
                         std::to_string(chain.grant_failures) + " grants");
      ++chain.pos;
      chain.grant_failures = 0;
    }
    if (chain.pos < chain_len_) ready_.push_back(ci);
    worker.chain = -1;
  }
}

void GridMaster::shutdown_all(bool graceful) {
  for (const auto& worker : workers_) {
    if (worker->dead) continue;
    if (graceful) {
      WireMessage abort_msg;
      abort_msg.type = MsgType::kAbort;
      (void)send_message(worker->fd, abort_msg);
    }
    reap(*worker);
  }
  workers_.clear();
}

RunReport GridMaster::finalize() {
  const std::size_t origin_count = experiment_.world_.origins.size();
  const std::size_t protocol_count = experiment_.config_.protocols.size();
  for (std::size_t slot : lost_slots_) {
    report_.lost.push_back(experiment_.cell_key_at(slot));
  }
  std::sort(report_.lost.begin(), report_.lost.end(),
            [&](const CellKey& a, const CellKey& b) {
              const auto slot_of = [&](const CellKey& k) {
                std::size_t p = 0;
                for (std::size_t i = 0; i < protocol_count; ++i) {
                  if (experiment_.config_.protocols[i] == k.protocol) p = i;
                }
                return experiment_.index(
                    k.trial, p, experiment_.world_.origin_id(k.origin_code));
              };
              return slot_of(a) < slot_of(b);
            });
  report_.cells_lost = report_.lost.size();
  report_.status = report_.lost.empty() ? RunReport::Status::kComplete
                                        : RunReport::Status::kPartial;
  if (experiment_.config_.metrics != nullptr) {
    experiment_.config_.metrics->gauge_max(
        obsv::Gauge::kExperimentCellsTotal,
        static_cast<std::uint64_t>(origin_count * protocol_count *
                                   static_cast<std::size_t>(
                                       experiment_.config_.trials)));
    experiment_.config_.metrics->add(obsv::Counter::kExperimentCellsLost,
                                     report_.cells_lost);
  }
  return report_;
}

RunReport GridMaster::run() {
  assert(experiment_.results_.empty() && "Experiment::run called twice");
  const std::size_t origin_count = experiment_.world_.origins.size();
  const std::size_t total = experiment_.cell_count();
  chain_len_ = total / origin_count;
  experiment_.results_.resize(total);
  experiment_.lost_.assign(total, false);
  report_.cells_total = total;

  std::vector<bool> adopted(total, false);
  std::vector<IdsSnapshot> latest(origin_count);
  std::vector<bool> have_snapshot(origin_count, false);
  if (journal_ != nullptr) {
    // Chaos hooks: the master is the only process that writes the
    // journal, so the enospc / segment_corrupt points live here; their
    // counts land in the dist metric block alongside the dist.* rows.
    journal_->set_fault_injector(experiment_.config_.faults, dist_);
    Experiment::AdoptionPlan plan = experiment_.adopt_journal(*journal_);
    adopted = std::move(plan.adopted);
    latest = std::move(plan.latest);
    have_snapshot = std::move(plan.have_snapshot);
    report_.cells_adopted = plan.adopted_count;
    report_.lost = std::move(plan.lost_keys);
  }

  chains_.resize(origin_count);
  for (sim::OriginId origin = 0; origin < origin_count; ++origin) {
    Chain& chain = chains_[origin];
    chain.origin = origin;
    chain.snapshot = std::move(latest[origin]);
    chain.have_snapshot = have_snapshot[origin];
    // The settled prefix (adopted + journaled-lost cells) never runs
    // again; the chain resumes at the first open position.
    while (chain.pos < chain_len_ &&
           (adopted[chain_slot(chain)] || experiment_.lost_[chain_slot(chain)])) {
      ++chain.pos;
    }
    if (chain.pos < chain_len_) ready_.push_back(origin);
  }

  if (!ready_.empty()) {
    ensure_workers(/*initial=*/true);

    while (!all_done() && !killed_) {
      dispatch_ready();
      ensure_workers(/*initial=*/false);

      // Poll timeout: the nearest worker deadline, capped so grants and
      // respawns stay responsive.
      const Clock::time_point now_pre = Clock::now();
      int timeout_ms = 200;
      for (const auto& worker : workers_) {
        if (worker->deadline == Clock::time_point::max()) continue;
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                worker->deadline - now_pre)
                .count();
        timeout_ms = std::clamp<int>(static_cast<int>(remaining), 0,
                                     timeout_ms);
      }

      std::vector<pollfd> fds;
      fds.reserve(workers_.size());
      for (const auto& worker : workers_) {
        fds.push_back(pollfd{worker->fd, POLLIN, 0});
      }
      const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
      const Clock::time_point now = Clock::now();

      if (rc > 0) {
        for (std::size_t i = 0; i < fds.size() && !killed_; ++i) {
          Worker& worker = *workers_[i];
          if (worker.failed || worker.dead) continue;
          if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          std::uint8_t buffer[65536];
          ssize_t n;
          do {
            n = ::recv(worker.fd, buffer, sizeof buffer, 0);
          } while (n < 0 && errno == EINTR);
          if (n <= 0) {
            // EOF: the worker died. Bytes stuck in the decoder are a
            // torn mid-frame write — classified, never parsed.
            if (worker.decoder.buffered() > 0) {
              bump(obsv::Counter::kDistFrameErrors);
            }
            worker.failed = true;
            continue;
          }
          worker.decoder.feed(
              std::span(buffer, static_cast<std::size_t>(n)));
          while (!worker.failed && !killed_) {
            auto payload = worker.decoder.next();
            if (!payload.has_value()) break;
            auto message = decode_message(*payload);
            if (!message.has_value()) {
              bump(obsv::Counter::kDistFrameErrors);
              worker.failed = true;
              break;
            }
            handle_message(worker, std::move(*message), now);
          }
          if (worker.decoder.error() != net::FrameError::kNone) {
            bump(obsv::Counter::kDistFrameErrors);
            worker.failed = true;
          }
        }
      }

      // Deadlines: a worker that has shown no protocol progress within
      // its budget is indistinguishable from a stalled one — kill it.
      for (const auto& worker : workers_) {
        if (worker->failed || worker->dead) continue;
        if (now >= worker->deadline) {
          bump(obsv::Counter::kDistDeadlinesExpired);
          worker->failed = true;
        }
      }

      for (const auto& worker : workers_) {
        if (worker->failed && !worker->dead) fail_worker(*worker);
      }
      std::erase_if(workers_,
                    [](const std::unique_ptr<Worker>& w) { return w->dead; });
    }
  }

  if (killed_) {
    shutdown_all(/*graceful=*/false);
    experiment_.results_.clear();
    experiment_.lost_.clear();
    report_.status = RunReport::Status::kKilled;
    report_.kill_reason = kill_reason_;
    return report_;
  }

  shutdown_all(/*graceful=*/true);
  return finalize();
}

RunReport run_distributed(
    Experiment& experiment, ExperimentJournal* journal,
    const SupervisorPolicy& policy, const DistOptions& options,
    obsv::MetricBlock* dist_metrics,
    const std::function<void(std::string_view)>& progress) {
  GridMaster master(experiment, journal, policy, options, dist_metrics,
                    progress);
  return master.run();
}

}  // namespace originscan::core
