#include "core/classify.h"

namespace originscan::core {

Classification::Classification(const AccessMatrix& matrix)
    : matrix_(&matrix) {
  const std::size_t origins = matrix.origins();
  const std::size_t n = matrix.host_count();
  classes_.assign(origins, std::vector<std::uint8_t>(n, 0));

  for (std::size_t o = 0; o < origins; ++o) {
    for (HostIdx h = 0; h < n; ++h) {
      int present = 0;
      int missed = 0;
      for (int t = 0; t < matrix.trials(); ++t) {
        // A lost (trial, origin) cell says nothing about this origin's
        // view of the host; classify only over the trials it scanned.
        if (!matrix.has_cell(t, o)) continue;
        if (!matrix.present(t, h)) continue;
        ++present;
        if (!matrix.accessible(t, o, h)) ++missed;
      }
      HostClass result = HostClass::kAccessible;
      if (present == 0) {
        result = HostClass::kNotInGroundTruth;
      } else if (missed == 0) {
        result = HostClass::kAccessible;
      } else if (present == 1) {
        result = HostClass::kUnknown;
      } else if (missed == present) {
        result = HostClass::kLongTerm;
      } else {
        result = HostClass::kTransient;
      }
      classes_[o][h] = static_cast<std::uint8_t>(result);
    }
  }
  classify_networks();
}

void Classification::classify_networks() {
  const std::size_t origins = matrix_->origins();
  const std::size_t n = matrix_->host_count();
  network_level_.assign(origins, std::vector<bool>(n, false));

  // Hosts are sorted by address, so /24 groups are contiguous runs.
  std::size_t run_start = 0;
  while (run_start < n) {
    const net::Ipv4Addr net24 = matrix_->host_addr(run_start).slash24();
    std::size_t run_end = run_start + 1;
    while (run_end < n &&
           matrix_->host_addr(run_end).slash24() == net24) {
      ++run_end;
    }
    if (run_end - run_start >= 2) {
      for (std::size_t o = 0; o < origins; ++o) {
        const std::uint8_t first = classes_[o][run_start];
        bool consistent = true;
        for (std::size_t i = run_start + 1; i < run_end; ++i) {
          if (classes_[o][i] != first) {
            consistent = false;
            break;
          }
        }
        if (consistent) {
          for (std::size_t i = run_start; i < run_end; ++i) {
            network_level_[o][i] = true;
          }
        }
      }
    }
    run_start = run_end;
  }
}

Classification::Breakdown Classification::breakdown(std::size_t origin,
                                                    int trial) const {
  Breakdown b;
  const std::size_t n = matrix_->host_count();
  for (HostIdx h = 0; h < n; ++h) {
    if (!missing(trial, origin, h)) continue;
    const bool net = network_level_[origin][h];
    switch (host_class(origin, h)) {
      case HostClass::kTransient:
        (net ? b.transient_net : b.transient_host) += 1;
        break;
      case HostClass::kLongTerm:
        (net ? b.longterm_net : b.longterm_host) += 1;
        break;
      case HostClass::kUnknown:
        b.unknown += 1;
        break;
      case HostClass::kAccessible:
      case HostClass::kNotInGroundTruth:
        break;  // not missing by definition
    }
  }
  return b;
}

std::uint64_t Classification::longterm_count(std::size_t origin) const {
  std::uint64_t count = 0;
  for (HostIdx h = 0; h < matrix_->host_count(); ++h) {
    if (host_class(origin, h) == HostClass::kLongTerm) ++count;
  }
  return count;
}

std::uint64_t Classification::transient_count(std::size_t origin) const {
  std::uint64_t count = 0;
  for (HostIdx h = 0; h < matrix_->host_count(); ++h) {
    if (host_class(origin, h) == HostClass::kTransient) ++count;
  }
  return count;
}

bool Classification::network_level(std::size_t origin, HostIdx h) const {
  return network_level_[origin][h];
}

}  // namespace originscan::core
