// Deterministic, seed-driven fault injection for the scan pipeline.
//
// A FaultPlan is parsed from a compact spec string, e.g.
//
//   "drop:slot=1024..2048,p=0.3;banner_trunc:host%7==0;store_eio:write=3"
//
// and bound to a seed by a FaultInjector. Every fault decision is a pure
// function of (seed, slot | host | write index), never of wall time or
// execution order, so a fault schedule is exactly replayable: the same
// plan + seed perturbs the same probes, the same handshakes, and the same
// store writes no matter how many worker threads execute the scan. This
// is what lets the golden-trace differential harness (core/goldens.h)
// use PR 1's byte-identity contract as an oracle — a run that recovers
// from every injected fault must reproduce the fault-free golden run
// byte for byte.
//
// Injection points (the registry; tests/faultpoint_registry_test.cc
// asserts every one of these is exercised):
//
//   point          layer               spec clause
//   -------------  ------------------  -----------------------------------
//   probe_drop     ZMapScanner / sim   drop:slot=A..B,p=P   (slot window)
//                                      drop:sec=A..B,p=P    (time window)
//   outage         sim::Internet       outage:sec=A..B[,origin=K]
//   send_fail      ZMapScanner         send_fail:slot=A..B,p=P
//   mac_corrupt    ZMapScanner         mac_corrupt:slot=A..B,p=P
//   connect_rst    ZGrabEngine         rst:host%M==K[,attempts=N][,p=P]
//   banner_trunc   ZGrabEngine         banner_trunc:host%M==K[,...]
//   banner_stall   ZGrabEngine         banner_stall:host%M==K[,...]
//   store_eio      core::save_results  store_eio:write=N[,count=C]
//   cell_crash     core::CellSupervisor  cell_crash:cell=K
//   cell_hang      core::CellSupervisor  cell_hang:cell=K,sec=S[,attempts=N]
//   worker_kill    core::run_worker    worker_kill:worker=W        (pre-HELLO)
//                                      worker_kill:cell=K,phase=claim|segment
//                                      |done[,attempts=N]
//   worker_stall   core::run_worker    worker_stall:worker=W       (pre-HELLO)
//                                      worker_stall:cell=K,phase=...[,attempts=N]
//   enospc         core::ExperimentJournal  enospc:bytes=N
//   segment_corrupt core::ExperimentJournal segment_corrupt:file=N[,count=C]
//   frame_garble   core::run_worker    frame_garble:worker=W,frame=N[,count=C]
//
// Recoverable faults (send_fail, the three ZGrab faults, store_eio) are
// absorbed by pipeline machinery — the send retry loop, the RetryPolicy
// ladder, the checkpoint/resume store writer — and leave the output
// byte-identical to the fault-free run. Degrading faults (probe_drop,
// outage, mac_corrupt) lose data in ways no retry can recover; the
// differential harness classifies their damage instead.
//
// The two cell-level faults model process death and wedged cells at the
// experiment layer (see core/supervisor.h). cell_crash kills the run at
// cell K's start — resumable from the journal, but not recoverable
// within the run. cell_hang makes attempts [0, N) of cell K exceed the
// supervisor's deadline (the attempt stalls for S virtual seconds); it
// recovers through the retry budget, or degrades the cell to lost when
// N exhausts it. Both classify as non-recoverable so the differential
// harness never treats an interrupted single run as byte-comparable.
//
// The three storage/transport faults model operational decay rather
// than crashes. enospc makes every durable journal write (manifest
// append, segment, sidecar) fail with a no-space error once the
// journal's cumulative byte count reaches N — the run degrades cell by
// cell through the retry/partial-grid machinery instead of aborting.
// segment_corrupt flips one seed-chosen byte in the Nth durable file
// the journal writes, which the CRC-verified resume path must
// quarantine rather than adopt. frame_garble flips one seed-chosen bit
// in the Nth frame a worker sends to the master, exercising the framed
// protocol's poison-on-error decoder as a live runtime fault. All
// three classify as non-recoverable: their recovery crosses runs
// (journal repair / quarantine) or processes (grant rollback).
//
// The two worker-level faults model real process failures in the
// distributed runtime (core/dist.h): worker_kill makes a worker process
// SIGKILL itself, worker_stall makes it block forever so the master's
// deadline has to fire. The `worker=W` form hits worker index W before
// it sends HELLO; the `cell=K,phase=...` form hits whichever worker is
// handling cell K, at the named protocol phase, on the cell's first N
// grants (attempts=, default 1). The master detects the death, rolls
// the claimed cells back, and retries — so a plan whose attempts stay
// under the grant budget still yields byte-identical output, which the
// dist kill matrix (tests/dist_test.cc) asserts. Like the cell faults,
// both classify as non-recoverable: they interrupt processes, and
// recovery happens in the master, not inside the faulted run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/vtime.h"

namespace originscan::fault {

// The injection-point registry. Every enumerator must appear in
// point_name() and be exercised by at least one test
// (tests/faultpoint_registry_test.cc enforces the latter).
enum class Point : int {
  kProbeDrop = 0,
  kOutage,
  kSendFail,
  kMacCorrupt,
  kConnectRst,
  kBannerTruncate,
  kBannerStall,
  kStoreWriteError,
  kCellCrash,
  kCellHang,
  kWorkerKill,
  kWorkerStall,
  kEnospc,
  kSegmentCorrupt,
  kFrameGarble,
};

inline constexpr int kPointCount = 15;

// Protocol phases at which the worker faults can fire (the checkpoints
// core::run_worker queries). kHello is the `worker=W` form — the worker
// has no cell yet; the others key on the granted cell.
enum class WorkerPhase : int {
  kHello = 0,    // before the worker sends HELLO
  kClaim,        // after a cell is granted, before its scan starts
  kSegment,      // mid-SEGMENT stream (a torn write on the wire)
  kDone,         // segments sent, DONE not yet sent
};

[[nodiscard]] std::string_view worker_phase_name(WorkerPhase phase);

[[nodiscard]] std::string_view point_name(Point point);
[[nodiscard]] std::span<const Point> all_points();

// One parsed clause of a fault spec.
struct FaultClause {
  Point point = Point::kProbeDrop;

  // Windowed faults (probe_drop, outage, send_fail, mac_corrupt):
  // inclusive [lo, hi] range of global packet slots or whole seconds of
  // virtual time, with per-event probability p.
  enum class Unit { kSlot, kSeconds } unit = Unit::kSlot;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  double p = 1.0;

  // Host-selected faults (connect_rst, banner_trunc, banner_stall):
  // hosts with addr % mod == rem, on the first `attempts` handshake
  // attempts.
  std::uint32_t mod = 0;  // 0 = not a host clause
  std::uint32_t rem = 0;
  int attempts = 1;

  // Store faults: physical write operations [write_index,
  // write_index + count) fail with a transient EIO. segment_corrupt
  // and frame_garble reuse the same pair as their file=/frame= window.
  std::uint64_t write_index = 0;
  std::uint64_t count = 1;

  // enospc: durable journal writes fail once the journal's cumulative
  // byte count reaches this threshold.
  std::uint64_t bytes = 0;

  // Cell faults (cell_crash, cell_hang): the global cell index in the
  // experiment grid, serial order (trial * protocols + p) * origins + o.
  // cell_hang stalls attempts [0, `attempts`) of the cell for
  // `hang_seconds` of virtual time.
  std::uint64_t cell = 0;
  std::uint64_t hang_seconds = 0;

  // Worker faults (worker_kill, worker_stall): either a worker index
  // (pre-HELLO form; phase is kHello) or a cell + later phase. `attempts`
  // bounds how many grants of the cell the fault fires on.
  int worker = -1;                          // -1 = cell-keyed clause
  int phase = static_cast<int>(WorkerPhase::kHello);

  // Outage scope: -1 darkens every origin's view; >= 0 restricts the
  // window to one origin id — the paper's Section-5.4 burst outages are
  // exactly such origin-local events.
  int origin = -1;

  [[nodiscard]] bool recoverable() const;
  [[nodiscard]] std::string to_string() const;
};

// A parsed fault plan: an ordered list of clauses.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Parses a spec string (clauses separated by ';'). Returns nullopt on
  // any syntax error — unknown clause, malformed or reversed range,
  // numeric overflow, probability outside [0, 1], zero modulus, or an
  // empty spec — and, when `error` is non-null, stores a human-readable
  // reason.
  static std::optional<FaultPlan> parse(std::string_view spec,
                                        std::string* error = nullptr);

  [[nodiscard]] const std::vector<FaultClause>& clauses() const {
    return clauses_;
  }
  [[nodiscard]] bool empty() const { return clauses_.empty(); }

  // True when every clause is absorbed by pipeline recovery machinery,
  // i.e. a run under this plan must be byte-identical to the fault-free
  // run (given enough L7 retries; see min_l7_retries).
  [[nodiscard]] bool recoverable() const;

  // Retry budget needed to absorb the plan's L7 faults: the largest
  // `attempts` over ZGrab clauses (0 when there are none).
  [[nodiscard]] int min_l7_retries() const;

  // Whether recovery needs the RetryPolicy to also retry degraded
  // banners (timeouts / truncations), not just refused connections.
  [[nodiscard]] bool needs_banner_retry() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultClause> clauses_;
};

// A plan bound to a seed. Query methods are pure functions of their
// arguments (plus plan and seed) and are safe to call from any number of
// threads; hit counters are relaxed atomics used only for diagnostics
// and the injection-point registry test.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  // ---- ZMap layer ---------------------------------------------------
  // Probe occupying global schedule slot `slot` is lost in flight.
  [[nodiscard]] bool drop_at_slot(std::uint64_t slot,
                                  net::Ipv4Addr dst) const;
  // Number of consecutive transient send failures for this probe (the
  // scanner's send loop retries in place; see ZMapScanner::probe_target).
  [[nodiscard]] int send_failures(std::uint64_t slot,
                                  net::Ipv4Addr dst) const;
  // The response to this probe arrives with corrupted bytes.
  [[nodiscard]] bool corrupt_response(std::uint64_t slot,
                                      net::Ipv4Addr dst) const;

  // ---- sim layer ----------------------------------------------------
  // Extra path loss for a probe at virtual time t (sec windows).
  [[nodiscard]] bool drop_at_time(net::VirtualTime t, net::Ipv4Addr dst,
                                  int probe_index) const;
  // Total outage window: probes and connects are silently dropped.
  // `origin` scopes origin-local outage clauses; -1 (e.g. from contexts
  // with no origin identity) matches only unscoped clauses.
  [[nodiscard]] bool outage_at(net::VirtualTime t, int origin = -1) const;

  // ---- ZGrab layer --------------------------------------------------
  enum class L7Fault { kNone, kRst, kTruncate, kStall };
  [[nodiscard]] L7Fault l7_fault(net::Ipv4Addr dst, int attempt) const;

  // ---- store layer --------------------------------------------------
  // Physical write operation `write_index` (0-based, counted across the
  // whole save including retries) fails with a transient EIO.
  [[nodiscard]] bool store_write_fails(std::uint64_t write_index) const;

  // ---- experiment layer (core::CellSupervisor) ----------------------
  // The process dies at the start of this grid cell (simulated via the
  // supervisor's kill token, not an actual abort).
  [[nodiscard]] bool cell_crash(std::uint64_t cell_index) const;
  // Virtual seconds this attempt of the cell stalls before producing a
  // result; 0 = no hang. The supervisor fails the attempt when the stall
  // exceeds its per-cell deadline.
  [[nodiscard]] std::uint64_t cell_hang_seconds(std::uint64_t cell_index,
                                                int attempt) const;

  // ---- distributed layer (core::run_worker) -------------------------
  // Whether worker `worker`, at protocol phase `phase` while handling
  // grant number `grant` (0-based) of cell `cell`, should SIGKILL itself
  // / stall forever. For WorkerPhase::kHello only worker= clauses match
  // (cell/grant are ignored); for the later phases only cell= clauses
  // match, on grants [0, attempts).
  [[nodiscard]] bool worker_kill(int worker, WorkerPhase phase,
                                 std::uint64_t cell, int grant) const;
  [[nodiscard]] bool worker_stall(int worker, WorkerPhase phase,
                                  std::uint64_t cell, int grant) const;

  // ---- journal / storage layer --------------------------------------
  // Whether a durable journal write should fail with a no-space error,
  // given the cumulative bytes the journal has written so far. Once
  // true it stays true for every larger count — storage does not come
  // back within a run.
  [[nodiscard]] bool enospc(std::uint64_t bytes_written) const;
  // Whether the `file_index`-th durable file the journal writes
  // (0-based, counted across segments and sidecars) gets one byte
  // flipped after the write lands.
  [[nodiscard]] bool segment_corrupt(std::uint64_t file_index) const;
  // Seed-chosen offset of the flipped byte; pure, does not record a
  // hit (segment_corrupt already did). `file_size` must be > 0.
  [[nodiscard]] std::uint64_t corrupt_offset(std::uint64_t file_index,
                                             std::uint64_t file_size) const;

  // ---- dist transport layer -----------------------------------------
  // Whether the `frame_index`-th frame worker `worker` sends to the
  // master (0-based, counted per worker process) gets one bit flipped
  // on the wire.
  [[nodiscard]] bool frame_garble(int worker,
                                  std::uint64_t frame_index) const;
  // Seed-chosen byte offset for the bitflip; pure, no hit recorded.
  [[nodiscard]] std::uint64_t garble_offset(int worker,
                                            std::uint64_t frame_index,
                                            std::uint64_t frame_size) const;

  // Diagnostics: how many times each injection point actually fired.
  [[nodiscard]] std::uint64_t hits(Point point) const {
    return hits_[static_cast<int>(point)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_hits() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  [[nodiscard]] bool window_hit(const FaultClause& clause,
                                FaultClause::Unit unit, std::uint64_t value,
                                std::uint64_t stream) const;
  [[nodiscard]] bool worker_fault(Point point, int worker, WorkerPhase phase,
                                  std::uint64_t cell, int grant) const;
  void record(Point point) const {
    hits_[static_cast<int>(point)].fetch_add(1, std::memory_order_relaxed);
  }

  FaultPlan plan_;
  std::uint64_t seed_;
  mutable std::array<std::atomic<std::uint64_t>, kPointCount> hits_{};
};

}  // namespace originscan::fault
