#include "faultinject/faultinject.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "netbase/rng.h"

namespace originscan::fault {
namespace {

constexpr Point kAllPoints[kPointCount] = {
    Point::kProbeDrop,     Point::kOutage,       Point::kSendFail,
    Point::kMacCorrupt,    Point::kConnectRst,   Point::kBannerTruncate,
    Point::kBannerStall,   Point::kStoreWriteError,
    Point::kCellCrash,     Point::kCellHang,     Point::kWorkerKill,
    Point::kWorkerStall,   Point::kEnospc,       Point::kSegmentCorrupt,
    Point::kFrameGarble,
};

double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Per-point salts for the fault decision hashes, so clauses at different
// points never share a random stream.
constexpr std::uint64_t salt_of(Point point) {
  return 0xFA017000ULL + static_cast<std::uint64_t>(point);
}

// The clause keyword as written in spec strings. Distinct from
// point_name(), the registry's diagnostic name — to_string() must emit
// these so every rendered plan reparses.
constexpr std::string_view spec_keyword(Point point) {
  switch (point) {
    case Point::kProbeDrop:
      return "drop";
    case Point::kOutage:
      return "outage";
    case Point::kSendFail:
      return "send_fail";
    case Point::kMacCorrupt:
      return "mac_corrupt";
    case Point::kConnectRst:
      return "rst";
    case Point::kBannerTruncate:
      return "banner_trunc";
    case Point::kBannerStall:
      return "banner_stall";
    case Point::kStoreWriteError:
      return "store_eio";
    case Point::kCellCrash:
      return "cell_crash";
    case Point::kCellHang:
      return "cell_hang";
    case Point::kWorkerKill:
      return "worker_kill";
    case Point::kWorkerStall:
      return "worker_stall";
    case Point::kEnospc:
      return "enospc";
    case Point::kSegmentCorrupt:
      return "segment_corrupt";
    case Point::kFrameGarble:
      return "frame_garble";
  }
  return "?";
}

std::optional<WorkerPhase> worker_phase_from(std::string_view name) {
  if (name == "hello") return WorkerPhase::kHello;
  if (name == "claim") return WorkerPhase::kClaim;
  if (name == "segment") return WorkerPhase::kSegment;
  if (name == "done") return WorkerPhase::kDone;
  return std::nullopt;
}

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Parses a u64, rejecting empty fields, junk, and overflow ("overflow
// slots must error, never crash").
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_double01(std::string_view text, double& out) {
  if (text.empty() || text.size() > 24) return false;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*s",
                static_cast<int>(text.size()), text.data());
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + text.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  out = value;
  return true;
}

// "A..B" (inclusive); single value "A" means A..A.
bool parse_range(std::string_view text, std::uint64_t& lo,
                 std::uint64_t& hi) {
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    if (!parse_u64(text, lo)) return false;
    hi = lo;
    return true;
  }
  if (!parse_u64(text.substr(0, dots), lo)) return false;
  if (!parse_u64(text.substr(dots + 2), hi)) return false;
  return lo <= hi;
}

// "host%M==K"
bool parse_host_selector(std::string_view text, FaultClause& clause) {
  if (text.rfind("host%", 0) != 0) return false;
  text.remove_prefix(5);
  const std::size_t eq = text.find("==");
  if (eq == std::string_view::npos) return false;
  std::uint64_t mod = 0;
  std::uint64_t rem = 0;
  if (!parse_u64(text.substr(0, eq), mod)) return false;
  if (!parse_u64(text.substr(eq + 2), rem)) return false;
  if (mod == 0 || mod > 0xFFFFFFFFULL) return false;
  if (rem >= mod) return false;
  clause.mod = static_cast<std::uint32_t>(mod);
  clause.rem = static_cast<std::uint32_t>(rem);
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = text.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(text);
      return out;
    }
    out.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(
                              text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

// Windowed clauses: drop, outage, send_fail, mac_corrupt.
bool parse_window_args(std::span<const std::string_view> args, Point point,
                       FaultClause& clause, std::string* error) {
  bool saw_range = false;
  for (std::string_view arg : args) {
    if (arg.rfind("slot=", 0) == 0) {
      clause.unit = FaultClause::Unit::kSlot;
      if (!parse_range(arg.substr(5), clause.lo, clause.hi)) {
        return set_error(error, "bad slot range: " + std::string(arg));
      }
      saw_range = true;
    } else if (arg.rfind("sec=", 0) == 0) {
      clause.unit = FaultClause::Unit::kSeconds;
      if (!parse_range(arg.substr(4), clause.lo, clause.hi)) {
        return set_error(error, "bad sec range: " + std::string(arg));
      }
      saw_range = true;
    } else if (arg.rfind("p=", 0) == 0) {
      if (!parse_double01(arg.substr(2), clause.p)) {
        return set_error(error,
                         "probability must be in [0,1]: " + std::string(arg));
      }
    } else if (arg.rfind("origin=", 0) == 0) {
      std::uint64_t origin = 0;
      if (point != Point::kOutage) {
        return set_error(error, "origin= is outage-only: " + std::string(arg));
      }
      if (!parse_u64(arg.substr(7), origin) || origin > 255) {
        return set_error(error, "origin must be 0..255: " + std::string(arg));
      }
      clause.origin = static_cast<int>(origin);
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_range) {
    return set_error(error, std::string("missing slot=/sec= range for ") +
                                std::string(point_name(point)));
  }
  if (point == Point::kOutage && clause.unit != FaultClause::Unit::kSeconds) {
    return set_error(error, "outage windows are sec= only");
  }
  if ((point == Point::kSendFail || point == Point::kMacCorrupt) &&
      clause.unit != FaultClause::Unit::kSlot) {
    return set_error(error, std::string(point_name(point)) +
                                " windows are slot= only");
  }
  return true;
}

// Host clauses: rst, banner_trunc, banner_stall.
bool parse_host_args(std::span<const std::string_view> args,
                     FaultClause& clause, std::string* error) {
  bool saw_selector = false;
  for (std::string_view arg : args) {
    if (arg.rfind("host%", 0) == 0) {
      if (!parse_host_selector(arg, clause)) {
        return set_error(error, "bad host selector: " + std::string(arg));
      }
      saw_selector = true;
    } else if (arg.rfind("attempts=", 0) == 0) {
      std::uint64_t attempts = 0;
      if (!parse_u64(arg.substr(9), attempts) || attempts == 0 ||
          attempts > 16) {
        return set_error(error, "attempts must be 1..16: " + std::string(arg));
      }
      clause.attempts = static_cast<int>(attempts);
    } else if (arg.rfind("p=", 0) == 0) {
      if (!parse_double01(arg.substr(2), clause.p)) {
        return set_error(error,
                         "probability must be in [0,1]: " + std::string(arg));
      }
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_selector) {
    return set_error(error, "missing host%M==K selector");
  }
  return true;
}

bool parse_store_args(std::span<const std::string_view> args,
                      FaultClause& clause, std::string* error) {
  bool saw_write = false;
  for (std::string_view arg : args) {
    if (arg.rfind("write=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.write_index)) {
        return set_error(error, "bad write index: " + std::string(arg));
      }
      saw_write = true;
    } else if (arg.rfind("count=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.count) || clause.count == 0 ||
          clause.count > 64) {
        return set_error(error, "count must be 1..64: " + std::string(arg));
      }
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_write) return set_error(error, "missing write= index");
  return true;
}

// Cell clauses: cell_crash (cell= only), cell_hang (cell= + sec=,
// optional attempts=).
bool parse_cell_args(std::span<const std::string_view> args, Point point,
                     FaultClause& clause, std::string* error) {
  bool saw_cell = false;
  bool saw_sec = false;
  for (std::string_view arg : args) {
    if (arg.rfind("cell=", 0) == 0) {
      if (!parse_u64(arg.substr(5), clause.cell)) {
        return set_error(error, "bad cell index: " + std::string(arg));
      }
      saw_cell = true;
    } else if (arg.rfind("sec=", 0) == 0) {
      if (point != Point::kCellHang) {
        return set_error(error, "sec= is cell_hang-only: " + std::string(arg));
      }
      if (!parse_u64(arg.substr(4), clause.hang_seconds) ||
          clause.hang_seconds == 0) {
        return set_error(error, "bad hang seconds: " + std::string(arg));
      }
      saw_sec = true;
    } else if (arg.rfind("attempts=", 0) == 0) {
      std::uint64_t attempts = 0;
      if (point != Point::kCellHang) {
        return set_error(error,
                         "attempts= is cell_hang-only: " + std::string(arg));
      }
      if (!parse_u64(arg.substr(9), attempts) || attempts == 0 ||
          attempts > 16) {
        return set_error(error, "attempts must be 1..16: " + std::string(arg));
      }
      clause.attempts = static_cast<int>(attempts);
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_cell) return set_error(error, "missing cell= index");
  if (point == Point::kCellHang && !saw_sec) {
    return set_error(error, "cell_hang needs sec=S");
  }
  return true;
}

// Worker clauses: worker_kill / worker_stall. Two mutually exclusive
// forms — `worker=W` (pre-HELLO; the process has no cell yet) and
// `cell=K,phase=claim|segment|done[,attempts=N]`.
bool parse_worker_args(std::span<const std::string_view> args, Point point,
                       FaultClause& clause, std::string* error) {
  bool saw_worker = false;
  bool saw_cell = false;
  bool saw_phase = false;
  for (std::string_view arg : args) {
    if (arg.rfind("worker=", 0) == 0) {
      std::uint64_t worker = 0;
      if (!parse_u64(arg.substr(7), worker) || worker > 255) {
        return set_error(error, "worker must be 0..255: " + std::string(arg));
      }
      clause.worker = static_cast<int>(worker);
      saw_worker = true;
    } else if (arg.rfind("cell=", 0) == 0) {
      if (!parse_u64(arg.substr(5), clause.cell)) {
        return set_error(error, "bad cell index: " + std::string(arg));
      }
      saw_cell = true;
    } else if (arg.rfind("phase=", 0) == 0) {
      const auto phase = worker_phase_from(arg.substr(6));
      if (!phase.has_value()) {
        return set_error(error,
                         "phase must be hello|claim|segment|done: " +
                             std::string(arg));
      }
      clause.phase = static_cast<int>(*phase);
      saw_phase = true;
    } else if (arg.rfind("attempts=", 0) == 0) {
      std::uint64_t attempts = 0;
      if (!parse_u64(arg.substr(9), attempts) || attempts == 0 ||
          attempts > 16) {
        return set_error(error, "attempts must be 1..16: " + std::string(arg));
      }
      clause.attempts = static_cast<int>(attempts);
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (saw_worker == saw_cell) {
    return set_error(error, std::string(point_name(point)) +
                                " needs exactly one of worker=W / cell=K");
  }
  if (saw_worker) {
    if (saw_phase && clause.phase != static_cast<int>(WorkerPhase::kHello)) {
      return set_error(error, "worker= clauses fire pre-HELLO only");
    }
    clause.phase = static_cast<int>(WorkerPhase::kHello);
  } else {
    if (!saw_phase || clause.phase == static_cast<int>(WorkerPhase::kHello)) {
      return set_error(error,
                       "cell= clauses need phase=claim|segment|done");
    }
  }
  return true;
}

// enospc:bytes=N — storage dies once the journal has written N bytes.
bool parse_enospc_args(std::span<const std::string_view> args,
                       FaultClause& clause, std::string* error) {
  bool saw_bytes = false;
  for (std::string_view arg : args) {
    if (arg.rfind("bytes=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.bytes)) {
        return set_error(error, "bad byte threshold: " + std::string(arg));
      }
      saw_bytes = true;
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_bytes) return set_error(error, "enospc needs bytes=N");
  return true;
}

// segment_corrupt:file=N[,count=C] — durable files [N, N+C) each get
// one flipped byte after the write lands.
bool parse_corrupt_args(std::span<const std::string_view> args,
                        FaultClause& clause, std::string* error) {
  bool saw_file = false;
  for (std::string_view arg : args) {
    if (arg.rfind("file=", 0) == 0) {
      if (!parse_u64(arg.substr(5), clause.write_index)) {
        return set_error(error, "bad file index: " + std::string(arg));
      }
      saw_file = true;
    } else if (arg.rfind("count=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.count) || clause.count == 0 ||
          clause.count > 64) {
        return set_error(error, "count must be 1..64: " + std::string(arg));
      }
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_file) return set_error(error, "segment_corrupt needs file=N");
  return true;
}

// frame_garble:worker=W,frame=N[,count=C] — frames [N, N+C) sent by
// worker W each get one flipped bit on the wire.
bool parse_garble_args(std::span<const std::string_view> args,
                       FaultClause& clause, std::string* error) {
  bool saw_worker = false;
  bool saw_frame = false;
  for (std::string_view arg : args) {
    if (arg.rfind("worker=", 0) == 0) {
      std::uint64_t worker = 0;
      if (!parse_u64(arg.substr(7), worker) || worker > 255) {
        return set_error(error, "worker must be 0..255: " + std::string(arg));
      }
      clause.worker = static_cast<int>(worker);
      saw_worker = true;
    } else if (arg.rfind("frame=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.write_index)) {
        return set_error(error, "bad frame index: " + std::string(arg));
      }
      saw_frame = true;
    } else if (arg.rfind("count=", 0) == 0) {
      if (!parse_u64(arg.substr(6), clause.count) || clause.count == 0 ||
          clause.count > 64) {
        return set_error(error, "count must be 1..64: " + std::string(arg));
      }
    } else {
      return set_error(error, "unknown argument: " + std::string(arg));
    }
  }
  if (!saw_worker) return set_error(error, "frame_garble needs worker=W");
  if (!saw_frame) return set_error(error, "frame_garble needs frame=N");
  return true;
}

}  // namespace

std::string_view point_name(Point point) {
  switch (point) {
    case Point::kProbeDrop:
      return "probe_drop";
    case Point::kOutage:
      return "outage";
    case Point::kSendFail:
      return "send_fail";
    case Point::kMacCorrupt:
      return "mac_corrupt";
    case Point::kConnectRst:
      return "connect_rst";
    case Point::kBannerTruncate:
      return "banner_trunc";
    case Point::kBannerStall:
      return "banner_stall";
    case Point::kStoreWriteError:
      return "store_eio";
    case Point::kCellCrash:
      return "cell_crash";
    case Point::kCellHang:
      return "cell_hang";
    case Point::kWorkerKill:
      return "worker_kill";
    case Point::kWorkerStall:
      return "worker_stall";
    case Point::kEnospc:
      return "enospc";
    case Point::kSegmentCorrupt:
      return "segment_corrupt";
    case Point::kFrameGarble:
      return "frame_garble";
  }
  return "?";
}

std::string_view worker_phase_name(WorkerPhase phase) {
  switch (phase) {
    case WorkerPhase::kHello:
      return "hello";
    case WorkerPhase::kClaim:
      return "claim";
    case WorkerPhase::kSegment:
      return "segment";
    case WorkerPhase::kDone:
      return "done";
  }
  return "?";
}

std::span<const Point> all_points() { return kAllPoints; }

bool FaultClause::recoverable() const {
  switch (point) {
    case Point::kSendFail:
    case Point::kConnectRst:
    case Point::kBannerTruncate:
    case Point::kBannerStall:
    case Point::kStoreWriteError:
      return true;
    case Point::kProbeDrop:
    case Point::kOutage:
    case Point::kMacCorrupt:
      return false;
    // Cell faults interrupt the run itself; recovery happens across runs
    // (journal resume) or via supervisor retries — never inside one
    // uninterrupted run, which is what this predicate promises. Worker
    // faults likewise kill or wedge a process; the master's grant-retry
    // machinery recovers, not the faulted run.
    case Point::kCellCrash:
    case Point::kCellHang:
    case Point::kWorkerKill:
    case Point::kWorkerStall:
      return false;
    // Storage/transport decay: recovery crosses runs (quarantine +
    // re-execution, journal repair) or processes (the master's frame
    // error handling), never the faulted run itself.
    case Point::kEnospc:
    case Point::kSegmentCorrupt:
    case Point::kFrameGarble:
      return false;
  }
  return false;
}

std::string FaultClause::to_string() const {
  std::string out(spec_keyword(point));
  char buffer[96];
  switch (point) {
    case Point::kProbeDrop:
    case Point::kOutage:
    case Point::kSendFail:
    case Point::kMacCorrupt:
      std::snprintf(buffer, sizeof(buffer), ":%s=%llu..%llu,p=%g",
                    unit == Unit::kSlot ? "slot" : "sec",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi), p);
      if (origin >= 0) {
        const std::size_t used = std::char_traits<char>::length(buffer);
        std::snprintf(buffer + used, sizeof(buffer) - used, ",origin=%d",
                      origin);
      }
      break;
    case Point::kConnectRst:
    case Point::kBannerTruncate:
    case Point::kBannerStall:
      std::snprintf(buffer, sizeof(buffer),
                    ":host%%%u==%u,attempts=%d,p=%g", mod, rem, attempts, p);
      break;
    case Point::kStoreWriteError:
      std::snprintf(buffer, sizeof(buffer), ":write=%llu,count=%llu",
                    static_cast<unsigned long long>(write_index),
                    static_cast<unsigned long long>(count));
      break;
    case Point::kCellCrash:
      std::snprintf(buffer, sizeof(buffer), ":cell=%llu",
                    static_cast<unsigned long long>(cell));
      break;
    case Point::kCellHang:
      std::snprintf(buffer, sizeof(buffer), ":cell=%llu,sec=%llu,attempts=%d",
                    static_cast<unsigned long long>(cell),
                    static_cast<unsigned long long>(hang_seconds), attempts);
      break;
    case Point::kWorkerKill:
    case Point::kWorkerStall:
      if (worker >= 0) {
        std::snprintf(buffer, sizeof(buffer), ":worker=%d", worker);
      } else {
        std::snprintf(
            buffer, sizeof(buffer), ":cell=%llu,phase=%s,attempts=%d",
            static_cast<unsigned long long>(cell),
            std::string(worker_phase_name(static_cast<WorkerPhase>(phase)))
                .c_str(),
            attempts);
      }
      break;
    case Point::kEnospc:
      std::snprintf(buffer, sizeof(buffer), ":bytes=%llu",
                    static_cast<unsigned long long>(bytes));
      break;
    case Point::kSegmentCorrupt:
      std::snprintf(buffer, sizeof(buffer), ":file=%llu,count=%llu",
                    static_cast<unsigned long long>(write_index),
                    static_cast<unsigned long long>(count));
      break;
    case Point::kFrameGarble:
      std::snprintf(buffer, sizeof(buffer), ":worker=%d,frame=%llu,count=%llu",
                    worker, static_cast<unsigned long long>(write_index),
                    static_cast<unsigned long long>(count));
      break;
  }
  out += buffer;
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec,
                                          std::string* error) {
  FaultPlan plan;
  if (trim(spec).empty()) {
    set_error(error, "empty fault spec");
    return std::nullopt;
  }
  for (std::string_view raw_clause : split(spec, ';')) {
    const std::string_view clause_text = trim(raw_clause);
    if (clause_text.empty()) {
      set_error(error, "empty clause in fault spec");
      return std::nullopt;
    }
    const std::size_t colon = clause_text.find(':');
    const std::string_view name = trim(clause_text.substr(0, colon));
    std::vector<std::string_view> args;
    if (colon != std::string_view::npos) {
      for (std::string_view arg : split(clause_text.substr(colon + 1), ',')) {
        args.push_back(trim(arg));
      }
    }

    FaultClause clause;
    bool ok = false;
    if (name == "drop") {
      clause.point = Point::kProbeDrop;
      ok = parse_window_args(args, clause.point, clause, error);
    } else if (name == "outage") {
      clause.point = Point::kOutage;
      ok = parse_window_args(args, clause.point, clause, error);
    } else if (name == "send_fail") {
      clause.point = Point::kSendFail;
      ok = parse_window_args(args, clause.point, clause, error);
    } else if (name == "mac_corrupt") {
      clause.point = Point::kMacCorrupt;
      ok = parse_window_args(args, clause.point, clause, error);
    } else if (name == "rst") {
      clause.point = Point::kConnectRst;
      ok = parse_host_args(args, clause, error);
    } else if (name == "banner_trunc") {
      clause.point = Point::kBannerTruncate;
      ok = parse_host_args(args, clause, error);
    } else if (name == "banner_stall") {
      clause.point = Point::kBannerStall;
      ok = parse_host_args(args, clause, error);
    } else if (name == "store_eio") {
      clause.point = Point::kStoreWriteError;
      ok = parse_store_args(args, clause, error);
    } else if (name == "cell_crash") {
      clause.point = Point::kCellCrash;
      ok = parse_cell_args(args, clause.point, clause, error);
    } else if (name == "cell_hang") {
      clause.point = Point::kCellHang;
      ok = parse_cell_args(args, clause.point, clause, error);
    } else if (name == "worker_kill") {
      clause.point = Point::kWorkerKill;
      ok = parse_worker_args(args, clause.point, clause, error);
    } else if (name == "worker_stall") {
      clause.point = Point::kWorkerStall;
      ok = parse_worker_args(args, clause.point, clause, error);
    } else if (name == "enospc") {
      clause.point = Point::kEnospc;
      ok = parse_enospc_args(args, clause, error);
    } else if (name == "segment_corrupt") {
      clause.point = Point::kSegmentCorrupt;
      ok = parse_corrupt_args(args, clause, error);
    } else if (name == "frame_garble") {
      clause.point = Point::kFrameGarble;
      ok = parse_garble_args(args, clause, error);
    } else {
      set_error(error, "unknown fault clause: " + std::string(name));
      return std::nullopt;
    }
    if (!ok) return std::nullopt;
    plan.clauses_.push_back(clause);
  }
  return plan;
}

bool FaultPlan::recoverable() const {
  return std::all_of(clauses_.begin(), clauses_.end(),
                     [](const FaultClause& c) { return c.recoverable(); });
}

int FaultPlan::min_l7_retries() const {
  int retries = 0;
  for (const FaultClause& clause : clauses_) {
    if (clause.point == Point::kConnectRst ||
        clause.point == Point::kBannerTruncate ||
        clause.point == Point::kBannerStall) {
      retries = std::max(retries, clause.attempts);
    }
  }
  return retries;
}

bool FaultPlan::needs_banner_retry() const {
  return std::any_of(clauses_.begin(), clauses_.end(),
                     [](const FaultClause& c) {
                       return c.point == Point::kBannerTruncate ||
                              c.point == Point::kBannerStall;
                     });
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultClause& clause : clauses_) {
    if (!out.empty()) out += ';';
    out += clause.to_string();
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

bool FaultInjector::window_hit(const FaultClause& clause,
                               FaultClause::Unit unit, std::uint64_t value,
                               std::uint64_t stream) const {
  if (clause.unit != unit) return false;
  if (value < clause.lo || value > clause.hi) return false;
  if (clause.p >= 1.0) return true;
  return hash01(net::mix_u64(seed_, stream, value, salt_of(clause.point))) <
         clause.p;
}

bool FaultInjector::drop_at_slot(std::uint64_t slot,
                                 net::Ipv4Addr dst) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kProbeDrop) continue;
    if (window_hit(clause, FaultClause::Unit::kSlot, slot, dst.value())) {
      record(Point::kProbeDrop);
      return true;
    }
  }
  return false;
}

int FaultInjector::send_failures(std::uint64_t slot,
                                 net::Ipv4Addr dst) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kSendFail) continue;
    if (window_hit(clause, FaultClause::Unit::kSlot, slot, dst.value())) {
      record(Point::kSendFail);
      // 1 or 2 consecutive EAGAINs, deterministic per (seed, slot) —
      // always below the scanner's retry cap, so the send recovers.
      return 1 + static_cast<int>(
                     net::mix_u64(seed_, slot, dst.value(), 0x5E4Du) % 2);
    }
  }
  return 0;
}

bool FaultInjector::corrupt_response(std::uint64_t slot,
                                     net::Ipv4Addr dst) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kMacCorrupt) continue;
    if (window_hit(clause, FaultClause::Unit::kSlot, slot, dst.value())) {
      record(Point::kMacCorrupt);
      return true;
    }
  }
  return false;
}

bool FaultInjector::drop_at_time(net::VirtualTime t, net::Ipv4Addr dst,
                                 int probe_index) const {
  const auto second = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, t.micros() / 1'000'000));
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kProbeDrop) continue;
    const std::uint64_t stream =
        net::mix_u64(dst.value(), static_cast<std::uint64_t>(probe_index));
    if (window_hit(clause, FaultClause::Unit::kSeconds, second, stream)) {
      record(Point::kProbeDrop);
      return true;
    }
  }
  return false;
}

bool FaultInjector::outage_at(net::VirtualTime t, int origin) const {
  const auto second = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, t.micros() / 1'000'000));
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kOutage) continue;
    if (clause.unit != FaultClause::Unit::kSeconds) continue;
    if (clause.origin >= 0 && clause.origin != origin) continue;
    if (second >= clause.lo && second <= clause.hi) {
      record(Point::kOutage);
      return true;
    }
  }
  return false;
}

FaultInjector::L7Fault FaultInjector::l7_fault(net::Ipv4Addr dst,
                                               int attempt) const {
  for (const FaultClause& clause : plan_.clauses()) {
    L7Fault kind = L7Fault::kNone;
    switch (clause.point) {
      case Point::kConnectRst:
        kind = L7Fault::kRst;
        break;
      case Point::kBannerTruncate:
        kind = L7Fault::kTruncate;
        break;
      case Point::kBannerStall:
        kind = L7Fault::kStall;
        break;
      default:
        continue;
    }
    if (clause.mod == 0 || dst.value() % clause.mod != clause.rem) continue;
    if (attempt >= clause.attempts) continue;
    if (clause.p < 1.0 &&
        hash01(net::mix_u64(seed_, dst.value(),
                            static_cast<std::uint64_t>(attempt),
                            salt_of(clause.point))) >= clause.p) {
      continue;
    }
    record(clause.point);
    return kind;
  }
  return L7Fault::kNone;
}

bool FaultInjector::store_write_fails(std::uint64_t write_index) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kStoreWriteError) continue;
    if (write_index >= clause.write_index &&
        write_index < clause.write_index + clause.count) {
      record(Point::kStoreWriteError);
      return true;
    }
  }
  return false;
}

bool FaultInjector::cell_crash(std::uint64_t cell_index) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kCellCrash) continue;
    if (clause.cell == cell_index) {
      record(Point::kCellCrash);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::cell_hang_seconds(std::uint64_t cell_index,
                                               int attempt) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kCellHang) continue;
    if (clause.cell != cell_index) continue;
    if (attempt >= clause.attempts) continue;
    record(Point::kCellHang);
    return clause.hang_seconds;
  }
  return 0;
}

bool FaultInjector::worker_fault(Point point, int worker, WorkerPhase phase,
                                 std::uint64_t cell, int grant) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != point) continue;
    if (clause.phase != static_cast<int>(phase)) continue;
    if (phase == WorkerPhase::kHello) {
      // Pre-HELLO clauses are keyed by worker index: the process has not
      // claimed anything yet, so a cell key would be meaningless.
      if (clause.worker != worker) continue;
    } else {
      // Cell-keyed clauses fire on the first `attempts` grants of the
      // cell's chain, regardless of which worker drew the grant — that
      // keeps kill matrices deterministic under any chain assignment.
      if (clause.worker >= 0) continue;
      if (clause.cell != cell) continue;
      if (grant >= clause.attempts) continue;
    }
    record(point);
    return true;
  }
  return false;
}

bool FaultInjector::worker_kill(int worker, WorkerPhase phase,
                                std::uint64_t cell, int grant) const {
  return worker_fault(Point::kWorkerKill, worker, phase, cell, grant);
}

bool FaultInjector::worker_stall(int worker, WorkerPhase phase,
                                 std::uint64_t cell, int grant) const {
  return worker_fault(Point::kWorkerStall, worker, phase, cell, grant);
}

bool FaultInjector::enospc(std::uint64_t bytes_written) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kEnospc) continue;
    if (bytes_written >= clause.bytes) {
      record(Point::kEnospc);
      return true;
    }
  }
  return false;
}

bool FaultInjector::segment_corrupt(std::uint64_t file_index) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kSegmentCorrupt) continue;
    if (file_index >= clause.write_index &&
        file_index < clause.write_index + clause.count) {
      record(Point::kSegmentCorrupt);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::corrupt_offset(std::uint64_t file_index,
                                            std::uint64_t file_size) const {
  if (file_size == 0) return 0;
  return net::mix_u64(seed_, file_index, file_size,
                      salt_of(Point::kSegmentCorrupt)) %
         file_size;
}

bool FaultInjector::frame_garble(int worker,
                                 std::uint64_t frame_index) const {
  for (const FaultClause& clause : plan_.clauses()) {
    if (clause.point != Point::kFrameGarble) continue;
    if (clause.worker != worker) continue;
    if (frame_index >= clause.write_index &&
        frame_index < clause.write_index + clause.count) {
      record(Point::kFrameGarble);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::garble_offset(int worker,
                                           std::uint64_t frame_index,
                                           std::uint64_t frame_size) const {
  if (frame_size == 0) return 0;
  return net::mix_u64(seed_, static_cast<std::uint64_t>(worker), frame_index,
                      salt_of(Point::kFrameGarble)) %
         frame_size;
}

std::uint64_t FaultInjector::total_hits() const {
  std::uint64_t total = 0;
  for (const auto& counter : hits_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace originscan::fault
