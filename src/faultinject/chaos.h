// Chaos episode generation: seed-derived randomized fault plans for the
// soak harness (core/chaos.h). Every episode is a pure function of
// (seed, round) — the same soak seed replays the same schedule of
// plans, job counts, and worker counts, so a violating round found in
// CI reproduces locally from its round number alone.
//
// The generator composes clauses across the full injection-point
// registry (faultinject.h), but bounds the failure pressure so that
// every episode has a decidable oracle: retry-class faults stay under
// the supervisor's attempt budget and the master's grant budget, which
// means a cell can be lost only through storage exhaustion — and those
// losses are always a suffix of an origin's chain. The soak driver's
// invariant checks (core/chaos.cc) rely on exactly that.
#pragma once

#include <cstdint>
#include <string>

namespace originscan::fault {

// One generated soak episode: how to perturb the run and how to run it.
struct ChaosEpisode {
  // Composed fault-plan spec (FaultPlan::parse grammar). May be empty —
  // a fault-free episode is a valid draw and keeps the oracle honest.
  std::string plan_spec;
  // Thread count for the in-process run; used when workers == 0.
  int jobs = 1;
  // Worker-process count for a distributed episode; 0 = in-process.
  int workers = 0;
};

// Generates episode `round` of a soak with the given seed.
// `cell_count` bounds cell-keyed clauses to the experiment grid;
// `universe_size` scales slot/second windows to the scan's actual
// schedule so windowed clauses land on real traffic.
[[nodiscard]] ChaosEpisode make_chaos_episode(std::uint64_t seed,
                                              std::uint64_t round,
                                              std::uint64_t cell_count,
                                              std::uint32_t universe_size);

}  // namespace originscan::fault
