#include "faultinject/chaos.h"

#include <cinttypes>
#include <cstdio>

#include "netbase/rng.h"

namespace originscan::fault {
namespace {

// Per-(seed, round) decision stream. Each menu item draws from its own
// lane so adding a clause to the menu never perturbs the draws of the
// clauses after it within a round.
struct EpisodeRng {
  std::uint64_t seed;
  std::uint64_t round;

  [[nodiscard]] std::uint64_t word(std::uint64_t lane) const {
    return net::mix_u64(seed, round, lane, 0xC4A05EEDULL);
  }
  [[nodiscard]] double unit(std::uint64_t lane) const {
    return static_cast<double>(word(lane) >> 11) * 0x1.0p-53;
  }
  [[nodiscard]] std::uint64_t below(std::uint64_t lane,
                                    std::uint64_t bound) const {
    return bound == 0 ? 0 : word(lane) % bound;
  }
};

void append_clause(std::string& spec, const std::string& clause) {
  if (!spec.empty()) spec += ';';
  spec += clause;
}

std::string format_p(double p) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%.2f", p);
  return buffer;
}

std::string window_clause(const char* keyword, const char* unit,
                          std::uint64_t lo, std::uint64_t width, double p) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "%s:%s=%" PRIu64 "..%" PRIu64 ",p=%s",
                keyword, unit, lo, lo + width, format_p(p).c_str());
  return buffer;
}

std::string host_clause(const char* keyword, std::uint64_t mod,
                        std::uint64_t rem, int attempts) {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer,
                "%s:host%%%" PRIu64 "==%" PRIu64 ",attempts=%d", keyword, mod,
                rem, attempts);
  return buffer;
}

}  // namespace

ChaosEpisode make_chaos_episode(std::uint64_t seed, std::uint64_t round,
                                std::uint64_t cell_count,
                                std::uint32_t universe_size) {
  const EpisodeRng rng{seed, round};
  ChaosEpisode episode;

  episode.jobs = 1 + static_cast<int>(rng.below(1, 3));
  // Roughly two in five episodes run distributed; the rest exercise the
  // in-process chain scheduler at a randomized jobs count.
  episode.workers =
      rng.unit(2) < 0.4 ? 2 + static_cast<int>(rng.below(3, 2)) : 0;

  const std::uint64_t slots = static_cast<std::uint64_t>(universe_size) * 2;
  const std::uint64_t scan_seconds = 21 * 3600;

  std::string spec;

  // ---- Scan-layer damage (deterministic loss; mirrored into the soak
  // driver's reference run, so the oracle expects the same damage).
  if (rng.unit(10) < 0.5) {
    append_clause(spec, window_clause("drop", "slot", rng.below(11, slots),
                                      slots / 8, 0.05 + 0.35 * rng.unit(12)));
  }
  if (rng.unit(13) < 0.3) {
    std::string clause = window_clause(
        "outage", "sec", rng.below(14, scan_seconds - scan_seconds / 16),
        scan_seconds / 16, 1.0);
    if (rng.unit(15) < 0.5) {
      clause += ",origin=" + std::to_string(rng.below(16, 4));
    }
    append_clause(spec, clause);
  }
  if (rng.unit(17) < 0.3) {
    append_clause(spec,
                  window_clause("mac_corrupt", "slot", rng.below(18, slots),
                                slots / 10, 0.1 + 0.5 * rng.unit(19)));
  }

  // ---- Recoverable pipeline faults (absorbed by the send retry loop,
  // the L7 retry ladder, and the checkpointing store writer).
  if (rng.unit(20) < 0.35) {
    append_clause(spec, window_clause("send_fail", "slot",
                                      rng.below(21, slots), slots / 6,
                                      0.2 + 0.6 * rng.unit(22)));
  }
  if (rng.unit(23) < 0.3) {
    append_clause(spec, host_clause("rst", 5 + rng.below(24, 7),
                                    rng.below(25, 5),
                                    1 + static_cast<int>(rng.below(26, 2))));
  }
  if (rng.unit(27) < 0.25) {
    append_clause(spec,
                  host_clause("banner_trunc", 6 + rng.below(28, 7),
                              rng.below(29, 6),
                              1 + static_cast<int>(rng.below(30, 2))));
  }
  if (rng.unit(31) < 0.25) {
    append_clause(spec,
                  host_clause("banner_stall", 7 + rng.below(32, 7),
                              rng.below(33, 7),
                              1 + static_cast<int>(rng.below(34, 2))));
  }
  if (rng.unit(35) < 0.2) {
    append_clause(spec, "store_eio:write=" + std::to_string(rng.below(36, 4)) +
                            ",count=" +
                            std::to_string(1 + rng.below(37, 3)));
  }

  // ---- Supervisor faults. cell_hang attempts stay strictly under the
  // default retry budget (3), so a hung cell always recovers — losses
  // from exhausted budgets would break the oracle's chain-prefix
  // invariant (a lost cell followed by live cells diverges from the
  // serial reference).
  if (rng.unit(40) < 0.35) {
    append_clause(
        spec, "cell_hang:cell=" + std::to_string(rng.below(41, cell_count)) +
                  ",sec=" + std::to_string(200000 + rng.below(42, 100000)) +
                  ",attempts=" +
                  std::to_string(1 + rng.below(43, 2)));
  }
  if (rng.unit(44) < 0.3) {
    append_clause(spec, "cell_crash:cell=" +
                            std::to_string(rng.below(45, cell_count)));
  }

  // ---- Storage decay. enospc ends the run as a labeled partial grid;
  // segment_corrupt plants damage the next resume must quarantine.
  if (rng.unit(50) < 0.18) {
    append_clause(spec, "enospc:bytes=" +
                            std::to_string(2000 + rng.below(51, 60000)));
  }
  if (rng.unit(52) < 0.3) {
    append_clause(spec,
                  "segment_corrupt:file=" +
                      std::to_string(rng.below(53, cell_count * 3)) +
                      ",count=1");
  }

  // ---- Distributed faults: at most ONE per episode, so the combined
  // grant-failure pressure on any single cell (one death or one garbled
  // frame) stays under the master's grant budget and no cell is lost to
  // it — same oracle argument as cell_hang above.
  if (episode.workers > 0 && rng.unit(60) < 0.5) {
    const std::uint64_t pick = rng.below(61, 5);
    const char* keyword = pick % 2 == 0 ? "worker_kill" : "worker_stall";
    if (pick < 2) {
      append_clause(
          spec, std::string(keyword) + ":worker=" +
                    std::to_string(rng.below(
                        62, static_cast<std::uint64_t>(episode.workers))));
    } else if (pick < 4) {
      static const char* kPhases[] = {"claim", "segment", "done"};
      append_clause(spec,
                    std::string(keyword) +
                        ":cell=" + std::to_string(rng.below(63, cell_count)) +
                        ",phase=" + kPhases[rng.below(64, 3)] +
                        ",attempts=1");
    } else {
      append_clause(
          spec,
          "frame_garble:worker=" +
              std::to_string(
                  rng.below(65, static_cast<std::uint64_t>(episode.workers))) +
              ",frame=" + std::to_string(rng.below(66, 12)) + ",count=1");
    }
  }

  episode.plan_spec = std::move(spec);
  return episode;
}

}  // namespace originscan::fault
