// The three protocols the study scans, with their well-known ports.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace originscan::proto {

enum class Protocol : std::uint8_t { kHttp = 0, kHttps = 1, kSsh = 2 };

inline constexpr std::array<Protocol, 3> kAllProtocols = {
    Protocol::kHttp, Protocol::kHttps, Protocol::kSsh};

constexpr std::uint16_t port_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp:
      return 80;
    case Protocol::kHttps:
      return 443;
    case Protocol::kSsh:
      return 22;
  }
  return 0;
}

constexpr std::string_view name_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp:
      return "HTTP";
    case Protocol::kHttps:
      return "HTTPS";
    case Protocol::kSsh:
      return "SSH";
  }
  return "?";
}

constexpr std::size_t index_of(Protocol p) {
  return static_cast<std::size_t>(p);
}

}  // namespace originscan::proto
