// The three protocols the study scans, with their well-known ports.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace originscan::proto {

enum class Protocol : std::uint8_t { kHttp = 0, kHttps = 1, kSsh = 2 };

inline constexpr std::array<Protocol, 3> kAllProtocols = {
    Protocol::kHttp, Protocol::kHttps, Protocol::kSsh};

constexpr std::uint16_t port_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp:
      return 80;
    case Protocol::kHttps:
      return 443;
    case Protocol::kSsh:
      return 22;
  }
  return 0;
}

// Inverse of port_of: the protocol scanned on `port`, or nullopt for a
// port outside the study. Used on the probe hot path, so it must stay a
// branch table, not a loop over kAllProtocols.
constexpr std::optional<Protocol> protocol_for_port(std::uint16_t port) {
  switch (port) {
    case 80:
      return Protocol::kHttp;
    case 443:
      return Protocol::kHttps;
    case 22:
      return Protocol::kSsh;
    default:
      return std::nullopt;
  }
}

constexpr std::string_view name_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp:
      return "HTTP";
    case Protocol::kHttps:
      return "HTTPS";
    case Protocol::kSsh:
      return "SSH";
  }
  return "?";
}

constexpr std::size_t index_of(Protocol p) {
  return static_cast<std::size_t>(p);
}

}  // namespace originscan::proto
