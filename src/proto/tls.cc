#include "proto/tls.h"

#include <array>

#include "netbase/byteio.h"

namespace originscan::proto {

using net::ByteReader;
using net::ByteWriter;

std::span<const std::uint16_t> chrome_cipher_suites() {
  static constexpr std::array<std::uint16_t, 8> kSuites = {
      0xC02B,  // ECDHE-ECDSA-AES128-GCM-SHA256
      0xC02F,  // ECDHE-RSA-AES128-GCM-SHA256
      0xC02C,  // ECDHE-ECDSA-AES256-GCM-SHA384
      0xC030,  // ECDHE-RSA-AES256-GCM-SHA384
      0xCCA9,  // ECDHE-ECDSA-CHACHA20-POLY1305
      0xCCA8,  // ECDHE-RSA-CHACHA20-POLY1305
      0x009C,  // RSA-AES128-GCM-SHA256
      0x009D,  // RSA-AES256-GCM-SHA384
  };
  return kSuites;
}

std::vector<std::uint8_t> TlsRecord::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(5 + fragment.size());
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(content_type));
  w.u16(version);
  w.u16(static_cast<std::uint16_t>(fragment.size()));
  w.bytes(fragment);
  return out;
}

std::optional<TlsRecord> TlsRecord::parse(std::span<const std::uint8_t> data,
                                          std::size_t& consumed) {
  if (data.size() < 5) return std::nullopt;
  ByteReader r(data);
  TlsRecord record;
  const std::uint8_t type = r.u8();
  if (type != static_cast<std::uint8_t>(TlsContentType::kAlert) &&
      type != static_cast<std::uint8_t>(TlsContentType::kHandshake)) {
    return std::nullopt;
  }
  record.content_type = static_cast<TlsContentType>(type);
  record.version = r.u16();
  const std::uint16_t length = r.u16();
  auto fragment = r.bytes(length);
  if (!r.ok()) return std::nullopt;
  record.fragment.assign(fragment.begin(), fragment.end());
  consumed = 5 + static_cast<std::size_t>(length);
  return record;
}

std::vector<std::uint8_t> ClientHello::serialize() const {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u16(version);
  w.bytes(random);
  w.u8(0);  // session id length
  w.u16(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t suite : cipher_suites) w.u16(suite);
  w.u8(1);  // compression methods length
  w.u8(0);  // null compression
  // Extensions: only SNI when requested.
  if (server_name.empty()) {
    w.u16(0);
  } else {
    const auto name_length = static_cast<std::uint16_t>(server_name.size());
    const std::uint16_t sni_list = name_length + 3;
    const std::uint16_t sni_ext = sni_list + 2;
    w.u16(sni_ext + 4);  // total extensions length
    w.u16(0);            // extension type: server_name
    w.u16(sni_ext);
    w.u16(sni_list);
    w.u8(0);  // name type: host_name
    w.u16(name_length);
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(server_name.data()),
                      server_name.size()));
  }
  return out;
}

std::optional<ClientHello> ClientHello::parse(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ClientHello hello;
  hello.version = r.u16();
  auto random = r.bytes(32);
  const std::uint8_t session_id_length = r.u8();
  r.skip(session_id_length);
  const std::uint16_t suites_length = r.u16();
  if (suites_length % 2 != 0) return std::nullopt;
  for (int i = 0; i < suites_length / 2; ++i) {
    hello.cipher_suites.push_back(r.u16());
  }
  const std::uint8_t compression_length = r.u8();
  r.skip(compression_length);
  if (!r.ok()) return std::nullopt;
  std::copy(random.begin(), random.end(), hello.random.begin());
  if (r.remaining() >= 2) {
    std::uint16_t extensions_length = r.u16();
    while (r.ok() && extensions_length >= 4) {
      const std::uint16_t ext_type = r.u16();
      const std::uint16_t ext_length = r.u16();
      auto ext = r.bytes(ext_length);
      if (!r.ok()) return std::nullopt;
      extensions_length =
          static_cast<std::uint16_t>(extensions_length - 4 - ext_length);
      if (ext_type == 0 && ext.size() >= 5) {
        ByteReader sni(ext);
        sni.skip(2);  // list length
        sni.skip(1);  // name type
        const std::uint16_t name_length = sni.u16();
        auto name = sni.bytes(name_length);
        if (sni.ok()) {
          hello.server_name.assign(name.begin(), name.end());
        }
      }
    }
  }
  return hello;
}

std::vector<std::uint8_t> ServerHello::serialize() const {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u16(version);
  w.bytes(random);
  w.u8(0);  // session id length
  w.u16(cipher_suite);
  w.u8(0);  // null compression
  w.u16(0); // no extensions
  return out;
}

std::optional<ServerHello> ServerHello::parse(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ServerHello hello;
  hello.version = r.u16();
  auto random = r.bytes(32);
  const std::uint8_t session_id_length = r.u8();
  r.skip(session_id_length);
  hello.cipher_suite = r.u16();
  r.skip(1);  // compression
  if (!r.ok()) return std::nullopt;
  std::copy(random.begin(), random.end(), hello.random.begin());
  return hello;
}

std::vector<std::uint8_t> Certificate::serialize() const {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  std::size_t total = 0;
  for (const auto& der : chain) total += 3 + der.size();
  // 24-bit chain length.
  w.u8(static_cast<std::uint8_t>(total >> 16));
  w.u16(static_cast<std::uint16_t>(total));
  for (const auto& der : chain) {
    w.u8(static_cast<std::uint8_t>(der.size() >> 16));
    w.u16(static_cast<std::uint16_t>(der.size()));
    w.bytes(der);
  }
  return out;
}

std::optional<Certificate> Certificate::parse(
    std::span<const std::uint8_t> body) {
  ByteReader r(body);
  std::uint32_t chain_length = std::uint32_t{r.u8()} << 16;
  chain_length |= r.u16();
  Certificate cert;
  std::uint32_t remaining = chain_length;
  while (r.ok() && remaining >= 3) {
    std::uint32_t der_length = std::uint32_t{r.u8()} << 16;
    der_length |= r.u16();
    auto der = r.bytes(der_length);
    if (!r.ok()) return std::nullopt;
    cert.chain.emplace_back(der.begin(), der.end());
    remaining -= 3 + der_length;
  }
  if (!r.ok() || remaining != 0) return std::nullopt;
  return cert;
}

std::vector<std::uint8_t> TlsAlert::serialize() const {
  return {static_cast<std::uint8_t>(fatal ? 2 : 1),
          static_cast<std::uint8_t>(description)};
}

std::optional<TlsAlert> TlsAlert::parse(std::span<const std::uint8_t> body) {
  if (body.size() != 2) return std::nullopt;
  TlsAlert alert;
  if (body[0] != 1 && body[0] != 2) return std::nullopt;
  alert.fatal = body[0] == 2;
  alert.description = static_cast<TlsAlertDescription>(body[1]);
  return alert;
}

std::vector<std::uint8_t> wrap_handshake(TlsHandshakeType type,
                                         std::span<const std::uint8_t> body) {
  TlsRecord record;
  record.content_type = TlsContentType::kHandshake;
  ByteWriter w(record.fragment);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(body.size() >> 16));
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return record.serialize();
}

std::optional<std::vector<HandshakeMessage>> split_handshakes(
    std::span<const std::uint8_t> fragment) {
  std::vector<HandshakeMessage> out;
  ByteReader r(fragment);
  while (r.ok() && r.remaining() >= 4) {
    HandshakeMessage msg;
    msg.type = static_cast<TlsHandshakeType>(r.u8());
    std::uint32_t length = std::uint32_t{r.u8()} << 16;
    length |= r.u16();
    auto body = r.bytes(length);
    if (!r.ok()) return std::nullopt;
    msg.body.assign(body.begin(), body.end());
    out.push_back(std::move(msg));
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return out;
}

}  // namespace originscan::proto
