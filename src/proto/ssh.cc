#include "proto/ssh.h"

#include <algorithm>
#include <charconv>

#include "netbase/byteio.h"
#include "netbase/rng.h"

namespace originscan::proto {

using net::ByteReader;
using net::ByteWriter;

std::string SshIdentification::serialize() const {
  std::string out = "SSH-" + protocol_version + "-" + software_version;
  if (!comment.empty()) {
    out += ' ';
    out += comment;
  }
  out += "\r\n";
  return out;
}

std::optional<SshIdentification> SshIdentification::parse(
    std::string_view line) {
  // Strip one trailing CRLF or LF.
  if (line.ends_with("\r\n")) {
    line.remove_suffix(2);
  } else if (line.ends_with('\n')) {
    line.remove_suffix(1);
  }
  if (!line.starts_with("SSH-")) return std::nullopt;
  line.remove_prefix(4);
  const auto dash = line.find('-');
  if (dash == std::string_view::npos) return std::nullopt;

  SshIdentification id;
  id.protocol_version = std::string(line.substr(0, dash));
  if (id.protocol_version != "2.0" && id.protocol_version != "1.99") {
    return std::nullopt;
  }
  auto rest = line.substr(dash + 1);
  const auto space = rest.find(' ');
  if (space == std::string_view::npos) {
    id.software_version = std::string(rest);
  } else {
    id.software_version = std::string(rest.substr(0, space));
    id.comment = std::string(rest.substr(space + 1));
  }
  if (id.software_version.empty()) return std::nullopt;
  return id;
}

double MaxStartups::refusal_probability(int unauthenticated) const {
  if (unauthenticated < start) return 0.0;
  if (unauthenticated >= full) return 1.0;
  // OpenSSH ramps linearly from rate% at `start` to 100% at `full`.
  const double span = static_cast<double>(full - start);
  const double progress = static_cast<double>(unauthenticated - start);
  const double base = static_cast<double>(rate) / 100.0;
  return base + (1.0 - base) * (span > 0.0 ? progress / span : 1.0);
}

std::optional<MaxStartups> MaxStartups::parse(std::string_view text) {
  MaxStartups ms;
  int* fields[3] = {&ms.start, &ms.rate, &ms.full};
  for (int i = 0; i < 3; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != ':') return std::nullopt;
      text.remove_prefix(1);
    }
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), *fields[i]);
    if (ec != std::errc{} || ptr == text.data() || *fields[i] < 0) {
      return std::nullopt;
    }
    text.remove_prefix(static_cast<std::size_t>(ptr - text.data()));
  }
  if (!text.empty()) return std::nullopt;
  if (ms.rate > 100 || ms.full < ms.start) return std::nullopt;
  return ms;
}

std::string MaxStartups::to_string() const {
  return std::to_string(start) + ":" + std::to_string(rate) + ":" +
         std::to_string(full);
}

std::vector<std::uint8_t> SshPacket::serialize(
    std::uint64_t padding_seed) const {
  // packet_length(4) + padding_length(1) + payload + padding; total must
  // be a multiple of 8 and padding >= 4.
  std::size_t padding = 8 - ((payload.size() + 5) % 8);
  if (padding < 4) padding += 8;

  std::vector<std::uint8_t> out;
  out.reserve(5 + payload.size() + padding);
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(1 + payload.size() + padding));
  w.u8(static_cast<std::uint8_t>(padding));
  w.bytes(payload);
  std::uint64_t state = padding_seed;
  for (std::size_t i = 0; i < padding; ++i) {
    w.u8(static_cast<std::uint8_t>(net::splitmix64(state)));
  }
  return out;
}

std::optional<SshPacket> SshPacket::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t packet_length = r.u32();
  const std::uint8_t padding_length = r.u8();
  if (!r.ok() || packet_length < 1u + padding_length) return std::nullopt;
  const std::uint32_t payload_length = packet_length - 1 - padding_length;
  auto payload = r.bytes(payload_length);
  r.skip(padding_length);
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  if ((4 + packet_length) % 8 != 0) return std::nullopt;
  SshPacket packet;
  packet.payload.assign(payload.begin(), payload.end());
  return packet;
}

namespace {

void write_name_list(ByteWriter& w, const std::vector<std::string>& names) {
  std::string joined;
  for (const auto& name : names) {
    if (!joined.empty()) joined += ',';
    joined += name;
  }
  w.u32(static_cast<std::uint32_t>(joined.size()));
  w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(joined.data()),
                    joined.size()));
}

std::optional<std::vector<std::string>> read_name_list(ByteReader& r) {
  const std::uint32_t length = r.u32();
  auto raw = r.bytes(length);
  if (!r.ok()) return std::nullopt;
  std::vector<std::string> out;
  std::string current;
  for (std::uint8_t byte : raw) {
    if (byte == ',') {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(static_cast<char>(byte));
    }
  }
  if (!current.empty() || !raw.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

std::vector<std::uint8_t> SshKexInit::serialize() const {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(kMessageNumber);
  w.bytes(cookie);
  write_name_list(w, kex_algorithms);
  write_name_list(w, host_key_algorithms);
  // The six remaining name-lists (ciphers/MACs/compression/languages both
  // directions) are irrelevant to a banner grab; write them empty.
  for (int i = 0; i < 6; ++i) w.u32(0);
  w.u8(0);   // first_kex_packet_follows
  w.u32(0);  // reserved
  return out;
}

std::optional<SshKexInit> SshKexInit::parse(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  if (r.u8() != kMessageNumber) return std::nullopt;
  SshKexInit kex;
  auto cookie = r.bytes(16);
  if (!r.ok()) return std::nullopt;
  std::copy(cookie.begin(), cookie.end(), kex.cookie.begin());
  auto kex_algorithms = read_name_list(r);
  auto host_keys = read_name_list(r);
  if (!kex_algorithms || !host_keys) return std::nullopt;
  kex.kex_algorithms = std::move(*kex_algorithms);
  kex.host_key_algorithms = std::move(*host_keys);
  for (int i = 0; i < 6; ++i) {
    if (!read_name_list(r)) return std::nullopt;
  }
  r.skip(1);
  r.skip(4);
  if (!r.ok()) return std::nullopt;
  return kex;
}

std::vector<std::string> default_kex_algorithms() {
  return {"curve25519-sha256", "ecdh-sha2-nistp256",
          "diffie-hellman-group14-sha256"};
}

std::vector<std::string> default_host_key_algorithms() {
  return {"ssh-ed25519", "rsa-sha2-512", "rsa-sha2-256"};
}

}  // namespace originscan::proto
