// TLS 1.2 handshake codec — the subset a ZGrab TLS banner grab exercises:
// ClientHello (with the cipher suites modern Chrome offers, per the
// paper's methodology), ServerHello, Certificate, ServerHelloDone, and
// Alert. Record framing and handshake framing follow RFC 5246; key
// exchange and encryption are intentionally out of scope because the
// study terminates the handshake once the server's flight arrives.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace originscan::proto {

enum class TlsContentType : std::uint8_t {
  kAlert = 21,
  kHandshake = 22,
};

enum class TlsHandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kCertificate = 11,
  kServerHelloDone = 14,
};

enum class TlsAlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kUnexpectedMessage = 10,
  kHandshakeFailure = 40,
  kAccessDenied = 49,
  kInternalError = 80,
};

// The TLS 1.2 cipher suites offered by modern Chrome at the time of the
// study (ECDHE suites with AES-GCM / ChaCha20).
std::span<const std::uint16_t> chrome_cipher_suites();

struct TlsRecord {
  TlsContentType content_type = TlsContentType::kHandshake;
  std::uint16_t version = 0x0303;  // TLS 1.2
  std::vector<std::uint8_t> fragment;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  // Parses one record from the front of `data`; advances `consumed`.
  static std::optional<TlsRecord> parse(std::span<const std::uint8_t> data,
                                        std::size_t& consumed);
};

struct ClientHello {
  std::uint16_t version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint16_t> cipher_suites;
  std::string server_name;  // SNI extension; empty = omitted

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;  // handshake body
  static std::optional<ClientHello> parse(std::span<const std::uint8_t> body);
};

struct ServerHello {
  std::uint16_t version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::uint16_t cipher_suite = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<ServerHello> parse(std::span<const std::uint8_t> body);
};

struct Certificate {
  // DER blobs, leaf first. The simulation carries opaque synthetic DER.
  std::vector<std::vector<std::uint8_t>> chain;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Certificate> parse(std::span<const std::uint8_t> body);
};

struct TlsAlert {
  bool fatal = true;
  TlsAlertDescription description = TlsAlertDescription::kHandshakeFailure;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;  // 2-byte body
  static std::optional<TlsAlert> parse(std::span<const std::uint8_t> body);
};

// Wraps a handshake message body in handshake framing + a TLS record.
std::vector<std::uint8_t> wrap_handshake(TlsHandshakeType type,
                                         std::span<const std::uint8_t> body);

struct HandshakeMessage {
  TlsHandshakeType type{};
  std::vector<std::uint8_t> body;
};

// Splits a record fragment into the handshake messages it contains.
std::optional<std::vector<HandshakeMessage>> split_handshakes(
    std::span<const std::uint8_t> fragment);

}  // namespace originscan::proto
