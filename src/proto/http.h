// Minimal HTTP/1.1 request/response codec — exactly what a ZGrab
// `http` module sends (GET / with Host and User-Agent) and what the
// simulated servers answer with. Parsing is strict about the pieces the
// scanner relies on (status line, Content-Length framing) and tolerant
// about everything else, mirroring real scanner behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace originscan::proto {

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string host;        // Host header
  std::string user_agent = "Mozilla/5.0 zgrab/0.x (originscan)";

  [[nodiscard]] std::string serialize() const;
  static std::optional<HttpRequest> parse(std::string_view text);
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::string server;  // Server header, may be empty
  std::string title;   // body is "<html><title>{title}</title>..."
  std::map<std::string, std::string> extra_headers;

  [[nodiscard]] std::string serialize() const;
  static std::optional<HttpResponse> parse(std::string_view text);

  // True when the status line parsed and the handshake counts as an
  // L7 success for the study (any syntactically valid response does —
  // the paper counts completed GETs, not 200s).
  [[nodiscard]] bool valid() const { return status_code >= 100; }
};

// Extracts the <title> from an HTML body (used by the geographic-bias
// analysis to recognize "Blocked Site" pages, Section 4.4).
std::string extract_title(std::string_view html);

}  // namespace originscan::proto
