// SSH-2 transport-layer codec for the pieces a ZGrab SSH banner grab
// touches: the identification string exchange (RFC 4253 §4.2) — the study
// terminates after this — plus KEXINIT build/parse so the library can also
// model clients that go one message further. Also models the
// "ssh_exchange_identification: Connection closed by remote host" refusal
// that OpenSSH's MaxStartups produces (Section 6 of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace originscan::proto {

struct SshIdentification {
  std::string protocol_version = "2.0";
  std::string software_version = "OpenSSH_7.4";
  std::string comment;  // optional trailing comment

  // "SSH-2.0-OpenSSH_7.4[ comment]\r\n"
  [[nodiscard]] std::string serialize() const;
  static std::optional<SshIdentification> parse(std::string_view line);
};

// OpenSSH MaxStartups start:rate:full triple (sshd_config(5)): once
// `start` unauthenticated connections are open, refuse new ones with
// probability ramping linearly from rate% to 100% at `full`.
struct MaxStartups {
  int start = 10;
  int rate = 30;  // percent
  int full = 100;

  // Refusal probability given the current number of open unauthenticated
  // connections (0 below start, 1 at/above full).
  [[nodiscard]] double refusal_probability(int unauthenticated) const;

  static std::optional<MaxStartups> parse(std::string_view text);  // "10:30:100"
  [[nodiscard]] std::string to_string() const;
};

// SSH binary packet framing (RFC 4253 §6, unencrypted): carries KEXINIT.
struct SshPacket {
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::uint64_t padding_seed) const;
  static std::optional<SshPacket> parse(std::span<const std::uint8_t> data);
};

struct SshKexInit {
  static constexpr std::uint8_t kMessageNumber = 20;

  std::array<std::uint8_t, 16> cookie{};
  std::vector<std::string> kex_algorithms;
  std::vector<std::string> host_key_algorithms;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;  // packet payload
  static std::optional<SshKexInit> parse(std::span<const std::uint8_t> payload);
};

// Default algorithm lists resembling OpenSSH 7.x.
std::vector<std::string> default_kex_algorithms();
std::vector<std::string> default_host_key_algorithms();

}  // namespace originscan::proto
