#include "proto/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace originscan::proto {
namespace {

constexpr std::string_view kCrlf = "\r\n";

// Splits off the next CRLF-terminated line; returns nullopt when no CRLF
// remains.
std::optional<std::string_view> next_line(std::string_view& text) {
  const auto pos = text.find(kCrlf);
  if (pos == std::string_view::npos) return std::nullopt;
  auto line = text.substr(0, pos);
  text.remove_prefix(pos + kCrlf.size());
  return line;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

// Parses "Name: value" header lines until the blank line; returns false
// on malformed input.
bool parse_headers(std::string_view& text,
                   std::map<std::string, std::string>& headers) {
  for (;;) {
    auto line = next_line(text);
    if (!line) return false;
    if (line->empty()) return true;  // end of headers
    const auto colon = line->find(':');
    if (colon == std::string_view::npos) return false;
    headers[lower(trim(line->substr(0, colon)))] =
        std::string(trim(line->substr(colon + 1)));
  }
}

}  // namespace

std::string HttpRequest::serialize() const {
  std::string out;
  out.reserve(128);
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: ";
  out += host.empty() ? "-" : host;
  out += "\r\nUser-Agent: ";
  out += user_agent;
  out += "\r\nAccept: */*\r\nConnection: close\r\n\r\n";
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(std::string_view text) {
  auto line = next_line(text);
  if (!line) return std::nullopt;
  const auto first_space = line->find(' ');
  const auto second_space = line->rfind(' ');
  if (first_space == std::string_view::npos || second_space <= first_space) {
    return std::nullopt;
  }
  HttpRequest request;
  request.method = std::string(line->substr(0, first_space));
  request.target = std::string(
      line->substr(first_space + 1, second_space - first_space - 1));
  if (line->substr(second_space + 1) != "HTTP/1.1" &&
      line->substr(second_space + 1) != "HTTP/1.0") {
    return std::nullopt;
  }
  std::map<std::string, std::string> headers;
  if (!parse_headers(text, headers)) return std::nullopt;
  if (auto it = headers.find("host"); it != headers.end()) {
    request.host = it->second;
  }
  if (auto it = headers.find("user-agent"); it != headers.end()) {
    request.user_agent = it->second;
  }
  return request;
}

std::string HttpResponse::serialize() const {
  std::string body = "<html><head><title>" + title +
                     "</title></head><body>" + title + "</body></html>";
  std::string out;
  out.reserve(256 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status_code);
  out += ' ';
  out += reason;
  out += kCrlf;
  if (!server.empty()) {
    out += "Server: ";
    out += server;
    out += kCrlf;
  }
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
  }
  out += "Content-Type: text/html\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(std::string_view text) {
  auto line = next_line(text);
  if (!line) return std::nullopt;
  if (!line->starts_with("HTTP/1.")) return std::nullopt;
  const auto first_space = line->find(' ');
  if (first_space == std::string_view::npos) return std::nullopt;
  auto rest = line->substr(first_space + 1);
  int status = 0;
  auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), status);
  if (ec != std::errc{} || status < 100 || status > 599) return std::nullopt;

  HttpResponse response;
  response.status_code = status;
  const auto reason_start = rest.find(' ');
  if (reason_start != std::string_view::npos) {
    response.reason = std::string(rest.substr(reason_start + 1));
  }
  std::map<std::string, std::string> headers;
  if (!parse_headers(text, headers)) return std::nullopt;
  if (auto it = headers.find("server"); it != headers.end()) {
    response.server = it->second;
  }
  // Body framing: trust Content-Length when present, else take the rest.
  std::string_view body = text;
  if (auto it = headers.find("content-length"); it != headers.end()) {
    std::size_t length = 0;
    auto [p, e] = std::from_chars(it->second.data(),
                                  it->second.data() + it->second.size(), length);
    if (e == std::errc{} && p == it->second.data() + it->second.size() &&
        length <= body.size()) {
      body = body.substr(0, length);
    }
  }
  response.title = extract_title(body);
  for (auto& [name, value] : headers) {
    if (name != "server" && name != "content-length" &&
        name != "content-type" && name != "connection") {
      response.extra_headers.emplace(name, std::move(value));
    }
  }
  return response;
}

std::string extract_title(std::string_view html) {
  const auto open = html.find("<title>");
  if (open == std::string_view::npos) return {};
  const auto start = open + 7;
  const auto close = html.find("</title>", start);
  if (close == std::string_view::npos) return {};
  return std::string(html.substr(start, close - start));
}

}  // namespace originscan::proto
