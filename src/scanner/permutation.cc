#include "scanner/permutation.h"

#include <array>
#include <cassert>
#include <vector>

#include "netbase/rng.h"

namespace originscan::scan {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod_u64(result, base, m);
    base = mulmod_u64(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic Miller-Rabin witness set for 64-bit integers.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 1; i < r; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::uint64_t next_prime_above(std::uint64_t n) {
  std::uint64_t candidate = n + 1;
  if (candidate <= 2) return 2;
  if ((candidate & 1) == 0) ++candidate;
  while (!is_prime_u64(candidate)) candidate += 2;
  return candidate;
}

namespace {

// Prime factorization by trial division — fine for the p-1 values that
// arise from scan-space-sized primes (p <= 2^33 in practice, and the
// loop is O(sqrt(p)) once).
std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    if (n % p == 0) {
      factors.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

bool is_generator(std::uint64_t g, std::uint64_t prime,
                  const std::vector<std::uint64_t>& factors) {
  for (std::uint64_t q : factors) {
    if (powmod_u64(g, (prime - 1) / q, prime) == 1) return false;
  }
  return true;
}

}  // namespace

CyclicGroup CyclicGroup::for_size(std::uint64_t size, std::uint64_t seed) {
  assert(size >= 1);
  const std::uint64_t prime = next_prime_above(size < 2 ? 2 : size);
  const auto factors = prime_factors(prime - 1);

  net::Rng rng(net::mix_u64(seed, prime, 0x6E4ULL));
  std::uint64_t generator = 0;
  for (;;) {
    const std::uint64_t candidate = 2 + rng.below(prime - 3);
    if (is_generator(candidate, prime, factors)) {
      generator = candidate;
      break;
    }
  }
  const std::uint64_t start = 1 + rng.below(prime - 1);
  return CyclicGroup(prime, generator, start, size);
}

CyclicGroup::Iterator CyclicGroup::shard(std::uint32_t shard_index,
                                         std::uint32_t shard_count) const {
  assert(shard_count >= 1 && shard_index < shard_count);
  const std::uint64_t shard_start =
      mulmod_u64(start_, powmod_u64(generator_, shard_index, prime_), prime_);
  const std::uint64_t step = powmod_u64(generator_, shard_count, prime_);
  // Positions 0 .. p-2 of the full sequence; this shard owns those
  // congruent to shard_index mod shard_count.
  const std::uint64_t total = prime_ - 1;
  const std::uint64_t count =
      shard_index < total ? (total - 1 - shard_index) / shard_count + 1 : 0;
  return Iterator(shard_start, step, prime_, size_, count, shard_index,
                  shard_count);
}

std::optional<std::uint64_t> CyclicGroup::Iterator::next() {
  while (remaining_ > 0) {
    const std::uint64_t value = current_;
    current_ = mulmod_u64(current_, step_, prime_);
    --remaining_;
    ++consumed_;
    // Group elements are [1, p-1]; addresses are [0, size). Skip the
    // elements that fall outside the scan space.
    if (value <= size_) return value - 1;
  }
  return std::nullopt;
}

std::size_t CyclicGroup::Iterator::next_batch(std::span<std::uint32_t> out) {
  // Local copies keep the recurrence out of memory inside the loop; the
  // emitted sequence is identical to repeated next() calls.
  std::uint64_t current = current_;
  std::uint64_t remaining = remaining_;
  std::uint64_t consumed = consumed_;
  const std::uint64_t step = step_;
  const std::uint64_t prime = prime_;
  const std::uint64_t size = size_;

  std::size_t written = 0;
  while (written < out.size() && remaining > 0) {
    const std::uint64_t value = current;
    current = mulmod_u64(current, step, prime);
    --remaining;
    ++consumed;
    if (value <= size) {
      out[written++] = static_cast<std::uint32_t>(value - 1);
    }
  }

  current_ = current;
  remaining_ = remaining;
  consumed_ = consumed;
  return written;
}

}  // namespace originscan::scan
