#include "scanner/zmap.h"

#include <cassert>

#include "netbase/headers.h"
#include "netbase/rng.h"

namespace originscan::scan {

ZMapScanner::ZMapScanner(const ZMapConfig& config, sim::Internet* internet,
                         sim::OriginId origin)
    : config_(config),
      internet_(internet),
      origin_(origin),
      validator_(net::SipHash::key_from_seed(
                     net::mix_u64(config.seed, 0x2A9u, origin)),
                 config.source_port_base, config.source_port_count) {
  assert(!config_.source_ips.empty());
  assert(config_.universe_size > 0);
}

net::Ipv4Addr ZMapScanner::source_ip_for(net::Ipv4Addr dst) const {
  if (config_.source_ips.size() == 1) return config_.source_ips.front();
  const std::uint64_t index =
      net::mix_u64(dst.value(), 0x5AC1Fu) % config_.source_ips.size();
  return config_.source_ips[index];
}

ZMapScanner::Stats ZMapScanner::run(
    const std::function<void(const L4Result&)>& on_result) {
  Stats stats;
  auto group = CyclicGroup::for_size(config_.universe_size, config_.seed);
  auto iterator = group.shard(config_.shard_index, config_.shard_count);

  const double pps = config_.effective_pps(config_.universe_size);
  const double seconds_per_packet = 1.0 / pps;
  const std::uint16_t dst_port = proto::port_of(config_.protocol);

  std::vector<std::uint8_t> packet_buffer;
  double clock_s = 0.0;

  while (auto value = iterator.next()) {
    const net::Ipv4Addr dst(static_cast<std::uint32_t>(*value));
    if (config_.allowlist && !config_.allowlist->contains(dst)) continue;
    if (config_.blocklist.is_blocked(dst)) {
      ++stats.blocklisted_skipped;
      continue;
    }
    ++stats.targets_probed;

    const net::Ipv4Addr src_ip = source_ip_for(dst);
    const auto fields = validator_.fields_for(src_ip, dst, dst_port);

    L4Result result;
    result.addr = dst;
    result.source_ip = src_ip;
    result.probe_time = net::VirtualTime::from_seconds(clock_s);

    for (int probe = 0; probe < config_.probes; ++probe) {
      net::VirtualTime t = net::VirtualTime::from_seconds(clock_s);
      if (probe > 0) {
        // A delayed follow-up probe is emitted later in the sweep; the
        // rate limiter accounts only for the send itself.
        t += net::VirtualTime::from_micros(
            config_.probe_interval.micros() * probe);
      }
      clock_s += seconds_per_packet;

      net::TcpPacket syn;
      syn.ip.src = src_ip;
      syn.ip.dst = dst;
      syn.ip.ttl = 255;
      syn.tcp.src_port = fields.src_port;
      syn.tcp.dst_port = dst_port;
      syn.tcp.seq = fields.seq;
      syn.tcp.flags.syn = true;
      packet_buffer = syn.serialize();
      ++stats.packets_sent;

      auto response_bytes =
          internet_->handle_probe(origin_, packet_buffer, t, probe);
      if (!response_bytes) continue;
      auto response = net::TcpPacket::parse(*response_bytes);
      if (!response) {
        ++stats.validation_failures;
        continue;
      }
      if (response->ip.src != dst || response->ip.dst != src_ip ||
          !validator_.validate(*response)) {
        ++stats.validation_failures;
        continue;
      }
      if (response->tcp.flags.syn && response->tcp.flags.ack) {
        result.synack_mask |= static_cast<std::uint8_t>(1u << probe);
        ++stats.synacks;
      } else if (response->tcp.flags.rst) {
        result.rst_mask |= static_cast<std::uint8_t>(1u << probe);
        ++stats.rsts;
      }
    }

    if (result.synack_mask != 0 || result.rst_mask != 0) {
      on_result(result);
    }
  }
  return stats;
}

}  // namespace originscan::scan
