#include "scanner/zmap.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "netbase/headers.h"
#include "netbase/rng.h"

namespace originscan::scan {

// run() feeds permutation refills straight into the SoA pipeline; the
// two batch sizes must agree so a refill is exactly one probe batch.
static_assert(ZMapScanner::kRunBatch == sim::ProbeBatch::kCapacity);

ZMapScanner::ZMapScanner(const ZMapConfig& config, sim::Internet* internet,
                         sim::OriginId origin)
    : config_(config),
      internet_(internet),
      origin_(origin),
      validator_(net::SipHash::key_from_seed(
                     net::mix_u64(config.seed, 0x2A9u, origin)),
                 config.source_port_base, config.source_port_count),
      // Resolving the lock-free context here (prewarming the caches if
      // needed) keeps every per-packet step of run()/run_scheduled()
      // synchronization-free.
      context_(internet->probe_context(origin, config.protocol)) {
  assert(!config_.source_ips.empty());
  assert(config_.universe_size > 0);
  // The scanner and its probe context share one lane-owned block; both
  // run on this lane's thread, so single-writer discipline holds.
  context_.set_metrics(config_.metrics);
}

ZMapScanner::Stats& ZMapScanner::Stats::operator+=(const Stats& other) {
  targets_probed += other.targets_probed;
  packets_sent += other.packets_sent;
  blocklisted_skipped += other.blocklisted_skipped;
  synacks += other.synacks;
  rsts += other.rsts;
  validation_failures += other.validation_failures;
  return *this;
}

net::Ipv4Addr ZMapScanner::source_ip_for(net::Ipv4Addr dst) const {
  if (config_.source_ips.size() == 1) return config_.source_ips.front();
  const std::uint64_t index =
      net::mix_u64(dst.value(), 0x5AC1Fu) % config_.source_ips.size();
  return config_.source_ips[index];
}

void ZMapScanner::probe_target(
    net::Ipv4Addr dst, std::uint64_t first_slot, std::uint64_t slot_stride,
    double seconds_per_packet, std::uint16_t dst_port, Stats& stats,
    const std::function<void(const L4Result&)>& on_result) {
  ++stats.targets_probed;
  obsv::MetricBlock* const metrics = config_.metrics;
  if (metrics != nullptr) metrics->add(obsv::Counter::kZmapTargetsProbed);

  const net::Ipv4Addr src_ip = source_ip_for(dst);
  const auto fields = validator_.fields_for(src_ip, dst, dst_port);
  // AS, host, liveness, and flaky state are pure per-target facts; the
  // follow-up probes reuse probe 0's resolution.
  const sim::ResolvedTarget target = context_.resolve(dst);

  L4Result result;
  result.addr = dst;
  result.source_ip = src_ip;
  result.probe_time = net::VirtualTime::from_seconds(
      static_cast<double>(first_slot) * seconds_per_packet);

  net::TcpPacket syn;
  syn.ip.src = src_ip;
  syn.ip.dst = dst;
  syn.ip.ttl = 255;
  syn.tcp.src_port = fields.src_port;
  syn.tcp.dst_port = dst_port;
  syn.tcp.seq = fields.seq;
  syn.tcp.flags.syn = true;

  for (int probe = 0; probe < config_.probes; ++probe) {
    // The virtual clock is a pure function of the packet's slot in the
    // global send schedule, so a shard executing a subset of slots stamps
    // its packets exactly as the serial sweep does.
    const std::uint64_t slot =
        first_slot + static_cast<std::uint64_t>(probe) * slot_stride;
    net::VirtualTime t = net::VirtualTime::from_seconds(
        static_cast<double>(slot) * seconds_per_packet);
    if (probe > 0) {
      // A delayed follow-up probe is emitted later in the sweep; the
      // rate limiter accounts only for the send itself.
      t += net::VirtualTime::from_micros(
          config_.probe_interval.micros() * probe);
    }

    if (config_.faults != nullptr) {
      // Transient send failure (the sendto EAGAIN analog): retry in
      // place. The injector never reports more consecutive failures
      // than kSendRetries, so a send_fail plan is always recoverable;
      // diagnostics live in the injector's hit counters, keeping Stats
      // byte-identical to a fault-free run.
      const int failures = config_.faults->send_failures(slot, dst);
      if (failures > kSendRetries) continue;  // unreachable by contract
      if (failures > 0 && metrics != nullptr) {
        metrics->add(obsv::Counter::kZmapSendRetries,
                     static_cast<std::uint64_t>(failures));
        metrics->add(obsv::Counter::kFaultSendFail,
                     static_cast<std::uint64_t>(failures));
      }
    }
    ++stats.packets_sent;
    if (metrics != nullptr) metrics->add(obsv::Counter::kZmapProbesSent);

    if (config_.faults != nullptr && config_.faults->drop_at_slot(slot, dst)) {
      if (metrics != nullptr) metrics->add(obsv::Counter::kFaultProbeDrop);
      continue;  // lost in flight; the send itself still counted
    }

    auto response = context_.probe(target, syn, t, probe);
    if (!response) continue;
    if (config_.faults != nullptr &&
        config_.faults->corrupt_response(slot, dst)) {
      // Corrupt the validation MAC material: flip the low bit of the
      // acknowledgment number so the SipHash-based validator rejects
      // the response as not ours.
      response->tcp.ack ^= 1u;
      if (metrics != nullptr) metrics->add(obsv::Counter::kFaultMacCorrupt);
    }
    if (response->ip.src != dst || response->ip.dst != src_ip ||
        !validator_.validate(*response)) {
      ++stats.validation_failures;
      if (metrics != nullptr) {
        metrics->add(obsv::Counter::kZmapValidationFailures);
      }
      continue;
    }
    if (response->tcp.flags.syn && response->tcp.flags.ack) {
      result.synack_mask |= static_cast<std::uint8_t>(1u << probe);
      ++stats.synacks;
      if (metrics != nullptr) metrics->add(obsv::Counter::kZmapResponsesSynack);
    } else if (response->tcp.flags.rst) {
      result.rst_mask |= static_cast<std::uint8_t>(1u << probe);
      ++stats.rsts;
      if (metrics != nullptr) metrics->add(obsv::Counter::kZmapResponsesRst);
    }
    // ZMap keeps listening after the last probe leaves ("cooldown");
    // our virtual-clock analog is any validated answer to the final
    // probe of a target — the response that would have arrived during
    // the cooldown window of a real scan.
    if (metrics != nullptr && probe == config_.probes - 1 &&
        (response->tcp.flags.rst ||
         (response->tcp.flags.syn && response->tcp.flags.ack))) {
      metrics->add(obsv::Counter::kZmapCooldownResponses);
    }
  }

  if (result.synack_mask != 0 || result.rst_mask != 0) {
    on_result(result);
  }
}

void ZMapScanner::probe_batch(
    std::span<const ScheduledTarget> targets, std::uint64_t slot_stride,
    double seconds_per_packet, std::uint16_t dst_port, Stats& stats,
    const std::function<void(const L4Result&)>& on_result) {
  const int count = static_cast<int>(targets.size());
  const int probes = config_.probes;
  assert(count <= sim::ProbeBatch::kCapacity);
  assert(probes <= sim::ProbeBatch::kMaxProbes);
  obsv::MetricBlock* const metrics = config_.metrics;
  sim::ProbeBatch& batch = batch_;
  batch.size = count;
  batch.probes = probes;

  stats.targets_probed += static_cast<std::uint64_t>(count);
  if (metrics != nullptr) {
    metrics->add(obsv::Counter::kZmapTargetsProbed,
                 static_cast<std::uint64_t>(count));
  }

  // Fill pass: addresses, per-probe send times (the virtual clock is a
  // pure function of the global schedule slot, computed exactly as the
  // scalar path does), and the delivered mask after send-layer faults.
  std::uint64_t send_failures_total = 0;
  std::uint64_t send_drops = 0;
  const std::uint8_t all_probes_mask =
      static_cast<std::uint8_t>((1u << probes) - 1);
  for (int i = 0; i < count; ++i) {
    const net::Ipv4Addr dst = targets[i].addr;
    batch.addr[i] = dst;
    std::uint8_t sent = all_probes_mask;
    for (int p = 0; p < probes; ++p) {
      const std::uint64_t slot =
          targets[i].first_packet +
          static_cast<std::uint64_t>(p) * slot_stride;
      std::int64_t us = net::VirtualTime::from_seconds(
                            static_cast<double>(slot) * seconds_per_packet)
                            .micros();
      if (p > 0) us += config_.probe_interval.micros() * p;
      batch.time_us[p * sim::ProbeBatch::kCapacity + i] = us;
      if (config_.faults != nullptr) {
        const int failures = config_.faults->send_failures(slot, dst);
        if (failures > kSendRetries) {  // unreachable by injector contract
          sent &= static_cast<std::uint8_t>(~(1u << p));
          continue;
        }
        send_failures_total += static_cast<std::uint64_t>(failures);
        if (config_.faults->drop_at_slot(slot, dst)) {
          sent &= static_cast<std::uint8_t>(~(1u << p));
          ++send_drops;  // lost in flight; the send itself still counts
        }
      }
    }
    batch.sent_mask[i] = sent;
  }
  // Every probe was sent (send failures are retried in place and never
  // exceed the retry budget), so the send counters are batch-constant.
  stats.packets_sent += static_cast<std::uint64_t>(count) * probes;
  if (metrics != nullptr) {
    metrics->add(obsv::Counter::kZmapProbesSent,
                 static_cast<std::uint64_t>(count) * probes);
    if (send_failures_total != 0) {
      metrics->add(obsv::Counter::kZmapSendRetries, send_failures_total);
      metrics->add(obsv::Counter::kFaultSendFail, send_failures_total);
    }
    if (send_drops != 0) {
      metrics->add(obsv::Counter::kFaultProbeDrop, send_drops);
    }
  }

  context_.resolve_batch(batch);
  internet_->handle_probe_batch(context_, batch);

  // Emission pass: only live probes re-enter the scalar path, in the
  // exact (target, probe) order of the serial sweep — the policy
  // engine's rate-IDS state is the one order-sensitive consumer. The
  // replayed ladder decisions are deterministic and pass by
  // construction; probe() continues to IDS, response build, and reverse
  // loss.
  //
  // The SYN carries zeroed seq/src_port: the simulated responder echoes
  // the SYN's MAC material back, so validator_.validate() on an
  // uncorrupted in-sim response always succeeds and its outcome here is
  // exactly !corrupt_response — the fields_for/validate pair is skipped
  // wholesale. (The differential harness checks real MAC validation on
  // the wire-level scalar path.)
  for (int i = 0; i < count; ++i) {
    const std::uint8_t live = batch.live_mask[i];
    if (live == 0) continue;
    const net::Ipv4Addr dst = batch.addr[i];
    const net::Ipv4Addr src_ip = source_ip_for(dst);

    sim::ResolvedTarget target;
    target.addr = dst;
    target.as = batch.as[i];
    target.host = batch.host[i];
    target.has_host = true;

    L4Result result;
    result.addr = dst;
    result.source_ip = src_ip;
    result.probe_time = net::VirtualTime::from_seconds(
        static_cast<double>(targets[i].first_packet) * seconds_per_packet);

    net::TcpPacket syn;
    syn.ip.src = src_ip;
    syn.ip.dst = dst;
    syn.ip.ttl = 255;
    syn.tcp.dst_port = dst_port;
    syn.tcp.flags.syn = true;

    for (int p = 0; p < probes; ++p) {
      if (((live >> p) & 1) == 0) continue;
      const std::uint64_t slot =
          targets[i].first_packet +
          static_cast<std::uint64_t>(p) * slot_stride;
      const auto t = net::VirtualTime::from_micros(
          batch.time_us[p * sim::ProbeBatch::kCapacity + i]);
      auto response = context_.probe(target, syn, t, p);
      if (!response) continue;  // IDS verdict or reverse-direction loss
      if (config_.faults != nullptr &&
          config_.faults->corrupt_response(slot, dst)) {
        ++stats.validation_failures;
        if (metrics != nullptr) {
          metrics->add(obsv::Counter::kFaultMacCorrupt);
          metrics->add(obsv::Counter::kZmapValidationFailures);
        }
        continue;
      }
      if (response->tcp.flags.syn && response->tcp.flags.ack) {
        result.synack_mask |= static_cast<std::uint8_t>(1u << p);
        ++stats.synacks;
        if (metrics != nullptr) {
          metrics->add(obsv::Counter::kZmapResponsesSynack);
        }
      } else if (response->tcp.flags.rst) {
        result.rst_mask |= static_cast<std::uint8_t>(1u << p);
        ++stats.rsts;
        if (metrics != nullptr) metrics->add(obsv::Counter::kZmapResponsesRst);
      }
      if (metrics != nullptr && p == probes - 1 &&
          (response->tcp.flags.rst ||
           (response->tcp.flags.syn && response->tcp.flags.ack))) {
        metrics->add(obsv::Counter::kZmapCooldownResponses);
      }
    }

    if (result.synack_mask != 0 || result.rst_mask != 0) {
      on_result(result);
    }
  }
}

ZMapScanner::Stats ZMapScanner::run(
    const std::function<void(const L4Result&)>& on_result) {
  Stats stats;
  auto group = CyclicGroup::for_size(config_.universe_size, config_.seed);
  auto iterator = group.shard(config_.shard_index, config_.shard_count);

  const double seconds_per_packet =
      1.0 / config_.effective_pps(config_.universe_size);
  const std::uint16_t dst_port = proto::port_of(config_.protocol);
  // A probe count past the result masks' width falls back to the scalar
  // path (nothing ships such a config; the masks are 8 bits).
  const bool batched = config_.probes <= sim::ProbeBatch::kMaxProbes;

  std::uint64_t targets_sent = 0;

  // The permutation is consumed in batches: one next_batch call refills
  // the buffer with kRunBatch addresses in exactly the scalar next()
  // order, keeping the modmul recurrence in registers, and cancellation
  // is polled once per refill — cheap enough to stay out of the
  // per-packet path, frequent enough that a tripped token stops the
  // sweep long before its next checkpoint. Surviving targets ride the
  // SoA pipeline chunk-for-chunk with the refill.
  std::array<std::uint32_t, kRunBatch> batch;
  std::array<ScheduledTarget, kRunBatch> chunk;
  for (;;) {
    if (config_.cancel != nullptr && config_.cancel->cancelled()) break;
    const std::size_t filled = iterator.next_batch(batch);
    if (filled == 0) break;
    std::size_t chunk_size = 0;
    for (std::size_t i = 0; i < filled; ++i) {
      const net::Ipv4Addr dst(batch[i]);
      if (config_.allowlist && !config_.allowlist->contains(dst)) continue;
      if (config_.blocklist.is_blocked(dst)) {
        ++stats.blocklisted_skipped;
        if (config_.metrics != nullptr) {
          config_.metrics->add(obsv::Counter::kZmapBlocklistedSkipped);
        }
        continue;
      }
      // Shard i of k owns virtual-clock slots congruent to i mod k; this
      // target's first probe is the shard's (targets_sent * probes)-th
      // packet.
      const std::uint64_t first_slot =
          config_.shard_index + targets_sent *
                                    static_cast<std::uint64_t>(config_.probes) *
                                    config_.shard_count;
      if (batched) {
        chunk[chunk_size++] = ScheduledTarget{dst, first_slot};
      } else {
        probe_target(dst, first_slot, config_.shard_count, seconds_per_packet,
                     dst_port, stats, on_result);
      }
      ++targets_sent;
    }
    if (chunk_size != 0) {
      probe_batch(std::span<const ScheduledTarget>(chunk.data(), chunk_size),
                  config_.shard_count, seconds_per_packet, dst_port, stats,
                  on_result);
    }
  }
  return stats;
}

ZMapScanner::Stats ZMapScanner::run_scheduled(
    std::span<const ScheduledTarget> targets,
    const std::function<void(const L4Result&)>& on_result) {
  if (config_.probes > sim::ProbeBatch::kMaxProbes) {
    return run_scheduled_serial(targets, on_result);
  }
  Stats stats;
  const double seconds_per_packet =
      1.0 / config_.effective_pps(config_.universe_size);
  const std::uint16_t dst_port = proto::port_of(config_.protocol);
  // Chunked over the SoA pipeline; cancellation polls once per chunk,
  // the same granularity as the scalar path's every-256-targets check.
  std::size_t offset = 0;
  while (offset < targets.size()) {
    if (config_.cancel != nullptr && config_.cancel->cancelled()) break;
    const std::size_t chunk =
        std::min<std::size_t>(kRunBatch, targets.size() - offset);
    // Slot stride 1: a target's probes occupy consecutive slots of the
    // global schedule, matching the serial sweep's back-to-back sends.
    probe_batch(targets.subspan(offset, chunk), 1, seconds_per_packet,
                dst_port, stats, on_result);
    offset += chunk;
  }
  return stats;
}

ZMapScanner::Stats ZMapScanner::run_scheduled_serial(
    std::span<const ScheduledTarget> targets,
    const std::function<void(const L4Result&)>& on_result) {
  Stats stats;
  const double seconds_per_packet =
      1.0 / config_.effective_pps(config_.universe_size);
  const std::uint16_t dst_port = proto::port_of(config_.protocol);
  std::uint64_t processed = 0;
  for (const auto& target : targets) {
    if ((processed & 0xFFu) == 0 && config_.cancel != nullptr &&
        config_.cancel->cancelled()) {
      break;
    }
    ++processed;
    // Slot stride 1: a target's probes occupy consecutive slots of the
    // global schedule, matching the serial sweep's back-to-back sends.
    probe_target(target.addr, target.first_packet, 1, seconds_per_packet,
                 dst_port, stats, on_result);
  }
  return stats;
}

ScanSchedule ZMapScanner::build_schedule(
    const ZMapConfig& config, std::uint32_t shard_count,
    const std::function<bool(net::Ipv4Addr)>& defer) {
  if (shard_count == 0) shard_count = 1;
  ScanSchedule schedule;
  schedule.shards.resize(shard_count);
  // Each shard receives ~1/shard_count of the surviving targets; one
  // up-front reserve replaces the log2 growth reallocations per shard.
  for (auto& shard : schedule.shards) {
    shard.reserve(config.universe_size / shard_count + 1);
  }

  auto group = CyclicGroup::for_size(config.universe_size, config.seed);
  auto iterator = group.all();
  std::uint64_t emitted = 0;
  while (auto value = iterator.next()) {
    const net::Ipv4Addr dst(static_cast<std::uint32_t>(*value));
    if (config.allowlist && !config.allowlist->contains(dst)) continue;
    if (config.blocklist.is_blocked(dst)) {
      ++schedule.blocklisted_skipped;
      continue;
    }
    const ScheduledTarget target{
        dst, emitted * static_cast<std::uint64_t>(config.probes)};
    ++emitted;
    if (defer && defer(dst)) {
      // Order-sensitive targets keep their serial slots but execute on
      // the single deferred lane, in global permutation order.
      schedule.deferred.push_back(target);
    } else {
      schedule.shards[iterator.last_position() % shard_count].push_back(
          target);
    }
  }
  return schedule;
}

}  // namespace originscan::scan
