// Runs one complete ZMap + ZGrab scan (one origin x protocol x trial)
// against a simulated Internet and produces the per-host records that the
// analysis layer consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/vtime.h"
#include "obsv/metrics.h"
#include "obsv/trace.h"
#include "proto/protocol.h"
#include "scanner/zgrab.h"
#include "scanner/zmap.h"
#include "sim/internet.h"

namespace originscan::scan {

// One responsive target, as recorded by a scan. Kept POD-small: a full
// experiment holds tens of millions of these.
struct ScanRecord {
  net::Ipv4Addr addr;
  std::uint8_t synack_mask = 0;  // which of the back-to-back probes answered
  std::uint8_t rst_mask = 0;
  sim::L7Outcome l7 = sim::L7Outcome::kNotAttempted;
  bool explicit_close = false;
  std::uint32_t probe_second = 0;  // probe time, seconds from scan start

  [[nodiscard]] bool l7_completed() const {
    return l7 == sim::L7Outcome::kCompleted;
  }
  [[nodiscard]] std::uint32_t probe_hour() const {
    return probe_second / 3600;
  }

  friend bool operator==(const ScanRecord&, const ScanRecord&) = default;
};

struct ScanResult {
  std::string origin_code;
  proto::Protocol protocol{};
  int trial = 0;
  std::vector<ScanRecord> records;  // sorted by address
  // Parallel to `records` when ScanOptions::keep_banners was set;
  // empty otherwise.
  std::vector<std::string> banners;
  ZMapScanner::Stats l4_stats;
  // Bucket k counts the L7 grabs that needed exactly k + 1 handshake
  // attempts (the Section-6 MaxStartups retry analysis reads this).
  // Side statistics only — deliberately not part of ScanRecord, so the
  // store format and record-level byte-identity are unaffected.
  std::vector<std::uint64_t> attempt_histogram;
  // True when the scan was cut short by a tripped CancelToken. An
  // aborted result is an arbitrary truncation — callers must discard it,
  // never persist or analyze it. Not serialized.
  bool aborted = false;

  [[nodiscard]] std::uint64_t grabs_attempted() const {
    std::uint64_t total = 0;
    for (std::uint64_t bucket : attempt_histogram) total += bucket;
    return total;
  }

  [[nodiscard]] std::size_t completed_count() const {
    std::size_t count = 0;
    for (const auto& record : records) {
      if (record.l7_completed()) ++count;
    }
    return count;
  }
};

struct ScanOptions {
  int probes = 2;
  // Spacing between probes to one target (see ZMapConfig::probe_interval).
  net::VirtualTime probe_interval;
  int l7_retries = 0;
  Blocklist blocklist;
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  // Restrict the sweep to one prefix (Section-6 retry experiment).
  std::optional<net::Prefix> target_prefix;
  // Record L7 banners (page titles / TLS suites / SSH versions).
  bool keep_banners = false;
  // Worker threads for this one scan. With jobs > 1 the sweep is split
  // into shard lanes that run concurrently and merge into the canonical
  // address-sorted result; the output is bit-identical to jobs == 1 (see
  // "Parallel execution" in DESIGN.md).
  int jobs = 1;
  // Extend the L7 retry ladder to banner-level failures (read timeouts,
  // truncated banners, mid-handshake closes); see RetryPolicy.
  bool retry_banner_failures = false;
  // Deterministic fault injection, threaded into both scan engines.
  // Fault decisions are pure functions of (seed, slot/host), so they
  // commute with the parallel lanes. Null = no faults.
  const fault::FaultInjector* faults = nullptr;
  // Cooperative cancellation: every shard lane polls this token per
  // target batch, and a tripped token marks the result aborted. Null =
  // uncancellable.
  const CancelToken* cancel = nullptr;
  // Observability (both null by default = disabled at zero cost).
  // `metrics` receives this scan's counters: the serial path writes into
  // it directly; the parallel path gives each lane its own single-writer
  // block and merges them (commutatively) after the join, so the totals
  // are byte-identical for any jobs value.
  obsv::MetricBlock* metrics = nullptr;
  // `trace` receives virtual-clock phase spans (permutation build, the
  // canonical 4-way shard-lane partition, cooldown, zgrab wave). The
  // trace describes the scan's logical schedule — a pure function of
  // (world, config, seed) — so it too is identical for any jobs value.
  obsv::TraceRecorder* trace = nullptr;
  // Track-name prefix for this scan's trace spans (e.g. "US1/http/t0").
  std::string trace_track = "scan";
};

// Scans the Internet's whole universe from `origin`.
ScanResult run_scan(sim::Internet& internet, sim::OriginId origin,
                    proto::Protocol protocol, const ScanOptions& options = {});

// ---- Full-universe L4 sweep -----------------------------------------
// run_scan materializes one ScanRecord per responsive target and (with
// jobs > 1) a full precomputed schedule — both O(universe) in memory,
// fine up to ~2^24 but hopeless for a 4.3-billion-address sweep.
// run_l4_sweep is the bounded-RSS alternative for procedural universes:
// L4 only (no ZGrab wave), results folded into commutative aggregates
// (counts and an order-independent digest) instead of being stored, and
// the parallel path consumes the permutation in fixed-size windows so
// peak memory is O(jobs * window_targets) regardless of universe size.
//
// Determinism: every probe decision is a pure function of its target
// and global schedule slot, and both are identical for any `jobs`; only
// rate-IDS networks carry cross-target state, and those targets run on
// one serial lane in global permutation order. The digest is a sum over
// per-target hashes, so lane assignment and completion order cannot
// change it: SweepResult compares equal across `--jobs` values.
struct SweepOptions {
  int probes = 2;
  net::VirtualTime probe_interval;
  Blocklist blocklist;
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  int jobs = 1;
  // Targets dispatched per parallel window (the RSS knob). Each window
  // barriers, so smaller windows trade join overhead for memory.
  std::uint32_t window_targets = 1u << 18;
  const CancelToken* cancel = nullptr;
  obsv::MetricBlock* metrics = nullptr;
};

struct SweepResult {
  ZMapScanner::Stats l4_stats;
  std::uint64_t responsive = 0;      // targets with >= 1 validated answer
  std::uint64_t synack_targets = 0;  // ... answering with a SYN-ACK
  std::uint64_t rst_only_targets = 0;
  // Order-independent checksum of the full result stream: the wrapping
  // sum of mix(addr, masks, probe_second) over every responsive target.
  // Equal digests mean equal per-target outcomes and timestamps.
  std::uint64_t digest = 0;
  bool aborted = false;

  friend bool operator==(const SweepResult&, const SweepResult&) = default;
};

SweepResult run_l4_sweep(sim::Internet& internet, sim::OriginId origin,
                         proto::Protocol protocol,
                         const SweepOptions& options = {});

}  // namespace originscan::scan
