// Cooperative cancellation for scan execution. A CancelToken is a
// lock-free flag that long-running loops (the ZMap probe loop, the
// per-lane scheduled loops) poll at batch granularity; tripping it makes
// every observer wind down at its next check without tearing shared
// state. Tokens chain: a per-attempt token with a process-wide kill
// token as parent lets the supervisor abort one cell attempt (retry)
// or the whole run (simulated process death) through a single check.
//
// Determinism note: cancellation only ever *truncates* work. Any result
// produced under a tripped token is discarded by the caller (see
// ScanResult::aborted), so a cancelled run never contributes bytes that
// could differ from an uninterrupted run.
#pragma once

#include <atomic>

namespace originscan::scan {

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  // Re-parents the token; must happen-before any concurrent cancelled()
  // call (the supervisor sets parents before launching attempts).
  void set_parent(const CancelToken* parent) { parent_ = parent; }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
};

}  // namespace originscan::scan
