// The stateless SYN scanner: iterates the address permutation, emits
// `probes` back-to-back SYN packets per target at a configured rate,
// validates responses with the probe MAC, and reports per-target L4
// results (which probes were answered and how).
//
// Probe timestamps come from a *virtual clock*: packet n of the global
// send schedule goes out at t = n / pps, a pure function of the packet's
// schedule slot. A shard therefore stamps its packets exactly as the
// serial sweep would — shard i of k owns slots congruent to i mod k —
// which is what lets a sharded scan merge into a bit-identical result
// (see ScanSchedule and orchestrator.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "faultinject/faultinject.h"
#include "netbase/ipv4.h"
#include "netbase/siphash.h"
#include "netbase/vtime.h"
#include "obsv/metrics.h"
#include "proto/protocol.h"
#include "scanner/blocklist.h"
#include "scanner/cancel.h"
#include "scanner/permutation.h"
#include "scanner/validation.h"
#include "sim/internet.h"

namespace originscan::scan {

struct ZMapConfig {
  std::uint64_t seed = 0;          // shared across synchronized origins
  std::uint32_t universe_size = 0;  // scan space [0, universe_size)
  proto::Protocol protocol = proto::Protocol::kHttp;
  int probes = 2;                   // back-to-back SYNs per target
  // Delay between the probes to one target. Zero reproduces ZMap's
  // back-to-back retransmission; Bano et al. propose spacing them so a
  // Bad period cannot swallow both.
  net::VirtualTime probe_interval;
  double packets_per_second = 0;    // 0 = derive from scan_duration
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  std::vector<net::Ipv4Addr> source_ips;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  Blocklist blocklist;
  // When set, only addresses inside this prefix are probed (the
  // Section-6 per-subnet retry experiment); others are skipped silently.
  std::optional<net::Prefix> allowlist;
  std::uint16_t source_port_base = 32768;
  std::uint16_t source_port_count = 28232;
  // Deterministic fault injection (core/faultinject layer): transient
  // send failures are retried in place (up to kSendRetries), slot-window
  // drops lose the packet in flight, and MAC corruption mangles the
  // response so validation rejects it. Null = no faults.
  const fault::FaultInjector* faults = nullptr;
  // Cooperative cancellation, polled once per target batch (every 256
  // targets). Null = uncancellable. A cancelled sweep stops early; the
  // caller must treat its partial output as garbage (ScanResult::aborted).
  const CancelToken* cancel = nullptr;
  // Single-writer metric block for this scanner's lane (zmap.* counters
  // plus the sim drop-reason taps, via ProbeContext::set_metrics). Null
  // (the default) disables all observability at zero cost — the same
  // ownership pattern as `faults`/`cancel`.
  obsv::MetricBlock* metrics = nullptr;

  [[nodiscard]] double effective_pps(std::uint64_t targets) const {
    if (packets_per_second > 0) return packets_per_second;
    const double total =
        static_cast<double>(targets) * static_cast<double>(probes);
    return total / scan_duration.seconds();
  }
};

// L4 view of one responsive target.
struct L4Result {
  net::Ipv4Addr addr;
  std::uint8_t synack_mask = 0;  // bit i: probe i answered with SYN-ACK
  std::uint8_t rst_mask = 0;     // bit i: probe i answered with RST
  net::VirtualTime probe_time;   // when the first probe was sent
  net::Ipv4Addr source_ip;       // which of our IPs probed it

  [[nodiscard]] bool any_synack() const { return synack_mask != 0; }
  [[nodiscard]] int synack_count() const {
    return __builtin_popcount(synack_mask);
  }
};

// One entry of a precomputed send schedule: a target plus the global
// packet slot of its first probe (its follow-up probes occupy the next
// `probes - 1` slots, exactly as in the serial sweep).
struct ScheduledTarget {
  net::Ipv4Addr addr;
  std::uint64_t first_packet = 0;
};

// A full scan, partitioned for parallel execution. `shards` follow the
// CyclicGroup::shard partition (sequence position mod shard_count) and
// may run concurrently in any order; `deferred` holds the targets the
// caller marked order-sensitive (rate-IDS networks), in global
// permutation order, to be executed serially.
struct ScanSchedule {
  std::vector<std::vector<ScheduledTarget>> shards;
  std::vector<ScheduledTarget> deferred;
  std::uint64_t blocklisted_skipped = 0;

  [[nodiscard]] std::uint64_t target_count() const {
    std::uint64_t count = deferred.size();
    for (const auto& shard : shards) count += shard.size();
    return count;
  }
};

class ZMapScanner {
 public:
  // Send-layer hardening: a transiently failing send (the sendto
  // EAGAIN analog, injectable via the send_fail fault point) is retried
  // in place up to this many times before the probe is abandoned.
  static constexpr int kSendRetries = 3;

  // Addresses pulled from the permutation per Iterator::next_batch call
  // in run(); also the cancellation polling granularity. 1 KiB of
  // stack-resident buffer — small enough to stay cache-hot, large
  // enough to amortize the per-call iterator state save/restore.
  static constexpr std::size_t kRunBatch = 256;

  ZMapScanner(const ZMapConfig& config, sim::Internet* internet,
              sim::OriginId origin);

  struct Stats {
    std::uint64_t targets_probed = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t blocklisted_skipped = 0;
    std::uint64_t synacks = 0;
    std::uint64_t rsts = 0;
    std::uint64_t validation_failures = 0;

    Stats& operator+=(const Stats& other);
    friend bool operator==(const Stats&, const Stats&) = default;
  };

  // Runs the sweep; invokes `on_result` for every target that produced at
  // least one (validated) response. Results arrive in probe order. Honors
  // config.shard_index/shard_count: shard i stamps its n-th packet with
  // virtual-clock slot i + n * shard_count (ZMap's interleaved schedule).
  Stats run(const std::function<void(const L4Result&)>& on_result);

  // Probes exactly the given pre-scheduled targets, stamping each probe
  // from its recorded global packet slot. Used by the parallel executor;
  // blocklist/allowlist filtering already happened in build_schedule.
  // Batched: targets flow through the SoA probe pipeline in kRunBatch
  // chunks, byte-identical to run_scheduled_serial.
  Stats run_scheduled(std::span<const ScheduledTarget> targets,
                      const std::function<void(const L4Result&)>& on_result);

  // The scalar reference path: one probe_target call per target, no
  // batching. The deferred rate-IDS lane runs on it (order-sensitive
  // policy state wants the simplest possible execution), and the batch
  // equivalence tests use it as the determinism oracle.
  Stats run_scheduled_serial(
      std::span<const ScheduledTarget> targets,
      const std::function<void(const L4Result&)>& on_result);

  // Walks the full permutation once (cheap: no simulation work) and
  // partitions the surviving targets into `shard_count` concurrent lanes
  // plus one order-sensitive lane (targets for which `defer` returns
  // true). Packet slots recorded in the schedule are identical to the
  // serial sweep's virtual clock, so executing the lanes in any
  // interleaving reproduces serial timestamps exactly.
  static ScanSchedule build_schedule(
      const ZMapConfig& config, std::uint32_t shard_count,
      const std::function<bool(net::Ipv4Addr)>& defer = {});

  // The source IP used for a destination: stable per target so that both
  // probes (and retries) come from the same address, and so that a
  // 64-IP origin spreads targets evenly across its block.
  [[nodiscard]] net::Ipv4Addr source_ip_for(net::Ipv4Addr dst) const;

 private:
  // Emits the `probes` SYNs for one target whose probe p occupies global
  // schedule slot first_slot + p * slot_stride, and reports the L4Result
  // if anything answered. Probes travel as structs through the lock-free
  // ProbeContext (no wire encode/decode); the target's AS, host,
  // liveness, and flaky state are resolved once and shared by all its
  // probes.
  void probe_target(net::Ipv4Addr dst, std::uint64_t first_slot,
                    std::uint64_t slot_stride, double seconds_per_packet,
                    std::uint16_t dst_port, Stats& stats,
                    const std::function<void(const L4Result&)>& on_result);

  // Runs up to ProbeBatch::kCapacity targets through the SoA pipeline:
  // fills the batch (addresses, per-probe send times, delivered mask
  // after send-fault handling), resolves and classifies it in the sim,
  // then replays only the live probes through the scalar probe path to
  // produce responses. Byte-identical Stats, metrics, and L4Results to
  // probe_target over the same targets; dead targets never materialize
  // a ResolvedTarget or a TcpPacket.
  void probe_batch(std::span<const ScheduledTarget> targets,
                   std::uint64_t slot_stride, double seconds_per_packet,
                   std::uint16_t dst_port, Stats& stats,
                   const std::function<void(const L4Result&)>& on_result);

  ZMapConfig config_;
  sim::Internet* internet_;
  sim::OriginId origin_;
  ProbeValidator validator_;
  sim::ProbeContext context_;
  // Reused across probe_batch calls; lane-private like the context.
  sim::ProbeBatch batch_;
};

}  // namespace originscan::scan
