// The stateless SYN scanner: iterates the address permutation, emits
// `probes` back-to-back SYN packets per target at a configured rate,
// validates responses with the probe MAC, and reports per-target L4
// results (which probes were answered and how).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/siphash.h"
#include "netbase/vtime.h"
#include "proto/protocol.h"
#include "scanner/blocklist.h"
#include "scanner/permutation.h"
#include "scanner/validation.h"
#include "sim/internet.h"

namespace originscan::scan {

struct ZMapConfig {
  std::uint64_t seed = 0;          // shared across synchronized origins
  std::uint32_t universe_size = 0;  // scan space [0, universe_size)
  proto::Protocol protocol = proto::Protocol::kHttp;
  int probes = 2;                   // back-to-back SYNs per target
  // Delay between the probes to one target. Zero reproduces ZMap's
  // back-to-back retransmission; Bano et al. propose spacing them so a
  // Bad period cannot swallow both.
  net::VirtualTime probe_interval;
  double packets_per_second = 0;    // 0 = derive from scan_duration
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
  std::vector<net::Ipv4Addr> source_ips;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  Blocklist blocklist;
  // When set, only addresses inside this prefix are probed (the
  // Section-6 per-subnet retry experiment); others are skipped silently.
  std::optional<net::Prefix> allowlist;
  std::uint16_t source_port_base = 32768;
  std::uint16_t source_port_count = 28232;

  [[nodiscard]] double effective_pps(std::uint64_t targets) const {
    if (packets_per_second > 0) return packets_per_second;
    const double total =
        static_cast<double>(targets) * static_cast<double>(probes);
    return total / scan_duration.seconds();
  }
};

// L4 view of one responsive target.
struct L4Result {
  net::Ipv4Addr addr;
  std::uint8_t synack_mask = 0;  // bit i: probe i answered with SYN-ACK
  std::uint8_t rst_mask = 0;     // bit i: probe i answered with RST
  net::VirtualTime probe_time;   // when the first probe was sent
  net::Ipv4Addr source_ip;       // which of our IPs probed it

  [[nodiscard]] bool any_synack() const { return synack_mask != 0; }
  [[nodiscard]] int synack_count() const {
    return __builtin_popcount(synack_mask);
  }
};

class ZMapScanner {
 public:
  ZMapScanner(const ZMapConfig& config, sim::Internet* internet,
              sim::OriginId origin);

  struct Stats {
    std::uint64_t targets_probed = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t blocklisted_skipped = 0;
    std::uint64_t synacks = 0;
    std::uint64_t rsts = 0;
    std::uint64_t validation_failures = 0;
  };

  // Runs the sweep; invokes `on_result` for every target that produced at
  // least one (validated) response. Results arrive in probe order.
  Stats run(const std::function<void(const L4Result&)>& on_result);

  // The source IP used for a destination: stable per target so that both
  // probes (and retries) come from the same address, and so that a
  // 64-IP origin spreads targets evenly across its block.
  [[nodiscard]] net::Ipv4Addr source_ip_for(net::Ipv4Addr dst) const;

 private:
  ZMapConfig config_;
  sim::Internet* internet_;
  sim::OriginId origin_;
  ProbeValidator validator_;
};

}  // namespace originscan::scan
