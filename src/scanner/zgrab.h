// The application-layer handshake engine (ZGrab analog): drives the
// client half of HTTP, TLS, or SSH over a simulated TCP connection and
// classifies the outcome. Supports the retry ladder used by the paper's
// Section-6 experiment (re-trying failed SSH handshakes recovers
// MaxStartups-refused hosts).
#pragma once

#include <string>
#include <vector>

#include "faultinject/faultinject.h"
#include "netbase/ipv4.h"
#include "netbase/vtime.h"
#include "obsv/metrics.h"
#include "proto/protocol.h"
#include "sim/internet.h"
#include "sim/types.h"

namespace originscan::scan {

// When and how the engine re-tries a failed handshake. Backoff runs on
// the virtual clock: retry k (1-based) starts backoff_before(k) after
// attempt k-1 ended, following a capped exponential ladder.
struct RetryPolicy {
  // Total handshake attempts = 1 + max_retries. Only retryable failures
  // consume retries.
  int max_retries = 0;
  net::VirtualTime initial_backoff = net::VirtualTime::from_seconds(1.0);
  double backoff_multiplier = 2.0;
  net::VirtualTime max_backoff = net::VirtualTime::from_seconds(8.0);
  // The base retryable set covers transport-level failures (connect
  // timeout, reset, close before data). With this flag the engine also
  // re-tries banner-level failures — read timeouts, truncated/garbled
  // banners (kProtocolError), and mid-handshake closes — which is what
  // lets it recover from injected banner_trunc/banner_stall faults.
  bool retry_banner_failures = false;

  // Virtual-time gap between attempt `attempt - 1` and attempt `attempt`
  // (attempt >= 1): initial_backoff * multiplier^(attempt-1), capped.
  [[nodiscard]] net::VirtualTime backoff_before(int attempt) const;

  [[nodiscard]] bool should_retry(sim::L7Outcome outcome) const;
};

struct ZGrabConfig {
  proto::Protocol protocol = proto::Protocol::kHttp;
  RetryPolicy retry;
  // Deterministic L7 fault injection (core/faultinject layer):
  // mid-handshake resets, truncated banners, stalled banners. Null = no
  // faults.
  const fault::FaultInjector* faults = nullptr;
  // Single-writer metric block for this engine's lane (zgrab.* counters,
  // the attempts histogram, and the L7 fault-point counters). Null (the
  // default) disables observability at zero cost.
  obsv::MetricBlock* metrics = nullptr;
};

struct L7Result {
  sim::L7Outcome outcome = sim::L7Outcome::kNotAttempted;
  // HTTP: page title; TLS: negotiated suite as hex string; SSH: server
  // software version.
  std::string banner;
  bool explicit_close = false;  // peer RST/FIN rather than silence
  // Number of handshake attempts actually performed (1-based; a banner
  // received on the final retry reports exactly max_retries + 1, counted
  // once — this value feeds the Section-6 attempt histogram).
  int attempts = 0;
};

class ZGrabEngine {
 public:
  ZGrabEngine(const ZGrabConfig& config, sim::Internet* internet,
              sim::OriginId origin);

  // Performs the handshake (with retries) starting at virtual time `t`.
  L7Result grab(net::Ipv4Addr src_ip, net::Ipv4Addr dst, net::VirtualTime t);

 private:
  L7Result attempt(net::Ipv4Addr src_ip, net::Ipv4Addr dst,
                   net::VirtualTime t, int attempt_index);

  // Drains the server's pending flight, applying any injected banner
  // fault for the current (dst, attempt) context: a stall swallows the
  // bytes (read timeout); a truncation keeps only a prefix, which the
  // protocol parsers then reject.
  std::vector<std::uint8_t> read_bytes(sim::Connection& connection);

  L7Result run_http(sim::Connection& connection);
  L7Result run_tls(sim::Connection& connection);
  L7Result run_ssh(sim::Connection& connection);

  ZGrabConfig config_;
  sim::Internet* internet_;
  sim::OriginId origin_;
  // Context of the attempt in flight, consulted by the fault hooks.
  net::Ipv4Addr current_dst_;
  int current_attempt_ = 0;
};

// Whether a failed attempt is worth retrying under the base policy (the
// connection was refused or reset, as opposed to e.g. a protocol
// mismatch). Equivalent to RetryPolicy{.retry_banner_failures = false}.
bool is_retryable(sim::L7Outcome outcome);

}  // namespace originscan::scan
