// The application-layer handshake engine (ZGrab analog): drives the
// client half of HTTP, TLS, or SSH over a simulated TCP connection and
// classifies the outcome. Supports the retry ladder used by the paper's
// Section-6 experiment (re-trying failed SSH handshakes recovers
// MaxStartups-refused hosts).
#pragma once

#include <string>

#include "netbase/ipv4.h"
#include "netbase/vtime.h"
#include "proto/protocol.h"
#include "sim/internet.h"
#include "sim/types.h"

namespace originscan::scan {

struct ZGrabConfig {
  proto::Protocol protocol = proto::Protocol::kHttp;
  // Total handshake attempts = 1 + max_retries. Only retryable failures
  // (connect timeouts, resets, pre-banner closes) consume retries.
  int max_retries = 0;
};

struct L7Result {
  sim::L7Outcome outcome = sim::L7Outcome::kNotAttempted;
  // HTTP: page title; TLS: negotiated suite as hex string; SSH: server
  // software version.
  std::string banner;
  bool explicit_close = false;  // peer RST/FIN rather than silence
  int attempts = 0;
};

class ZGrabEngine {
 public:
  ZGrabEngine(const ZGrabConfig& config, sim::Internet* internet,
              sim::OriginId origin);

  // Performs the handshake (with retries) starting at virtual time `t`.
  L7Result grab(net::Ipv4Addr src_ip, net::Ipv4Addr dst, net::VirtualTime t);

 private:
  L7Result attempt(net::Ipv4Addr src_ip, net::Ipv4Addr dst,
                   net::VirtualTime t, int attempt_index);

  L7Result run_http(sim::Connection& connection);
  L7Result run_tls(sim::Connection& connection);
  L7Result run_ssh(sim::Connection& connection);

  ZGrabConfig config_;
  sim::Internet* internet_;
  sim::OriginId origin_;
};

// Whether a failed attempt is worth retrying (the connection was refused
// or reset, as opposed to e.g. a protocol mismatch).
bool is_retryable(sim::L7Outcome outcome);

}  // namespace originscan::scan
