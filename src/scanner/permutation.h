// ZMap's address randomization: iterate a cyclic multiplicative group of
// integers modulo a prime p slightly larger than the scan space. The
// iteration x -> x * g (mod p) visits every element of [1, p-1] exactly
// once per cycle; values above the scan-space size are skipped. A scan
// can be split into shards that partition the sequence (every k-th
// element), exactly as ZMap's --shards option does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace originscan::scan {

// Deterministic Miller-Rabin for 64-bit integers.
bool is_prime_u64(std::uint64_t n);

// Smallest prime strictly greater than n.
std::uint64_t next_prime_above(std::uint64_t n);

// (a * b) mod m without overflow.
std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t m);

class CyclicGroup {
 public:
  // Builds the group for a scan space of `size` addresses (values emitted
  // are in [0, size)). The generator and starting point are derived from
  // `seed`, so the same seed reproduces the same scan order — the
  // property the paper relies on to synchronize scanners.
  static CyclicGroup for_size(std::uint64_t size, std::uint64_t seed);

  [[nodiscard]] std::uint64_t prime() const { return prime_; }
  [[nodiscard]] std::uint64_t generator() const { return generator_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }

  // Iterates one shard's subsequence. Shard i of k takes the positions
  // of the full sequence congruent to i mod k (start at start * g^i,
  // step by g^k, emit ceil((p-1-i)/k) elements); together the shards
  // partition [1, p-1] regardless of gcd(k, p-1).
  class Iterator {
   public:
    // Returns the next address in [0, size), or nullopt at end of shard.
    std::optional<std::uint64_t> next();

    // Fills `out` with the next addresses of this shard, in exactly the
    // order next() would return them, and returns how many were written
    // (short only at end of shard). Batching keeps the modmul recurrence
    // in registers across the batch instead of bouncing the iterator
    // state through memory once per address — the send loop consumes
    // these by the few-hundred. Note: last_position() reflects the final
    // address of the batch, so callers that interleave shards by
    // position (the schedule builder) must use scalar next().
    std::size_t next_batch(std::span<std::uint32_t> out);

    // Position in the *full* sequence (0-based over [0, p-2]) of the
    // address most recently returned by next(). Shard i of k emits only
    // positions congruent to i mod k, so interleaving shards by position
    // reconstructs the serial scan order — the property the parallel
    // executor's schedule builder relies on. Undefined before the first
    // successful next().
    [[nodiscard]] std::uint64_t last_position() const {
      return first_position_ + (consumed_ - 1) * position_stride_;
    }

   private:
    friend class CyclicGroup;
    Iterator(std::uint64_t start, std::uint64_t step, std::uint64_t prime,
             std::uint64_t size, std::uint64_t count,
             std::uint64_t first_position, std::uint64_t position_stride)
        : current_(start),
          step_(step),
          prime_(prime),
          size_(size),
          remaining_(count),
          first_position_(first_position),
          position_stride_(position_stride) {}

    std::uint64_t current_;
    std::uint64_t step_;
    std::uint64_t prime_;
    std::uint64_t size_;
    std::uint64_t remaining_;
    std::uint64_t first_position_;
    std::uint64_t position_stride_;
    std::uint64_t consumed_ = 0;  // sequence slots stepped past, incl. skips
  };

  [[nodiscard]] Iterator shard(std::uint32_t shard_index,
                               std::uint32_t shard_count) const;
  [[nodiscard]] Iterator all() const { return shard(0, 1); }

 private:
  CyclicGroup(std::uint64_t prime, std::uint64_t generator,
              std::uint64_t start, std::uint64_t size)
      : prime_(prime), generator_(generator), start_(start), size_(size) {}

  std::uint64_t prime_;
  std::uint64_t generator_;
  std::uint64_t start_;
  std::uint64_t size_;
};

}  // namespace originscan::scan
