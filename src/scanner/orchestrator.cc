#include "scanner/orchestrator.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "netbase/rng.h"

namespace originscan::scan {
namespace {

// One lane's share of a parallel scan: records and banners accumulate
// independently, then merge into the final ScanResult.
struct LaneOutput {
  std::vector<ScanRecord> records;
  std::vector<std::string> banners;
  std::vector<std::uint64_t> attempt_histogram;
  ZMapScanner::Stats stats;
  // This lane's single-writer metric shard; merged (commutatively) into
  // ScanOptions::metrics after the parallel join, so the aggregate is
  // independent of lane count and completion order.
  obsv::MetricBlock metrics;
};

// Bumps the bucket for a grab that took `attempts` handshake attempts.
void record_attempts(std::vector<std::uint64_t>& histogram, int attempts) {
  if (attempts <= 0) return;
  if (histogram.size() < static_cast<std::size_t>(attempts)) {
    histogram.resize(static_cast<std::size_t>(attempts), 0);
  }
  ++histogram[static_cast<std::size_t>(attempts) - 1];
}

// Element-wise histogram sum (parallel lane merge).
void merge_histograms(std::vector<std::uint64_t>& into,
                      const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

// Builds the L4 callback: record the probe result and, if a SYN-ACK
// arrived, schedule the ZGrab follow-up. Shared verbatim by the serial
// sweep and every parallel lane so their per-record behavior cannot
// diverge.
std::function<void(const L4Result&)> make_collector(
    sim::Internet& internet, sim::OriginId origin, ZGrabEngine& zgrab,
    const ScanOptions& options, std::vector<ScanRecord>& records,
    std::vector<std::string>& banners,
    std::vector<std::uint64_t>& attempt_histogram) {
  const sim::World& world = internet.world();
  return [&internet, &zgrab, &options, &records, &banners,
          &attempt_histogram, &world, origin](const L4Result& l4) {
    ScanRecord record;
    record.addr = l4.addr;
    record.synack_mask = l4.synack_mask;
    record.rst_mask = l4.rst_mask;
    record.probe_second =
        static_cast<std::uint32_t>(l4.probe_time.seconds());

    std::string banner;
    if (l4.any_synack()) {
      // ZGrab connects as soon as the first SYN-ACK arrives: one RTT
      // after whichever probe was answered first (delayed second probes
      // shift the handshake with them), plus a small turnaround.
      const auto as = world.as_of(l4.addr);
      net::VirtualTime connect_time = l4.probe_time;
      const int first_answered = __builtin_ctz(l4.synack_mask);
      connect_time += net::VirtualTime::from_micros(
          options.probe_interval.micros() * first_answered);
      if (as) connect_time += internet.rtt(origin, *as);
      connect_time += net::VirtualTime::from_millis(5);

      const L7Result l7 = zgrab.grab(l4.source_ip, l4.addr, connect_time);
      record.l7 = l7.outcome;
      record.explicit_close = l7.explicit_close;
      banner = l7.banner;
      record_attempts(attempt_histogram, l7.attempts);
    }
    records.push_back(record);
    if (options.keep_banners) banners.push_back(std::move(banner));
  };
}

// Sorts records (and any parallel banners) by address. The banner vector
// must stay pair-aligned with the records — an empty banner vector means
// "banners not kept", anything else must match exactly, or a merged
// result would silently associate banners with the wrong hosts.
void finalize(ScanResult& result, bool keep_banners) {
  if (!result.banners.empty() &&
      result.banners.size() != result.records.size()) {
    throw std::logic_error(
        "ScanResult banner/record misalignment: " +
        std::to_string(result.banners.size()) + " banners vs " +
        std::to_string(result.records.size()) + " records");
  }
  std::vector<std::size_t> order(result.records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.records[a].addr < result.records[b].addr;
  });
  std::vector<ScanRecord> sorted_records;
  sorted_records.reserve(result.records.size());
  std::vector<std::string> sorted_banners;
  sorted_banners.reserve(result.banners.size());
  for (std::size_t i : order) {
    sorted_records.push_back(result.records[i]);
    if (keep_banners && !result.banners.empty()) {
      sorted_banners.push_back(std::move(result.banners[i]));
    }
  }
  result.records = std::move(sorted_records);
  result.banners = std::move(sorted_banners);
}

// Emits the scan's virtual-clock phase spans. The shard-lane spans come
// from a canonical 4-way slot partition built here, NOT from the lanes
// that actually executed — the partition is a pure function of the
// permutation, so the trace is byte-identical for any --jobs value (the
// determinism contract in DESIGN.md §9). Runs once per scan, after the
// sweep, and only when tracing is enabled; its extra permutation walk
// never touches the disabled path.
void emit_scan_trace(const ScanOptions& options, const ZMapConfig& zmap_config,
                     const sim::Internet& internet, proto::Protocol protocol,
                     const ScanResult& result) {
  constexpr std::uint32_t kTraceLanes = 4;
  const sim::World& world = internet.world();
  const sim::PolicyEngine& policy = internet.policy_engine();
  const auto defer = [&world, &policy, protocol](net::Ipv4Addr dst) {
    const auto as = world.as_of(dst);
    return as && policy.rate_ids_applies(*as, protocol);
  };
  const ScanSchedule schedule =
      ZMapScanner::build_schedule(zmap_config, kTraceLanes, defer);
  const double spp = 1.0 / zmap_config.effective_pps(zmap_config.universe_size);
  const auto slot_time = [spp](std::uint64_t slot) {
    return net::VirtualTime::from_seconds(static_cast<double>(slot) * spp);
  };
  const std::uint64_t probes = static_cast<std::uint64_t>(zmap_config.probes);
  obsv::TraceRecorder& trace = *options.trace;
  const std::string& track = options.trace_track;

  trace.instant(
      track, "permutation.build", net::VirtualTime{},
      {{"targets", std::to_string(schedule.target_count())},
       {"blocklisted", std::to_string(schedule.blocklisted_skipped)},
       {"deferred", std::to_string(schedule.deferred.size())}});

  const auto lane_span = [&](const std::vector<ScheduledTarget>& lane,
                             const std::string& lane_track,
                             const std::string& name) {
    if (lane.empty()) return;
    trace.span(lane_track, name, slot_time(lane.front().first_packet),
               slot_time(lane.back().first_packet + probes - 1),
               {{"targets", std::to_string(lane.size())}});
  };
  for (std::size_t i = 0; i < schedule.shards.size(); ++i) {
    lane_span(schedule.shards[i], track + "/lane" + std::to_string(i),
              "zmap.lane");
  }
  lane_span(schedule.deferred, track + "/deferred", "zmap.lane.deferred");

  // ZMap's cooldown: after the last packet leaves, the receive thread
  // keeps listening (8 s by default) for stragglers. Our virtual-clock
  // analog is a fixed window after the final schedule slot.
  const std::uint64_t total_packets = schedule.target_count() * probes;
  if (total_packets > 0) {
    const net::VirtualTime sweep_end = slot_time(total_packets - 1);
    trace.span(track, "zmap.cooldown", sweep_end,
               sweep_end + net::VirtualTime::from_seconds(8.0), {});
  }

  // The zgrab wave: the span of probe times across every record whose
  // SYN-ACK triggered an L7 handshake. Records are address-sorted and
  // byte-identical across jobs, so min/max are too.
  bool any_l7 = false;
  std::uint32_t first_second = 0;
  std::uint32_t last_second = 0;
  std::uint64_t grabs = 0;
  for (const ScanRecord& record : result.records) {
    if (record.l7 == sim::L7Outcome::kNotAttempted) continue;
    if (!any_l7 || record.probe_second < first_second) {
      first_second = record.probe_second;
    }
    if (!any_l7 || record.probe_second > last_second) {
      last_second = record.probe_second;
    }
    any_l7 = true;
    ++grabs;
  }
  if (any_l7) {
    trace.span(track, "zgrab.wave",
               net::VirtualTime::from_seconds(first_second),
               net::VirtualTime::from_seconds(last_second),
               {{"grabs", std::to_string(grabs)}});
  }
}

}  // namespace

ScanResult run_scan(sim::Internet& internet, sim::OriginId origin,
                    proto::Protocol protocol, const ScanOptions& options) {
  const sim::World& world = internet.world();

  ZMapConfig zmap_config;
  // One permutation seed per trial, shared by every synchronized origin.
  zmap_config.seed = net::mix_u64(internet.context().experiment_seed,
                                  internet.context().trial, 0x5EEDAULL);
  zmap_config.universe_size = world.universe_size;
  zmap_config.protocol = protocol;
  zmap_config.probes = options.probes;
  zmap_config.probe_interval = options.probe_interval;
  zmap_config.scan_duration = options.scan_duration;
  zmap_config.source_ips = world.origins[origin].source_ips;
  zmap_config.blocklist = options.blocklist;
  zmap_config.allowlist = options.target_prefix;
  zmap_config.faults = options.faults;
  zmap_config.cancel = options.cancel;

  ZGrabConfig zgrab_config;
  zgrab_config.protocol = protocol;
  zgrab_config.retry.max_retries = options.l7_retries;
  zgrab_config.retry.retry_banner_failures = options.retry_banner_failures;
  zgrab_config.faults = options.faults;

  ScanResult result;
  result.origin_code = world.origins[origin].code;
  result.protocol = protocol;
  result.trial = internet.context().trial;

  if (options.metrics != nullptr) {
    options.metrics->gauge_max(obsv::Gauge::kScanUniverseSize,
                               world.universe_size);
  }

  const int jobs = std::max(1, options.jobs);
  if (jobs == 1) {
    // Serial path: the one lane writes straight into the caller's block.
    zmap_config.metrics = options.metrics;
    zgrab_config.metrics = options.metrics;
    ZMapScanner zmap(zmap_config, &internet, origin);
    ZGrabEngine zgrab(zgrab_config, &internet, origin);
    result.l4_stats = zmap.run(
        make_collector(internet, origin, zgrab, options, result.records,
                       result.banners, result.attempt_histogram));
    result.aborted = options.cancel != nullptr && options.cancel->cancelled();
    finalize(result, options.keep_banners);
    if (options.trace != nullptr && !result.aborted) {
      emit_scan_trace(options, zmap_config, internet, protocol, result);
    }
    return result;
  }

  // Parallel path: split the sweep into `jobs` shard lanes plus one
  // serial lane for rate-IDS networks (the only order-sensitive state in
  // the simulation — see DESIGN.md). Every lane stamps probes from the
  // same global virtual clock, so the merged, address-sorted result is
  // bit-identical to the serial sweep.
  const sim::PolicyEngine& policy = internet.policy_engine();
  const auto defer = [&world, &policy, protocol](net::Ipv4Addr dst) {
    const auto as = world.as_of(dst);
    return as && policy.rate_ids_applies(*as, protocol);
  };
  const ScanSchedule schedule = ZMapScanner::build_schedule(
      zmap_config, static_cast<std::uint32_t>(jobs), defer);

  // Build the loss/outage caches up front so the lanes never contend on
  // the cache writer lock.
  internet.prewarm(origin, protocol);

  std::vector<LaneOutput> lanes(schedule.shards.size() + 1);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(lanes.size());
  const auto make_lane_task = [&](std::span<const ScheduledTarget> targets,
                                  LaneOutput& lane, bool serial) {
    return [&internet, origin, &zmap_config, &zgrab_config, &options,
            targets, &lane, serial] {
      // Each lane scans through config copies pointing at its own metric
      // shard, keeping the blocks single-writer (nullptr when disabled).
      ZMapConfig lane_zmap = zmap_config;
      ZGrabConfig lane_zgrab = zgrab_config;
      if (options.metrics != nullptr) {
        lane_zmap.metrics = &lane.metrics;
        lane_zgrab.metrics = &lane.metrics;
      }
      ZMapScanner zmap(lane_zmap, &internet, origin);
      ZGrabEngine zgrab(lane_zgrab, &internet, origin);
      const auto collect =
          make_collector(internet, origin, zgrab, options, lane.records,
                         lane.banners, lane.attempt_histogram);
      // The deferred rate-IDS lane stays on the scalar reference path
      // (DESIGN.md §13); shard lanes ride the SoA batch pipeline.
      lane.stats = serial ? zmap.run_scheduled_serial(targets, collect)
                          : zmap.run_scheduled(targets, collect);
    };
  };
  // The deferred lane goes first: it is the one lane that cannot be
  // split, so it should never sit behind shard lanes in the queue.
  tasks.push_back(
      make_lane_task(schedule.deferred, lanes.back(), /*serial=*/true));
  for (std::size_t i = 0; i < schedule.shards.size(); ++i) {
    tasks.push_back(
        make_lane_task(schedule.shards[i], lanes[i], /*serial=*/false));
  }
  core::run_parallel(jobs, std::move(tasks));

  result.aborted = options.cancel != nullptr && options.cancel->cancelled();
  result.l4_stats.blocklisted_skipped = schedule.blocklisted_skipped;
  if (options.metrics != nullptr) {
    // The parallel path filters blocklisted targets in build_schedule
    // rather than per lane, so the counter is credited here, matching
    // what run() counts on the serial path.
    options.metrics->add(obsv::Counter::kZmapBlocklistedSkipped,
                         schedule.blocklisted_skipped);
  }
  std::size_t total_records = 0;
  for (const LaneOutput& lane : lanes) total_records += lane.records.size();
  result.records.reserve(total_records);
  for (LaneOutput& lane : lanes) {
    result.l4_stats += lane.stats;
    merge_histograms(result.attempt_histogram, lane.attempt_histogram);
    if (options.metrics != nullptr) options.metrics->merge_from(lane.metrics);
    result.records.insert(result.records.end(), lane.records.begin(),
                          lane.records.end());
    result.banners.insert(result.banners.end(),
                          std::make_move_iterator(lane.banners.begin()),
                          std::make_move_iterator(lane.banners.end()));
  }
  finalize(result, options.keep_banners);
  if (options.trace != nullptr && !result.aborted) {
    emit_scan_trace(options, zmap_config, internet, protocol, result);
  }
  return result;
}

namespace {

// One lane of a windowed sweep: a scanner constructed once (so its probe
// context, block cache, and metric shard live for the whole sweep) plus
// the lane's commutative accumulators. Folding a result is addition
// only, so the merged totals are independent of lane count and order.
struct SweepLane {
  std::vector<ScheduledTarget> targets;  // this window's share
  ZMapScanner::Stats stats;
  std::uint64_t digest = 0;
  std::uint64_t responsive = 0;
  std::uint64_t synack_targets = 0;
  std::uint64_t rst_only_targets = 0;
  obsv::MetricBlock metrics;
  std::optional<ZMapScanner> scanner;
  std::function<void(const L4Result&)> collect;
};

std::function<void(const L4Result&)> make_sweep_collector(SweepLane& lane) {
  return [&lane](const L4Result& l4) {
    const auto probe_second =
        static_cast<std::uint32_t>(l4.probe_time.seconds());
    lane.digest += net::mix_u64(
        l4.addr.value(),
        (static_cast<std::uint64_t>(l4.synack_mask) << 8) | l4.rst_mask,
        probe_second);
    ++lane.responsive;
    if (l4.synack_mask != 0) {
      ++lane.synack_targets;
    } else {
      ++lane.rst_only_targets;
    }
  };
}

void merge_lane(SweepResult& result, const SweepLane& lane,
                obsv::MetricBlock* metrics) {
  result.l4_stats += lane.stats;
  result.digest += lane.digest;
  result.responsive += lane.responsive;
  result.synack_targets += lane.synack_targets;
  result.rst_only_targets += lane.rst_only_targets;
  if (metrics != nullptr) metrics->merge_from(lane.metrics);
}

}  // namespace

SweepResult run_l4_sweep(sim::Internet& internet, sim::OriginId origin,
                         proto::Protocol protocol,
                         const SweepOptions& options) {
  const sim::World& world = internet.world();

  ZMapConfig zmap_config;
  zmap_config.seed = net::mix_u64(internet.context().experiment_seed,
                                  internet.context().trial, 0x5EEDAULL);
  zmap_config.universe_size = world.universe_size;
  zmap_config.protocol = protocol;
  zmap_config.probes = options.probes;
  zmap_config.probe_interval = options.probe_interval;
  zmap_config.scan_duration = options.scan_duration;
  zmap_config.source_ips = world.origins[origin].source_ips;
  zmap_config.blocklist = options.blocklist;
  zmap_config.cancel = options.cancel;

  SweepResult result;
  if (options.metrics != nullptr) {
    options.metrics->gauge_max(obsv::Gauge::kScanUniverseSize,
                               world.universe_size);
  }

  const int jobs = std::max(1, options.jobs);
  if (jobs == 1) {
    // Serial path: ZMapScanner::run already streams the permutation in
    // batches with O(1) state; fold its results directly.
    SweepLane lane;
    zmap_config.metrics = options.metrics;
    lane.scanner.emplace(zmap_config, &internet, origin);
    lane.stats = lane.scanner->run(make_sweep_collector(lane));
    merge_lane(result, lane, nullptr);  // metrics already wrote through
    result.aborted = options.cancel != nullptr && options.cancel->cancelled();
    return result;
  }

  // Parallel path: consume the permutation in fixed-size windows. Each
  // window fills per-lane target vectors (round-robin; any assignment
  // yields the same result because per-target decisions depend only on
  // the target and its global slot), runs the lanes to a barrier, and
  // reuses the vectors — peak memory is one window, not the universe.
  // Rate-IDS targets go to a dedicated serial lane; windows execute in
  // permutation order, so that lane sees them in global order exactly as
  // the serial sweep would. Procedural catalog networks carry only
  // stateless policies (scenario.cc:build_catalog), so the deferred
  // check needs no per-address derivation above the override boundary.
  const sim::PolicyEngine& policy = internet.policy_engine();
  const auto defer = [&world, &policy, protocol](net::Ipv4Addr dst) {
    if (world.procedural.covers(dst)) return false;
    const auto as = world.topology.as_of(dst);
    return as && policy.rate_ids_applies(*as, protocol);
  };

  internet.prewarm(origin, protocol);

  // lanes[0..jobs) are shard lanes; lanes[jobs] is the deferred lane.
  std::vector<SweepLane> lanes(static_cast<std::size_t>(jobs) + 1);
  for (SweepLane& lane : lanes) {
    ZMapConfig lane_config = zmap_config;
    if (options.metrics != nullptr) lane_config.metrics = &lane.metrics;
    lane.scanner.emplace(lane_config, &internet, origin);
    lane.collect = make_sweep_collector(lane);
  }

  auto group = CyclicGroup::for_size(zmap_config.universe_size,
                                     zmap_config.seed);
  auto iterator = group.all();
  std::array<std::uint32_t, 4096> buffer;
  const std::uint64_t probes = static_cast<std::uint64_t>(zmap_config.probes);
  std::uint64_t emitted = 0;
  std::uint64_t blocklisted = 0;
  std::size_t next_lane = 0;
  bool exhausted = false;

  while (!exhausted) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      result.aborted = true;
      break;
    }
    for (SweepLane& lane : lanes) lane.targets.clear();
    std::uint32_t in_window = 0;
    while (in_window < options.window_targets) {
      const std::size_t filled = iterator.next_batch(buffer);
      if (filled == 0) {
        exhausted = true;
        break;
      }
      for (std::size_t i = 0; i < filled; ++i) {
        const net::Ipv4Addr dst(buffer[i]);
        if (zmap_config.blocklist.is_blocked(dst)) {
          ++blocklisted;
          continue;
        }
        // Global slot of this target's first probe: identical to the
        // serial sweep's targets_sent * probes, stride 1.
        const ScheduledTarget target{dst, emitted * probes};
        ++emitted;
        ++in_window;
        if (defer(dst)) {
          lanes.back().targets.push_back(target);
        } else {
          lanes[next_lane].targets.push_back(target);
          next_lane = (next_lane + 1) % static_cast<std::size_t>(jobs);
        }
      }
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(lanes.size());
    const auto add_task = [&tasks](SweepLane& lane, bool serial) {
      if (lane.targets.empty()) return;
      tasks.push_back([&lane, serial] {
        // The deferred rate-IDS lane keeps the scalar reference path;
        // shard lanes ride the SoA batch pipeline (DESIGN.md §13).
        lane.stats +=
            serial ? lane.scanner->run_scheduled_serial(lane.targets,
                                                        lane.collect)
                   : lane.scanner->run_scheduled(lane.targets, lane.collect);
      });
    };
    // Deferred lane first: it cannot be split, so it must not queue
    // behind shard lanes.
    add_task(lanes.back(), /*serial=*/true);
    for (std::size_t i = 0; i + 1 < lanes.size(); ++i) {
      add_task(lanes[i], /*serial=*/false);
    }
    if (!tasks.empty()) core::run_parallel(jobs, std::move(tasks));
  }

  if (options.cancel != nullptr && options.cancel->cancelled()) {
    result.aborted = true;
  }
  for (const SweepLane& lane : lanes) {
    merge_lane(result, lane, options.metrics);
  }
  result.l4_stats.blocklisted_skipped = blocklisted;
  if (options.metrics != nullptr && blocklisted > 0) {
    options.metrics->add(obsv::Counter::kZmapBlocklistedSkipped, blocklisted);
  }
  return result;
}

}  // namespace originscan::scan
