#include "scanner/orchestrator.h"

#include <algorithm>
#include <numeric>

#include "netbase/rng.h"

namespace originscan::scan {

ScanResult run_scan(sim::Internet& internet, sim::OriginId origin,
                    proto::Protocol protocol, const ScanOptions& options) {
  const sim::World& world = internet.world();

  ZMapConfig zmap_config;
  // One permutation seed per trial, shared by every synchronized origin.
  zmap_config.seed = net::mix_u64(internet.context().experiment_seed,
                                  internet.context().trial, 0x5EEDAULL);
  zmap_config.universe_size = world.universe_size;
  zmap_config.protocol = protocol;
  zmap_config.probes = options.probes;
  zmap_config.probe_interval = options.probe_interval;
  zmap_config.scan_duration = options.scan_duration;
  zmap_config.source_ips = world.origins[origin].source_ips;
  zmap_config.blocklist = options.blocklist;
  zmap_config.allowlist = options.target_prefix;

  ZMapScanner zmap(zmap_config, &internet, origin);

  ZGrabConfig zgrab_config;
  zgrab_config.protocol = protocol;
  zgrab_config.max_retries = options.l7_retries;
  ZGrabEngine zgrab(zgrab_config, &internet, origin);

  ScanResult result;
  result.origin_code = world.origins[origin].code;
  result.protocol = protocol;
  result.trial = internet.context().trial;

  result.l4_stats = zmap.run([&](const L4Result& l4) {
    ScanRecord record;
    record.addr = l4.addr;
    record.synack_mask = l4.synack_mask;
    record.rst_mask = l4.rst_mask;
    record.probe_second =
        static_cast<std::uint32_t>(l4.probe_time.seconds());

    std::string banner;
    if (l4.any_synack()) {
      // ZGrab connects as soon as the first SYN-ACK arrives: one RTT
      // after whichever probe was answered first (delayed second probes
      // shift the handshake with them), plus a small turnaround.
      const auto as = world.topology.as_of(l4.addr);
      net::VirtualTime connect_time = l4.probe_time;
      const int first_answered = __builtin_ctz(l4.synack_mask);
      connect_time += net::VirtualTime::from_micros(
          options.probe_interval.micros() * first_answered);
      if (as) connect_time += internet.rtt(origin, *as);
      connect_time += net::VirtualTime::from_millis(5);

      const L7Result l7 = zgrab.grab(l4.source_ip, l4.addr, connect_time);
      record.l7 = l7.outcome;
      record.explicit_close = l7.explicit_close;
      banner = l7.banner;
    }
    result.records.push_back(record);
    if (options.keep_banners) result.banners.push_back(std::move(banner));
  });

  // Sort records (and any parallel banners) by address.
  std::vector<std::size_t> order(result.records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.records[a].addr < result.records[b].addr;
  });
  std::vector<ScanRecord> sorted_records;
  sorted_records.reserve(result.records.size());
  std::vector<std::string> sorted_banners;
  sorted_banners.reserve(result.banners.size());
  for (std::size_t i : order) {
    sorted_records.push_back(result.records[i]);
    if (options.keep_banners) {
      sorted_banners.push_back(std::move(result.banners[i]));
    }
  }
  result.records = std::move(sorted_records);
  result.banners = std::move(sorted_banners);
  return result;
}

}  // namespace originscan::scan
