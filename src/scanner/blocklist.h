// Scanner blocklist/allowlist, mirroring ZMap's -b/-w options: a set of
// CIDR ranges that are never probed. The paper's origins synchronized
// their blocklists (the union of all exclusion requests, 0.5% of IPv4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/interval_set.h"
#include "netbase/ipv4.h"

namespace originscan::scan {

class Blocklist {
 public:
  void block(net::Prefix prefix);
  // Parses "a.b.c.d/len" (or bare address); returns false on bad syntax.
  bool block(std::string_view cidr);

  // Parses a blocklist file body: one CIDR per line, '#' comments,
  // blank lines ignored. Returns the number of entries added, or
  // nullopt on the first malformed line.
  std::optional<std::size_t> load(std::string_view file_body);

  [[nodiscard]] bool is_blocked(net::Ipv4Addr addr) const;
  [[nodiscard]] std::uint64_t blocked_count() const;
  [[nodiscard]] bool empty() const { return set_.empty(); }

  // Merges another blocklist into this one (origin synchronization).
  void merge(const Blocklist& other);

 private:
  net::IntervalSet set_;
};

}  // namespace originscan::scan
