#include "scanner/zgrab.h"

#include <cstdio>

#include "proto/http.h"
#include "proto/ssh.h"
#include "proto/tls.h"

namespace originscan::scan {
namespace {

std::string bytes_to_string(const std::vector<std::uint8_t>& bytes) {
  return {bytes.begin(), bytes.end()};
}

std::vector<std::uint8_t> string_to_bytes(const std::string& text) {
  return {text.begin(), text.end()};
}

// Classifies a connection that produced no usable data.
sim::L7Outcome silent_outcome(const sim::Connection& connection,
                              bool got_any_bytes) {
  if (connection.peer_reset()) return sim::L7Outcome::kResetAfterAccept;
  if (connection.peer_closed()) {
    return got_any_bytes ? sim::L7Outcome::kClosedMidHandshake
                         : sim::L7Outcome::kClosedBeforeData;
  }
  return sim::L7Outcome::kReadTimeout;
}

}  // namespace

bool is_retryable(sim::L7Outcome outcome) {
  switch (outcome) {
    case sim::L7Outcome::kConnectTimeout:
    case sim::L7Outcome::kResetAfterAccept:
    case sim::L7Outcome::kClosedBeforeData:
      return true;
    default:
      return false;
  }
}

net::VirtualTime RetryPolicy::backoff_before(int attempt) const {
  if (attempt <= 0) return {};
  double micros = static_cast<double>(initial_backoff.micros());
  for (int i = 1; i < attempt; ++i) micros *= backoff_multiplier;
  const double cap = static_cast<double>(max_backoff.micros());
  if (micros > cap) micros = cap;
  return net::VirtualTime::from_micros(static_cast<std::int64_t>(micros));
}

bool RetryPolicy::should_retry(sim::L7Outcome outcome) const {
  if (is_retryable(outcome)) return true;
  if (!retry_banner_failures) return false;
  switch (outcome) {
    case sim::L7Outcome::kReadTimeout:
    case sim::L7Outcome::kProtocolError:
    case sim::L7Outcome::kClosedMidHandshake:
      return true;
    default:
      return false;
  }
}

ZGrabEngine::ZGrabEngine(const ZGrabConfig& config, sim::Internet* internet,
                         sim::OriginId origin)
    : config_(config), internet_(internet), origin_(origin) {}

L7Result ZGrabEngine::grab(net::Ipv4Addr src_ip, net::Ipv4Addr dst,
                           net::VirtualTime t) {
  const RetryPolicy& policy = config_.retry;
  L7Result result;
  int attempts_used = 0;
  for (int i = 0; i <= policy.max_retries; ++i) {
    if (i > 0) t += policy.backoff_before(i);
    result = attempt(src_ip, dst, t, i);
    attempts_used = i + 1;
    if (result.outcome == sim::L7Outcome::kCompleted ||
        !policy.should_retry(result.outcome)) {
      break;
    }
  }
  // Attempt accounting happens exactly once, here: a banner received on
  // the final retry reports attempts == max_retries + 1, never more
  // (the Section-6 MaxStartups histogram buckets on this value).
  result.attempts = attempts_used;
  if (config_.metrics != nullptr) {
    config_.metrics->add(obsv::Counter::kZgrabGrabs);
    config_.metrics->add(obsv::Counter::kZgrabRetries,
                         static_cast<std::uint64_t>(attempts_used - 1));
    config_.metrics->observe(obsv::Histogram::kZgrabAttempts,
                             static_cast<std::uint64_t>(attempts_used));
    if (result.outcome == sim::L7Outcome::kCompleted) {
      config_.metrics->add(obsv::Counter::kZgrabCompleted);
    }
  }
  return result;
}

L7Result ZGrabEngine::attempt(net::Ipv4Addr src_ip, net::Ipv4Addr dst,
                              net::VirtualTime t, int attempt_index) {
  current_dst_ = dst;
  current_attempt_ = attempt_index;
  L7Result result;
  if (config_.faults != nullptr &&
      config_.faults->l7_fault(dst, attempt_index) ==
          fault::FaultInjector::L7Fault::kRst) {
    // Injected mid-handshake RST: the peer accepts, then tears the
    // connection down before any application bytes. Preempts the
    // simulated connect so the fault leaves no trace in the sim's
    // deterministic draws (a recovered retry replays them untouched).
    result.outcome = sim::L7Outcome::kResetAfterAccept;
    result.explicit_close = true;
    if (config_.metrics != nullptr) {
      config_.metrics->add(obsv::Counter::kFaultConnectRst);
    }
    return result;
  }
  auto connection = internet_->connect(origin_, src_ip, dst,
                                       config_.protocol, t, attempt_index);
  if (connection == nullptr) {
    result.outcome = sim::L7Outcome::kConnectTimeout;
    if (config_.metrics != nullptr) {
      config_.metrics->add(obsv::Counter::kZgrabConnectFailures);
    }
    return result;
  }
  switch (config_.protocol) {
    case proto::Protocol::kHttp:
      return run_http(*connection);
    case proto::Protocol::kHttps:
      return run_tls(*connection);
    case proto::Protocol::kSsh:
      return run_ssh(*connection);
  }
  return result;
}

std::vector<std::uint8_t> ZGrabEngine::read_bytes(sim::Connection& connection) {
  auto bytes = connection.read();
  if (config_.faults == nullptr || bytes.empty()) return bytes;
  switch (config_.faults->l7_fault(current_dst_, current_attempt_)) {
    case fault::FaultInjector::L7Fault::kStall:
      // The server's flight never arrives; the read timer is our only
      // way out.
      bytes.clear();
      if (config_.metrics != nullptr) {
        config_.metrics->add(obsv::Counter::kFaultBannerStall);
      }
      break;
    case fault::FaultInjector::L7Fault::kTruncate:
      // Connection damaged mid-flight: only a prefix of the banner gets
      // through, which the protocol parsers must reject (not crash on).
      bytes.resize(bytes.size() / 2);
      if (config_.metrics != nullptr) {
        config_.metrics->add(obsv::Counter::kFaultBannerTrunc);
      }
      break;
    case fault::FaultInjector::L7Fault::kRst:
    case fault::FaultInjector::L7Fault::kNone:
      break;
  }
  return bytes;
}

L7Result ZGrabEngine::run_http(sim::Connection& connection) {
  L7Result result;
  if (connection.peer_reset()) {
    result.outcome = sim::L7Outcome::kResetAfterAccept;
    result.explicit_close = true;
    return result;
  }

  proto::HttpRequest request;
  connection.send(string_to_bytes(request.serialize()));
  const auto bytes = read_bytes(connection);
  if (bytes.empty()) {
    result.outcome = silent_outcome(connection, false);
    result.explicit_close = connection.peer_reset() || connection.peer_closed();
    return result;
  }
  auto response = proto::HttpResponse::parse(bytes_to_string(bytes));
  if (!response || !response->valid()) {
    result.outcome = sim::L7Outcome::kProtocolError;
    result.explicit_close = connection.peer_closed();
    return result;
  }
  result.outcome = sim::L7Outcome::kCompleted;
  result.banner = response->title;
  return result;
}

L7Result ZGrabEngine::run_tls(sim::Connection& connection) {
  L7Result result;
  if (connection.peer_reset()) {
    result.outcome = sim::L7Outcome::kResetAfterAccept;
    result.explicit_close = true;
    return result;
  }

  proto::ClientHello hello;
  hello.cipher_suites.assign(proto::chrome_cipher_suites().begin(),
                             proto::chrome_cipher_suites().end());
  connection.send(proto::wrap_handshake(proto::TlsHandshakeType::kClientHello,
                                        hello.serialize()));
  const auto bytes = read_bytes(connection);
  if (bytes.empty()) {
    result.outcome = silent_outcome(connection, false);
    result.explicit_close = connection.peer_reset() || connection.peer_closed();
    return result;
  }

  // Walk the records in the server's flight; we need ServerHello,
  // Certificate, and ServerHelloDone to declare the grab complete.
  bool saw_server_hello = false;
  bool saw_certificate = false;
  bool saw_done = false;
  std::uint16_t suite = 0;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t consumed = 0;
    auto record = proto::TlsRecord::parse(
        std::span(bytes).subspan(offset), consumed);
    if (!record) break;
    offset += consumed;
    if (record->content_type == proto::TlsContentType::kAlert) {
      result.outcome = sim::L7Outcome::kClosedMidHandshake;
      result.explicit_close = true;
      return result;
    }
    auto messages = proto::split_handshakes(record->fragment);
    if (!messages) break;
    for (const auto& message : *messages) {
      switch (message.type) {
        case proto::TlsHandshakeType::kServerHello: {
          auto server_hello = proto::ServerHello::parse(message.body);
          if (server_hello) {
            saw_server_hello = true;
            suite = server_hello->cipher_suite;
          }
          break;
        }
        case proto::TlsHandshakeType::kCertificate:
          saw_certificate = proto::Certificate::parse(message.body).has_value();
          break;
        case proto::TlsHandshakeType::kServerHelloDone:
          saw_done = true;
          break;
        case proto::TlsHandshakeType::kClientHello:
          break;
      }
    }
  }
  if (saw_server_hello && saw_certificate && saw_done) {
    result.outcome = sim::L7Outcome::kCompleted;
    char buffer[8];
    std::snprintf(buffer, sizeof(buffer), "0x%04X", suite);
    result.banner = buffer;
    return result;
  }
  result.outcome = sim::L7Outcome::kProtocolError;
  return result;
}

L7Result ZGrabEngine::run_ssh(sim::Connection& connection) {
  L7Result result;
  if (connection.peer_reset()) {
    result.outcome = sim::L7Outcome::kResetAfterAccept;
    result.explicit_close = true;
    return result;
  }

  // The server speaks first; its identification string should already be
  // waiting.
  const auto banner_bytes = read_bytes(connection);
  if (banner_bytes.empty()) {
    result.outcome = silent_outcome(connection, false);
    result.explicit_close = connection.peer_reset() || connection.peer_closed();
    return result;
  }
  const std::string banner_line = bytes_to_string(banner_bytes);
  if (banner_line.find('\n') == std::string::npos) {
    // RFC 4253 identification is a line; a flight cut short of the
    // newline means the banner never completed (any "SSH-2.0-..."
    // prefix would otherwise parse as a bogus truncated version).
    result.outcome = sim::L7Outcome::kProtocolError;
    return result;
  }
  auto server_id = proto::SshIdentification::parse(banner_line);
  if (!server_id) {
    result.outcome = sim::L7Outcome::kProtocolError;
    return result;
  }

  // Send our identification; the study's partial handshake terminates
  // after the version exchange (Section 2).
  proto::SshIdentification client_id;
  client_id.software_version = "OpenSSH_7.9 originscan";
  connection.send(string_to_bytes(client_id.serialize()));

  result.outcome = sim::L7Outcome::kCompleted;
  result.banner = server_id->software_version;
  return result;
}

}  // namespace originscan::scan
