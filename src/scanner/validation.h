// ZMap response validation. The scanner is stateless: instead of keeping
// a table of outstanding probes, it encodes a SipHash MAC of the probe's
// invariants into fields the destination must echo (the TCP sequence
// number, returned as ack-1, and the source port, returned as the
// destination port). Responses that fail the MAC are forged, stale, or
// misdirected and are discarded.
#pragma once

#include <cstdint>

#include "netbase/headers.h"
#include "netbase/ipv4.h"
#include "netbase/siphash.h"

namespace originscan::scan {

class ProbeValidator {
 public:
  // `port_base`/`port_count` define the ephemeral source-port range the
  // scanner cycles through (ZMap defaults to 32768-61000).
  ProbeValidator(const net::SipHash::Key& key, std::uint16_t port_base,
                 std::uint16_t port_count);

  struct ProbeFields {
    std::uint32_t seq = 0;
    std::uint16_t src_port = 0;
  };

  // MAC-derived fields for a probe from src_ip to (dst, dst_port).
  [[nodiscard]] ProbeFields fields_for(net::Ipv4Addr src_ip,
                                       net::Ipv4Addr dst,
                                       std::uint16_t dst_port) const;

  // Checks that a response packet is a genuine reply to a probe this
  // scanner sent: the echoed ack/port fields must match the recomputed
  // MAC for (response.src -> probed host, response.dst -> our source IP).
  // RSTs that acknowledge the probe are also accepted (they carry ack
  // = seq+1 when responding to a SYN).
  [[nodiscard]] bool validate(const net::TcpPacket& response) const;

 private:
  net::SipHash hasher_;
  std::uint16_t port_base_;
  std::uint16_t port_count_;
};

}  // namespace originscan::scan
