#include "scanner/validation.h"

namespace originscan::scan {

ProbeValidator::ProbeValidator(const net::SipHash::Key& key,
                               std::uint16_t port_base,
                               std::uint16_t port_count)
    : hasher_(key), port_base_(port_base), port_count_(port_count) {}

ProbeValidator::ProbeFields ProbeValidator::fields_for(
    net::Ipv4Addr src_ip, net::Ipv4Addr dst, std::uint16_t dst_port) const {
  const std::uint64_t mac = hasher_.hash_u64_pair(
      (std::uint64_t{src_ip.value()} << 32) | dst.value(), dst_port);
  ProbeFields fields;
  fields.seq = static_cast<std::uint32_t>(mac);
  fields.src_port = static_cast<std::uint16_t>(
      port_base_ + (mac >> 32) % port_count_);
  return fields;
}

bool ProbeValidator::validate(const net::TcpPacket& response) const {
  // The response comes from the probed host (response.ip.src) back to our
  // source IP (response.ip.dst); its src_port is the service port.
  const ProbeFields expected =
      fields_for(response.ip.dst, response.ip.src, response.tcp.src_port);
  if (response.tcp.dst_port != expected.src_port) return false;
  // SYN-ACK and RST-to-SYN both acknowledge seq+1.
  return response.tcp.ack == expected.seq + 1;
}

}  // namespace originscan::scan
