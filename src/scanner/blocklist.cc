#include "scanner/blocklist.h"

namespace originscan::scan {

void Blocklist::block(net::Prefix prefix) {
  set_.add(prefix.first().value(),
           static_cast<std::uint64_t>(prefix.last().value()) + 1);
}

bool Blocklist::block(std::string_view cidr) {
  auto prefix = net::Prefix::parse(cidr);
  if (!prefix) return false;
  block(*prefix);
  return true;
}

std::optional<std::size_t> Blocklist::load(std::string_view body) {
  std::size_t added = 0;
  while (!body.empty()) {
    auto newline = body.find('\n');
    std::string_view line = body.substr(0, newline);
    body = newline == std::string_view::npos ? std::string_view{}
                                             : body.substr(newline + 1);
    if (auto comment = line.find('#'); comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (!block(line)) return std::nullopt;
    ++added;
  }
  return added;
}

bool Blocklist::is_blocked(net::Ipv4Addr addr) const {
  return set_.contains(addr.value());
}

std::uint64_t Blocklist::blocked_count() const { return set_.cardinality(); }

void Blocklist::merge(const Blocklist& other) {
  for (const auto& interval : other.set_.intervals()) {
    set_.add(interval.lo, interval.hi);
  }
}

}  // namespace originscan::scan
