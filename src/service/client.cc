#include "service/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace originscan::service {
namespace {

// The client side tolerates a nonblocking fd (the tests hand it one
// end of a socketpair they also poll) by parking in poll() on EAGAIN.
bool send_all(int fd, std::span<const std::uint8_t> data,
              std::string* error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
        *error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      universe_seed_(other.universe_seed_),
      universe_size_(other.universe_size_),
      error_(std::move(other.error_)) {
  other.fd_ = -1;
}

int ServiceClient::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

bool ServiceClient::send(const ServiceWire& message) {
  if (fd_ < 0) {
    error_ = "client closed";
    return false;
  }
  return send_all(fd_, encode_service_message(message), &error_);
}

bool ServiceClient::hello() {
  ServiceWire hello;
  hello.type = ServiceMsg::kHello;
  hello.version = kServiceProtocolVersion;
  if (!send(hello)) return false;
  const auto reply = next_message();
  if (!reply) return false;
  if (reply->type == ServiceMsg::kError) {
    error_ = "server refused: " + std::string(service_error_name(reply->error)) +
             " (" + reply->text + ")";
    return false;
  }
  if (reply->type != ServiceMsg::kHelloAck) {
    error_ = "expected HELLO_ACK, got " +
             std::string(service_msg_name(reply->type));
    return false;
  }
  universe_seed_ = reply->universe_seed;
  universe_size_ = reply->universe_size;
  return true;
}

bool ServiceClient::submit(std::uint64_t request_id, std::uint32_t tenant,
                           const SessionSpec& spec) {
  ServiceWire message;
  message.type = ServiceMsg::kSubmit;
  message.request_id = request_id;
  message.tenant = tenant;
  message.origin_code = spec.origin_code;
  message.protocol = spec.protocol;
  message.trial = static_cast<std::uint8_t>(spec.trial);
  message.probes = static_cast<std::uint8_t>(spec.probes);
  message.retries = static_cast<std::uint8_t>(spec.retries);
  return send(message);
}

std::optional<ServiceWire> ServiceClient::next_message() {
  if (fd_ < 0) {
    error_ = "client closed";
    return std::nullopt;
  }
  for (;;) {
    if (auto payload = decoder_.next()) {
      auto message = decode_service_message(*payload);
      if (!message) error_ = "protocol violation: undecodable message";
      return message;
    }
    if (decoder_.error() != net::FrameError::kNone) {
      error_ = "framing error: " +
               std::string(net::frame_error_name(decoder_.error()));
      return std::nullopt;
    }
    std::uint8_t buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n > 0) {
      decoder_.feed(std::span(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      error_ = "connection closed by server";
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
        error_ = std::string("poll: ") + std::strerror(errno);
        return std::nullopt;
      }
      continue;
    }
    error_ = std::string("recv: ") + std::strerror(errno);
    return std::nullopt;
  }
}

std::optional<ServiceWire> ServiceClient::wait_for(std::uint64_t request_id) {
  for (;;) {
    auto message = next_message();
    if (!message) return std::nullopt;
    if (message->request_id != request_id) continue;
    if (message->type == ServiceMsg::kResult ||
        message->type == ServiceMsg::kError) {
      return message;
    }
    // STATUS acks for the same request are progress, not answers.
  }
}

}  // namespace originscan::service
