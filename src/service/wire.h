// Wire protocol of the scan-as-a-service daemon (`originscand`): the
// message grammar clients speak to submit scans against the daemon's one
// frozen universe. Every message travels as one CRC32-framed,
// length-prefixed frame (netbase/frame.h — the same framing the journal
// segments and the dist master/worker protocol use); the payload starts
// with a message-type byte and is decoded strictly (unknown type,
// truncated fields, or trailing bytes poison the connection — there is
// no resynchronization, exactly like the dist codec).
//
// The full byte-level grammar, the HELLO version negotiation, and the
// error-code table are specified in docs/PROTOCOL.md; the spec and this
// header are kept in lockstep by tools/protocol_doc_check (ctest label
// `docs`). Extend the protocol by adding a row to the X-macro tables
// below — the doc check fails until docs/PROTOCOL.md gains the matching
// row.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/frame.h"
#include "proto/protocol.h"

namespace originscan::service {

// Version negotiated in HELLO. The server refuses (ERROR BAD_VERSION +
// close) any client advertising a different major version; there is no
// downgrade path — the protocol is versioned as a whole.
inline constexpr std::uint16_t kServiceProtocolVersion = 1;

// Field-size caps enforced by the decoder (beyond the frame-level
// kMaxFramePayload cap): a hostile peer must not make the daemon
// allocate from a lying length field.
inline constexpr std::size_t kMaxOriginCodeBytes = 16;
inline constexpr std::size_t kMaxErrorTextBytes = 4096;

// ---- Message types ---------------------------------------------------
// X(symbol, wire_value, "DOC-NAME")
// Directionality (C = client, S = server) is part of the grammar:
//   HELLO     C→S  version handshake; first message on every connection
//   HELLO_ACK S→C  accepted: echoes version + universe identity
//   SUBMIT    C→S  enqueue one scan session (tenant, request id, spec)
//   STATUS    C→S  poll one request          S→C  state + queue position
//   RESULT    S→C  completed session's records (store-format bytes)
//   CANCEL    C→S  abandon one request (queued: dropped; running:
//                  cooperatively aborted via the scan CancelToken)
//   SHUTDOWN  C→S  drain-and-exit: admitted sessions finish and deliver,
//                  new SUBMITs are refused, then the daemon exits
//   ERROR     S→C  refusal or failure, scoped to a request id (0 =
//                  whole-connection)
#define OSN_SERVICE_MESSAGES(X)                                               \
  X(kHello, 1, "HELLO")                                                       \
  X(kHelloAck, 2, "HELLO_ACK")                                                \
  X(kSubmit, 3, "SUBMIT")                                                     \
  X(kStatus, 4, "STATUS")                                                     \
  X(kResult, 5, "RESULT")                                                     \
  X(kCancel, 6, "CANCEL")                                                     \
  X(kShutdown, 7, "SHUTDOWN")                                                 \
  X(kError, 8, "ERROR")

enum class ServiceMsg : std::uint8_t {
#define OSN_X(symbol, value, name) symbol = value,
  OSN_SERVICE_MESSAGES(OSN_X)
#undef OSN_X
};

// ---- Error codes (ERROR.code) ---------------------------------------
#define OSN_SERVICE_ERRORS(X)                                                 \
  X(kBadVersion, 1, "BAD_VERSION")                                            \
  X(kMalformed, 2, "MALFORMED")                                               \
  X(kAdmissionFull, 3, "ADMISSION_FULL")                                      \
  X(kUnknownOrigin, 4, "UNKNOWN_ORIGIN")                                      \
  X(kUnknownRequest, 5, "UNKNOWN_REQUEST")                                    \
  X(kCancelled, 6, "CANCELLED")                                               \
  X(kShuttingDown, 7, "SHUTTING_DOWN")                                        \
  X(kBadSpec, 8, "BAD_SPEC")

enum class ServiceError : std::uint8_t {
#define OSN_X(symbol, value, name) symbol = value,
  OSN_SERVICE_ERRORS(OSN_X)
#undef OSN_X
};

// ---- Session states (STATUS.state) ----------------------------------
#define OSN_SERVICE_STATES(X)                                                 \
  X(kQueued, 0, "QUEUED")                                                     \
  X(kRunning, 1, "RUNNING")                                                   \
  X(kDone, 2, "DONE")                                                         \
  X(kUnknown, 3, "UNKNOWN")

enum class SessionState : std::uint8_t {
#define OSN_X(symbol, value, name) symbol = value,
  OSN_SERVICE_STATES(OSN_X)
#undef OSN_X
};

[[nodiscard]] std::string_view service_msg_name(ServiceMsg type);
[[nodiscard]] std::string_view service_error_name(ServiceError error);
[[nodiscard]] std::string_view session_state_name(SessionState state);

// Introspection rows for the protocol/doc consistency check
// (tools/protocol_doc_check): one {doc-name, wire-value} pair per
// symbol, in definition order.
struct ProtocolSymbol {
  std::string_view name;
  unsigned value;
};
[[nodiscard]] std::span<const ProtocolSymbol> service_message_symbols();
[[nodiscard]] std::span<const ProtocolSymbol> service_error_symbols();
[[nodiscard]] std::span<const ProtocolSymbol> service_state_symbols();

// One decoded service message. Fields are populated per type; encode
// writes only the typed fields and decode rejects payloads with missing
// or trailing bytes.
struct ServiceWire {
  ServiceMsg type = ServiceMsg::kHello;
  // HELLO / HELLO_ACK
  std::uint16_t version = kServiceProtocolVersion;
  // HELLO_ACK: the frozen universe's identity, so a client can detect a
  // daemon serving a different world than it expects.
  std::uint64_t universe_seed = 0;
  std::uint32_t universe_size = 0;
  // SUBMIT / STATUS / RESULT / CANCEL / ERROR
  std::uint64_t request_id = 0;  // client-chosen; unique per connection
  // SUBMIT: the scan session spec.
  std::uint32_t tenant = 0;  // fair-share scheduling key
  std::string origin_code;
  proto::Protocol protocol = proto::Protocol::kHttp;
  std::uint8_t trial = 1;    // 1-based, [1, 3]
  std::uint8_t probes = 2;   // SYN probes per target, [1, 8]
  std::uint8_t retries = 0;  // L7 retry budget
  // STATUS (S→C)
  SessionState state = SessionState::kUnknown;
  std::uint32_t queue_position = 0;  // sessions ahead when kQueued
  // RESULT: core::serialize_results({result}) bytes — the same
  // store-format segment a direct `originscan scan` would persist, so
  // byte-comparing RESULT payloads against solo runs is exact.
  std::vector<std::uint8_t> records;
  // ERROR
  ServiceError error = ServiceError::kMalformed;
  std::string text;
};

// Encodes `message` as one complete frame (length + payload + CRC).
[[nodiscard]] std::vector<std::uint8_t> encode_service_message(
    const ServiceWire& message);

// Decodes one frame payload. nullopt = structurally invalid; the caller
// must drop the connection.
[[nodiscard]] std::optional<ServiceWire> decode_service_message(
    std::span<const std::uint8_t> payload);

}  // namespace originscan::service
