#include "service/session.h"

#include "sim/scenario.h"

namespace originscan::service {

FrozenUniverse::FrozenUniverse(const sim::ScenarioConfig& scenario)
    : world_(sim::build_world(scenario,
                              sim::paper_origins(scenario.universe_size))) {}

SessionOutcome run_session(const FrozenUniverse& universe,
                           const SessionSpec& spec, int scan_jobs,
                           const scan::CancelToken* cancel,
                           obsv::MetricBlock* metrics,
                           obsv::TraceRecorder* trace,
                           const std::string& trace_track) {
  SessionOutcome outcome;
  if (!spec.valid()) {
    outcome.error = "invalid session spec";
    return outcome;
  }
  const sim::OriginId origin = universe.origin_id(spec.origin_code);
  if (origin == ~sim::OriginId{0}) {
    outcome.error = "unknown origin: " + spec.origin_code;
    return outcome;
  }

  // The session's mutable state, all stack-owned: a fresh persistent
  // IDS map (copy-on-write in the lazy sense — entries materialize only
  // for ASes this scan actually touches) and one Internet view whose
  // loss/outage caches, per-trial liveness draws, and policy engine are
  // private to this request. Mirrors Experiment::run_extra_scan so the
  // records are byte-identical to a direct `originscan scan` run.
  sim::TrialContext context;
  context.trial = spec.trial - 1;
  context.experiment_seed = universe.seed();
  context.simultaneous_origins = 1;  // one-origin request, no synced burst
  sim::PersistentState persistent;
  sim::Internet internet(&universe.world(), context, &persistent);

  scan::ScanOptions options;
  options.probes = spec.probes;
  options.l7_retries = spec.retries;
  options.jobs = scan_jobs;
  options.cancel = cancel;
  options.metrics = metrics;
  options.trace = trace;
  if (trace != nullptr) options.trace_track = trace_track;

  scan::ScanResult result =
      scan::run_scan(internet, origin, spec.protocol, options);
  if (result.aborted) {
    outcome.aborted = true;
    outcome.error = "cancelled";
    return outcome;
  }
  outcome.ok = true;
  outcome.record_count = result.records.size();
  outcome.completed_count = result.completed_count();
  outcome.records = core::serialize_results({std::move(result)});
  return outcome;
}

}  // namespace originscan::service
