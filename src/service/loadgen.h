// In-process load generator for `originscand`: boots a daemon over
// socketpair transports, replays N simulated tenants × M requests over C
// multiplexed connections from a single-threaded nonblocking poll loop,
// and then proves the tentpole's core claim — every tenant's RESULT
// bytes are identical to a direct single-run scan with the same (seed,
// origin, spec), no matter how many sessions interleaved.
//
// Latencies are wall-clock submit→answer times per request; the p99 is
// what `bench/record.sh` publishes as `loadgen_p99_us` in
// BENCH_wall.json and what tools/bench_gate bounds in CI (a >25%
// regression fails the bench stage). `originscan loadgen` is the CLI
// front end (docs/CLI.md).
#pragma once

#include <cstdint>
#include <string>

#include "service/service.h"

namespace originscan::service {

struct LoadgenOptions {
  std::uint32_t tenants = 64;
  std::uint32_t requests_per_tenant = 2;
  std::uint32_t connections = 8;  // tenants multiplex tenant % connections
  std::uint64_t mix_seed = 1;     // derives each request's spec
  // Re-run every distinct spec directly (fresh universe, serial) and
  // byte-compare against the service's RESULT payloads.
  bool verify = true;
};

struct LoadgenReport {
  bool ok = false;            // everything answered + verification passed
  std::string error;          // first failure, when !ok
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t distinct_specs = 0;
  std::uint64_t verified_specs = 0;
  std::uint64_t byte_mismatches = 0;
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t max_us = 0;
  std::int64_t wall_us = 0;  // whole replay, handshake to last answer
};

// Runs the replay against a fresh daemon built from `service`.
// `service.executor_threads`/`scan_jobs` shape the daemon under test;
// its metrics/trace/log/hook fields are honored as usual.
[[nodiscard]] LoadgenReport run_loadgen(const ServiceConfig& service,
                                        const LoadgenOptions& options);

// Deterministic flat-JSON rendering of a report (the `loadgen_*` fields
// merged into BENCH_wall.json by bench/record.sh).
[[nodiscard]] std::string loadgen_report_json(const LoadgenReport& report);

}  // namespace originscan::service
