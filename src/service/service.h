// `originscand` — the scan-as-a-service daemon (ROADMAP item 3). One
// process freezes one immutable universe at startup and serves many
// concurrent tenants' scan requests over the CRC32-framed service
// protocol (service/wire.h, docs/PROTOCOL.md), with admission control
// and fair-share scheduling over the library's lane executor.
//
// Architecture (DESIGN.md §14):
//
//   * One event-loop thread owns every socket, the request table, and
//     the service.* metric block (single writer — the same discipline
//     as the scan lanes' MetricBlocks). It never scans.
//   * A fixed pool of executor threads (core::ThreadPool) runs admitted
//     sessions. Each session is a ScanSession (service/session.h):
//     private mutable state over the shared FrozenUniverse, so sessions
//     are embarrassingly parallel and their records are byte-identical
//     to solo runs.
//   * Admission control: a SUBMIT is refused (ERROR ADMISSION_FULL)
//     when the global in-flight cap or the per-tenant cap is reached —
//     backpressure is explicit and immediate, never a silent queue.
//   * Fair share: queued sessions drain round-robin across tenants, so
//     a tenant flooding requests cannot starve a tenant submitting one.
//   * Failure isolation: a malformed frame poisons only its connection;
//     a mid-request disconnect cancels only that client's sessions (via
//     the scan CancelToken, at batch granularity); SHUTDOWN drains
//     admitted sessions, refuses new ones, then exits the loop.
//
// Operations guide: docs/OPERATIONS.md. CLI front ends: `originscan
// serve` / `client` / `loadgen` (docs/CLI.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obsv/metrics.h"
#include "obsv/trace.h"
#include "service/session.h"
#include "service/wire.h"

namespace originscan::service {

struct ServiceConfig {
  // The scenario frozen at startup. Materialized scales ([2^12, 2^22])
  // and procedural full-Internet scenarios both work; the universe is
  // immutable either way.
  sim::ScenarioConfig scenario = sim::ScenarioConfig::test_scale();
  // Executor threads running sessions concurrently (the service's lane
  // count). Throughput knob only — per-session records are identical
  // for any value.
  int executor_threads = 2;
  // Intra-scan lanes per session (scan::ScanOptions::jobs).
  int scan_jobs = 1;
  // Admission control: global and per-tenant caps on in-flight
  // (queued + running) sessions. A SUBMIT beyond either cap is refused
  // with ERROR ADMISSION_FULL.
  std::uint32_t max_inflight = 4096;
  std::uint32_t max_inflight_per_tenant = 1024;
  // Optional scan-level telemetry: each completed session's scan
  // counters merge into `metrics` (thread-safe registry); per-request
  // phase spans land in `trace` (internally locked) on the
  // "svc/t<tenant>/r<id>" track.
  obsv::MetricsRegistry* metrics = nullptr;
  obsv::TraceRecorder* trace = nullptr;
  // Progress lines ("tenant 3 request 7 done, 512 records").
  std::function<void(std::string_view)> log;
  // Test-only: invoked on the executor thread as each session starts —
  // lets tests hold sessions in-flight to exercise admission control
  // and cancellation deterministically.
  std::function<void()> session_started_hook;
};

// Creates a listening AF_UNIX socket at `path` (unlinking a stale one).
// Returns -1 and fills `error` on failure.
int make_unix_listener(const std::string& path, std::string* error);
// Connects to the daemon's AF_UNIX socket. Returns -1 on failure.
int connect_unix(const std::string& path, std::string* error);

class Originscand {
 public:
  explicit Originscand(const ServiceConfig& config);
  ~Originscand();
  Originscand(const Originscand&) = delete;
  Originscand& operator=(const Originscand&) = delete;

  [[nodiscard]] const FrozenUniverse& universe() const { return universe_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  // Runs the event loop until a SHUTDOWN message (or request_stop())
  // has been honored: admitted sessions finish and deliver, new SUBMITs
  // are refused, then the loop exits. `listen_fd` (optional, -1 = none)
  // accepts new connections; `preconnected` are server-side fds already
  // speaking the protocol (socketpair transports for tests and the
  // in-process loadgen). serve() closes every connection fd it owns on
  // exit but never `listen_fd` itself. One serve() per instance.
  void serve(int listen_fd, std::vector<int> preconnected = {});

  // Asks a running serve() to drain and exit, from any thread —
  // equivalent to an administrative SHUTDOWN frame.
  void request_stop();

  // The service.* counters. Single-writer (the event loop); read it
  // after serve() returns, or from the loop's own callbacks.
  [[nodiscard]] const obsv::MetricBlock& service_metrics() const {
    return service_metrics_;
  }

 private:
  struct Connection;
  struct Request;
  struct Completion;
  class Loop;

  ServiceConfig config_;
  FrozenUniverse universe_;
  obsv::MetricBlock service_metrics_;
  // The self-wake pipe lives as long as the daemon object (not just one
  // serve() call): request_stop may write the wake byte from any thread
  // at any time, so the write end must never close underneath it.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  bool served_ = false;
};

}  // namespace originscan::service
