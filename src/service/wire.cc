#include "service/wire.h"


#include "netbase/byteio.h"

namespace originscan::service {
namespace {

void put_string(net::ByteWriter& writer, std::string_view s) {
  writer.u16(static_cast<std::uint16_t>(s.size()));
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()));
}

std::string get_string(net::ByteReader& reader, std::size_t cap) {
  const std::uint16_t n = reader.u16();
  if (n > cap) {
    reader.skip(~std::size_t{0});  // force the error latch
    return {};
  }
  const auto bytes = reader.bytes(n);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

bool valid_protocol(std::uint8_t raw) {
  for (proto::Protocol p : proto::kAllProtocols) {
    if (static_cast<std::uint8_t>(p) == raw) return true;
  }
  return false;
}

#define OSN_X(symbol, value, name) ProtocolSymbol{name, value},
constexpr ProtocolSymbol kMessageSymbols[] = {OSN_SERVICE_MESSAGES(OSN_X)};
constexpr ProtocolSymbol kErrorSymbols[] = {OSN_SERVICE_ERRORS(OSN_X)};
constexpr ProtocolSymbol kStateSymbols[] = {OSN_SERVICE_STATES(OSN_X)};
#undef OSN_X

}  // namespace

std::string_view service_msg_name(ServiceMsg type) {
  switch (type) {
#define OSN_X(symbol, value, name) \
  case ServiceMsg::symbol:         \
    return name;
    OSN_SERVICE_MESSAGES(OSN_X)
#undef OSN_X
  }
  return "?";
}

std::string_view service_error_name(ServiceError error) {
  switch (error) {
#define OSN_X(symbol, value, name) \
  case ServiceError::symbol:       \
    return name;
    OSN_SERVICE_ERRORS(OSN_X)
#undef OSN_X
  }
  return "?";
}

std::string_view session_state_name(SessionState state) {
  switch (state) {
#define OSN_X(symbol, value, name) \
  case SessionState::symbol:       \
    return name;
    OSN_SERVICE_STATES(OSN_X)
#undef OSN_X
  }
  return "?";
}

std::span<const ProtocolSymbol> service_message_symbols() {
  return kMessageSymbols;
}
std::span<const ProtocolSymbol> service_error_symbols() {
  return kErrorSymbols;
}
std::span<const ProtocolSymbol> service_state_symbols() {
  return kStateSymbols;
}

std::vector<std::uint8_t> encode_service_message(const ServiceWire& message) {
  std::vector<std::uint8_t> payload;
  net::ByteWriter writer(payload);
  writer.u8(static_cast<std::uint8_t>(message.type));
  switch (message.type) {
    case ServiceMsg::kHello:
      writer.u16(message.version);
      break;
    case ServiceMsg::kHelloAck:
      writer.u16(message.version);
      writer.u64(message.universe_seed);
      writer.u32(message.universe_size);
      break;
    case ServiceMsg::kSubmit:
      writer.u64(message.request_id);
      writer.u32(message.tenant);
      put_string(writer, message.origin_code);
      writer.u8(static_cast<std::uint8_t>(message.protocol));
      writer.u8(message.trial);
      writer.u8(message.probes);
      writer.u8(message.retries);
      break;
    case ServiceMsg::kStatus:
      writer.u64(message.request_id);
      writer.u8(static_cast<std::uint8_t>(message.state));
      writer.u32(message.queue_position);
      break;
    case ServiceMsg::kResult:
      writer.u64(message.request_id);
      writer.u32(static_cast<std::uint32_t>(message.records.size()));
      writer.bytes(message.records);
      break;
    case ServiceMsg::kCancel:
      writer.u64(message.request_id);
      break;
    case ServiceMsg::kShutdown:
      break;
    case ServiceMsg::kError:
      writer.u64(message.request_id);
      writer.u8(static_cast<std::uint8_t>(message.error));
      put_string(writer, message.text);
      break;
  }
  return net::encode_frame(payload);
}

std::optional<ServiceWire> decode_service_message(
    std::span<const std::uint8_t> payload) {
  net::ByteReader reader(payload);
  const std::uint8_t raw_type = reader.u8();
  if (!reader.ok()) return std::nullopt;
  ServiceWire message;
  switch (raw_type) {
    case static_cast<std::uint8_t>(ServiceMsg::kHello):
      message.type = ServiceMsg::kHello;
      message.version = reader.u16();
      break;
    case static_cast<std::uint8_t>(ServiceMsg::kHelloAck):
      message.type = ServiceMsg::kHelloAck;
      message.version = reader.u16();
      message.universe_seed = reader.u64();
      message.universe_size = reader.u32();
      break;
    case static_cast<std::uint8_t>(ServiceMsg::kSubmit): {
      message.type = ServiceMsg::kSubmit;
      message.request_id = reader.u64();
      message.tenant = reader.u32();
      message.origin_code = get_string(reader, kMaxOriginCodeBytes);
      const std::uint8_t raw_protocol = reader.u8();
      if (!valid_protocol(raw_protocol)) return std::nullopt;
      message.protocol = static_cast<proto::Protocol>(raw_protocol);
      message.trial = reader.u8();
      message.probes = reader.u8();
      message.retries = reader.u8();
      break;
    }
    case static_cast<std::uint8_t>(ServiceMsg::kStatus): {
      message.type = ServiceMsg::kStatus;
      message.request_id = reader.u64();
      const std::uint8_t raw_state = reader.u8();
      if (raw_state > static_cast<std::uint8_t>(SessionState::kUnknown)) {
        return std::nullopt;
      }
      message.state = static_cast<SessionState>(raw_state);
      message.queue_position = reader.u32();
      break;
    }
    case static_cast<std::uint8_t>(ServiceMsg::kResult): {
      message.type = ServiceMsg::kResult;
      message.request_id = reader.u64();
      const std::uint32_t n = reader.u32();
      if (n > net::kMaxFramePayload) return std::nullopt;
      const auto bytes = reader.bytes(n);
      message.records.assign(bytes.begin(), bytes.end());
      break;
    }
    case static_cast<std::uint8_t>(ServiceMsg::kCancel):
      message.type = ServiceMsg::kCancel;
      message.request_id = reader.u64();
      break;
    case static_cast<std::uint8_t>(ServiceMsg::kShutdown):
      message.type = ServiceMsg::kShutdown;
      break;
    case static_cast<std::uint8_t>(ServiceMsg::kError): {
      message.type = ServiceMsg::kError;
      message.request_id = reader.u64();
      const std::uint8_t raw_error = reader.u8();
      bool known = false;
#define OSN_X(symbol, value, name) known = known || raw_error == (value);
      OSN_SERVICE_ERRORS(OSN_X)
#undef OSN_X
      if (!known) return std::nullopt;
      message.error = static_cast<ServiceError>(raw_error);
      message.text = get_string(reader, kMaxErrorTextBytes);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!reader.ok() || reader.remaining() != 0) return std::nullopt;
  return message;
}

}  // namespace originscan::service
