// The universe/session split (DESIGN.md §14) — the refactor that makes
// one simulated Internet serve many tenants at once:
//
//   * FrozenUniverse: everything shared and READ-ONLY after startup.
//     One sim::World (topology, hosts, paths, policies, outage/loss
//     parameters, origin roster), built exactly as `originscan scan`
//     builds it and then frozen: the daemon hands out only const
//     references, so no request can perturb another's decisions.
//
//   * ScanSession: everything one request mutates, owned privately.
//     A fresh sim::PersistentState (the per-tenant copy-on-write IDS
//     counters — they start empty and grow only for the ASes this
//     tenant's scan actually trips), one sim::Internet view over the
//     shared world (per-trial liveness, temporal-RST policy state,
//     MaxStartups queues, lazily built loss/outage caches), and the
//     scan engines' lane state. Nothing in a session outlives it or is
//     visible outside it.
//
// Why per-tenant results stay byte-identical to solo runs: every scan
// decision is a pure function of (world seed, origin, protocol, trial,
// slot/host) plus the session's own mutable state — and the session's
// mutable state starts from the same empty initial conditions a fresh
// `originscan scan` process starts from. Concurrent sessions share only
// the immutable world, so interleaving cannot leak state between them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/store.h"
#include "obsv/metrics.h"
#include "obsv/trace.h"
#include "scanner/cancel.h"
#include "scanner/orchestrator.h"
#include "sim/internet.h"
#include "sim/scenario.h"

namespace originscan::service {

// The one immutable universe an `originscand` instance serves. Built
// once at daemon startup (materialized or procedural scenario); every
// accessor is const — the compiler enforces the freeze.
class FrozenUniverse {
 public:
  // Builds the world exactly as the direct CLI paths do: the paper
  // origin roster over `scenario`. Procedural scenarios derive state
  // lazily but purely, so they are frozen in the same sense — a
  // derivation returns the same facts no matter which session asks.
  explicit FrozenUniverse(const sim::ScenarioConfig& scenario);

  [[nodiscard]] const sim::World& world() const { return world_; }
  [[nodiscard]] std::uint64_t seed() const { return world_.seed; }
  [[nodiscard]] std::uint32_t universe_size() const {
    return world_.universe_size;
  }
  // ~OriginId{0} when unknown — same sentinel the CLI paths use.
  [[nodiscard]] sim::OriginId origin_id(std::string_view code) const {
    return world_.origin_id(code);
  }

 private:
  sim::World world_;
};

// One scan request's parameters, as carried by SUBMIT.
struct SessionSpec {
  std::string origin_code = "US1";
  proto::Protocol protocol = proto::Protocol::kHttp;
  int trial = 1;    // 1-based, [1, 3] — the CLI's --trial convention
  int probes = 2;   // SYN probes per target, [1, 8]
  int retries = 0;  // L7 retry budget

  [[nodiscard]] bool valid() const {
    return trial >= 1 && trial <= 3 && probes >= 1 && probes <= 8 &&
           retries >= 0 && retries <= 8;
  }
};

// Outcome of one executed session.
struct SessionOutcome {
  bool ok = false;
  bool aborted = false;      // cancelled mid-scan; records are invalid
  std::string error;         // unknown origin / invalid spec
  // core::serialize_results({result}) — byte-identical to what a direct
  // `originscan scan` run with the same (seed, spec) would persist.
  std::vector<std::uint8_t> records;
  std::size_t record_count = 0;
  std::size_t completed_count = 0;
};

// Executes one session against the shared universe. `cancel` (optional)
// aborts cooperatively at batch granularity; `metrics` (optional)
// receives the scan's own counters (zmap.*, sim.*, zgrab.*) as a
// single-writer block owned by this call; `trace` (optional, shared,
// internally locked) receives the scan's virtual-clock phase spans under
// `trace_track`. `scan_jobs` is the intra-scan lane count — results are
// byte-identical for any value.
SessionOutcome run_session(const FrozenUniverse& universe,
                           const SessionSpec& spec, int scan_jobs = 1,
                           const scan::CancelToken* cancel = nullptr,
                           obsv::MetricBlock* metrics = nullptr,
                           obsv::TraceRecorder* trace = nullptr,
                           const std::string& trace_track = {});

}  // namespace originscan::service
