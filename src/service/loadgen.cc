#include "service/loadgen.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netbase/rng.h"
#include "service/client.h"

namespace originscan::service {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

// The spec mix: a pure function of (mix_seed, tenant, index), so the
// verification pass can regenerate exactly what each tenant submitted.
// Small universes ship a fixed origin roster; draw from the codes every
// scenario defines.
SessionSpec spec_for(std::uint64_t mix_seed, std::uint32_t tenant,
                     std::uint32_t index) {
  static constexpr std::string_view kOrigins[] = {"AU", "BR",  "DE", "JP",
                                                  "US1", "US64", "CEN"};
  const std::uint64_t draw = net::mix_u64(mix_seed, tenant, index);
  SessionSpec spec;
  spec.origin_code = kOrigins[draw % std::size(kOrigins)];
  spec.protocol = proto::kAllProtocols[(draw >> 8) % proto::kAllProtocols.size()];
  spec.trial = static_cast<int>((draw >> 16) % 3) + 1;
  spec.probes = static_cast<int>((draw >> 24) % 2) + 1;
  spec.retries = static_cast<int>((draw >> 32) % 2);
  return spec;
}

// A stable key identifying a spec (the dedup unit for verification).
std::string spec_key(const SessionSpec& spec) {
  return spec.origin_code + "/" +
         std::to_string(static_cast<int>(spec.protocol)) + "/t" +
         std::to_string(spec.trial) + "/p" + std::to_string(spec.probes) +
         "/r" + std::to_string(spec.retries);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct PendingRequest {
  std::uint32_t tenant = 0;
  std::uint32_t index = 0;
  Clock::time_point submitted;
};

// One multiplexed client connection in the replay poll loop.
struct LoadConn {
  int fd = -1;
  net::FrameDecoder decoder;
  std::vector<std::uint8_t> outbound;
  std::size_t outbound_off = 0;
  std::unordered_map<std::uint64_t, PendingRequest> pending;

  [[nodiscard]] bool flush_pending() const {
    return outbound_off < outbound.size();
  }
};

}  // namespace

LoadgenReport run_loadgen(const ServiceConfig& service,
                          const LoadgenOptions& options) {
  LoadgenReport report;
  const std::uint32_t tenants = std::max<std::uint32_t>(1, options.tenants);
  const std::uint32_t per_tenant =
      std::max<std::uint32_t>(1, options.requests_per_tenant);
  const std::uint32_t conn_count = std::max<std::uint32_t>(
      1, std::min(options.connections, tenants));
  report.requests = std::uint64_t{tenants} * per_tenant;

  Originscand daemon(service);

  // Socketpair transports: server ends go to serve() preconnected, the
  // client ends stay here.
  std::vector<int> server_fds;
  std::vector<LoadConn> conns(conn_count);
  for (std::uint32_t i = 0; i < conn_count; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      report.error = "socketpair failed";
      for (int fd : server_fds) ::close(fd);
      for (auto& conn : conns) {
        if (conn.fd >= 0) ::close(conn.fd);
      }
      return report;
    }
    conns[i].fd = sv[0];
    server_fds.push_back(sv[1]);
  }

  std::thread serve_thread(
      [&daemon, server_fds] { daemon.serve(-1, server_fds); });

  const auto t0 = Clock::now();

  // Handshake each connection (blocking fds, daemon already serving),
  // then hand the fd to the nonblocking replay loop.
  for (auto& conn : conns) {
    ServiceClient client(conn.fd);
    if (!client.hello()) {
      report.error = "handshake failed: " + client.error();
      conn.fd = client.release();
      break;
    }
    conn.fd = client.release();
    set_nonblocking(conn.fd);
  }

  std::vector<std::int64_t> latencies;
  std::map<std::string, std::vector<std::uint8_t>> result_bytes_by_spec;
  std::map<std::string, SessionSpec> specs_by_key;
  std::uint64_t answered = 0;

  if (report.error.empty()) {
    // Queue every SUBMIT up front: request_id encodes (tenant, index) so
    // answers map back without extra state; tenant t rides connection
    // t % conn_count.
    for (std::uint32_t t = 0; t < tenants; ++t) {
      LoadConn& conn = conns[t % conn_count];
      for (std::uint32_t i = 0; i < per_tenant; ++i) {
        const std::uint64_t request_id = std::uint64_t{t} * per_tenant + i + 1;
        ServiceWire submit;
        submit.type = ServiceMsg::kSubmit;
        submit.request_id = request_id;
        submit.tenant = t;
        const SessionSpec spec = spec_for(options.mix_seed, t, i);
        submit.origin_code = spec.origin_code;
        submit.protocol = spec.protocol;
        submit.trial = static_cast<std::uint8_t>(spec.trial);
        submit.probes = static_cast<std::uint8_t>(spec.probes);
        submit.retries = static_cast<std::uint8_t>(spec.retries);
        const auto frame = encode_service_message(submit);
        conn.outbound.insert(conn.outbound.end(), frame.begin(), frame.end());
        conn.pending.emplace(request_id, PendingRequest{t, i, Clock::now()});
        specs_by_key.try_emplace(spec_key(spec), spec);
      }
    }

    // Single-threaded replay loop: flush SUBMITs as the daemon drains
    // them, collect STATUS/RESULT/ERROR answers as they arrive.
    latencies.reserve(report.requests);
    while (answered < report.requests && report.error.empty()) {
      std::vector<pollfd> fds;
      for (auto& conn : conns) {
        short events = POLLIN;
        if (conn.flush_pending()) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
      }
      if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 1000) < 0) {
        if (errno == EINTR) continue;
        report.error = "poll failed";
        break;
      }
      for (std::size_t c = 0; c < conns.size(); ++c) {
        LoadConn& conn = conns[c];
        if (fds[c].revents & POLLOUT) {
          while (conn.flush_pending()) {
            const ssize_t n = ::send(conn.fd,
                                     conn.outbound.data() + conn.outbound_off,
                                     conn.outbound.size() - conn.outbound_off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
              conn.outbound_off += static_cast<std::size_t>(n);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            report.error = "send failed mid-replay";
            break;
          }
          if (!conn.flush_pending()) {
            conn.outbound.clear();
            conn.outbound_off = 0;
          }
        }
        if ((fds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        std::uint8_t buffer[16384];
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
          if (n > 0) {
            conn.decoder.feed(std::span(buffer, static_cast<std::size_t>(n)));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          report.error = "server connection dropped mid-replay";
          break;
        }
        while (auto payload = conn.decoder.next()) {
          const auto message = decode_service_message(*payload);
          if (!message) {
            report.error = "undecodable server message";
            break;
          }
          if (message->type == ServiceMsg::kStatus) continue;  // SUBMIT ack
          const auto it = conn.pending.find(message->request_id);
          if (it == conn.pending.end()) continue;
          const PendingRequest pending = it->second;
          conn.pending.erase(it);
          ++answered;
          latencies.push_back(micros_between(pending.submitted, Clock::now()));
          if (message->type == ServiceMsg::kResult) {
            ++report.completed;
            const SessionSpec spec =
                spec_for(options.mix_seed, pending.tenant, pending.index);
            const std::string key = spec_key(spec);
            auto [slot, inserted] =
                result_bytes_by_spec.try_emplace(key, message->records);
            if (!inserted && slot->second != message->records) {
              // Two tenants submitted the same spec but got different
              // bytes — the isolation claim is already broken.
              ++report.byte_mismatches;
            }
          } else {
            ++report.rejected;
            if (report.error.empty()) {
              report.error = "request refused: " +
                             std::string(service_error_name(message->error)) +
                             " (" + message->text + ")";
            }
          }
        }
        if (conn.decoder.error() != net::FrameError::kNone) {
          report.error = "framing error from server";
        }
      }
    }
  }

  // Drain-and-exit, then join the daemon before touching its metrics.
  {
    ServiceWire shutdown;
    shutdown.type = ServiceMsg::kShutdown;
    const auto frame = encode_service_message(shutdown);
    if (!conns.empty() && conns[0].fd >= 0) {
      (void)!::send(conns[0].fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    }
  }
  daemon.request_stop();
  serve_thread.join();
  for (auto& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }

  report.wall_us = micros_between(t0, Clock::now());
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.p50_us = latencies[latencies.size() / 2];
    report.p99_us = latencies[(latencies.size() * 99) / 100];
    report.max_us = latencies.back();
  }
  report.distinct_specs = result_bytes_by_spec.size();

  // Byte-identity oracle: replay each distinct spec through a direct,
  // serial, single-session run against a freshly built universe — the
  // exact work `originscan scan` would do — and compare bytes.
  if (options.verify && report.error.empty()) {
    FrozenUniverse solo_universe(service.scenario);
    for (const auto& [key, bytes] : result_bytes_by_spec) {
      const auto spec_it = specs_by_key.find(key);
      if (spec_it == specs_by_key.end()) continue;
      const SessionOutcome solo = run_session(solo_universe, spec_it->second);
      ++report.verified_specs;
      if (!solo.ok || solo.records != bytes) {
        ++report.byte_mismatches;
        if (report.error.empty()) {
          report.error = "byte mismatch vs direct run for spec " + key;
        }
      }
    }
  }

  if (report.error.empty() && answered == report.requests &&
      report.byte_mismatches == 0 && report.rejected == 0) {
    report.ok = true;
  } else if (report.error.empty()) {
    report.error = "incomplete replay";
  }
  return report;
}

std::string loadgen_report_json(const LoadgenReport& report) {
  std::string json = "{\n";
  const auto field = [&json](std::string_view name, std::uint64_t value,
                             bool last = false) {
    json += "  \"";
    json += name;
    json += "\": ";
    json += std::to_string(value);
    json += last ? "\n" : ",\n";
  };
  field("loadgen_requests", report.requests);
  field("loadgen_completed", report.completed);
  field("loadgen_rejected", report.rejected);
  field("loadgen_distinct_specs", report.distinct_specs);
  field("loadgen_verified_specs", report.verified_specs);
  field("loadgen_byte_mismatches", report.byte_mismatches);
  field("loadgen_p50_us", static_cast<std::uint64_t>(report.p50_us));
  field("loadgen_p99_us", static_cast<std::uint64_t>(report.p99_us));
  field("loadgen_max_us", static_cast<std::uint64_t>(report.max_us));
  field("loadgen_wall_us", static_cast<std::uint64_t>(report.wall_us), true);
  json += "}\n";
  return json;
}

}  // namespace originscan::service
