// Blocking client for the `originscand` wire protocol — the transport
// half of `originscan client` and the building block the service tests
// and the in-process loadgen drive directly over socketpairs. One
// ServiceClient owns one connected fd; it performs the HELLO handshake,
// frames outgoing messages, and decodes incoming ones strictly (any
// framing or grammar violation poisons the client, mirroring the
// server's no-resynchronization rule).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netbase/frame.h"
#include "service/session.h"
#include "service/wire.h"

namespace originscan::service {

class ServiceClient {
 public:
  // Takes ownership of a connected (blocking or nonblocking) fd.
  explicit ServiceClient(int fd) : fd_(fd) {}
  ~ServiceClient();

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&&) = delete;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // HELLO/HELLO_ACK handshake. On success fills the daemon's universe
  // identity; on refusal or transport failure returns false and sets
  // error().
  bool hello();
  [[nodiscard]] std::uint64_t universe_seed() const { return universe_seed_; }
  [[nodiscard]] std::uint32_t universe_size() const { return universe_size_; }

  // Sends one message (SUBMIT, STATUS poll, CANCEL, SHUTDOWN).
  bool send(const ServiceWire& message);

  // Convenience: a SUBMIT from a spec.
  bool submit(std::uint64_t request_id, std::uint32_t tenant,
              const SessionSpec& spec);

  // Blocks for the next server message. nullopt = EOF, transport error,
  // or protocol violation (see error()).
  std::optional<ServiceWire> next_message();

  // Blocks until the terminal answer (RESULT or ERROR) for `request_id`
  // arrives, discarding interleaved STATUS acks and other requests'
  // traffic is NOT expected — callers multiplexing requests must use
  // next_message() directly.
  std::optional<ServiceWire> wait_for(std::uint64_t request_id);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] int fd() const { return fd_; }

  // Release the fd without closing it (the loadgen hands fds to its own
  // poll loop).
  int release();

 private:
  int fd_;
  net::FrameDecoder decoder_;
  std::uint64_t universe_seed_ = 0;
  std::uint32_t universe_size_ = 0;
  std::string error_;
};

}  // namespace originscan::service
