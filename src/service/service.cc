#include "service/service.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/parallel.h"

namespace originscan::service {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

int make_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

// One client connection owned by the event loop: its decoder, its
// outbound buffer, and the requests it has open. `seq` disambiguates a
// reused fd number — completions carry the seq of the connection that
// submitted them and are discarded on mismatch.
struct Originscand::Connection {
  int fd = -1;
  std::uint64_t seq = 0;
  net::FrameDecoder decoder;
  bool hello_done = false;
  bool close_after_flush = false;  // flush outbound, then drop
  std::vector<std::uint8_t> outbound;
  std::size_t outbound_off = 0;
  // client request_id -> loop-global request key
  std::unordered_map<std::uint64_t, std::uint64_t> open_requests;

  [[nodiscard]] bool flush_pending() const {
    return outbound_off < outbound.size();
  }
};

// One admitted session, from SUBMIT to delivery. Stays in the table
// while an executor thread holds its CancelToken, even after its client
// is gone — the completion is what retires it.
struct Originscand::Request {
  std::uint64_t key = 0;  // loop-global
  std::uint64_t conn_seq = 0;
  int conn_fd = -1;
  std::uint64_t client_request_id = 0;
  std::uint32_t tenant = 0;
  SessionSpec spec;
  SessionState state = SessionState::kQueued;
  bool orphaned = false;        // client disconnected; discard delivery
  bool shutdown_drain = false;  // in flight when SHUTDOWN arrived
  std::unique_ptr<scan::CancelToken> cancel =
      std::make_unique<scan::CancelToken>();
};

struct Originscand::Completion {
  std::uint64_t key = 0;
  SessionOutcome outcome;
  obsv::MetricBlock scan_metrics;
};

// The event loop: one thread owning all sockets, the request table, and
// the service.* block; a ThreadPool running sessions; a wake pipe
// bridging executor completions back into poll().
class Originscand::Loop {
 public:
  Loop(Originscand& daemon, int listen_fd)
      : daemon_(daemon),
        config_(daemon.config_),
        metrics_(daemon.service_metrics_),
        listen_fd_(listen_fd),
        wake_read_fd_(daemon.wake_read_fd_),
        wake_write_fd_(daemon.wake_write_fd_) {}

  // The wake pipe belongs to the Originscand object (request_stop may
  // write it from any thread, even as serve() tears down), so ~Loop
  // closes nothing here.

  void run(std::vector<int> preconnected) {
    if (wake_read_fd_ < 0 || wake_write_fd_ < 0) return;
    if (listen_fd_ >= 0) set_nonblocking(listen_fd_);

    for (int fd : preconnected) adopt_connection(fd);

    while (!finished()) {
      poll_once();
      if (daemon_.stop_requested_.load(std::memory_order_relaxed)) {
        begin_drain();
      }
      drain_completions();
      dispatch();
    }

    // Admitted work has delivered (or its clients are gone); make sure
    // every executor thread has joined its queue before teardown.
    pool_.wait();
    drain_completions();
    for (auto& [fd, conn] : connections_) {
      flush_blocking(*conn);
      ::close(fd);
    }
    connections_.clear();
  }

 private:
  // The loop exits once a drain was requested, every admitted session
  // has retired, and every surviving connection's outbound bytes are on
  // the wire (drain means *deliver*, not just finish).
  [[nodiscard]] bool finished() const {
    if (!draining_) return false;
    if (!requests_.empty()) return false;
    for (const auto& [fd, conn] : connections_) {
      if (conn->flush_pending() && !conn->close_after_flush) return false;
    }
    return true;
  }

  void begin_drain() {
    if (draining_) return;
    draining_ = true;
    for (auto& [key, request] : requests_) request->shutdown_drain = true;
    if (config_.log) {
      config_.log("shutdown: draining " + std::to_string(requests_.size()) +
                  " in-flight session(s)");
    }
  }

  void poll_once() {
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listen_fd_ >= 0 && !draining_) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    std::vector<int> conn_fds;
    for (auto& [fd, conn] : connections_) {
      short events = conn->close_after_flush ? 0 : POLLIN;
      if (conn->flush_pending()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (rc <= 0) return;

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      std::uint8_t scratch[64];
      while (::read(wake_read_fd_, scratch, sizeof scratch) > 0) {
      }
    }
    ++index;
    if (listen_fd_ >= 0 && !draining_) {
      if (fds[index].revents & POLLIN) accept_connections();
      ++index;
    }
    for (int fd : conn_fds) {
      const short revents = fds[index++].revents;
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (revents & POLLOUT) flush_some(conn);
      if (revents & (POLLIN | POLLHUP | POLLERR)) read_some(conn);
    }
    reap_closed();
  }

  void accept_connections() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      adopt_connection(fd);
    }
  }

  void adopt_connection(int fd) {
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->seq = ++conn_seq_;
    connections_.emplace(fd, std::move(conn));
    metrics_.add(obsv::Counter::kServiceConnections);
  }

  void read_some(Connection& conn) {
    if (conn.close_after_flush) return;
    bool peer_gone = false;
    std::uint8_t buffer[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        conn.decoder.feed(std::span(buffer, static_cast<std::size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // 0 = orderly shutdown, <0 = error: either way the peer is gone.
      // Frames that arrived before the close still count — a client may
      // legitimately send SHUTDOWN (or a fire-and-forget CANCEL) and hang
      // up in the same wire flight, so decode before disconnecting.
      peer_gone = true;
      break;
    }
    while (auto payload = conn.decoder.next()) {
      if (conn.close_after_flush) break;
      handle_payload(conn, *payload);
    }
    if (!conn.close_after_flush &&
        conn.decoder.error() != net::FrameError::kNone) {
      refuse(conn, 0, ServiceError::kMalformed,
             std::string("frame error: ") +
                 std::string(net::frame_error_name(conn.decoder.error())));
      metrics_.add(obsv::Counter::kServiceFramesMalformed);
      conn.close_after_flush = true;
    }
    if (peer_gone) disconnect(conn);
  }

  void handle_payload(Connection& conn, std::span<const std::uint8_t> payload) {
    const auto message = decode_service_message(payload);
    if (!message) {
      refuse(conn, 0, ServiceError::kMalformed, "undecodable message");
      metrics_.add(obsv::Counter::kServiceFramesMalformed);
      conn.close_after_flush = true;
      return;
    }
    if (!conn.hello_done && message->type != ServiceMsg::kHello) {
      refuse(conn, 0, ServiceError::kMalformed, "expected HELLO first");
      metrics_.add(obsv::Counter::kServiceFramesMalformed);
      conn.close_after_flush = true;
      return;
    }
    switch (message->type) {
      case ServiceMsg::kHello:
        handle_hello(conn, *message);
        break;
      case ServiceMsg::kSubmit:
        handle_submit(conn, *message);
        break;
      case ServiceMsg::kStatus:
        handle_status(conn, *message);
        break;
      case ServiceMsg::kCancel:
        handle_cancel(conn, *message);
        break;
      case ServiceMsg::kShutdown:
        begin_drain();
        break;
      default:
        // Server-only message types arriving from a client are protocol
        // violations, same as undecodable bytes.
        refuse(conn, 0, ServiceError::kMalformed, "unexpected message type");
        metrics_.add(obsv::Counter::kServiceFramesMalformed);
        conn.close_after_flush = true;
        break;
    }
  }

  void handle_hello(Connection& conn, const ServiceWire& message) {
    if (message.version != kServiceProtocolVersion) {
      refuse(conn, 0, ServiceError::kBadVersion,
             "server speaks version " +
                 std::to_string(kServiceProtocolVersion));
      conn.close_after_flush = true;
      return;
    }
    conn.hello_done = true;
    ServiceWire ack;
    ack.type = ServiceMsg::kHelloAck;
    ack.version = kServiceProtocolVersion;
    ack.universe_seed = daemon_.universe_.seed();
    ack.universe_size = daemon_.universe_.universe_size();
    send(conn, ack);
  }

  void handle_submit(Connection& conn, const ServiceWire& message) {
    if (draining_) {
      reject(conn, message.request_id, ServiceError::kShuttingDown,
             "daemon is draining");
      return;
    }
    SessionSpec spec;
    spec.origin_code = message.origin_code;
    spec.protocol = message.protocol;
    spec.trial = message.trial;
    spec.probes = message.probes;
    spec.retries = message.retries;
    if (!spec.valid()) {
      reject(conn, message.request_id, ServiceError::kBadSpec,
             "trial in [1,3], probes in [1,8], retries in [0,8]");
      return;
    }
    if (daemon_.universe_.origin_id(spec.origin_code) == ~sim::OriginId{0}) {
      reject(conn, message.request_id, ServiceError::kUnknownOrigin,
             "unknown origin: " + spec.origin_code);
      return;
    }
    if (conn.open_requests.count(message.request_id) != 0) {
      reject(conn, message.request_id, ServiceError::kBadSpec,
             "request id already open on this connection");
      return;
    }
    if (inflight_ >= config_.max_inflight ||
        tenant_inflight_[message.tenant] >= config_.max_inflight_per_tenant) {
      reject(conn, message.request_id, ServiceError::kAdmissionFull,
             "admission caps reached");
      return;
    }

    auto request = std::make_unique<Request>();
    request->key = ++request_seq_;
    request->conn_seq = conn.seq;
    request->conn_fd = conn.fd;
    request->client_request_id = message.request_id;
    request->tenant = message.tenant;
    request->spec = std::move(spec);
    const std::uint64_t key = request->key;
    conn.open_requests.emplace(message.request_id, key);

    ++inflight_;
    ++tenant_inflight_[message.tenant];
    inflight_peak_ = std::max<std::uint64_t>(inflight_peak_, inflight_);
    metrics_.add(obsv::Counter::kServiceRequestsAccepted);
    metrics_.gauge_max(obsv::Gauge::kServiceInflightPeak, inflight_peak_);

    auto& queue = tenant_queues_[message.tenant];
    queue.push_back(key);
    std::size_t queued_total = 0;
    for (const auto& [tenant, q] : tenant_queues_) queued_total += q.size();
    metrics_.observe(obsv::Histogram::kServiceQueueDepth, queued_total);

    ServiceWire ack;
    ack.type = ServiceMsg::kStatus;
    ack.request_id = message.request_id;
    ack.state = SessionState::kQueued;
    ack.queue_position = static_cast<std::uint32_t>(queue.size() - 1);
    send(conn, ack);

    requests_.emplace(key, std::move(request));
  }

  void handle_status(Connection& conn, const ServiceWire& message) {
    ServiceWire reply;
    reply.type = ServiceMsg::kStatus;
    reply.request_id = message.request_id;
    reply.state = SessionState::kUnknown;
    const auto it = conn.open_requests.find(message.request_id);
    if (it != conn.open_requests.end()) {
      const auto rit = requests_.find(it->second);
      if (rit != requests_.end()) {
        const Request& request = *rit->second;
        reply.state = request.state;
        if (request.state == SessionState::kQueued) {
          const auto& queue = tenant_queues_[request.tenant];
          for (std::size_t i = 0; i < queue.size(); ++i) {
            if (queue[i] == request.key) {
              reply.queue_position = static_cast<std::uint32_t>(i);
              break;
            }
          }
        }
      }
    }
    send(conn, reply);
  }

  void handle_cancel(Connection& conn, const ServiceWire& message) {
    const auto it = conn.open_requests.find(message.request_id);
    if (it == conn.open_requests.end()) {
      refuse(conn, message.request_id, ServiceError::kUnknownRequest,
             "no such open request");
      return;
    }
    const auto rit = requests_.find(it->second);
    if (rit == requests_.end()) return;
    Request& request = *rit->second;
    if (request.state == SessionState::kQueued) {
      // Never dispatched: drop it from its tenant queue and answer now.
      auto& queue = tenant_queues_[request.tenant];
      std::erase(queue, request.key);
      retire(request);
      metrics_.add(obsv::Counter::kServiceRequestsCancelled);
      refuse(conn, message.request_id, ServiceError::kCancelled,
             "cancelled while queued");
      requests_.erase(rit);
      conn.open_requests.erase(it);
      return;
    }
    // Running: trip the token; the executor winds down at its next batch
    // boundary and the completion path answers with ERROR CANCELLED.
    request.cancel->cancel();
  }

  // Peer vanished: every queued request it owns is dropped, every
  // running one is cooperatively cancelled (its completion is discarded
  // on arrival via `orphaned`). Nothing another tenant owns is touched.
  void disconnect(Connection& conn) {
    metrics_.add(obsv::Counter::kServiceDisconnects);
    for (const auto& [client_id, key] : conn.open_requests) {
      const auto rit = requests_.find(key);
      if (rit == requests_.end()) continue;
      Request& request = *rit->second;
      request.orphaned = true;
      if (request.state == SessionState::kQueued) {
        std::erase(tenant_queues_[request.tenant], request.key);
        retire(request);
        metrics_.add(obsv::Counter::kServiceRequestsCancelled);
        requests_.erase(rit);
      } else {
        request.cancel->cancel();
      }
    }
    conn.open_requests.clear();
    conn.close_after_flush = true;
    conn.outbound.clear();  // no reader left; drop undelivered bytes
    conn.outbound_off = 0;
  }

  // Round-robin across tenants with queued work: each pass hands at most
  // one session per tenant to the executor, so a flooding tenant only
  // ever gets the pool share a single-request tenant gets.
  void dispatch() {
    while (running_ < pool_.thread_count()) {
      std::uint64_t key = 0;
      if (!pick_next(key)) return;
      const auto rit = requests_.find(key);
      if (rit == requests_.end()) continue;
      Request& request = *rit->second;
      request.state = SessionState::kRunning;
      ++running_;
      const SessionSpec spec = request.spec;
      const scan::CancelToken* cancel = request.cancel.get();
      const std::string track = "svc/t" + std::to_string(request.tenant) +
                                "/r" +
                                std::to_string(request.client_request_id);
      pool_.submit([this, key, spec, cancel, track] {
        if (config_.session_started_hook) config_.session_started_hook();
        Completion completion;
        completion.key = key;
        completion.outcome =
            run_session(daemon_.universe_, spec, config_.scan_jobs, cancel,
                        &completion.scan_metrics, config_.trace, track);
        {
          std::scoped_lock lock(completions_mutex_);
          completions_.push_back(std::move(completion));
        }
        const std::uint8_t byte = 1;
        (void)!::write(wake_write_fd_, &byte, 1);
      });
    }
  }

  bool pick_next(std::uint64_t& key) {
    // Queues can be empty without being erased (a queued request that
    // was cancelled or orphaned is removed by std::erase), so sweep
    // those out here; each pass either returns or shrinks the map, so
    // the loop terminates.
    while (!tenant_queues_.empty()) {
      auto it = tenant_queues_.lower_bound(rr_cursor_);
      if (it == tenant_queues_.end()) it = tenant_queues_.begin();
      rr_cursor_ = it->first + 1;  // next pass starts after this tenant
      if (it->second.empty()) {
        tenant_queues_.erase(it);
        continue;
      }
      key = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) tenant_queues_.erase(it);
      return true;
    }
    return false;
  }

  void drain_completions() {
    std::vector<Completion> batch;
    {
      std::scoped_lock lock(completions_mutex_);
      batch.swap(completions_);
    }
    for (Completion& completion : batch) deliver(completion);
  }

  void deliver(Completion& completion) {
    const auto rit = requests_.find(completion.key);
    if (rit == requests_.end()) return;
    Request& request = *rit->second;
    --running_;
    retire(request);

    if (completion.outcome.ok) {
      metrics_.add(obsv::Counter::kServiceRequestsCompleted);
      if (request.shutdown_drain) {
        metrics_.add(obsv::Counter::kServiceShutdownDrained);
      }
      if (config_.metrics != nullptr) {
        config_.metrics->merge_block(completion.scan_metrics);
      }
    } else {
      metrics_.add(obsv::Counter::kServiceRequestsCancelled);
    }

    Connection* conn = find_connection(request.conn_fd, request.conn_seq);
    if (conn != nullptr && !request.orphaned) {
      if (completion.outcome.ok) {
        ServiceWire result;
        result.type = ServiceMsg::kResult;
        result.request_id = request.client_request_id;
        result.records = std::move(completion.outcome.records);
        send(*conn, result);
      } else {
        refuse(*conn, request.client_request_id, ServiceError::kCancelled,
               completion.outcome.error);
      }
      conn->open_requests.erase(request.client_request_id);
    }
    if (config_.log) {
      config_.log("tenant " + std::to_string(request.tenant) + " request " +
                  std::to_string(request.client_request_id) +
                  (completion.outcome.ok
                       ? " done, " +
                             std::to_string(completion.outcome.record_count) +
                             " records"
                       : " " + completion.outcome.error));
    }
    requests_.erase(rit);
  }

  void retire(Request& request) {
    --inflight_;
    auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() && --it->second == 0) {
      tenant_inflight_.erase(it);
    }
  }

  Connection* find_connection(int fd, std::uint64_t seq) {
    const auto it = connections_.find(fd);
    if (it == connections_.end() || it->second->seq != seq) return nullptr;
    return it->second.get();
  }

  // ---- outbound path --------------------------------------------------

  void send(Connection& conn, const ServiceWire& message) {
    const std::vector<std::uint8_t> frame = encode_service_message(message);
    conn.outbound.insert(conn.outbound.end(), frame.begin(), frame.end());
    flush_some(conn);
  }

  void refuse(Connection& conn, std::uint64_t request_id, ServiceError error,
              std::string text) {
    ServiceWire message;
    message.type = ServiceMsg::kError;
    message.request_id = request_id;
    message.error = error;
    message.text = std::move(text);
    send(conn, message);
  }

  void reject(Connection& conn, std::uint64_t request_id, ServiceError error,
              std::string text) {
    metrics_.add(obsv::Counter::kServiceRequestsRejected);
    refuse(conn, request_id, error, std::move(text));
  }

  void flush_some(Connection& conn) {
    while (conn.flush_pending()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbound.data() + conn.outbound_off,
                 conn.outbound.size() - conn.outbound_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbound_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      disconnect(conn);
      return;
    }
    if (conn.outbound_off == conn.outbound.size()) {
      conn.outbound.clear();
      conn.outbound_off = 0;
    }
  }

  // Final flush at teardown: the fds may still be nonblocking, so spin
  // briefly on EAGAIN instead of dropping a RESULT a drain promised.
  void flush_blocking(Connection& conn) {
    for (int spins = 0; conn.flush_pending() && spins < 1000; ++spins) {
      pollfd pfd{conn.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) break;
      const std::size_t before = conn.outbound_off;
      flush_some(conn);
      if (conn.fd < 0 || conn.outbound_off == before) break;
    }
  }

  // Connections marked dead are reaped after the event pass so iterator
  // invalidation can't bite mid-loop.
  void reap_closed() {
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& conn = *it->second;
      if (conn.close_after_flush && !conn.flush_pending()) {
        ::close(conn.fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }

  Originscand& daemon_;
  const ServiceConfig& config_;
  obsv::MetricBlock& metrics_;
  int listen_fd_;

  const int wake_read_fd_;
  const int wake_write_fd_;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests_;
  std::map<std::uint32_t, std::deque<std::uint64_t>> tenant_queues_;
  std::unordered_map<std::uint32_t, std::uint32_t> tenant_inflight_;
  std::uint32_t rr_cursor_ = 0;
  std::uint64_t conn_seq_ = 0;
  std::uint64_t request_seq_ = 0;
  std::uint32_t inflight_ = 0;
  std::uint64_t inflight_peak_ = 0;
  int running_ = 0;
  bool draining_ = false;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  // Declared last so it is destroyed first: even on an exceptional
  // unwind, executor threads join while every member they touch (the
  // completion queue, the wake pipe) is still alive.
  core::ThreadPool pool_{config_.executor_threads};
};

Originscand::Originscand(const ServiceConfig& config)
    : config_(config), universe_(config.scenario) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) == 0) {
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);
  }
}

Originscand::~Originscand() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Originscand::serve(int listen_fd, std::vector<int> preconnected) {
  if (served_) return;
  served_ = true;
  Loop loop(*this, listen_fd);
  loop.run(std::move(preconnected));
}

void Originscand::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const int fd = wake_write_fd_;
  if (fd >= 0) {
    const std::uint8_t byte = 1;
    (void)!::write(fd, &byte, 1);
  }
}

}  // namespace originscan::service
