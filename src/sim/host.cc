#include "sim/host.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "netbase/rng.h"

namespace originscan::sim {

void HostTable::freeze() {
  assert(!frozen_);
  std::sort(hosts_.begin(), hosts_.end(),
            [](const Host& a, const Host& b) { return a.addr < b.addr; });
  for (std::size_t i = 1; i < hosts_.size(); ++i) {
    if (hosts_[i].addr == hosts_[i - 1].addr) {
      std::fprintf(stderr, "HostTable::freeze: duplicate host %s\n",
                   hosts_[i].addr.to_string().c_str());
      std::abort();
    }
  }
  direct_.clear();
  if (!hosts_.empty() &&
      static_cast<std::uint64_t>(hosts_.back().addr.value()) + 1 <=
          kDirectMapLimit) {
    direct_.assign(static_cast<std::size_t>(hosts_.back().addr.value()) + 1,
                   0);
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      direct_[hosts_[i].addr.value()] = static_cast<std::uint32_t>(i + 1);
    }
  }
  frozen_ = true;
}

const Host* HostTable::find(net::Ipv4Addr addr) const {
  assert(frozen_);
  const std::uint32_t value = addr.value();
  if (!direct_.empty()) {
    if (value >= direct_.size()) return nullptr;
    const std::uint32_t slot = direct_[value];
    return slot == 0 ? nullptr : &hosts_[slot - 1];
  }
  auto it = std::lower_bound(
      hosts_.begin(), hosts_.end(), addr,
      [](const Host& h, net::Ipv4Addr a) { return h.addr < a; });
  if (it == hosts_.end() || it->addr != addr) return nullptr;
  return &*it;
}

bool HostTable::live_in_trial(const Host& host, int trial,
                              std::uint64_t experiment_seed) {
  if (host.live_percent >= 100) return true;
  const std::uint64_t h = net::mix_u64(host.seed, experiment_seed,
                                       static_cast<std::uint64_t>(trial) + 1,
                                       0x1157ULL);
  return (h % 100) < host.live_percent;
}

std::size_t HostTable::count_running(proto::Protocol p) const {
  std::size_t count = 0;
  for (const auto& host : hosts_) {
    if (host.runs(p)) ++count;
  }
  return count;
}

}  // namespace originscan::sim
