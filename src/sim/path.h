// Per-(origin, destination-AS) path behaviour: latency plus a
// Gilbert-Elliott two-state loss process. The paper's central observation
// — when one of two back-to-back probes is lost, the other is almost
// always lost too (>93%) — falls out of this model naturally: back-to-back
// probes land in the same Good/Bad period, and Bad periods drop nearly
// everything.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netbase/rng.h"
#include "netbase/vtime.h"
#include "sim/types.h"

namespace originscan::sim {

struct PathProfile {
  double good_loss = 0.0005;        // drop probability in the Good state
  double bad_loss = 0.98;           // drop probability in the Bad state
  double bad_fraction = 0.004;      // stationary fraction of time in Bad
  double mean_bad_duration_s = 90;  // exponential mean of a Bad period
  double latency_ms = 80;

  // Long-run expected loss rate of the process.
  [[nodiscard]] double stationary_loss() const {
    return bad_fraction * bad_loss + (1.0 - bad_fraction) * good_loss;
  }
};

// The realized Good/Bad timeline of one path over one scan, generated
// deterministically from a stream seed. Bad intervals are materialized
// eagerly (a handful per scan) so state queries are a binary search.
class PathLossModel {
 public:
  PathLossModel(const PathProfile& profile, std::uint64_t stream_seed,
                net::VirtualTime horizon);

  [[nodiscard]] bool in_bad_state(net::VirtualTime t) const;

  // Deterministic per-packet drop decision; `packet_key` must be unique
  // per packet (mix of addr, probe index, direction).
  [[nodiscard]] bool drop(net::VirtualTime t, std::uint64_t packet_key) const;

  [[nodiscard]] double loss_probability(net::VirtualTime t) const;
  [[nodiscard]] const PathProfile& profile() const { return profile_; }

  // A maximal time window over which loss_probability is constant, for
  // batch consumers that probe many packets at nearby times: one lookup
  // amortizes over every packet whose time falls inside the window. The
  // window's p equals loss_probability(t) for every t it contains.
  struct LossWindow {
    double p = 0.0;
    std::int64_t start_us = 0;
    std::int64_t end_us = -1;  // exclusive; empty by default
    [[nodiscard]] bool contains(net::VirtualTime t) const {
      return t.micros() >= start_us && t.micros() < end_us;
    }
  };
  [[nodiscard]] LossWindow loss_window(net::VirtualTime t) const;

  // The raw stream seed, exposed so the batched drop kernel can compute
  // mix(seed, key, 0xD60B) for four packets at once. Must stay
  // bit-identical to what drop() uses.
  [[nodiscard]] std::uint64_t stream_seed() const { return seed_; }

  // Total Bad time over the horizon (for tests / calibration).
  [[nodiscard]] net::VirtualTime total_bad_time() const;

 private:
  struct BadInterval {
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
  };

  PathProfile profile_;
  std::uint64_t seed_;
  std::vector<BadInterval> bad_intervals_;  // sorted, disjoint
};

// Resolves the PathProfile for any (origin, AS) pair from layered
// configuration: per-pair override > per-AS profile > default, then the
// origin's loss multiplier scales the Bad fraction and Good loss.
class PathTable {
 public:
  void set_default_profile(const PathProfile& profile) { default_ = profile; }
  void set_as_profile(AsId as, const PathProfile& profile);
  void set_pair_override(OriginId origin, AsId as, const PathProfile& profile);
  void set_origin_multiplier(OriginId origin, double multiplier);

  // Additive bump on the Good-state loss for one origin (used to give
  // colocated providers slightly different first-hop quality without
  // changing their shared Bad timelines).
  void set_origin_good_loss_bump(OriginId origin, double bump);

  [[nodiscard]] PathProfile profile(OriginId origin, AsId as) const;

 private:
  PathProfile default_;
  std::map<AsId, PathProfile> per_as_;
  std::map<std::pair<OriginId, AsId>, PathProfile> per_pair_;
  std::map<OriginId, double> multipliers_;
  std::map<OriginId, double> good_loss_bumps_;
};

}  // namespace originscan::sim
