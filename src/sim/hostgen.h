// The host-generation kernel: one address's Host record as a pure
// function of (world seed, addr, AS, generation parameters). Both the
// materialized scenario builder (Builder::generate_hosts) and the
// procedural full-IPv4 layer (ProceduralWorld::derive_host) call this
// one function, so the population behind an address is bit-identical
// whichever path produced it — the property the procedural-vs-
// materialized equivalence test pins.
//
// The draw order below is frozen: every bernoulli consumes generator
// state even when its outcome is unused, so reordering or short-
// circuiting any draw changes every world built from an existing seed.
#pragma once

#include <cstdint>
#include <optional>

#include "netbase/rng.h"
#include "proto/protocol.h"
#include "proto/ssh.h"
#include "sim/host.h"
#include "sim/types.h"

namespace originscan::sim {

// Per-AS generation parameters, fully resolved by the caller: scenario
// defaults vs per-AS overrides, and the per-AS flaky coin, are decided
// before this struct is built.
struct HostGenParams {
  double density = 0.3;
  double http = 0.78;
  double https = 0.56;
  double ssh = 0.27;
  double middlebox_share = 0.02;
  double flaky_share = 0.0;  // 0 for the ~2/3 of ASes with no flaky hosts
  int flaky_live_percent = 55;
  double churny_share = 0.16;
  int churny_live_percent = 82;
  double maxstartups_share = 0.30;
  bool aggressive_maxstartups = false;
};

// Derives the host behind `addr`, or nullopt when the address is empty
// (density miss, or no services and not a middlebox).
inline std::optional<Host> generate_host(std::uint64_t world_seed,
                                         std::uint32_t addr, AsId as,
                                         const HostGenParams& params) {
  const proto::MaxStartups kDefaultTriple{10, 30, 100};
  const proto::MaxStartups kAggressiveTriple{5, 60, 30};

  net::Rng host_rng(net::mix_u64(world_seed, addr, 0x057u));
  if (!host_rng.bernoulli(params.density)) return std::nullopt;

  Host host;
  host.addr = net::Ipv4Addr(addr);
  host.as = as;
  host.seed = net::mix_u64(world_seed, addr, 0x5EEDu);
  if (host_rng.bernoulli(params.http)) host.services |= 1u << 0;
  if (host_rng.bernoulli(params.https)) host.services |= 1u << 1;
  if (host_rng.bernoulli(params.ssh)) host.services |= 1u << 2;
  host.middlebox = host_rng.bernoulli(params.middlebox_share);
  if (host.services == 0 && !host.middlebox) return std::nullopt;
  if (host_rng.bernoulli(params.flaky_share)) {
    host.flaky = true;
    host.live_percent = static_cast<std::uint8_t>(params.flaky_live_percent);
  } else if (host_rng.bernoulli(params.churny_share)) {
    host.live_percent = static_cast<std::uint8_t>(params.churny_live_percent);
  }
  if (host.runs(proto::Protocol::kSsh) &&
      host_rng.bernoulli(params.maxstartups_share)) {
    host.maxstartups_enabled = true;
    host.maxstartups =
        params.aggressive_maxstartups ? kAggressiveTriple : kDefaultTriple;
  }
  return host;
}

}  // namespace originscan::sim
