// Server-side protocol behaviour for simulated hosts. Each server is a
// small state machine fed client bytes and producing server bytes —
// the same byte streams a real ZGrab peer would see.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "proto/protocol.h"
#include "sim/host.h"
#include "sim/types.h"

namespace originscan::sim {

// The result of feeding bytes to (or opening) a server.
struct ServerAction {
  std::vector<std::uint8_t> bytes;  // bytes the server sends back
  bool close = false;               // server closes (FIN) after `bytes`
  bool reset = false;               // server resets the connection
};

class ProtocolServer {
 public:
  virtual ~ProtocolServer() = default;

  // Called once when the TCP connection is established; lets
  // server-speaks-first protocols (SSH) emit their banner.
  virtual ServerAction on_open() { return {}; }

  // Called with each chunk of client bytes.
  virtual ServerAction on_bytes(std::span<const std::uint8_t> data) = 0;
};

struct ServerOptions {
  // When set, the HTTP server serves this page title regardless of the
  // host's own content (used by the ServeBlockPage policy).
  std::string forced_page_title;
};

// Creates the server state machine a given host runs for a protocol.
// Returns nullptr when the host does not serve the protocol. The host's
// seed makes banners/certificates deterministic per host.
std::unique_ptr<ProtocolServer> make_server(const Host& host,
                                            proto::Protocol protocol,
                                            const ServerOptions& options = {});

// Banner helpers exposed for tests and the scenario builder.
std::string http_server_software(std::uint64_t host_seed);
std::string ssh_server_software(std::uint64_t host_seed);

}  // namespace originscan::sim
