#include "sim/path.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace originscan::sim {

PathLossModel::PathLossModel(const PathProfile& profile,
                             std::uint64_t stream_seed,
                             net::VirtualTime horizon)
    : profile_(profile), seed_(stream_seed) {
  if (profile_.bad_fraction <= 0.0 || profile_.mean_bad_duration_s <= 0.0) {
    return;  // path never enters Bad
  }
  net::Rng rng(stream_seed);
  const double mean_bad = profile_.mean_bad_duration_s;
  // Stationary fraction f = bad / (bad + good)  =>  good = bad * (1-f)/f.
  const double fraction = std::min(profile_.bad_fraction, 0.999);
  const double mean_good = mean_bad * (1.0 - fraction) / fraction;

  // Start the alternating renewal process in a random phase so trial
  // starts are not synchronized with Good-period starts.
  double t = -rng.exponential(1.0 / mean_good) * rng.uniform();
  const double horizon_s = horizon.seconds();
  while (t < horizon_s) {
    t += rng.exponential(1.0 / mean_good);
    if (t >= horizon_s) break;
    const double bad_end = t + rng.exponential(1.0 / mean_bad);
    bad_intervals_.push_back(
        {static_cast<std::int64_t>(t * 1e6),
         static_cast<std::int64_t>(std::min(bad_end, horizon_s) * 1e6)});
    t = bad_end;
  }
}

bool PathLossModel::in_bad_state(net::VirtualTime t) const {
  const std::int64_t us = t.micros();
  auto it = std::upper_bound(
      bad_intervals_.begin(), bad_intervals_.end(), us,
      [](std::int64_t v, const BadInterval& b) { return v < b.start_us; });
  if (it == bad_intervals_.begin()) return false;
  --it;
  return us >= it->start_us && us < it->end_us;
}

bool PathLossModel::drop(net::VirtualTime t, std::uint64_t packet_key) const {
  const double p = loss_probability(t);
  if (p <= 0.0) return false;
  const std::uint64_t h = net::mix_u64(seed_, packet_key, 0xD60Bu);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

double PathLossModel::loss_probability(net::VirtualTime t) const {
  return in_bad_state(t) ? profile_.bad_loss : profile_.good_loss;
}

PathLossModel::LossWindow PathLossModel::loss_window(net::VirtualTime t) const {
  const std::int64_t us = t.micros();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  auto it = std::upper_bound(
      bad_intervals_.begin(), bad_intervals_.end(), us,
      [](std::int64_t v, const BadInterval& b) { return v < b.start_us; });
  // `it` is the first Bad interval starting strictly after t; the one
  // before it (if any) either contains t or ended already.
  if (it != bad_intervals_.begin()) {
    const auto& prev = *std::prev(it);
    if (us >= prev.start_us && us < prev.end_us) {
      return {profile_.bad_loss, prev.start_us, prev.end_us};
    }
    // In the Good gap between prev and it.
    return {profile_.good_loss, prev.end_us,
            it != bad_intervals_.end() ? it->start_us : kMax};
  }
  // Before the first Bad interval (or no Bad intervals at all).
  return {profile_.good_loss, kMin,
          it != bad_intervals_.end() ? it->start_us : kMax};
}

net::VirtualTime PathLossModel::total_bad_time() const {
  std::int64_t total = 0;
  for (const auto& interval : bad_intervals_) {
    total += interval.end_us - interval.start_us;
  }
  return net::VirtualTime::from_micros(total);
}

void PathTable::set_as_profile(AsId as, const PathProfile& profile) {
  per_as_[as] = profile;
}

void PathTable::set_pair_override(OriginId origin, AsId as,
                                  const PathProfile& profile) {
  per_pair_[{origin, as}] = profile;
}

void PathTable::set_origin_multiplier(OriginId origin, double multiplier) {
  multipliers_[origin] = multiplier;
}

void PathTable::set_origin_good_loss_bump(OriginId origin, double bump) {
  good_loss_bumps_[origin] = bump;
}

PathProfile PathTable::profile(OriginId origin, AsId as) const {
  PathProfile result = default_;
  if (auto it = per_as_.find(as); it != per_as_.end()) result = it->second;
  bool pair_override = false;
  if (auto it = per_pair_.find({origin, as}); it != per_pair_.end()) {
    result = it->second;
    pair_override = true;
  }
  // Per-pair overrides describe the pair exactly; the origin multiplier
  // only scales the generic profiles.
  if (!pair_override) {
    if (auto it = multipliers_.find(origin); it != multipliers_.end()) {
      result.bad_fraction = std::min(0.9, result.bad_fraction * it->second);
      result.good_loss = std::min(0.5, result.good_loss * it->second);
    }
  }
  if (auto it = good_loss_bumps_.find(origin); it != good_loss_bumps_.end()) {
    result.good_loss = std::min(0.5, result.good_loss + it->second);
  }
  return result;
}

}  // namespace originscan::sim
