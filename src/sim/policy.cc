#include "sim/policy.h"

#include <algorithm>

#include "netbase/rng.h"

namespace originscan::sim {

PolicyEngine::PolicyEngine(const PolicyConfig* config,
                           const std::vector<OriginSpec>* origins,
                           PersistentState* persistent, int trial,
                           std::uint64_t trial_seed,
                           net::VirtualTime scan_duration)
    : config_(config),
      origins_(origins),
      persistent_(persistent),
      trial_(trial),
      trial_seed_(trial_seed),
      scan_duration_(scan_duration) {
  // Pre-insert the IDS entry for every rate-IDS AS so the outer map is
  // never structurally mutated while scans run concurrently (see the
  // PersistentState thread-safety contract).
  if (config_ != nullptr && persistent_ != nullptr) {
    for (const auto& [as, policies] : config_->all()) {
      if (policies.rate_ids) persistent_->ids.try_emplace(as);
    }
  }
}

bool PolicyEngine::rate_ids_applies(AsId as, proto::Protocol protocol) const {
  const AsPolicies* policies = config_->find(as);
  if (policies == nullptr || !policies->rate_ids) return false;
  const RateIdsRule& rule = *policies->rate_ids;
  return !rule.protocol || *rule.protocol == protocol;
}

bool PolicyEngine::host_selected(AsId as, net::Ipv4Addr dst, double fraction,
                                 std::uint64_t rule_tag) const {
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  // Host selection is stable across trials and origins: the same hosts
  // are behind the policy every time (it is the network's config, not a
  // coin flip per packet).
  const std::uint64_t h = net::mix_u64(as, dst.value(), rule_tag, 0x5E1Cu);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

PolicyEngine::L4Decision PolicyEngine::on_probe(OriginId origin,
                                                net::Ipv4Addr src_ip, AsId as,
                                                net::Ipv4Addr dst,
                                                proto::Protocol protocol,
                                                net::VirtualTime t) {
  return on_probe(config_->find(as), origin, src_ip, as, dst, protocol, t);
}

PolicyEngine::L4Decision PolicyEngine::on_probe(const AsPolicies* policies,
                                                OriginId origin,
                                                net::Ipv4Addr src_ip, AsId as,
                                                net::Ipv4Addr dst,
                                                proto::Protocol protocol,
                                                net::VirtualTime t) {
  (void)t;
  if (policies == nullptr) return L4Decision::kAllow;

  // Static blocks at L4.
  for (std::size_t i = 0; i < policies->blocks.size(); ++i) {
    const BlockRule& rule = policies->blocks[i];
    if (rule.mode != BlockMode::kL4Drop) continue;
    if (!mask_has(rule.origins, origin)) continue;
    if (rule.protocol && *rule.protocol != protocol) continue;
    if (trial_ < rule.start_trial) continue;
    if (!host_selected(as, dst, rule.host_fraction, i)) continue;
    return L4Decision::kDrop;
  }

  // Geo restriction: only allowed countries get in at all.
  if (policies->geo) {
    const CountryCode origin_country = (*origins_)[origin].country;
    const auto& allowed = policies->geo->allowed_countries;
    const bool permitted =
        std::find(allowed.begin(), allowed.end(), origin_country) !=
        allowed.end();
    if (!permitted &&
        host_selected(as, dst, policies->geo->host_fraction, 0x6E0u)) {
      return L4Decision::kDrop;
    }
  }

  // Rate IDS: count the probe, then check the block list. The inner
  // counters are shared across concurrent scans from *different* source
  // IPs (per-IP trajectories are order-independent); the sharded lock
  // only serializes the map accesses themselves.
  if (policies->rate_ids) {
    const RateIdsRule& rule = *policies->rate_ids;
    if (!rule.protocol || *rule.protocol == protocol) {
      std::scoped_lock lock(persistent_->ids_lock(as));
      auto& counters = persistent_->ids[as];
      if (auto it = counters.blocked_ips.find(src_ip.value());
          it != counters.blocked_ips.end()) {
        return L4Decision::kDrop;
      }
      const std::uint32_t count = ++counters.probe_counts[src_ip.value()];
      if (count > rule.probe_threshold) {
        counters.blocked_ips.emplace(src_ip.value(), trial_);
        return L4Decision::kDrop;
      }
    }
  }

  return L4Decision::kAllow;
}

PolicyEngine::L7Decision PolicyEngine::on_connection(
    OriginId origin, net::Ipv4Addr src_ip, AsId as, net::Ipv4Addr dst,
    proto::Protocol protocol, net::VirtualTime t) const {
  (void)src_ip;
  const AsPolicies* policies = config_->find(as);
  if (policies == nullptr) return L7Decision::kAllow;

  for (std::size_t i = 0; i < policies->blocks.size(); ++i) {
    const BlockRule& rule = policies->blocks[i];
    if (rule.mode == BlockMode::kL4Drop) continue;
    if (!mask_has(rule.origins, origin)) continue;
    if (rule.protocol && *rule.protocol != protocol) continue;
    if (trial_ < rule.start_trial) continue;
    if (!host_selected(as, dst, rule.host_fraction, i)) continue;
    switch (rule.mode) {
      case BlockMode::kL7Drop:
        return L7Decision::kDrop;
      case BlockMode::kRstAfterAccept:
        return L7Decision::kRstAfterAccept;
      case BlockMode::kServeBlockPage:
        return protocol == proto::Protocol::kHttp
                   ? L7Decision::kServeBlockPage
                   : L7Decision::kDrop;
      case BlockMode::kL4Drop:
        break;
    }
  }

  // Temporal RST (Alibaba archetype): active once detection has fired.
  if (auto detect = temporal_rst_time(as, origin, protocol);
      detect && t >= *detect) {
    return L7Decision::kRstAfterAccept;
  }

  return L7Decision::kAllow;
}

std::optional<net::VirtualTime> PolicyEngine::temporal_rst_time(
    AsId as, OriginId origin, proto::Protocol protocol) const {
  const AsPolicies* policies = config_->find(as);
  if (policies == nullptr || !policies->temporal_rst) return std::nullopt;
  const TemporalRstRule& rule = *policies->temporal_rst;
  if (rule.protocol != protocol) return std::nullopt;
  if (rule.single_ip_only && !(*origins_)[origin].single_ip()) {
    return std::nullopt;
  }
  // Non-deterministic detection: a fresh draw per (as, origin, trial).
  net::Rng rng(net::mix_u64(trial_seed_, as, origin, 0xA11BABAULL));
  const double fraction =
      rng.uniform(rule.min_detect_fraction, rule.max_detect_fraction);
  return net::VirtualTime::from_seconds(scan_duration_.seconds() * fraction);
}

}  // namespace originscan::sim
