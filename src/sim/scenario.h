// Construction of the "paper Internet": a scaled synthetic IPv4 universe
// whose AS archetypes, policies and path properties are wired to
// reproduce the mechanisms Wan et al. observed. The analysis layer never
// sees any of this — it works purely from scan results.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sim/world.h"

namespace originscan::sim {

struct ScenarioConfig {
  // Scanned addresses are [0, universe_size); must be a multiple of 256.
  std::uint32_t universe_size = 1u << 18;
  std::uint64_t seed = 0x05CA9;

  // Host population shape.
  double host_density = 0.35;     // share of allocated addresses hosting
  double http_share = 0.78;       // P(host runs HTTP)
  double https_share = 0.56;      // P(host runs HTTPS)
  double ssh_share = 0.27;        // P(host runs SSH)
  double middlebox_share = 0.02;  // SYN-ACK everywhere, no L7
  double churny_host_share = 0.16;
  int churny_live_percent = 82;
  // Marginal hosts: heavy trial churn plus origin-specific darkness.
  double flaky_host_share = 0.06;
  int flaky_live_percent = 55;
  double flaky_miss_probability = 0.28;

  // SSH daemon behaviour.
  double maxstartups_share = 0.30;  // of SSH hosts, normal networks

  // Procedural mode: the named scenario is built materialized inside
  // [0, procedural_override) exactly as a standalone world of that size
  // (same AS ids, same hosts, same goldens), and everything from the
  // override boundary up to universe_size is derived lazily from the
  // seed through a generic AS catalog — no per-address tables.
  bool procedural = false;
  // Size of the materialized override region. The default equals the
  // reference scale (2048 /24s), so the named networks keep their exact
  // paper_default state. Must be a multiple of 256.
  std::uint32_t procedural_override = 1u << 19;
  // Test-only: eagerly materialize the procedural region into the
  // ordinary Topology/HostTable tables and disable derivation. The
  // result is the procedural world's byte-identical twin; only sensible
  // for small universes (the equivalence test uses 2^20).
  bool materialize_procedural = false;

  static ScenarioConfig paper_default() { return {}; }

  // A small universe for unit/integration tests.
  static ScenarioConfig test_scale() {
    ScenarioConfig config;
    config.universe_size = 1u << 15;
    return config;
  }

  // A procedural universe of 2^bits addresses (bits in [20, 32]). At
  // bits == 32 the top /16 is reserved so the origin source blocks
  // still fit in 32 bits: the sweep covers 0xFFFF0000 addresses.
  static ScenarioConfig full_internet(int bits) {
    ScenarioConfig config;
    config.procedural = true;
    config.universe_size = bits >= 32 ? 0xFFFF0000u : (1u << bits);
    return config;
  }
};

// The seven main-study origins: AU, BR, DE, JP, US1, US64, CEN.
// Source IPs are placed just above the universe.
std::vector<OriginSpec> paper_origins(std::uint32_t universe_size);

// Main origins plus Carinet (scanned in one trial only, Section 2).
std::vector<OriginSpec> paper_origins_with_carinet(
    std::uint32_t universe_size);

// The September-2020 follow-up roster: AU, DE, JP, US1, CEN plus three
// Tier-1 providers (HE, NTT, TELIA) colocated in one Chicago data center.
std::vector<OriginSpec> colocated_origins(std::uint32_t universe_size);

// Builds the world for a given origin roster. Policies that name origins
// by code (e.g. "blocks Censys") resolve against this roster; codes not
// present are ignored, so the same scenario serves both rosters.
World build_world(const ScenarioConfig& config,
                  std::vector<OriginSpec> origins);

// Convenience: mask of the listed origin codes within a roster.
OriginMask mask_of(const std::vector<OriginSpec>& origins,
                   std::span<const std::string_view> codes);
OriginMask mask_of(const std::vector<OriginSpec>& origins,
                   std::initializer_list<std::string_view> codes);
OriginMask mask_all_except(const std::vector<OriginSpec>& origins,
                           std::initializer_list<std::string_view> codes);

}  // namespace originscan::sim
