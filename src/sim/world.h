// The immutable product of scenario construction: everything about the
// simulated Internet that does not change between trials.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/ssh.h"
#include "sim/host.h"
#include "sim/origin.h"
#include "sim/outage.h"
#include "sim/path.h"
#include "sim/policy.h"
#include "sim/procedural.h"
#include "sim/topology.h"

namespace originscan::sim {

struct MaxStartupsConfig {
  // Expected number of *background* unauthenticated connections open on a
  // MaxStartups host when a scanner arrives (Poisson mean).
  double background_load_mean = 6.0;
  // Probability that another synchronized origin's connection is still
  // open ("concurrent") when this origin's attempt lands.
  double concurrent_origin_probability = 0.85;
  // Per-retry decay of concurrency: retries happen after the synchronized
  // burst has passed, so each retry sees fewer open connections.
  double retry_load_decay = 0.55;
};

struct World {
  Topology topology;
  HostTable hosts;
  // Lazy seed-derived state for addresses above the override region;
  // disabled (and ignored) for plain materialized scenarios. Use the
  // as_of/country_of/host_at helpers below rather than the tables
  // directly so both kinds of world resolve identically.
  ProceduralWorld procedural;
  std::vector<OriginSpec> origins;
  PathTable paths;
  PolicyConfig policies;
  OutageConfig outages;
  MaxStartupsConfig maxstartups;

  // Probability that a flaky host ignores one origin for one trial.
  double flaky_miss_probability = 0.30;

  // Ablation: replace every Gilbert-Elliott process by uniform random
  // loss with the same stationary rate (the assumption behind ZMap's
  // original coverage estimate, which the paper refutes).
  bool uniform_random_loss = false;

  std::uint64_t seed = 0;
  // Scanned addresses are [0, universe_size); origin source IPs must lie
  // outside this range.
  std::uint32_t universe_size = 0;

  [[nodiscard]] OriginId origin_id(std::string_view code) const {
    for (std::size_t i = 0; i < origins.size(); ++i) {
      if (origins[i].code == code) return static_cast<OriginId>(i);
    }
    return ~OriginId{0};
  }

  // Whole-world lookups: the materialized tables below the procedural
  // boundary, derivation above it. These are the uncached slow paths
  // (connects, collectors, schedule building); the per-probe hot loop
  // goes through ProbeContext's per-lane block cache instead.
  [[nodiscard]] std::optional<AsId> as_of(net::Ipv4Addr addr) const {
    if (procedural.covers(addr)) return procedural.as_of(addr);
    return topology.as_of(addr);
  }

  [[nodiscard]] CountryCode country_of(net::Ipv4Addr addr) const {
    if (procedural.covers(addr)) {
      return procedural.block_facts(addr.value() >> 8).country;
    }
    return topology.country_of(addr);
  }

  [[nodiscard]] std::optional<Host> host_at(net::Ipv4Addr addr) const {
    if (procedural.covers(addr)) return procedural.host_at(addr);
    const Host* host = hosts.find(addr);
    if (host == nullptr) return std::nullopt;
    return *host;
  }
};

}  // namespace originscan::sim
