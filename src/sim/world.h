// The immutable product of scenario construction: everything about the
// simulated Internet that does not change between trials.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/ssh.h"
#include "sim/host.h"
#include "sim/origin.h"
#include "sim/outage.h"
#include "sim/path.h"
#include "sim/policy.h"
#include "sim/topology.h"

namespace originscan::sim {

struct MaxStartupsConfig {
  // Expected number of *background* unauthenticated connections open on a
  // MaxStartups host when a scanner arrives (Poisson mean).
  double background_load_mean = 6.0;
  // Probability that another synchronized origin's connection is still
  // open ("concurrent") when this origin's attempt lands.
  double concurrent_origin_probability = 0.85;
  // Per-retry decay of concurrency: retries happen after the synchronized
  // burst has passed, so each retry sees fewer open connections.
  double retry_load_decay = 0.55;
};

struct World {
  Topology topology;
  HostTable hosts;
  std::vector<OriginSpec> origins;
  PathTable paths;
  PolicyConfig policies;
  OutageConfig outages;
  MaxStartupsConfig maxstartups;

  // Probability that a flaky host ignores one origin for one trial.
  double flaky_miss_probability = 0.30;

  // Ablation: replace every Gilbert-Elliott process by uniform random
  // loss with the same stationary rate (the assumption behind ZMap's
  // original coverage estimate, which the paper refutes).
  bool uniform_random_loss = false;

  std::uint64_t seed = 0;
  // Scanned addresses are [0, universe_size); origin source IPs must lie
  // outside this range.
  std::uint32_t universe_size = 0;

  [[nodiscard]] OriginId origin_id(std::string_view code) const {
    for (std::size_t i = 0; i < origins.size(); ++i) {
      if (origins[i].code == code) return static_cast<OriginId>(i);
    }
    return ~OriginId{0};
  }
};

}  // namespace originscan::sim
