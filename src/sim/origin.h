// Scan-origin descriptions: where a vantage point is, which source
// addresses it scans from, and the reputation attributes that the
// simulated policies react to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "sim/country.h"
#include "sim/types.h"

namespace originscan::sim {

enum class OriginKind : std::uint8_t { kAcademic, kCommercial, kCloud };

struct OriginSpec {
  std::string code;          // short label, e.g. "AU", "US64", "CEN"
  std::string display_name;  // e.g. "Australia"
  CountryCode country;
  OriginKind kind = OriginKind::kAcademic;

  // Source addresses used round-robin across probes. Must lie outside the
  // scanned universe. One entry for every origin except US64's block.
  std::vector<net::Ipv4Addr> source_ips;

  // How heavily this origin's address space has scanned before; drives
  // the static-blocklist archetypes (Censys ~ 1.0, fresh IPs ~ 0.0).
  double scan_reputation = 0.0;

  // Multiplier on path loss (bad-state fraction); Australia > 1.
  double loss_multiplier = 1.0;

  // Origins in the same non-negative group are colocated (the Equinix
  // CHI4 follow-up): they share Good/Bad loss timelines per destination
  // AS because their traffic largely rides the same paths.
  int colocation_group = -1;

  [[nodiscard]] bool single_ip() const { return source_ips.size() == 1; }
};

// A bitmask over OriginId (experiments have <= 32 origins).
using OriginMask = std::uint32_t;

constexpr OriginMask origin_bit(OriginId id) { return OriginMask{1} << id; }
constexpr bool mask_has(OriginMask mask, OriginId id) {
  return (mask & origin_bit(id)) != 0;
}
inline constexpr OriginMask kAllOrigins = ~OriginMask{0};

}  // namespace originscan::sim
