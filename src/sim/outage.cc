#include "sim/outage.h"

#include <algorithm>

#include "netbase/rng.h"

namespace originscan::sim {

OutageSchedule::OutageSchedule(const OutageConfig& config, OriginId origin,
                               std::size_t as_count,
                               std::uint64_t stream_seed,
                               net::VirtualTime horizon)
    : per_as_(as_count), wide_event_members_(as_count, false) {
  const double horizon_s = horizon.seconds();
  double rate = config.pair_rate;
  if (origin < config.origin_rate_multiplier.size()) {
    rate *= config.origin_rate_multiplier[origin];
  }

  for (std::size_t as = 0; as < as_count; ++as) {
    net::Rng rng(net::mix_u64(stream_seed, as, 0x07A6EULL));
    const std::uint32_t count = rng.poisson(rate);
    for (std::uint32_t i = 0; i < count; ++i) {
      const double duration = rng.uniform(config.pair_min_duration_s,
                                          config.pair_max_duration_s);
      const double start = rng.uniform(0.0, horizon_s);
      per_as_[as].push_back(
          {static_cast<std::int64_t>(start * 1e6),
           static_cast<std::int64_t>(std::min(start + duration, horizon_s) *
                                     1e6)});
    }
    std::sort(per_as_[as].begin(), per_as_[as].end(),
              [](const Window& a, const Window& b) {
                return a.start_us < b.start_us;
              });
  }

  net::Rng wide_rng(net::mix_u64(stream_seed, 0x3157, 0x91DEULL));
  if (wide_rng.bernoulli(config.wide_event_probability)) {
    const double start =
        wide_rng.uniform(0.0, std::max(1.0, horizon_s -
                                                config.wide_event_duration_s));
    wide_event_ = {static_cast<std::int64_t>(start * 1e6),
                   static_cast<std::int64_t>(
                       (start + config.wide_event_duration_s) * 1e6)};
    for (std::size_t as = 0; as < as_count; ++as) {
      wide_event_members_[as] =
          wide_rng.bernoulli(config.wide_event_as_fraction);
    }
  }
}

bool OutageSchedule::in_outage(AsId as, net::VirtualTime t) const {
  const std::int64_t us = t.micros();
  if (wide_event_.end_us > 0 && as < wide_event_members_.size() &&
      wide_event_members_[as] && us >= wide_event_.start_us &&
      us < wide_event_.end_us) {
    return true;
  }
  if (as >= per_as_.size()) return false;
  for (const auto& window : per_as_[as]) {
    if (us < window.start_us) break;
    if (us < window.end_us) return true;
  }
  return false;
}

const std::vector<OutageSchedule::Window>& OutageSchedule::pair_windows(
    AsId as) const {
  return per_as_[as];
}

}  // namespace originscan::sim
