#include "sim/topology.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace originscan::sim {

AsId Topology::add_as(std::string name, CountryCode country) {
  assert(!frozen_);
  AsInfo info;
  info.id = static_cast<AsId>(ases_.size());
  info.name = std::move(name);
  info.country = country;
  ases_.push_back(std::move(info));
  return ases_.back().id;
}

void Topology::add_prefix(AsId as, net::Prefix prefix,
                          std::optional<CountryCode> geo) {
  assert(!frozen_);
  assert(as < ases_.size());
  ases_[as].prefixes.push_back(
      PrefixEntry{prefix, geo.value_or(ases_[as].country)});
}

void Topology::freeze() {
  assert(!frozen_);
  index_.clear();
  for (const auto& as : ases_) {
    for (const auto& entry : as.prefixes) {
      index_.push_back(Entry{entry.prefix.first().value(),
                             entry.prefix.last().value(), as.id,
                             entry.country});
    }
  }
  std::sort(index_.begin(), index_.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < index_.size(); ++i) {
    if (index_[i].first <= index_[i - 1].last) {
      std::fprintf(stderr,
                   "Topology::freeze: overlapping prefixes between AS %u "
                   "and AS %u\n",
                   index_[i - 1].as, index_[i].as);
      std::abort();
    }
  }
  direct_.clear();
  if (!index_.empty() && index_.size() < 0xFFFFu &&
      static_cast<std::uint64_t>(index_.back().last) + 1 <= kDirectMapLimit) {
    direct_.assign(static_cast<std::size_t>(index_.back().last) + 1, 0);
    for (std::size_t i = 0; i < index_.size(); ++i) {
      for (std::uint64_t a = index_[i].first; a <= index_[i].last; ++a) {
        direct_[static_cast<std::size_t>(a)] =
            static_cast<std::uint16_t>(i + 1);
      }
    }
  }
  frozen_ = true;
}

const Topology::Entry* Topology::lookup(net::Ipv4Addr addr) const {
  assert(frozen_);
  const std::uint32_t value = addr.value();
  if (!direct_.empty()) {
    if (value >= direct_.size()) return nullptr;
    const std::uint16_t slot = direct_[value];
    return slot == 0 ? nullptr : &index_[slot - 1];
  }
  auto it = std::upper_bound(
      index_.begin(), index_.end(), value,
      [](std::uint32_t v, const Entry& e) { return v < e.first; });
  if (it == index_.begin()) return nullptr;
  --it;
  if (value >= it->first && value <= it->last) return &*it;
  return nullptr;
}

std::optional<AsId> Topology::as_of(net::Ipv4Addr addr) const {
  const Entry* entry = lookup(addr);
  if (entry == nullptr) return std::nullopt;
  return entry->as;
}

CountryCode Topology::country_of(net::Ipv4Addr addr) const {
  const Entry* entry = lookup(addr);
  return entry == nullptr ? CountryCode() : entry->country;
}

AsId Topology::find_as(std::string_view name) const {
  for (const auto& as : ases_) {
    if (as.name == name) return as.id;
  }
  return kNoAs;
}

}  // namespace originscan::sim
