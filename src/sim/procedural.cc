#include "sim/procedural.h"

#include <algorithm>
#include <cassert>

#include "netbase/rng.h"

namespace originscan::sim {

void ProceduralWorld::configure(std::uint64_t seed, std::uint32_t first_addr,
                                std::uint32_t universe_size) {
  assert(first_addr % 256 == 0);
  assert(universe_size % 256 == 0);
  assert(first_addr <= universe_size);
  seed_ = seed;
  first_addr_ = first_addr;
  universe_size_ = universe_size;
  enabled_ = true;
}

void ProceduralWorld::freeze() {
  assert(!entries_.empty());
  cumulative_.clear();
  cumulative_.reserve(entries_.size());
  std::uint64_t total = 0;
  for (const ProceduralEntry& entry : entries_) {
    total += entry.weight;
    cumulative_.push_back(total);
  }
  total_weight_ = total;
  frozen_ = true;
}

BlockFacts ProceduralWorld::block_facts(std::uint32_t block) const {
  assert(frozen_);
  BlockFacts facts;
  // Unrouted coin first: a miss costs one mix and nothing else, which is
  // what the hot path pays for ~a quarter of the full address space.
  if (net::mix_u64(seed_, block, 0xB10C5u) % 100 < unrouted_percent_) {
    return facts;  // as == kNoAs
  }
  const std::uint64_t draw =
      net::mix_u64(seed_, block, 0xCA7Au) % total_weight_;
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), draw);
  const auto index =
      static_cast<std::uint32_t>(it - cumulative_.begin());
  const ProceduralEntry& entry = entries_[index];
  facts.as = entry.as;
  facts.country = entry.country;
  facts.catalog = index;
  return facts;
}

std::optional<Host> ProceduralWorld::derive_host(
    net::Ipv4Addr addr, const BlockFacts& facts) const {
  assert(facts.as != kNoAs);
  return generate_host(seed_, addr.value(), facts.as,
                       entries_[facts.catalog].params);
}

std::optional<AsId> ProceduralWorld::as_of(net::Ipv4Addr addr) const {
  const BlockFacts facts = block_facts(addr.value() >> 8);
  if (facts.as == kNoAs) return std::nullopt;
  return facts.as;
}

std::optional<Host> ProceduralWorld::host_at(net::Ipv4Addr addr) const {
  const BlockFacts facts = block_facts(addr.value() >> 8);
  if (facts.as == kNoAs) return std::nullopt;
  return derive_host(addr, facts);
}

}  // namespace originscan::sim
