// Short-lived localized outages (Section 5.3): windows during which one
// origin loses all connectivity to one destination AS. Two kinds:
//   * pair outages  — independent Poisson events per (origin, AS) scan,
//   * wide events   — rare origin-level incidents that simultaneously
//     affect a large random subset of ASes (the paper's Brazil HTTPS
//     trial-3 hour that touched 39% of scanned ASes).
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/vtime.h"
#include "sim/types.h"

namespace originscan::sim {

struct OutageConfig {
  // Expected pair outages per (origin, AS) per scan.
  double pair_rate = 0.02;
  double pair_min_duration_s = 600;   // 10 min
  double pair_max_duration_s = 3600;  // 1 h

  // Probability that an origin suffers one wide event in a scan.
  double wide_event_probability = 0.04;
  double wide_event_duration_s = 3000;
  double wide_event_as_fraction = 0.35;  // fraction of ASes affected

  // Per-origin multiplier on pair_rate (Australia is burst-prone).
  // Indexed by OriginId; missing entries default to 1.0.
  std::vector<double> origin_rate_multiplier;
};

class OutageSchedule {
 public:
  // Builds the schedule for one scan (one origin x protocol x trial),
  // deterministically from the stream seed.
  OutageSchedule(const OutageConfig& config, OriginId origin,
                 std::size_t as_count, std::uint64_t stream_seed,
                 net::VirtualTime horizon);

  [[nodiscard]] bool in_outage(AsId as, net::VirtualTime t) const;

  struct Window {
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
  };

  // True if this AS can ever be in outage during the scan — lets batch
  // consumers (ProbeContext's classifier ladder) skip the per-probe
  // window check entirely for the typical quiet AS.
  [[nodiscard]] bool ever_in_outage(AsId as) const {
    if (wide_event_.end_us > 0 && as < wide_event_members_.size() &&
        wide_event_members_[as]) {
      return true;
    }
    return as < per_as_.size() && !per_as_[as].empty();
  }

  // For tests/diagnostics.
  [[nodiscard]] const std::vector<Window>& pair_windows(AsId as) const;
  [[nodiscard]] bool has_wide_event() const { return wide_event_.end_us > 0; }
  [[nodiscard]] Window wide_event() const { return wide_event_; }

 private:
  std::vector<std::vector<Window>> per_as_;  // indexed by AsId
  Window wide_event_{};
  std::vector<bool> wide_event_members_;  // ASes hit by the wide event
};

}  // namespace originscan::sim
