// Lazy, seed-derived world state for full-IPv4-scale scans.
//
// The materialized Topology/HostTable pair stores every prefix and host
// explicitly, which caps the universe near 2^25 addresses. This layer
// removes the cap: above a hand-authored override region (where the
// paper's named networks — DXTL, Gateway Inc, Cloudflare anycast, and
// every other scenario AS — keep their exact materialized state), AS
// membership, geolocation, and the entire host population are derived
// on demand from mix(seed, block/addr). Nothing per-address is ever
// stored, so a 4.3B-address sweep runs in O(catalog) memory.
//
// Determinism contract (DESIGN.md §10): every derivation is a pure
// function of (world seed, address). Two lookups of the same address —
// from any thread, any lane, any --jobs value, cached or not — return
// identical facts, so procedural state commutes with parallel execution
// exactly like the materialized tables do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"
#include "sim/country.h"
#include "sim/host.h"
#include "sim/hostgen.h"
#include "sim/types.h"

namespace originscan::sim {

// The derived facts of one /24 block: which catalog AS announces it (or
// kNoAs for unrouted space) and where it geolocates. Facts are per-/24
// because real announcements are at least that coarse — and because one
// derivation then serves 256 consecutive addresses (the block cache in
// ProbeContext).
struct BlockFacts {
  AsId as = kNoAs;  // kNoAs: unrouted block (probes die before routing)
  CountryCode country{};
  std::uint32_t catalog = 0;  // index into ProceduralWorld::entries()
};

// One procedural AS archetype: a real AsId registered in the Topology
// (so policies, path profiles, and outage schedules attach normally),
// plus the host-generation parameters its blocks use and its share of
// the procedural address space.
struct ProceduralEntry {
  AsId as = kNoAs;
  CountryCode country{};
  HostGenParams params;
  std::uint32_t weight = 1;  // relative share of routed procedural blocks
};

class ProceduralWorld {
 public:
  // Activates procedural derivation for addresses in
  // [first_addr, universe_size); the override region [0, first_addr)
  // stays on the materialized tables. `first_addr` must be /24-aligned.
  void configure(std::uint64_t seed, std::uint32_t first_addr,
                 std::uint32_t universe_size);

  void add_entry(ProceduralEntry entry) { entries_.push_back(entry); }

  // Builds the cumulative-weight index; call once after the last
  // add_entry. Aborts if no entries were registered.
  void freeze();

  // Turns derivation back off (the materialized-twin construction path:
  // the catalog is consulted once to materialize prefixes and hosts,
  // after which the world behaves as a plain materialized one).
  void disable() { enabled_ = false; }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint32_t first_addr() const { return first_addr_; }
  [[nodiscard]] const std::vector<ProceduralEntry>& entries() const {
    return entries_;
  }

  [[nodiscard]] bool covers(net::Ipv4Addr addr) const {
    return enabled_ && addr.value() >= first_addr_ &&
           addr.value() < universe_size_;
  }

  // Derives the facts of /24 block `block` (= addr >> 8). Pure in
  // (seed, block); O(log entries).
  [[nodiscard]] BlockFacts block_facts(std::uint32_t block) const;

  // Derives the host behind `addr` given its block's facts (which must
  // be routed). Pure in (seed, addr); nullopt when the address is empty.
  [[nodiscard]] std::optional<Host> derive_host(net::Ipv4Addr addr,
                                                const BlockFacts& facts) const;

  // Uncached whole lookups for the non-hot paths (connect, collectors).
  [[nodiscard]] std::optional<AsId> as_of(net::Ipv4Addr addr) const;
  [[nodiscard]] std::optional<Host> host_at(net::Ipv4Addr addr) const;

 private:
  bool enabled_ = false;
  bool frozen_ = false;
  std::uint64_t seed_ = 0;
  std::uint32_t first_addr_ = 0;
  std::uint32_t universe_size_ = 0;
  // Share of procedural /24s with no announcement at all (the unrouted
  // space every full-IPv4 sweep wastes probes on).
  std::uint32_t unrouted_percent_ = 24;
  std::vector<ProceduralEntry> entries_;
  std::vector<std::uint64_t> cumulative_;  // inclusive prefix sums of weight
  std::uint64_t total_weight_ = 0;
};

}  // namespace originscan::sim
