// Two-letter country codes packed into a 16-bit value type. The paper's
// geographic analyses (Table 2/5, Fig 6/7/16) only need a consistent
// country assignment per network, which the scenario builder provides in
// place of MaxMind GeoIP.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace originscan::sim {

class CountryCode {
 public:
  constexpr CountryCode() = default;
  constexpr explicit CountryCode(std::uint16_t packed) : packed_(packed) {}
  constexpr CountryCode(char a, char b)
      : packed_(static_cast<std::uint16_t>(
            (static_cast<std::uint8_t>(a) << 8) |
            static_cast<std::uint8_t>(b))) {}

  static constexpr CountryCode from(std::string_view code) {
    return code.size() == 2 ? CountryCode(code[0], code[1]) : CountryCode();
  }

  [[nodiscard]] constexpr std::uint16_t packed() const { return packed_; }
  [[nodiscard]] constexpr bool valid() const { return packed_ != 0; }

  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "??";
    return {static_cast<char>(packed_ >> 8),
            static_cast<char>(packed_ & 0xFF)};
  }

  friend constexpr bool operator==(CountryCode, CountryCode) = default;
  friend constexpr auto operator<=>(CountryCode, CountryCode) = default;

 private:
  std::uint16_t packed_ = 0;
};

// Codes referenced by the paper's tables, as named constants so scenario
// and analysis code never spells raw strings.
namespace country {
inline constexpr CountryCode kUS('U', 'S');
inline constexpr CountryCode kCN('C', 'N');
inline constexpr CountryCode kHK('H', 'K');
inline constexpr CountryCode kRU('R', 'U');
inline constexpr CountryCode kDE('D', 'E');
inline constexpr CountryCode kJP('J', 'P');
inline constexpr CountryCode kAU('A', 'U');
inline constexpr CountryCode kBR('B', 'R');
inline constexpr CountryCode kIT('I', 'T');
inline constexpr CountryCode kGB('G', 'B');
inline constexpr CountryCode kZA('Z', 'A');
inline constexpr CountryCode kAR('A', 'R');
inline constexpr CountryCode kAT('A', 'T');
inline constexpr CountryCode kVE('V', 'E');
inline constexpr CountryCode kBD('B', 'D');
inline constexpr CountryCode kEC('E', 'C');
inline constexpr CountryCode kAM('A', 'M');
inline constexpr CountryCode kEE('E', 'E');
inline constexpr CountryCode kAL('A', 'L');
inline constexpr CountryCode kBF('B', 'F');
inline constexpr CountryCode kLY('L', 'Y');
inline constexpr CountryCode kMN('M', 'N');
inline constexpr CountryCode kMW('M', 'W');
inline constexpr CountryCode kSD('S', 'D');
inline constexpr CountryCode kKZ('K', 'Z');
inline constexpr CountryCode kUA('U', 'A');
inline constexpr CountryCode kRO('R', 'O');
inline constexpr CountryCode kKR('K', 'R');
inline constexpr CountryCode kNL('N', 'L');
inline constexpr CountryCode kFR('F', 'R');
inline constexpr CountryCode kES('E', 'S');
inline constexpr CountryCode kPL('P', 'L');
inline constexpr CountryCode kIN('I', 'N');
inline constexpr CountryCode kCA('C', 'A');
inline constexpr CountryCode kSE('S', 'E');
inline constexpr CountryCode kSG('S', 'G');
inline constexpr CountryCode kTW('T', 'W');
inline constexpr CountryCode kVN('V', 'N');
inline constexpr CountryCode kID('I', 'D');
inline constexpr CountryCode kTR('T', 'R');
inline constexpr CountryCode kMX('M', 'X');
inline constexpr CountryCode kCO('C', 'O');
inline constexpr CountryCode kCL('C', 'L');
inline constexpr CountryCode kEG('E', 'G');
inline constexpr CountryCode kNG('N', 'G');
inline constexpr CountryCode kTH('T', 'H');
inline constexpr CountryCode kCZ('C', 'Z');
inline constexpr CountryCode kCH('C', 'H');
inline constexpr CountryCode kUY('U', 'Y');
inline constexpr CountryCode kPE('P', 'E');
}  // namespace country

}  // namespace originscan::sim
