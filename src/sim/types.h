// Shared identifiers and outcome enums for the simulation and scanner.
#pragma once

#include <cstdint>
#include <string_view>

#include "proto/protocol.h"

namespace originscan::sim {

using AsId = std::uint32_t;
inline constexpr AsId kNoAs = ~AsId{0};

// Shared cap for the direct-mapped address tables in Topology and
// HostTable: a direct map is only built for address spans up to 2^25
// addresses (64 MiB of uint16 topology slots, 128 MiB of uint32 host
// slots). Larger spans fall back to binary search — or, at full-IPv4
// scale, to procedural derivation (see procedural.h).
inline constexpr std::uint64_t kDirectMapLimit = 1ull << 25;

// Index into the experiment's origin list.
using OriginId = std::uint32_t;

// What came back (or didn't) for one SYN probe.
enum class SynOutcome : std::uint8_t {
  kNoResponse = 0,  // dropped en route, host absent, or host firewalled
  kSynAck = 1,
  kRst = 2,
};

// The fate of one application-layer handshake attempt.
enum class L7Outcome : std::uint8_t {
  kNotAttempted = 0,
  kCompleted,          // full application handshake (the study's success)
  kConnectTimeout,     // TCP connect never completed
  kResetAfterAccept,   // RST immediately after the TCP handshake
  kClosedBeforeData,   // FIN before the server said anything (MaxStartups)
  kClosedMidHandshake, // connection closed partway through L7
  kProtocolError,      // response did not parse as the protocol
  kReadTimeout,        // connected, then silence
};

constexpr std::string_view to_string(L7Outcome outcome) {
  switch (outcome) {
    case L7Outcome::kNotAttempted:
      return "not-attempted";
    case L7Outcome::kCompleted:
      return "completed";
    case L7Outcome::kConnectTimeout:
      return "connect-timeout";
    case L7Outcome::kResetAfterAccept:
      return "reset-after-accept";
    case L7Outcome::kClosedBeforeData:
      return "closed-before-data";
    case L7Outcome::kClosedMidHandshake:
      return "closed-mid-handshake";
    case L7Outcome::kProtocolError:
      return "protocol-error";
    case L7Outcome::kReadTimeout:
      return "read-timeout";
  }
  return "?";
}

// True when the outcome is an *explicit* close (RST/FIN) rather than a
// silent drop — the distinction Section 6 draws between SSH and HTTP(S).
constexpr bool is_explicit_close(L7Outcome outcome) {
  return outcome == L7Outcome::kResetAfterAccept ||
         outcome == L7Outcome::kClosedBeforeData ||
         outcome == L7Outcome::kClosedMidHandshake;
}

}  // namespace originscan::sim
