// The routed topology: autonomous systems, their prefixes, and the
// address -> AS / address -> country mappings (the stand-ins for the
// routing-table snapshot and the MaxMind GeoIP database the paper uses).
//
// Country is tracked per prefix, not only per AS: several of the paper's
// key networks are registered in one country but announce space that
// geolocates elsewhere (DXTL's Bangladesh/South-Africa space, Gateway
// Inc.'s Japan-registered US-geolocating hosts, Cloudflare anycast).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "sim/country.h"
#include "sim/types.h"

namespace originscan::sim {

struct PrefixEntry {
  net::Prefix prefix;
  CountryCode country;  // geolocation of this prefix
};

struct AsInfo {
  AsId id = kNoAs;
  std::string name;
  CountryCode country;  // registration country of the AS
  std::vector<PrefixEntry> prefixes;

  [[nodiscard]] std::uint64_t address_count() const {
    std::uint64_t total = 0;
    for (const auto& entry : prefixes) total += entry.prefix.size();
    return total;
  }
};

class Topology {
 public:
  // Registers a new AS and returns its id. Attach prefixes with
  // add_prefix, then call freeze() once all prefixes are in.
  AsId add_as(std::string name, CountryCode country);

  // Adds a prefix; `geo` defaults to the AS registration country.
  void add_prefix(AsId as, net::Prefix prefix,
                  std::optional<CountryCode> geo = std::nullopt);

  // Builds the address-lookup index. Prefixes must be disjoint across
  // ASes; freeze() verifies this and aborts on overlap (a scenario bug).
  void freeze();

  [[nodiscard]] std::optional<AsId> as_of(net::Ipv4Addr addr) const;
  [[nodiscard]] CountryCode country_of(net::Ipv4Addr addr) const;
  [[nodiscard]] const AsInfo& as_info(AsId id) const { return ases_[id]; }
  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  [[nodiscard]] const std::vector<AsInfo>& ases() const { return ases_; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  // Finds an AS by (unique) name; kNoAs when absent.
  [[nodiscard]] AsId find_as(std::string_view name) const;

 private:
  struct Entry {
    std::uint32_t first = 0;
    std::uint32_t last = 0;  // inclusive
    AsId as = kNoAs;
    CountryCode country;
  };

  [[nodiscard]] const Entry* lookup(net::Ipv4Addr addr) const;

  std::vector<AsInfo> ases_;
  std::vector<Entry> index_;  // sorted by first, disjoint
  // addr -> index into index_ plus one (0 = unrouted), built by freeze()
  // when the routed span fits sim::kDirectMapLimit (types.h). Scan
  // universes are dense
  // and start at 0, so the common case is one O(1) load per lookup
  // instead of a log2(prefixes) pointer chase per probe.
  std::vector<std::uint16_t> direct_;
  bool frozen_ = false;
};

}  // namespace originscan::sim
