#include "sim/server.h"

#include <array>

#include "netbase/rng.h"
#include "proto/http.h"
#include "proto/ssh.h"
#include "proto/tls.h"

namespace originscan::sim {
namespace {

std::vector<std::uint8_t> to_bytes(const std::string& text) {
  return {text.begin(), text.end()};
}

// ---------------------------------------------------------------- HTTP --

class HttpServer final : public ProtocolServer {
 public:
  HttpServer(const Host& host, std::string forced_title)
      : host_(host), forced_title_(std::move(forced_title)) {}

  ServerAction on_bytes(std::span<const std::uint8_t> data) override {
    buffer_.append(reinterpret_cast<const char*>(data.data()), data.size());
    if (buffer_.find("\r\n\r\n") == std::string::npos) return {};

    auto request = proto::HttpRequest::parse(buffer_);
    ServerAction action;
    action.close = true;
    if (!request) {
      proto::HttpResponse bad;
      bad.status_code = 400;
      bad.reason = "Bad Request";
      action.bytes = to_bytes(bad.serialize());
      return action;
    }
    proto::HttpResponse response;
    response.server = http_server_software(host_.seed);
    response.title = forced_title_.empty()
                         ? "host-" + host_.addr.to_string()
                         : forced_title_;
    // A small share of real servers answer GET / with a redirect or an
    // error page; either still counts as a completed L7 handshake.
    const std::uint64_t h = net::mix_u64(host_.seed, 0x477Eu);
    if (h % 100 < 8) {
      response.status_code = 301;
      response.reason = "Moved Permanently";
      response.extra_headers["location"] = "https://" +
                                           host_.addr.to_string() + "/";
    } else if (h % 100 < 12) {
      response.status_code = 403;
      response.reason = "Forbidden";
    }
    action.bytes = to_bytes(response.serialize());
    return action;
  }

 private:
  Host host_;  // by value: procedural hosts have no stable table row
  std::string forced_title_;
  std::string buffer_;
};

// ----------------------------------------------------------------- TLS --

class TlsServer final : public ProtocolServer {
 public:
  explicit TlsServer(const Host& host) : host_(host) {}

  ServerAction on_bytes(std::span<const std::uint8_t> data) override {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    std::size_t consumed = 0;
    auto record = proto::TlsRecord::parse(buffer_, consumed);
    if (!record) return {};  // need more bytes
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));

    ServerAction action;
    if (record->content_type != proto::TlsContentType::kHandshake) {
      return fatal_alert(proto::TlsAlertDescription::kUnexpectedMessage);
    }
    auto messages = proto::split_handshakes(record->fragment);
    if (!messages || messages->empty() ||
        messages->front().type != proto::TlsHandshakeType::kClientHello) {
      return fatal_alert(proto::TlsAlertDescription::kUnexpectedMessage);
    }
    auto hello = proto::ClientHello::parse(messages->front().body);
    if (!hello) {
      return fatal_alert(proto::TlsAlertDescription::kUnexpectedMessage);
    }

    // Pick the first offered suite we "support" (all ECDHE-RSA/GCM ones).
    std::uint16_t chosen = 0;
    for (std::uint16_t suite : hello->cipher_suites) {
      for (std::uint16_t known : proto::chrome_cipher_suites()) {
        if (suite == known) {
          chosen = suite;
          break;
        }
      }
      if (chosen != 0) break;
    }
    if (chosen == 0) {
      return fatal_alert(proto::TlsAlertDescription::kHandshakeFailure);
    }

    proto::ServerHello server_hello;
    server_hello.cipher_suite = chosen;
    net::Rng rng(net::mix_u64(host_.seed, 0x715u));
    for (auto& byte : server_hello.random) {
      byte = static_cast<std::uint8_t>(rng());
    }

    proto::Certificate certificate;
    certificate.chain.push_back(synthetic_der(rng));

    auto out = proto::wrap_handshake(proto::TlsHandshakeType::kServerHello,
                                     server_hello.serialize());
    auto cert_record = proto::wrap_handshake(
        proto::TlsHandshakeType::kCertificate, certificate.serialize());
    out.insert(out.end(), cert_record.begin(), cert_record.end());
    auto done_record = proto::wrap_handshake(
        proto::TlsHandshakeType::kServerHelloDone, {});
    out.insert(out.end(), done_record.begin(), done_record.end());

    action.bytes = std::move(out);
    return action;
  }

 private:
  static std::vector<std::uint8_t> synthetic_der(net::Rng& rng) {
    // An opaque stand-in certificate: DER SEQUENCE header + random body.
    std::vector<std::uint8_t> der = {0x30, 0x82, 0x00, 0x40};
    for (int i = 0; i < 0x40; ++i) {
      der.push_back(static_cast<std::uint8_t>(rng()));
    }
    return der;
  }

  ServerAction fatal_alert(proto::TlsAlertDescription description) {
    proto::TlsAlert alert;
    alert.description = description;
    proto::TlsRecord record;
    record.content_type = proto::TlsContentType::kAlert;
    record.fragment = alert.serialize();
    ServerAction action;
    action.bytes = record.serialize();
    action.close = true;
    return action;
  }

  Host host_;  // by value: procedural hosts have no stable table row
  std::vector<std::uint8_t> buffer_;
};

// ----------------------------------------------------------------- SSH --

class SshServer final : public ProtocolServer {
 public:
  explicit SshServer(const Host& host) : host_(host) {}

  ServerAction on_open() override {
    // SSH servers speak first (RFC 4253 §4.2).
    proto::SshIdentification id;
    id.software_version = ssh_server_software(host_.seed);
    ServerAction action;
    action.bytes = to_bytes(id.serialize());
    return action;
  }

  ServerAction on_bytes(std::span<const std::uint8_t> data) override {
    buffer_.append(reinterpret_cast<const char*>(data.data()), data.size());
    ServerAction action;
    if (!client_id_seen_) {
      const auto newline = buffer_.find('\n');
      if (newline == std::string::npos) return {};
      auto id = proto::SshIdentification::parse(
          std::string_view(buffer_).substr(0, newline + 1));
      buffer_.erase(0, newline + 1);
      if (!id) {
        action.close = true;  // protocol mismatch: drop the connection
        return action;
      }
      client_id_seen_ = true;
      // Follow the version exchange with our KEXINIT, as real servers do.
      proto::SshKexInit kex;
      net::Rng rng(net::mix_u64(host_.seed, 0x55Bu));
      for (auto& byte : kex.cookie) byte = static_cast<std::uint8_t>(rng());
      kex.kex_algorithms = proto::default_kex_algorithms();
      kex.host_key_algorithms = proto::default_host_key_algorithms();
      proto::SshPacket packet;
      packet.payload = kex.serialize();
      action.bytes = packet.serialize(net::mix_u64(host_.seed, 0x9ADu));
      return action;
    }
    return action;  // study terminates before key exchange
  }

 private:
  Host host_;  // by value: procedural hosts have no stable table row
  std::string buffer_;
  bool client_id_seen_ = false;
};

}  // namespace

std::string http_server_software(std::uint64_t host_seed) {
  static constexpr std::array<const char*, 5> kServers = {
      "nginx/1.14.0", "Apache/2.4.29", "Microsoft-IIS/10.0", "lighttpd/1.4.45",
      "nginx/1.16.1"};
  return kServers[net::mix_u64(host_seed, 0x5E7Fu) % kServers.size()];
}

std::string ssh_server_software(std::uint64_t host_seed) {
  static constexpr std::array<const char*, 5> kServers = {
      "OpenSSH_7.4", "OpenSSH_7.6p1", "OpenSSH_8.0", "dropbear_2019.78",
      "OpenSSH_6.6.1"};
  return kServers[net::mix_u64(host_seed, 0x55DFu) % kServers.size()];
}

std::unique_ptr<ProtocolServer> make_server(const Host& host,
                                            proto::Protocol protocol,
                                            const ServerOptions& options) {
  if (!host.runs(protocol)) return nullptr;
  switch (protocol) {
    case proto::Protocol::kHttp:
      return std::make_unique<HttpServer>(host, options.forced_page_title);
    case proto::Protocol::kHttps:
      return std::make_unique<TlsServer>(host);
    case proto::Protocol::kSsh:
      return std::make_unique<SshServer>(host);
  }
  return nullptr;
}

}  // namespace originscan::sim
