// The simulated Internet, as seen from a scan origin: inject a SYN probe
// and (maybe) get response bytes back; open a TCP connection and drive an
// application-layer exchange against the destination host's server state
// machine, moderated by path loss, outages, and network policies.
//
// One Internet instance models one trial. Different protocols share the
// instance (host liveness is per-trial), but loss timelines and outage
// schedules are drawn per (origin, protocol) because the real scans were
// separate network events. Cross-trial policy state (tripped IDS blocks)
// lives in PersistentState, owned by the caller.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "faultinject/faultinject.h"
#include "netbase/headers.h"
#include "netbase/vtime.h"
#include "proto/protocol.h"
#include "sim/policy.h"
#include "sim/server.h"
#include "sim/world.h"

namespace originscan::sim {

struct TrialContext {
  int trial = 0;  // 0-based
  std::uint64_t experiment_seed = 0;
  // Origins scanning in lockstep (same ZMap seed, same start time); this
  // drives the MaxStartups concurrency model.
  int simultaneous_origins = 1;
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
};

// One established TCP connection from a scanner to a host. The ZGrab
// engine reads/writes bytes; the connection reports how the peer ended it.
class Connection {
 public:
  // Drains bytes the server has sent since the last read.
  std::vector<std::uint8_t> read();

  // Feeds client bytes to the server. No-op once the peer closed/reset.
  void send(std::span<const std::uint8_t> data);

  // Peer sent FIN (possibly after data still waiting in read()).
  [[nodiscard]] bool peer_closed() const { return peer_closed_; }
  // Peer sent RST.
  [[nodiscard]] bool peer_reset() const { return peer_reset_; }
  // Connection is a black hole: no data will ever arrive (policy drop or
  // middlebox); the client's read timer is the only way out.
  [[nodiscard]] bool hung() const { return hung_; }

 private:
  friend class Internet;
  Connection() = default;

  std::unique_ptr<ProtocolServer> server_;
  std::vector<std::uint8_t> pending_;
  bool peer_closed_ = false;
  bool peer_reset_ = false;
  bool hung_ = false;
};

class Internet {
 public:
  Internet(const World* world, const TrialContext& context,
           PersistentState* persistent);

  // ---- Layer 4 -----------------------------------------------------
  // Processes one probe packet (serialized IPv4+TCP bytes) sent by
  // `origin` at virtual time `t`; `probe_index` distinguishes the
  // back-to-back probes of a multi-probe scan. Returns the response
  // packet bytes (SYN-ACK or RST), or nullopt for silence.
  std::optional<std::vector<std::uint8_t>> handle_probe(
      OriginId origin, std::span<const std::uint8_t> packet, net::VirtualTime t,
      int probe_index);

  // ---- Layer 7 -----------------------------------------------------
  // Attempts a TCP connection for an application handshake. Returns
  // nullptr when the connect times out (loss/outage or vanished host).
  // `attempt` is the retry index (0 = first try) — retries see lower
  // MaxStartups concurrency.
  std::unique_ptr<Connection> connect(OriginId origin, net::Ipv4Addr src_ip,
                                      net::Ipv4Addr dst,
                                      proto::Protocol protocol,
                                      net::VirtualTime t, int attempt);

  [[nodiscard]] const World& world() const { return *world_; }
  [[nodiscard]] const TrialContext& context() const { return context_; }
  [[nodiscard]] PolicyEngine& policy_engine() { return policy_engine_; }
  [[nodiscard]] const PolicyEngine& policy_engine() const {
    return policy_engine_;
  }

  // Builds the outage schedule and every per-AS loss model for
  // (origin, protocol) up front. Purely an optimization: the cached
  // content is a pure function of (world seed, key, trial), so lazy
  // concurrent construction yields the same models — prewarming just
  // keeps the parallel hot path off the cache's writer lock.
  void prewarm(OriginId origin, proto::Protocol protocol);

  // Path RTT for (origin, as); the scan engines use it to schedule the
  // L7 follow-up after a SYN-ACK.
  [[nodiscard]] net::VirtualTime rtt(OriginId origin, AsId as) const;

  // Attaches a deterministic fault injector (core/faultinject layer):
  // time-windowed extra path loss on probes and total outage windows
  // that silence both probes and connects. Fault decisions are pure
  // functions of (seed, host, time), so they commute with parallel
  // execution. Pass nullptr to detach.
  void set_fault_injector(const fault::FaultInjector* faults) {
    faults_ = faults;
  }
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return faults_;
  }

 private:
  const PathLossModel& loss_model(OriginId origin, AsId as,
                                  proto::Protocol protocol);
  const OutageSchedule& outage_schedule(OriginId origin,
                                        proto::Protocol protocol);

  // Deterministic MaxStartups refusal decision for one attempt.
  [[nodiscard]] bool maxstartups_refuses(const Host& host, OriginId origin,
                                         int attempt) const;

  // Whether a flaky host is dark for this (origin, trial).
  [[nodiscard]] bool flaky_miss(const Host& host, OriginId origin) const;

  const World* world_;
  TrialContext context_;
  PolicyEngine policy_engine_;
  const fault::FaultInjector* faults_ = nullptr;

  // Guards the two lazy caches below (shared = lookup, exclusive =
  // insert). Cached values are behind unique_ptr, so references handed
  // out remain stable across concurrent inserts.
  std::shared_mutex cache_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PathLossModel>>
      loss_cache_;
  std::unordered_map<std::uint64_t, std::unique_ptr<OutageSchedule>>
      outage_cache_;
};

}  // namespace originscan::sim
