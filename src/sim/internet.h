// The simulated Internet, as seen from a scan origin: inject a SYN probe
// and (maybe) get response bytes back; open a TCP connection and drive an
// application-layer exchange against the destination host's server state
// machine, moderated by path loss, outages, and network policies.
//
// One Internet instance models one trial. Different protocols share the
// instance (host liveness is per-trial), but loss timelines and outage
// schedules are drawn per (origin, protocol) because the real scans were
// separate network events. Cross-trial policy state (tripped IDS blocks)
// lives in PersistentState, owned by the caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "faultinject/faultinject.h"
#include "netbase/headers.h"
#include "netbase/vtime.h"
#include "obsv/metrics.h"
#include "proto/protocol.h"
#include "sim/policy.h"
#include "sim/server.h"
#include "sim/world.h"

namespace originscan::sim {

struct TrialContext {
  int trial = 0;  // 0-based
  std::uint64_t experiment_seed = 0;
  // Origins scanning in lockstep (same ZMap seed, same start time); this
  // drives the MaxStartups concurrency model.
  int simultaneous_origins = 1;
  net::VirtualTime scan_duration = net::VirtualTime::from_hours(21);
};

// One established TCP connection from a scanner to a host. The ZGrab
// engine reads/writes bytes; the connection reports how the peer ended it.
class Connection {
 public:
  // Drains bytes the server has sent since the last read.
  std::vector<std::uint8_t> read();

  // Feeds client bytes to the server. No-op once the peer closed/reset.
  void send(std::span<const std::uint8_t> data);

  // Peer sent FIN (possibly after data still waiting in read()).
  [[nodiscard]] bool peer_closed() const { return peer_closed_; }
  // Peer sent RST.
  [[nodiscard]] bool peer_reset() const { return peer_reset_; }
  // Connection is a black hole: no data will ever arrive (policy drop or
  // middlebox); the client's read timer is the only way out.
  [[nodiscard]] bool hung() const { return hung_; }

 private:
  friend class Internet;
  Connection() = default;

  std::unique_ptr<ProtocolServer> server_;
  std::vector<std::uint8_t> pending_;
  bool peer_closed_ = false;
  bool peer_reset_ = false;
  bool hung_ = false;
};

class Internet;

// Pure per-target facts of the L4 path, resolved once per target and
// shared by every probe to it: the routed AS and the host that will
// answer this (origin, trial) — has_host == false when nothing is
// listening (unrouted, no host, offline this trial, or flaky-dark for
// the origin). The host is held *by value*: procedural worlds derive it
// on demand and have no table row to point into. Resolution has no side
// effects, so hoisting it out of the per-probe loop cannot change any
// decision.
struct ResolvedTarget {
  net::Ipv4Addr addr;
  std::optional<AsId> as;
  Host host{};  // meaningful only when has_host
  bool has_host = false;

  [[nodiscard]] const Host* host_or_null() const {
    return has_host ? &host : nullptr;
  }
};

// Structure-of-arrays batch for the scan hot path: up to kCapacity
// targets × kMaxProbes probes travel together from permutation draw
// through resolution (resolve_batch) and fate classification
// (handle_probe_batch). Parallel arrays keep each pass a tight loop
// over one column — addresses, then AS ids, then draws — instead of
// pointer-chasing per-target objects. Probe-indexed arrays (time_us,
// fwd_draw) are probe-major: element [p * kCapacity + i] belongs to
// probe p of target i, so a fixed-p pass is a contiguous sweep.
//
// The scanner fills addr/time_us/sent_mask/size/probes, resolve_batch
// fills as/has_host/host, handle_probe_batch fills live_mask (and uses
// fwd_draw as scratch). A set bit p of sent_mask means probe p was
// delivered to the network (send retries exhausted and injected
// send-drops already excluded); a set bit of live_mask means the probe
// reaches a listening host — only those re-enter the scalar per-target
// path to produce a response. Dead targets never materialize a
// ResolvedTarget or a TcpPacket.
struct ProbeBatch {
  static constexpr int kCapacity = 256;
  static constexpr int kMaxProbes = 8;

  // Scanner-filled inputs.
  net::Ipv4Addr addr[kCapacity];
  std::int64_t time_us[kMaxProbes * kCapacity];  // probe-major send times
  std::uint8_t sent_mask[kCapacity];
  int size = 0;
  int probes = 0;

  // resolve_batch outputs. `as` holds kNoAs for unrouted targets;
  // has_host mirrors ResolvedTarget::has_host.
  AsId as[kCapacity];
  std::uint8_t has_host[kCapacity];
  Host host[kCapacity];

  // handle_probe_batch scratch/outputs.
  double fwd_draw[kMaxProbes * kCapacity];  // forward-loss uniforms
  std::uint8_t live_mask[kCapacity];
};

namespace detail {
// Fills a probe-major draw matrix (ProbeBatch::kCapacity lane stride)
// with the forward-loss uniforms hash01(mix(seed_by_as[as[i]],
// mix(addr[i], p, origin, 0xF0D0), 0xD60B)) using the AVX-512VL/DQ
// 4-lane kernel. Returns false (computing nothing) when the build or
// CPU lacks the extension; the caller then runs the portable unrolled
// path. Both paths are bit-identical — integer lanes are exact and the
// hash01 conversion stays below 2^53 where vector FP equals scalar FP.
// Exposed for the equivalence test in tests/batch_test.cc.
bool fwd_draws_vectorized(const net::Ipv4Addr* addr, const AsId* as,
                          const std::uint64_t* seed_by_as, AsId as_count,
                          std::uint64_t origin, int n, int probes,
                          double* fwd_draw);
}  // namespace detail

// Lock-free per-(origin, protocol) view of the Internet for the scan hot
// loop: the outage schedule and every per-AS loss model and policy set,
// resolved once (after prewarm) into flat vectors indexed by AsId. The
// per-packet path through probe() then does zero synchronization and
// zero hashing. Holds raw pointers into the owning Internet's caches —
// valid for the Internet's lifetime; build one per scan lane.
class ProbeContext {
 public:
  ProbeContext() = default;

  [[nodiscard]] bool valid() const { return internet_ != nullptr; }
  [[nodiscard]] OriginId origin() const { return origin_; }
  [[nodiscard]] proto::Protocol protocol() const { return protocol_; }
  [[nodiscard]] const OutageSchedule& outage() const { return *outage_; }
  [[nodiscard]] const PathLossModel& loss(AsId as) const {
    return *loss_by_as_[as];
  }

  // Per-target resolution (AS, host, liveness, flaky-miss), done once
  // per target instead of once per probe.
  [[nodiscard]] ResolvedTarget resolve(net::Ipv4Addr dst) const;

  // Batched resolution of batch.addr[0..size): fills as/has_host/host.
  // Semantically identical to calling resolve() per address; the win is
  // the /24 grouping invariant — a consecutive run of addresses in the
  // same /24 consults the lane-private block cache once for the whole
  // run (permutation batches are internally sequential, so runs are
  // long). Block-cache hit/miss counters count these per-fetch consults,
  // not per-address lookups (docs/METRICS.md).
  void resolve_batch(ProbeBatch& batch) const;

  // Struct-level probe exchange against the pre-resolved target: the
  // same decisions as Internet::handle_probe, minus the wire
  // encode/decode and the cache locks. `syn` must be addressed to this
  // context's protocol port.
  std::optional<net::TcpPacket> probe(const ResolvedTarget& target,
                                      const net::TcpPacket& syn,
                                      net::VirtualTime t, int probe_index);

  // Attaches a single-writer metric block for drop-reason accounting
  // (sim.probes_routed, sim.drops.*, sim.responses_*). The block must be
  // owned by this context's lane — writes are plain stores. nullptr
  // (the default) disables every tap; the hot loop then takes one
  // predictable never-taken branch per drop site and nothing else.
  void set_metrics(obsv::MetricBlock* metrics) { metrics_ = metrics; }

 private:
  friend class Internet;

  // One slot of the per-lane /24 facts cache (procedural worlds only).
  // Direct-mapped and lane-private scratch: resolve() is const to
  // callers but may refill slots, which is safe because derivation is
  // pure — any refill writes the same facts. No other lane ever sees
  // this memory, so the zero-lock hot-path invariant (and the
  // cache_lock_count oracle) is untouched.
  struct BlockCacheSlot {
    std::uint32_t block = ~std::uint32_t{0};
    BlockFacts facts;
  };
  static constexpr std::uint32_t kBlockCacheSlots = 4096;  // power of two

  Internet* internet_ = nullptr;
  OriginId origin_ = 0;
  proto::Protocol protocol_ = proto::Protocol::kHttp;
  const OutageSchedule* outage_ = nullptr;
  obsv::MetricBlock* metrics_ = nullptr;
  std::vector<const PathLossModel*> loss_by_as_;
  std::vector<const AsPolicies*> policies_by_as_;
  // Flat copies of each loss model's stream seed so the batched
  // forward-loss kernel can gather four seeds and mix four draws without
  // touching the models themselves.
  std::vector<std::uint64_t> loss_seed_by_as_;
  // Per-AS memo of the loss window containing the last queried time —
  // probes arrive in near-sorted time order, so one window lookup
  // amortizes over many probes. Pure-refill scratch: a stale entry is
  // simply refilled, never observed.
  std::vector<PathLossModel::LossWindow> loss_cursor_;
  // Per-AS precomputed OutageSchedule::ever_in_outage — most ASes have
  // no outage windows at all, so the batch ladder can skip the
  // out-of-line in_outage call for them.
  std::vector<std::uint8_t> outage_possible_by_as_;
  // Allocated (kBlockCacheSlots entries) only when the world derives
  // state procedurally; empty otherwise.
  mutable std::vector<BlockCacheSlot> block_cache_;
};

class Internet {
 public:
  Internet(const World* world, const TrialContext& context,
           PersistentState* persistent);

  // ---- Layer 4 -----------------------------------------------------
  // Processes one probe packet (serialized IPv4+TCP bytes) sent by
  // `origin` at virtual time `t`; `probe_index` distinguishes the
  // back-to-back probes of a multi-probe scan. Returns the response
  // packet bytes (SYN-ACK or RST), or nullopt for silence.
  //
  // This is a thin wrapper over handle_probe_fast that keeps the wire
  // encoding in the loop: parse, decide, serialize. Byte-level fault
  // points and the golden-trace differential harness enter here.
  std::optional<std::vector<std::uint8_t>> handle_probe(
      OriginId origin, std::span<const std::uint8_t> packet, net::VirtualTime t,
      int probe_index);

  // Struct-level handoff for the scanner hot path: identical decisions
  // to handle_probe without the serialize/parse round trips. Malformed
  // probes (not a bare SYN, port outside the study) return nullopt,
  // exactly as their serialized form would.
  std::optional<net::TcpPacket> handle_probe_fast(OriginId origin,
                                                  const net::TcpPacket& syn,
                                                  net::VirtualTime t,
                                                  int probe_index);

  // Builds the lock-free hot-path view for one (origin, protocol) scan
  // lane. Prewarms the caches, so construction may take the cache lock;
  // the returned context never does.
  ProbeContext probe_context(OriginId origin, proto::Protocol protocol);

  // Classifies every sent probe of a resolved batch: computes the
  // forward-loss draws in a branch-minimized four-wide pass, then walks
  // the scalar decision ladder (faults, outage, forward loss, liveness)
  // per probe, accumulating drop-reason counts batch-locally and
  // flushing one metric add per reason. Sets batch.live_mask; the caller
  // re-runs only live probes through the scalar ProbeContext::probe path
  // (which recomputes the same decisions, deterministically passing, and
  // then handles IDS + response + reverse loss). Byte-identical counters
  // and responses to the scalar path — the scalar path is the oracle.
  void handle_probe_batch(ProbeContext& context, ProbeBatch& batch);

  // Per-target resolution shared by handle_probe_fast and ProbeContext.
  [[nodiscard]] ResolvedTarget resolve_target(net::Ipv4Addr dst,
                                              OriginId origin) const;

  // ---- Layer 7 -----------------------------------------------------
  // Attempts a TCP connection for an application handshake. Returns
  // nullptr when the connect times out (loss/outage or vanished host).
  // `attempt` is the retry index (0 = first try) — retries see lower
  // MaxStartups concurrency.
  std::unique_ptr<Connection> connect(OriginId origin, net::Ipv4Addr src_ip,
                                      net::Ipv4Addr dst,
                                      proto::Protocol protocol,
                                      net::VirtualTime t, int attempt);

  [[nodiscard]] const World& world() const { return *world_; }
  [[nodiscard]] const TrialContext& context() const { return context_; }
  [[nodiscard]] PolicyEngine& policy_engine() { return policy_engine_; }
  [[nodiscard]] const PolicyEngine& policy_engine() const {
    return policy_engine_;
  }

  // Builds the outage schedule and every per-AS loss model for
  // (origin, protocol) up front. Purely an optimization: the cached
  // content is a pure function of (world seed, key, trial), so lazy
  // concurrent construction yields the same models — prewarming just
  // keeps the parallel hot path off the cache's writer lock.
  void prewarm(OriginId origin, proto::Protocol protocol);

  // Path RTT for (origin, as); the scan engines use it to schedule the
  // L7 follow-up after a SYN-ACK.
  [[nodiscard]] net::VirtualTime rtt(OriginId origin, AsId as) const;

  // Attaches a deterministic fault injector (core/faultinject layer):
  // time-windowed extra path loss on probes and total outage windows
  // that silence both probes and connects. Fault decisions are pure
  // functions of (seed, host, time), so they commute with parallel
  // execution. Pass nullptr to detach.
  void set_fault_injector(const fault::FaultInjector* faults) {
    faults_ = faults;
  }
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return faults_;
  }

  // Number of cache_mutex_ acquisitions so far (shared or exclusive).
  // Tests assert this stays flat across a ProbeContext-driven scan loop
  // — the "zero synchronization in steady state" contract.
  [[nodiscard]] std::uint64_t cache_lock_count() const {
    return cache_lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  friend class ProbeContext;

  const PathLossModel& loss_model(OriginId origin, AsId as,
                                  proto::Protocol protocol);
  const OutageSchedule& outage_schedule(OriginId origin,
                                        proto::Protocol protocol);

  // The shared decision core of the probe path. Every input that needs a
  // lookup (loss model, outage schedule, policies, target) arrives
  // pre-resolved; the lock-free and byte-level paths differ only in how
  // they resolve them. `metrics` attributes each probe's fate to exactly
  // one drop/response counter (nullptr from the byte-level path, so
  // ProbeContext lanes stay the single writers of their blocks).
  std::optional<net::TcpPacket> probe_impl(
      OriginId origin, proto::Protocol protocol, const OutageSchedule& outages,
      const PathLossModel& loss, const AsPolicies* policies,
      const ResolvedTarget& target, const net::TcpPacket& syn,
      net::VirtualTime t, int probe_index, obsv::MetricBlock* metrics);

  // Deterministic MaxStartups refusal decision for one attempt.
  [[nodiscard]] bool maxstartups_refuses(const Host& host, OriginId origin,
                                         int attempt) const;

  // Whether a flaky host is dark for this (origin, trial).
  [[nodiscard]] bool flaky_miss(const Host& host, OriginId origin) const;

  const World* world_;
  TrialContext context_;
  PolicyEngine policy_engine_;
  const fault::FaultInjector* faults_ = nullptr;

  // Guards the two lazy caches below (shared = lookup, exclusive =
  // insert). Cached values are behind unique_ptr, so references handed
  // out remain stable across concurrent inserts.
  std::shared_mutex cache_mutex_;
  std::atomic<std::uint64_t> cache_lock_acquisitions_{0};
  std::unordered_map<std::uint64_t, std::unique_ptr<PathLossModel>>
      loss_cache_;
  std::unordered_map<std::uint64_t, std::unique_ptr<OutageSchedule>>
      outage_cache_;
};

}  // namespace originscan::sim
