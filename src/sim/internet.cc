#include "sim/internet.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "netbase/rng.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define OSN_FWD_DRAW_AVX512 1
#include <immintrin.h>
#endif

namespace originscan::sim {
namespace {

// Probability that a TCP connect (SYN + kernel retransmits within the
// ZGrab timeout) fails outright, given the instantaneous path loss p.
// Two effective attempts fit in the timeout window.
double connect_failure_probability(double loss) { return loss * loss; }

double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

#ifdef OSN_FWD_DRAW_AVX512

// Vector replica of net::splitmix64's output mix (the caller advances
// the state by the golden constant itself). Integer ops are exact, so
// the lanes are bit-identical to the scalar kernel.
__attribute__((target("avx512f,avx512dq,avx512vl"))) inline __m256i
splitmix_out4(__m256i z) {
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
  z = _mm256_mullo_epi64(z, _mm256_set1_epi64x(0xBF58476D1CE4E5B9LL));
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
  z = _mm256_mullo_epi64(z, _mm256_set1_epi64x(0x94D049BB133111EBLL));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

// Four-lane mix_u64(a, b, c, d) with vector b; c and d enter pre-folded
// with their stage constants (cc = c + 0xC2B2…, dd = d + 0x1656…) so
// the per-call work is adds, xors, and the splitmix output mix.
__attribute__((target("avx512f,avx512dq,avx512vl"))) inline __m256i
mix4(__m256i a, __m256i b, __m256i cc, __m256i dd) {
  const __m256i golden = _mm256_set1_epi64x(
      static_cast<long long>(0x9E3779B97F4A7C15ULL));
  __m256i state = _mm256_add_epi64(a, golden);
  __m256i out = splitmix_out4(state);
  state = _mm256_add_epi64(
      _mm256_xor_si256(state, _mm256_add_epi64(b, golden)), golden);
  out = _mm256_xor_si256(out, splitmix_out4(state));
  state = _mm256_add_epi64(_mm256_xor_si256(state, cc), golden);
  out = _mm256_xor_si256(out, splitmix_out4(state));
  state = _mm256_add_epi64(_mm256_xor_si256(state, dd), golden);
  return _mm256_xor_si256(out, splitmix_out4(state));
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void fwd_draws_avx512(
    const net::Ipv4Addr* addr, const AsId* as,
    const std::uint64_t* seed_by_as, AsId as_count, std::uint64_t origin,
    int n, int probes, double* fwd_draw) {
  // Stage constants of the two chained mixes, pre-folded: the key mix is
  // mix(addr, p, origin, 0xF0D0), the draw mix is mix(seed, key, 0xD60B).
  const __m256i key_cc = _mm256_set1_epi64x(
      static_cast<long long>(origin + 0xC2B2AE3D27D4EB4FULL));
  const __m256i key_dd = _mm256_set1_epi64x(
      static_cast<long long>(0xF0D0ULL + 0x165667B19E3779F9ULL));
  const __m256i draw_cc = _mm256_set1_epi64x(
      static_cast<long long>(0xD60BULL + 0xC2B2AE3D27D4EB4FULL));
  const __m256i draw_dd = _mm256_set1_epi64x(
      static_cast<long long>(0x165667B19E3779F9ULL));
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t addr4[4];
    alignas(32) std::uint64_t seed4[4];
    for (int lane = 0; lane < 4; ++lane) {
      addr4[lane] = addr[i + lane].value();
      const AsId lane_as = as[i + lane];
      seed4[lane] = lane_as < as_count ? seed_by_as[lane_as] : 0;
    }
    const __m256i addr_v = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(addr4)));
    const __m256i seed_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(seed4));
    for (int p = 0; p < probes; ++p) {
      const __m256i key =
          mix4(addr_v, _mm256_set1_epi64x(p), key_cc, key_dd);
      const __m256i hash = mix4(seed_v, key, draw_cc, draw_dd);
      // hash01, lane-exact: (double)(h >> 11) is exact below 2^53 and
      // the 2^-53 scale is a power of two, so vector FP == scalar FP.
      const __m256d draw =
          _mm256_mul_pd(_mm256_cvtepu64_pd(_mm256_srli_epi64(hash, 11)),
                        scale);
      _mm256_storeu_pd(fwd_draw + p * ProbeBatch::kCapacity + i, draw);
    }
  }
  for (; i < n; ++i) {
    const AsId lane_as = as[i];
    const std::uint64_t seed = lane_as < as_count ? seed_by_as[lane_as] : 0;
    for (int p = 0; p < probes; ++p) {
      const std::uint64_t key =
          net::mix_u64(addr[i].value(), static_cast<std::uint64_t>(p),
                       origin, 0xF0D0u);
      fwd_draw[p * ProbeBatch::kCapacity + i] =
          hash01(net::mix_u64(seed, key, 0xD60Bu));
    }
  }
}

#endif  // OSN_FWD_DRAW_AVX512

}  // namespace

namespace detail {

bool fwd_draws_vectorized(const net::Ipv4Addr* addr, const AsId* as,
                          const std::uint64_t* seed_by_as, AsId as_count,
                          std::uint64_t origin, int n, int probes,
                          double* fwd_draw) {
#ifdef OSN_FWD_DRAW_AVX512
  static const bool supported = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512dq") &&
                                __builtin_cpu_supports("avx512vl");
  if (!supported) return false;
  fwd_draws_avx512(addr, as, seed_by_as, as_count, origin, n, probes,
                   fwd_draw);
  return true;
#else
  (void)addr;
  (void)as;
  (void)seed_by_as;
  (void)as_count;
  (void)origin;
  (void)n;
  (void)probes;
  (void)fwd_draw;
  return false;
#endif
}

}  // namespace detail

std::vector<std::uint8_t> Connection::read() {
  return std::exchange(pending_, {});
}

void Connection::send(std::span<const std::uint8_t> data) {
  if (peer_closed_ || peer_reset_ || hung_ || server_ == nullptr) return;
  ServerAction action = server_->on_bytes(data);
  if (pending_.empty()) {
    // The common case — the client drained before writing — adopts the
    // server's buffer instead of copying it.
    pending_ = std::move(action.bytes);
  } else {
    pending_.insert(pending_.end(), action.bytes.begin(), action.bytes.end());
  }
  if (action.reset) peer_reset_ = true;
  if (action.close) peer_closed_ = true;
}

Internet::Internet(const World* world, const TrialContext& context,
                   PersistentState* persistent)
    : world_(world),
      context_(context),
      policy_engine_(&world->policies, &world->origins, persistent,
                     context.trial,
                     net::mix_u64(context.experiment_seed, context.trial,
                                  0x7121A1ULL),
                     context.scan_duration) {
  assert(world_->topology.frozen());
}

const PathLossModel& Internet::loss_model(OriginId origin, AsId as,
                                          proto::Protocol protocol) {
  const std::uint64_t key =
      (std::uint64_t{origin} << 40) | (std::uint64_t{as} << 8) |
      proto::index_of(protocol);
  {
    cache_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(cache_mutex_);
    auto it = loss_cache_.find(key);
    if (it != loss_cache_.end()) return *it->second;
  }
  // Build outside the lock: the model is a pure function of the key and
  // the world seed, so a racing builder produces an identical model and
  // try_emplace simply discards the loser.
  PathProfile profile = world_->paths.profile(origin, as);
  if (world_->uniform_random_loss) {
    // Same long-run loss, no burst structure.
    profile.good_loss = profile.stationary_loss();
    profile.bad_fraction = 0;
  }
  // Colocated origins (same first-hop data center) share Good/Bad
  // timelines: seed the renewal process by group, not by origin.
  const int group = world_->origins[origin].colocation_group;
  const std::uint64_t timeline_actor =
      group >= 0 ? 0x9000000ULL + static_cast<std::uint64_t>(group)
                 : std::uint64_t{origin};
  const std::uint64_t timeline_key =
      (timeline_actor << 40) | (std::uint64_t{as} << 8) |
      proto::index_of(protocol);
  const std::uint64_t stream_seed =
      net::mix_u64(world_->seed, timeline_key, context_.trial, 0x105Eu);
  auto model = std::make_unique<PathLossModel>(profile, stream_seed,
                                               context_.scan_duration);
  cache_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(cache_mutex_);
  auto [it, inserted] = loss_cache_.try_emplace(key, std::move(model));
  return *it->second;
}

const OutageSchedule& Internet::outage_schedule(OriginId origin,
                                                proto::Protocol protocol) {
  const std::uint64_t key =
      (std::uint64_t{origin} << 8) | proto::index_of(protocol);
  {
    cache_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(cache_mutex_);
    auto it = outage_cache_.find(key);
    if (it != outage_cache_.end()) return *it->second;
  }
  const std::uint64_t stream_seed =
      net::mix_u64(world_->seed, key, context_.trial, 0x07A6Eu);
  auto schedule = std::make_unique<OutageSchedule>(
      world_->outages, origin, world_->topology.as_count(), stream_seed,
      context_.scan_duration);
  cache_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(cache_mutex_);
  auto [it, inserted] = outage_cache_.try_emplace(key, std::move(schedule));
  return *it->second;
}

void Internet::prewarm(OriginId origin, proto::Protocol protocol) {
  outage_schedule(origin, protocol);
  const auto as_count = static_cast<AsId>(world_->topology.as_count());
  for (AsId as = 0; as < as_count; ++as) {
    loss_model(origin, as, protocol);
  }
}

net::VirtualTime Internet::rtt(OriginId origin, AsId as) const {
  const PathProfile profile = world_->paths.profile(origin, as);
  return net::VirtualTime::from_micros(
      static_cast<std::int64_t>(profile.latency_ms * 1000.0));
}

std::optional<std::vector<std::uint8_t>> Internet::handle_probe(
    OriginId origin, std::span<const std::uint8_t> packet, net::VirtualTime t,
    int probe_index) {
  auto parsed = net::TcpPacket::parse(packet);
  if (!parsed) return std::nullopt;  // malformed: dropped on the floor
  auto response = handle_probe_fast(origin, *parsed, t, probe_index);
  if (!response) return std::nullopt;
  return response->serialize();
}

std::optional<net::TcpPacket> Internet::handle_probe_fast(
    OriginId origin, const net::TcpPacket& syn, net::VirtualTime t,
    int probe_index) {
  const std::optional<proto::Protocol> protocol =
      proto::protocol_for_port(syn.tcp.dst_port);
  if (!protocol) return std::nullopt;  // port outside the study

  const ResolvedTarget target = resolve_target(syn.ip.dst, origin);
  if (!target.as) return std::nullopt;  // unrouted space

  return probe_impl(origin, *protocol, outage_schedule(origin, *protocol),
                    loss_model(origin, *target.as, *protocol),
                    world_->policies.find(*target.as), target, syn, t,
                    probe_index, /*metrics=*/nullptr);
}

ResolvedTarget Internet::resolve_target(net::Ipv4Addr dst,
                                        OriginId origin) const {
  ResolvedTarget target;
  target.addr = dst;
  target.as = world_->as_of(dst);
  if (!target.as) return target;
  const std::optional<Host> host = world_->host_at(dst);
  if (!host ||
      !HostTable::live_in_trial(*host, context_.trial,
                                context_.experiment_seed)) {
    return target;  // nothing listening this trial: silence
  }
  if (host->flaky && flaky_miss(*host, origin)) {
    return target;  // marginal host: dark for this origin this trial
  }
  target.host = *host;
  target.has_host = true;
  return target;
}

std::optional<net::TcpPacket> Internet::probe_impl(
    OriginId origin, proto::Protocol protocol, const OutageSchedule& outages,
    const PathLossModel& loss, const AsPolicies* policies,
    const ResolvedTarget& target, const net::TcpPacket& syn,
    net::VirtualTime t, int probe_index, obsv::MetricBlock* metrics) {
  if (!syn.tcp.flags.syn || syn.tcp.flags.ack) {
    return std::nullopt;  // not a bare SYN: dropped on the floor
  }
  const net::Ipv4Addr dst = target.addr;
  if (metrics != nullptr) metrics->add(obsv::Counter::kSimProbesRouted);

  // Injected faults first: an injected outage or loss spike is a
  // property of the scan run's environment, just like the scheduled
  // ones below.
  if (faults_ != nullptr) {
    const bool fault_outage = faults_->outage_at(t, static_cast<int>(origin));
    if (fault_outage || faults_->drop_at_time(t, dst, probe_index)) {
      if (metrics != nullptr) {
        metrics->add(obsv::Counter::kSimDropsFault);
        metrics->add(fault_outage ? obsv::Counter::kFaultOutage
                                  : obsv::Counter::kFaultProbeDrop);
      }
      return std::nullopt;
    }
  }

  if (outages.in_outage(*target.as, t)) {
    if (metrics != nullptr) metrics->add(obsv::Counter::kSimDropsOutage);
    return std::nullopt;
  }

  // Forward direction.
  if (loss.drop(t, net::mix_u64(dst.value(), probe_index, origin, 0xF0D0u))) {
    if (metrics != nullptr) metrics->add(obsv::Counter::kSimDropsLossModel);
    return std::nullopt;
  }

  const Host* host = target.host_or_null();
  if (host == nullptr) {
    if (metrics != nullptr) metrics->add(obsv::Counter::kSimDropsNoHost);
    return std::nullopt;
  }

  // Only probes that reached a listening host feed the policy layer
  // (IDS counters); everything above is side-effect free.
  if (policies != nullptr &&
      policy_engine_.on_probe(policies, origin, syn.ip.src, *target.as, dst,
                              protocol, t) == PolicyEngine::L4Decision::kDrop) {
    if (metrics != nullptr) metrics->add(obsv::Counter::kSimDropsIds);
    return std::nullopt;
  }

  const bool answers = host->middlebox || host->runs(protocol);

  net::TcpPacket response;
  response.ip.src = dst;
  response.ip.dst = syn.ip.src;
  response.tcp.src_port = syn.tcp.dst_port;
  response.tcp.dst_port = syn.tcp.src_port;
  response.tcp.ack = syn.tcp.seq + 1;
  if (answers) {
    response.tcp.flags.syn = true;
    response.tcp.flags.ack = true;
    response.tcp.seq = static_cast<std::uint32_t>(
        net::mix_u64(host->seed, context_.trial, probe_index, 0x15Bu));
  } else {
    // Live host, closed port: RST.
    response.tcp.flags.rst = true;
    response.tcp.flags.ack = true;
    response.tcp.seq = 0;
  }

  // Reverse direction.
  if (loss.drop(t, net::mix_u64(dst.value(), probe_index, origin, 0x0BACu))) {
    if (metrics != nullptr) metrics->add(obsv::Counter::kSimDropsLossModel);
    return std::nullopt;
  }
  // Counted only when delivered, so every routed probe lands in exactly
  // one bucket: probes_routed == drops.{fault,outage,loss_model,no_host,
  // ids} + responses_synack + responses_rst (unrouted probes are counted
  // separately, before routing).
  if (metrics != nullptr) {
    metrics->add(answers ? obsv::Counter::kSimResponsesSynack
                         : obsv::Counter::kSimResponsesRst);
  }
  return response;
}

ProbeContext Internet::probe_context(OriginId origin,
                                     proto::Protocol protocol) {
  prewarm(origin, protocol);
  ProbeContext context;
  context.internet_ = this;
  context.origin_ = origin;
  context.protocol_ = protocol;
  context.outage_ = &outage_schedule(origin, protocol);
  const auto as_count = static_cast<AsId>(world_->topology.as_count());
  context.loss_by_as_.resize(as_count);
  context.policies_by_as_.resize(as_count);
  context.loss_seed_by_as_.resize(as_count);
  context.loss_cursor_.assign(as_count, {});  // empty windows: refill on use
  context.outage_possible_by_as_.resize(as_count);
  for (AsId as = 0; as < as_count; ++as) {
    context.loss_by_as_[as] = &loss_model(origin, as, protocol);
    context.policies_by_as_[as] = world_->policies.find(as);
    context.loss_seed_by_as_[as] = context.loss_by_as_[as]->stream_seed();
    context.outage_possible_by_as_[as] =
        context.outage_->ever_in_outage(as) ? 1 : 0;
  }
  if (world_->procedural.enabled()) {
    context.block_cache_.assign(ProbeContext::kBlockCacheSlots, {});
  }
  return context;
}

ResolvedTarget ProbeContext::resolve(net::Ipv4Addr dst) const {
  const ProceduralWorld& procedural = internet_->world_->procedural;
  if (!procedural.covers(dst)) return internet_->resolve_target(dst, origin_);

  // Procedural fast path: one /24 derivation serves 256 addresses via
  // the lane-private direct-mapped cache; everything else is a pure
  // per-address derivation. No table, no lock, no shared state.
  const std::uint32_t block = dst.value() >> 8;
  BlockCacheSlot& slot = block_cache_[block & (kBlockCacheSlots - 1)];
  if (slot.block == block) {
    if (metrics_ != nullptr) {
      metrics_->add(obsv::Counter::kUniverseBlockCacheHit);
    }
  } else {
    slot.block = block;
    slot.facts = procedural.block_facts(block);
    if (metrics_ != nullptr) {
      metrics_->add(obsv::Counter::kUniverseBlockCacheMiss);
    }
  }

  ResolvedTarget target;
  target.addr = dst;
  if (slot.facts.as == kNoAs) return target;  // unrouted block
  target.as = slot.facts.as;

  const std::optional<Host> host = procedural.derive_host(dst, slot.facts);
  if (metrics_ != nullptr) {
    metrics_->add(obsv::Counter::kUniverseProceduralDerivations);
  }
  if (!host ||
      !HostTable::live_in_trial(*host, internet_->context_.trial,
                                internet_->context_.experiment_seed)) {
    return target;
  }
  if (host->flaky && internet_->flaky_miss(*host, origin_)) return target;
  target.host = *host;
  target.has_host = true;
  return target;
}

void ProbeContext::resolve_batch(ProbeBatch& batch) const {
  const ProceduralWorld& procedural = internet_->world_->procedural;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t derivations = 0;
  // The /24 grouping invariant: a consecutive run of same-/24 addresses
  // shares one block-cache consult. Permutation batches are sequential
  // inside each next_batch window, so runs span up to 256 addresses; a
  // materialized (non-procedural) address breaks the run.
  std::uint32_t run_block = ~std::uint32_t{0};
  const BlockFacts* run_facts = nullptr;
  for (int i = 0; i < batch.size; ++i) {
    const net::Ipv4Addr dst = batch.addr[i];
    batch.as[i] = kNoAs;
    batch.has_host[i] = 0;
    if (!procedural.covers(dst)) {
      const ResolvedTarget target = internet_->resolve_target(dst, origin_);
      if (target.as) batch.as[i] = *target.as;
      if (target.has_host) {
        batch.has_host[i] = 1;
        batch.host[i] = target.host;
      }
      run_block = ~std::uint32_t{0};
      continue;
    }
    const std::uint32_t block = dst.value() >> 8;
    if (block != run_block) {
      BlockCacheSlot& slot = block_cache_[block & (kBlockCacheSlots - 1)];
      if (slot.block == block) {
        ++hits;
      } else {
        slot.block = block;
        slot.facts = procedural.block_facts(block);
        ++misses;
      }
      run_block = block;
      run_facts = &slot.facts;
    }
    if (run_facts->as == kNoAs) continue;  // unrouted block
    batch.as[i] = run_facts->as;
    const std::optional<Host> host = procedural.derive_host(dst, *run_facts);
    ++derivations;
    if (!host ||
        !HostTable::live_in_trial(*host, internet_->context_.trial,
                                  internet_->context_.experiment_seed)) {
      continue;
    }
    if (host->flaky && internet_->flaky_miss(*host, origin_)) continue;
    batch.host[i] = *host;
    batch.has_host[i] = 1;
  }
  if (metrics_ != nullptr) {
    if (hits != 0) metrics_->add(obsv::Counter::kUniverseBlockCacheHit, hits);
    if (misses != 0) {
      metrics_->add(obsv::Counter::kUniverseBlockCacheMiss, misses);
    }
    if (derivations != 0) {
      metrics_->add(obsv::Counter::kUniverseProceduralDerivations, derivations);
    }
    // Batch bookkeeping lives under the universe.* exception (lane- and
    // partition-dependent, docs/METRICS.md) and, like the cache
    // counters, stays zero outside procedural worlds — materialized
    // worlds keep the full snapshot byte-identical across --jobs.
    if (procedural.enabled()) {
      metrics_->add(obsv::Counter::kUniverseBatchBatches);
      metrics_->add(obsv::Counter::kUniverseBatchTargets,
                    static_cast<std::uint64_t>(batch.size));
    }
  }
}

void Internet::handle_probe_batch(ProbeContext& context, ProbeBatch& batch) {
  const int n = batch.size;
  const int probes = batch.probes;
  assert(probes <= ProbeBatch::kMaxProbes);
  const auto as_count = static_cast<AsId>(context.loss_by_as_.size());

  // Pass 1 (pure): the forward-loss uniform for every (target, probe),
  // four target lanes at a time, all probes of a lane group together so
  // the addr/seed gather is paid once. The two chained mixes match
  // PathLossModel::drop byte-for-byte: key = mix(dst, probe, origin,
  // 0xF0D0), draw = hash01(mix(stream_seed, key, 0xD60B)). Unresolved or
  // unrouted lanes mix a zero seed — their draw is never read.
  if (!detail::fwd_draws_vectorized(batch.addr, batch.as,
                                    context.loss_seed_by_as_.data(), as_count,
                                    context.origin_, n, probes,
                                    batch.fwd_draw)) {
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      std::uint64_t addr4[4];
      std::uint64_t key4[4];
      std::uint64_t seed4[4];
      std::uint64_t hash4[4];
      for (int lane = 0; lane < 4; ++lane) {
        addr4[lane] = batch.addr[i + lane].value();
        const AsId as = batch.as[i + lane];
        seed4[lane] = as < as_count ? context.loss_seed_by_as_[as] : 0;
      }
      for (int p = 0; p < probes; ++p) {
        net::mix_u64_x4(addr4, static_cast<std::uint64_t>(p), context.origin_,
                        0xF0D0u, key4);
        net::mix_u64_x4(seed4, key4, 0xD60Bu, 0, hash4);
        double* draw = batch.fwd_draw + p * ProbeBatch::kCapacity;
        for (int lane = 0; lane < 4; ++lane) {
          draw[i + lane] = hash01(hash4[lane]);
        }
      }
    }
    for (; i < n; ++i) {
      const AsId as = batch.as[i];
      const std::uint64_t seed =
          as < as_count ? context.loss_seed_by_as_[as] : 0;
      for (int p = 0; p < probes; ++p) {
        const std::uint64_t key =
            net::mix_u64(batch.addr[i].value(), static_cast<std::uint64_t>(p),
                         context.origin_, 0xF0D0u);
        batch.fwd_draw[p * ProbeBatch::kCapacity + i] =
            hash01(net::mix_u64(seed, key, 0xD60Bu));
      }
    }
  }

  // Pass 2: the scalar decision ladder per sent probe, in probe_impl's
  // exact order (fault, outage, forward loss, liveness), accumulating
  // drop counts batch-locally. Probes that clear the ladder are marked
  // live; the caller replays them through the scalar path, which makes
  // the same (deterministic) decisions and continues to IDS + response.
  std::uint64_t n_unrouted = 0;
  std::uint64_t n_fault_outage = 0;
  std::uint64_t n_fault_drop = 0;
  std::uint64_t n_outage = 0;
  std::uint64_t n_loss = 0;
  std::uint64_t n_nohost = 0;
  std::uint64_t n_routed_dead = 0;
  for (int i = 0; i < n; ++i) {
    batch.live_mask[i] = 0;
    const std::uint8_t sent = batch.sent_mask[i];
    if (sent == 0) continue;
    const AsId as = batch.as[i];
    if (as >= as_count) {  // kNoAs or garbage: unrouted space
      for (int p = 0; p < probes; ++p) {
        if ((sent >> p) & 1) ++n_unrouted;
      }
      continue;
    }
    std::uint8_t live = 0;
    for (int p = 0; p < probes; ++p) {
      if (!((sent >> p) & 1)) continue;
      const auto t = net::VirtualTime::from_micros(
          batch.time_us[p * ProbeBatch::kCapacity + i]);
      if (faults_ != nullptr) {
        const bool fault_outage =
            faults_->outage_at(t, static_cast<int>(context.origin_));
        if (fault_outage || faults_->drop_at_time(t, batch.addr[i], p)) {
          ++n_routed_dead;
          if (fault_outage) {
            ++n_fault_outage;
          } else {
            ++n_fault_drop;
          }
          continue;
        }
      }
      if (context.outage_possible_by_as_[as] &&
          context.outage_->in_outage(as, t)) {
        ++n_routed_dead;
        ++n_outage;
        continue;
      }
      PathLossModel::LossWindow& window = context.loss_cursor_[as];
      if (!window.contains(t)) window = context.loss_by_as_[as]->loss_window(t);
      if (window.p > 0.0 &&
          batch.fwd_draw[p * ProbeBatch::kCapacity + i] < window.p) {
        ++n_routed_dead;
        ++n_loss;
        continue;
      }
      if (batch.has_host[i] == 0) {
        ++n_routed_dead;
        ++n_nohost;
        continue;
      }
      live |= static_cast<std::uint8_t>(1u << p);
    }
    batch.live_mask[i] = live;
  }

  // One flush per non-zero reason. kSimProbesRouted covers only the
  // routed probes that die here — live probes are counted by probe_impl
  // when the caller replays them, so every routed probe lands in the
  // fate invariant exactly once.
  obsv::MetricBlock* metrics = context.metrics_;
  if (metrics != nullptr) {
    if (n_unrouted != 0) {
      metrics->add(obsv::Counter::kSimDropsUnrouted, n_unrouted);
    }
    if (n_routed_dead != 0) {
      metrics->add(obsv::Counter::kSimProbesRouted, n_routed_dead);
    }
    const std::uint64_t n_fault = n_fault_outage + n_fault_drop;
    if (n_fault != 0) metrics->add(obsv::Counter::kSimDropsFault, n_fault);
    if (n_fault_outage != 0) {
      metrics->add(obsv::Counter::kFaultOutage, n_fault_outage);
    }
    if (n_fault_drop != 0) {
      metrics->add(obsv::Counter::kFaultProbeDrop, n_fault_drop);
    }
    if (n_outage != 0) metrics->add(obsv::Counter::kSimDropsOutage, n_outage);
    if (n_loss != 0) metrics->add(obsv::Counter::kSimDropsLossModel, n_loss);
    if (n_nohost != 0) metrics->add(obsv::Counter::kSimDropsNoHost, n_nohost);
  }
}

std::optional<net::TcpPacket> ProbeContext::probe(const ResolvedTarget& target,
                                                  const net::TcpPacket& syn,
                                                  net::VirtualTime t,
                                                  int probe_index) {
  assert(syn.tcp.dst_port == proto::port_of(protocol_));
  if (!target.as) {
    if (metrics_ != nullptr) metrics_->add(obsv::Counter::kSimDropsUnrouted);
    return std::nullopt;  // unrouted space
  }
  return internet_->probe_impl(origin_, protocol_, *outage_,
                               *loss_by_as_[*target.as],
                               policies_by_as_[*target.as], target, syn, t,
                               probe_index, metrics_);
}

bool Internet::flaky_miss(const Host& host, OriginId origin) const {
  // One coin per (host, origin, trial): the whole scan — both probes and
  // the follow-up connect — sees the same dark host.
  const std::uint64_t h = net::mix_u64(host.seed, origin,
                                       static_cast<std::uint64_t>(
                                           context_.trial),
                                       0xF1A6ULL);
  return hash01(h) < world_->flaky_miss_probability;
}

bool Internet::maxstartups_refuses(const Host& host, OriginId origin,
                                   int attempt) const {
  const MaxStartupsConfig& cfg = world_->maxstartups;
  const double decay = std::pow(cfg.retry_load_decay, attempt);

  // Background unauthenticated connections (other scanners, brute-force
  // bots): Poisson, decaying across retries only mildly — background load
  // is not synchronized with us, so it decays with the same factor used
  // for origins to keep the model simple but monotone in `attempt`.
  net::Rng rng(net::mix_u64(host.seed, context_.experiment_seed,
                            static_cast<std::uint64_t>(context_.trial) << 8 |
                                origin,
                            0xA55ULL + static_cast<std::uint64_t>(attempt)));
  const int background =
      static_cast<int>(rng.poisson(cfg.background_load_mean * decay));

  // Synchronized origins: each other origin's handshake is still open
  // with some probability (all scanners hit this host at ~the same time).
  int concurrent = 0;
  const double p_open = cfg.concurrent_origin_probability * decay;
  for (int i = 0; i + 1 < context_.simultaneous_origins; ++i) {
    if (rng.bernoulli(p_open)) ++concurrent;
  }

  const double refuse =
      host.maxstartups.refusal_probability(1 + background + concurrent);
  return rng.bernoulli(refuse);
}

std::unique_ptr<Connection> Internet::connect(OriginId origin,
                                              net::Ipv4Addr src_ip,
                                              net::Ipv4Addr dst,
                                              proto::Protocol protocol,
                                              net::VirtualTime t,
                                              int attempt) {
  const auto as = world_->as_of(dst);
  if (!as) return nullptr;

  if (faults_ != nullptr && faults_->outage_at(t, static_cast<int>(origin))) {
    return nullptr;
  }

  if (outage_schedule(origin, protocol).in_outage(*as, t)) return nullptr;

  const PathLossModel& loss = loss_model(origin, *as, protocol);
  const double p_fail = connect_failure_probability(loss.loss_probability(t));
  if (p_fail > 0.0 &&
      hash01(net::mix_u64(world_->seed ^ origin, dst.value(), attempt, 0xC0DEu)) <
          p_fail) {
    return nullptr;
  }

  const std::optional<Host> host = world_->host_at(dst);
  if (!host ||
      !HostTable::live_in_trial(*host, context_.trial,
                                context_.experiment_seed)) {
    return nullptr;
  }
  if (host->flaky && flaky_miss(*host, origin)) return nullptr;

  // L4 policies also gate the connect's SYN.
  if (policy_engine_.on_probe(origin, src_ip, *as, dst, protocol, t) ==
      PolicyEngine::L4Decision::kDrop) {
    return nullptr;
  }

  auto connection = std::unique_ptr<Connection>(new Connection());

  switch (policy_engine_.on_connection(origin, src_ip, *as, dst, protocol,
                                       t)) {
    case PolicyEngine::L7Decision::kRstAfterAccept:
      connection->peer_reset_ = true;
      return connection;
    case PolicyEngine::L7Decision::kDrop:
      connection->hung_ = true;
      return connection;
    case PolicyEngine::L7Decision::kServeBlockPage: {
      ServerOptions options;
      options.forced_page_title = "Blocked Site";
      connection->server_ = make_server(*host, protocol, options);
      if (connection->server_ == nullptr) connection->hung_ = true;
      return connection;
    }
    case PolicyEngine::L7Decision::kAllow:
      break;
  }

  if (host->middlebox && !host->runs(protocol)) {
    connection->hung_ = true;  // DDoS frontend: accepts, says nothing
    return connection;
  }

  if (protocol == proto::Protocol::kSsh && host->maxstartups_enabled &&
      maxstartups_refuses(*host, origin, attempt)) {
    // sshd drops the connection before the identification string; some
    // hosts RST instead of FIN (stable per host).
    if (net::mix_u64(host->seed, 0xF17u) % 4 == 0) {
      connection->peer_reset_ = true;
    } else {
      connection->peer_closed_ = true;
    }
    return connection;
  }

  connection->server_ = make_server(*host, protocol);
  if (connection->server_ == nullptr) {
    connection->hung_ = true;
    return connection;
  }
  ServerAction action = connection->server_->on_open();
  connection->pending_ = std::move(action.bytes);
  if (action.close) connection->peer_closed_ = true;
  if (action.reset) connection->peer_reset_ = true;
  return connection;
}

}  // namespace originscan::sim
