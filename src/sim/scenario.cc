#include "sim/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "netbase/rng.h"
#include "sim/hostgen.h"

namespace originscan::sim {
namespace {

using net::Ipv4Addr;
using net::Prefix;
using net::Rng;

// ------------------------------------------------------------- origins --

OriginSpec make_origin(std::string code, std::string name, CountryCode country,
                       OriginKind kind, Ipv4Addr first_source_ip, int ip_count,
                       double reputation, double loss_multiplier) {
  OriginSpec spec;
  spec.code = std::move(code);
  spec.display_name = std::move(name);
  spec.country = country;
  spec.kind = kind;
  for (int i = 0; i < ip_count; ++i) {
    spec.source_ips.emplace_back(first_source_ip.value() +
                                 static_cast<std::uint32_t>(i));
  }
  spec.scan_reputation = reputation;
  spec.loss_multiplier = loss_multiplier;
  return spec;
}

// Source blocks sit in their own /24s just above the universe.
Ipv4Addr source_block(std::uint32_t universe_size, int index) {
  return Ipv4Addr(universe_size + 256u * static_cast<std::uint32_t>(index) +
                  10u);
}

// ---------------------------------------------------------- AS catalog --

struct ProfileTag {
  // Identifiers for the path profile classes used below.
  enum Kind {
    kStandard,
    kChina,        // lossy and unstable (Zhu et al. bottleneck)
    kFlipProne,    // long Bad periods: best origin flips to worst
    kWildVariance, // very long Bad periods, high fraction (ABCDE archetype)
  };
  Kind kind = kStandard;
};

struct GeoSplit {
  double fraction = 1.0;
  CountryCode country;  // geolocation of this share of the AS's space
};

struct AsSpec {
  std::string name;
  CountryCode country;
  int blocks = 1;        // /24 count at reference scale (2048 blocks)
  double density = 0.3;  // host density inside prefixes
  ProfileTag::Kind profile = ProfileTag::kStandard;
  std::vector<GeoSplit> geo;  // empty = all space geolocates to `country`

  // Service shares; negative = use scenario defaults.
  double http = -1, https = -1, ssh = -1;

  // SSH daemon guard: share of SSH hosts with MaxStartups, and whether
  // they use the aggressive triple.
  double maxstartups_share = -1;
  bool aggressive_maxstartups = false;

  bool must_exist = false;  // keep even at tiny scales
};

constexpr int kReferenceBlocks = 2048;  // the sizes below assume 2^19 space

PathProfile standard_profile() {
  // Calibrated so that (a) when one back-to-back probe is lost the other
  // nearly always is too (paper: > 93%), and (b) single-origin transient
  // loss lands near the paper's ~1.4%/trial: loss lives almost entirely
  // in Bad periods, and the Good state is nearly lossless.
  PathProfile p;
  p.good_loss = 0.0002;
  p.bad_loss = 0.9975;
  p.bad_fraction = 0.004;
  p.mean_bad_duration_s = 300;
  return p;
}

PathProfile china_profile(Rng& rng) {
  PathProfile p;
  p.good_loss = rng.uniform(0.008, 0.02);
  p.bad_loss = 0.95;
  p.bad_fraction = rng.uniform(0.015, 0.05);
  p.mean_bad_duration_s = 900;
  p.latency_ms = 230;
  return p;
}

PathProfile flip_prone_profile(Rng& rng) {
  PathProfile p;
  p.good_loss = 0.0003;
  p.bad_loss = 0.99;
  p.bad_fraction = rng.uniform(0.006, 0.016);
  p.mean_bad_duration_s = 2700;  // one Bad period dominates a trial
  return p;
}

PathProfile wild_variance_profile(Rng& rng) {
  PathProfile p;
  p.good_loss = 0.002;
  p.bad_loss = 0.97;
  p.bad_fraction = rng.uniform(0.08, 0.18);
  p.mean_bad_duration_s = 7200;
  return p;
}

// Country sampling weights, shared by the generic fill and the
// procedural catalog (roughly the routed-space distribution).
struct CountryWeight {
  CountryCode cc;
  double weight;
};
const CountryWeight kCountryWeights[] = {
    {country::kUS, 0.215}, {country::kCN, 0.09},  {country::kJP, 0.05},
    {country::kDE, 0.055}, {country::kGB, 0.045}, {country::kKR, 0.03},
    {country::kRU, 0.035}, {country::kFR, 0.035}, {country::kNL, 0.025},
    {country::kBR, 0.035}, {country::kAU, 0.02},  {country::kIT, 0.015},
    {country::kCA, 0.02},  {country::kIN, 0.02},  {country::kVN, 0.015},
    {country::kID, 0.015}, {country::kTR, 0.015}, {country::kPL, 0.015},
    {country::kES, 0.015}, {country::kSE, 0.012}, {country::kTW, 0.012},
    {country::kSG, 0.012}, {country::kTH, 0.01},  {country::kMX, 0.01},
    {country::kAR, 0.008}, {country::kCO, 0.008}, {country::kCL, 0.008},
    {country::kUA, 0.012}, {country::kRO, 0.01},  {country::kAT, 0.008},
    {country::kCZ, 0.008}, {country::kCH, 0.008}, {country::kHK, 0.01},
    {country::kZA, 0.009}, {country::kBD, 0.011}, {country::kEG, 0.006},
    {country::kNG, 0.005}, {country::kPE, 0.005}, {country::kVE, 0.004},
    {country::kEC, 0.003}, {country::kEE, 0.006}, {country::kKZ, 0.004},
    {country::kAM, 0.002}, {country::kAL, 0.002}, {country::kUY, 0.003},
};

double total_country_weight() {
  double total = 0;
  for (const auto& w : kCountryWeights) total += w.weight;
  return total;
}

CountryCode sample_country(Rng& rng, double total_weight) {
  double draw = rng.uniform() * total_weight;
  for (const auto& w : kCountryWeights) {
    draw -= w.weight;
    if (draw <= 0) return w.cc;
  }
  return country::kUS;
}

// ----------------------------------------------------------- builder ----

class Builder {
 public:
  Builder(const ScenarioConfig& config, std::vector<OriginSpec> origins)
      : config_(config), rng_(net::mix_u64(config.seed, 0xB01DE4ULL)) {
    assert(config.universe_size % 256 == 0);
    world_.seed = config.seed;
    world_.universe_size = config.universe_size;
    world_.origins = std::move(origins);
    // In procedural mode the named scenario occupies only the override
    // region; the catalog owns everything above it.
    const std::uint32_t named_span =
        config.procedural ? config.procedural_override : config.universe_size;
    assert(!config.procedural ||
           (config.procedural_override % 256 == 0 &&
            config.procedural_override <= config.universe_size));
    total_blocks_ = named_span / 256;
    scale_ = static_cast<double>(total_blocks_) / kReferenceBlocks;
    world_.paths.set_default_profile(standard_profile());
    for (OriginId i = 0; i < world_.origins.size(); ++i) {
      world_.paths.set_origin_multiplier(i,
                                         world_.origins[i].loss_multiplier);
    }
  }

  World build();

 private:
  // Number of /24 blocks actually allocated for a reference-scale size.
  // Fractional parts are resolved by a deterministic coin flip so that
  // the expected share of every archetype is preserved at any scale
  // (plain rounding would over-represent 1-block ASes below reference
  // scale: lround(0.5) keeps all of them).
  int scaled_blocks(int reference, bool must_exist) {
    const double exact = reference * scale_;
    const int base = static_cast<int>(exact);
    const double fraction = exact - base;
    int scaled = base;
    if (fraction > 0 && rng_.bernoulli(fraction)) ++scaled;
    if (scaled > 0) return scaled;
    return must_exist ? 1 : 0;
  }

  // Allocates the AS, its prefixes, and records its generation metadata.
  // Returns kNoAs when the AS scales away entirely.
  AsId add(const AsSpec& spec) {
    return add_impl(spec, scaled_blocks(spec.blocks, spec.must_exist));
  }  // NOLINT(readability-make-member-function-const): draws from rng_
  AsId add_impl(const AsSpec& spec, int blocks);

  [[nodiscard]] int remaining_blocks() const {
    return static_cast<int>(total_blocks_ - next_block_);
  }

  OriginMask by_code(std::initializer_list<std::string_view> codes) const {
    return mask_of(world_.origins, codes);
  }
  OriginMask except_code(std::initializer_list<std::string_view> codes) const {
    return mask_all_except(world_.origins, codes);
  }
  OriginMask non_us() const {
    OriginMask mask = 0;
    for (OriginId i = 0; i < world_.origins.size(); ++i) {
      if (world_.origins[i].country != country::kUS) mask |= origin_bit(i);
    }
    return mask;
  }
  OriginMask country_mask(CountryCode c, bool invert) const {
    OriginMask mask = 0;
    for (OriginId i = 0; i < world_.origins.size(); ++i) {
      if ((world_.origins[i].country == c) != invert) mask |= origin_bit(i);
    }
    return mask;
  }

  void add_block_rule(AsId as, OriginMask origins, BlockMode mode,
                      double fraction = 1.0, int start_trial = 0,
                      std::optional<proto::Protocol> protocol = std::nullopt) {
    if (as == kNoAs || origins == 0) return;
    BlockRule rule;
    rule.origins = origins;
    rule.mode = mode;
    rule.host_fraction = fraction;
    rule.start_trial = start_trial;
    rule.protocol = protocol;
    world_.policies.edit(as).blocks.push_back(rule);
  }

  void add_special_ases();
  void add_generic_fill();
  void build_catalog();
  void materialize_procedural_region();
  void generate_hosts();

  // Applies the reputation-driven blocking draws for one generic AS
  // (full-AS blocks and partial per-origin host blocks). Shared by the
  // generic fill and the procedural catalog; draws from rng_.
  void add_reputation_rules(AsId as);


  const ScenarioConfig& config_;
  World world_;
  Rng rng_;
  std::uint32_t total_blocks_ = 0;
  std::uint32_t next_block_ = 0;
  double scale_ = 1.0;

  struct GenMeta {
    double density = 0.3;
    double http = -1, https = -1, ssh = -1;
    double maxstartups_share = -1;
    bool aggressive_maxstartups = false;
  };
  std::map<AsId, GenMeta> meta_;

  // Resolves the per-AS generation metadata (scenario defaults vs
  // overrides, plus the per-AS flaky coin) into hostgen parameters.
  [[nodiscard]] HostGenParams resolve_params(AsId as,
                                             const GenMeta& meta) const;
};

HostGenParams Builder::resolve_params(AsId as, const GenMeta& meta) const {
  HostGenParams params;
  params.density = meta.density;
  params.http = meta.http >= 0 ? meta.http : config_.http_share;
  params.https = meta.https >= 0 ? meta.https : config_.https_share;
  params.ssh = meta.ssh >= 0 ? meta.ssh : config_.ssh_share;
  params.middlebox_share = config_.middlebox_share;
  // Flakiness clusters by network: most ASes have none, a third carry
  // the whole population (so per-AS transient rates can be *identical*
  // — zero — across origins for the majority of ASes, as in Fig 9).
  const bool flaky_as = net::mix_u64(config_.seed, as, 0xF1AB5u) % 100 < 35;
  params.flaky_share = flaky_as ? config_.flaky_host_share / 0.35 : 0.0;
  params.flaky_live_percent = config_.flaky_live_percent;
  params.churny_share = config_.churny_host_share;
  params.churny_live_percent = config_.churny_live_percent;
  params.maxstartups_share = meta.maxstartups_share >= 0
                                 ? meta.maxstartups_share
                                 : config_.maxstartups_share;
  params.aggressive_maxstartups = meta.aggressive_maxstartups;
  return params;
}

AsId Builder::add_impl(const AsSpec& spec, int blocks) {
  if (blocks == 0 || remaining_blocks() < blocks) return kNoAs;

  const AsId as = world_.topology.add_as(spec.name, spec.country);

  // Carve the block count into prefixes, honouring geo splits at /24
  // granularity.
  std::vector<std::pair<int, CountryCode>> shares;
  if (spec.geo.empty()) {
    shares.emplace_back(blocks, spec.country);
  } else {
    int assigned = 0;
    for (std::size_t i = 0; i < spec.geo.size(); ++i) {
      int share = (i + 1 == spec.geo.size())
                      ? blocks - assigned
                      : static_cast<int>(std::lround(blocks *
                                                     spec.geo[i].fraction));
      share = std::clamp(share, 0, blocks - assigned);
      if (share > 0) shares.emplace_back(share, spec.geo[i].country);
      assigned += share;
    }
    if (assigned < blocks && !shares.empty()) {
      shares.back().first += blocks - assigned;
    }
  }
  for (const auto& [count, geo_country] : shares) {
    for (int i = 0; i < count; ++i) {
      const Prefix prefix(Ipv4Addr(next_block_ * 256u), 24);
      world_.topology.add_prefix(as, prefix, geo_country);
      ++next_block_;
    }
  }

  // Path profile.
  Rng profile_rng(net::mix_u64(config_.seed, as, 0x9F0F11Eu));
  switch (spec.profile) {
    case ProfileTag::kStandard:
      break;  // table default
    case ProfileTag::kChina:
      world_.paths.set_as_profile(as, china_profile(profile_rng));
      break;
    case ProfileTag::kFlipProne:
      world_.paths.set_as_profile(as, flip_prone_profile(profile_rng));
      break;
    case ProfileTag::kWildVariance:
      world_.paths.set_as_profile(as, wild_variance_profile(profile_rng));
      break;
  }

  GenMeta meta;
  meta.density = spec.density;
  meta.http = spec.http;
  meta.https = spec.https;
  meta.ssh = spec.ssh;
  meta.maxstartups_share = spec.maxstartups_share;
  meta.aggressive_maxstartups = spec.aggressive_maxstartups;
  meta_[as] = meta;
  return as;
}

void Builder::add_special_ases() {
  namespace c = country;
  const auto kStd = ProfileTag::kStandard;
  const auto kChinaP = ProfileTag::kChina;
  const auto kFlip = ProfileTag::kFlipProne;
  const auto kWild = ProfileTag::kWildVariance;

  // ---- Censys-blocking hosting providers (Section 4.1) ----------------
  {
    AsSpec spec{.name = "DXTL Tseung Kwan O Service",
                .country = c::kHK,
                .blocks = 20,
                .density = 0.5,
                .profile = kStd,
                .geo = {{0.40, c::kHK}, {0.30, c::kBD}, {0.30, c::kZA}},
                .http = 0.95,
                .https = 0.28,
                .ssh = 0.30,
                .must_exist = true};
    const AsId as = add(spec);
    add_block_rule(as, by_code({"CEN"}), BlockMode::kL4Drop);
  }
  {
    AsSpec spec{.name = "EGI Hosting",
                .country = c::kUS,
                .blocks = 8,
                .density = 0.45,
                .http = 0.92,
                .https = 0.30,
                .ssh = 0.40,
                .maxstartups_share = 0.85,
                .aggressive_maxstartups = true,
                .must_exist = true};
    const AsId as = add(spec);
    // 90% blocked in trials 1-2; completely blocked by trial 3.
    add_block_rule(as, by_code({"CEN"}), BlockMode::kL4Drop, 0.9, 0);
    add_block_rule(as, by_code({"CEN"}), BlockMode::kL4Drop, 1.0, 2);
  }
  {
    AsSpec spec{.name = "Enzu",
                .country = c::kUS,
                .blocks = 6,
                .density = 0.45,
                .http = 0.92,
                .https = 0.30,
                .ssh = 0.25,
                .must_exist = true};
    add_block_rule(add(spec), by_code({"CEN"}), BlockMode::kL4Drop);
  }

  // ---- Italy: persistent lossy paths from Germany (Section 4.2) -------
  {
    AsSpec spec{.name = "Telecom Italia",
                .country = c::kIT,
                .blocks = 20,
                .density = 0.4,
                .must_exist = true};
    const AsId as = add(spec);
    PathProfile base;
    base.good_loss = 0.008;
    base.bad_loss = 0.92;
    base.bad_fraction = 0.14;
    base.mean_bad_duration_s = 1800;
    base.latency_ms = 120;
    world_.paths.set_as_profile(as, base);
    PathProfile from_de = base;
    from_de.good_loss = 0.02;
    from_de.bad_loss = 0.99;
    from_de.bad_fraction = 0.72;
    from_de.mean_bad_duration_s = 5400;
    PathProfile from_br;  // TIM Brasil subsidiary: clean path
    from_br.good_loss = 0.0003;
    from_br.bad_fraction = 0.001;
    from_br.latency_ms = 180;
    const OriginId de = world_.origin_id("DE");
    const OriginId br = world_.origin_id("BR");
    if (de != ~OriginId{0}) world_.paths.set_pair_override(de, as, from_de);
    if (br != ~OriginId{0}) world_.paths.set_pair_override(br, as, from_br);
    add_block_rule(as, by_code({"CEN"}), BlockMode::kL4Drop, 0.06);
  }
  {
    AsSpec spec{.name = "Telecom Italia Sparkle",
                .country = c::kIT,
                .blocks = 12,
                .density = 0.4,
                .must_exist = true};
    const AsId as = add(spec);
    PathProfile base;
    base.good_loss = 0.006;
    base.bad_loss = 0.92;
    base.bad_fraction = 0.10;
    base.mean_bad_duration_s = 1800;
    base.latency_ms = 120;
    world_.paths.set_as_profile(as, base);
    PathProfile from_de = base;
    from_de.good_loss = 0.03;
    from_de.bad_loss = 0.995;
    from_de.bad_fraction = 0.78;
    from_de.mean_bad_duration_s = 7200;
    PathProfile from_br;
    from_br.good_loss = 0.0003;
    from_br.bad_fraction = 0.001;
    from_br.latency_ms = 180;
    const OriginId de = world_.origin_id("DE");
    const OriginId br = world_.origin_id("BR");
    if (de != ~OriginId{0}) world_.paths.set_pair_override(de, as, from_de);
    if (br != ~OriginId{0}) world_.paths.set_pair_override(br, as, from_br);
  }

  // ---- Akamai: huge CDN, high absolute transient counts ---------------
  {
    AsSpec spec{.name = "Akamai",
                .country = c::kUS,
                .blocks = 30,
                .density = 0.55,
                .profile = kFlip,
                .must_exist = true};
    const AsId as = add(spec);
    const OriginId de = world_.origin_id("DE");
    if (de != ~OriginId{0}) {
      add_block_rule(as, origin_bit(de), BlockMode::kL4Drop, 0.008);
    }
  }

  // ---- China (Section 5.2, Table 3, Section 6) ------------------------
  {
    AsSpec spec{.name = "Alibaba",
                .country = c::kCN,
                .blocks = 24,
                .density = 0.45,
                .profile = kChinaP,
                .http = 0.55,
                .https = 0.4,
                .ssh = 0.6,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).temporal_rst = TemporalRstRule{};
    }
  }
  {
    AsSpec spec{.name = "HZ Alibaba Advertisement",
                .country = c::kCN,
                .blocks = 20,
                .density = 0.45,
                .profile = kChinaP,
                .http = 0.6,
                .https = 0.45,
                .ssh = 0.55,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      // Biggest transient spread in Table 3: long unstable Bad periods.
      Rng r(net::mix_u64(config_.seed, as, 0xA1B2u));
      PathProfile p = china_profile(r);
      p.bad_fraction = 0.16;
      p.mean_bad_duration_s = 4800;
      world_.paths.set_as_profile(as, p);
      world_.policies.edit(as).temporal_rst = TemporalRstRule{};
    }
  }
  add({.name = "Tencent", .country = c::kCN, .blocks = 16, .density = 0.4,
       .profile = kChinaP, .must_exist = true});
  add({.name = "China Telecom", .country = c::kCN, .blocks = 40,
       .density = 0.25, .profile = kChinaP, .must_exist = true});
  add({.name = "China Unicom", .country = c::kCN, .blocks = 30,
       .density = 0.25, .profile = kChinaP});
  add({.name = "Baidu", .country = c::kCN, .blocks = 8, .density = 0.4,
       .profile = kChinaP});

  // ---- ABCDE Group: blocks US space + wild transients (Sections 4.2/5.1)
  {
    AsSpec spec{.name = "ABCDE Group Co.",
                .country = c::kHK,
                .blocks = 16,
                .density = 0.5,
                .profile = kWild,
                .must_exist = true};
    const AsId as = add(spec);
    add_block_rule(as, by_code({"US1", "US64", "BR", "CEN"}),
                   BlockMode::kL4Drop, 0.4);
  }
  {
    AsSpec spec{.name = "Psychz Networks",
                .country = c::kUS,
                .blocks = 10,
                .density = 0.45,
                .profile = kWild,
                .maxstartups_share = 0.85,
                .aggressive_maxstartups = true,
                .must_exist = true};
    add(spec);
  }

  // ---- Eastern-European hosters that block the fresh-IP origins -------
  for (const auto& [name, cc, blocks] :
       std::initializer_list<std::tuple<const char*, CountryCode, int>>{
           {"SantaPlus", c::kEE, 2},
           {"Baltic Hosting", c::kEE, 1},
           {"VolgaHost", c::kRU, 1},
           {"SibirServers", c::kRU, 1},
           {"KyivColo", c::kUA, 1},
           {"BucharestBox", c::kRO, 1}}) {
    AsSpec spec{.name = name, .country = cc, .blocks = blocks,
                .density = 0.5, .must_exist = (cc == c::kEE)};
    add_block_rule(add(spec), by_code({"BR", "JP"}), BlockMode::kL4Drop);
  }

  // ---- American niche networks (Section 4.2, Fig 5) -------------------
  // Finance/health companies that block Brazil outright.
  for (int i = 0; i < 14; ++i) {
    static constexpr const char* kNames[] = {
        "First Commerce Bancshares", "Heartland Health Net",
        "Prairie Mutual Insurance",  "Summit Medical Systems",
        "Lakeside Credit Union",     "Pinnacle Care Partners"};
    AsSpec spec{.name = std::string(kNames[i % 6]) + " " +
                        std::to_string(i / 6 + 1),
                .country = c::kUS,
                .blocks = 1,
                .density = 0.18};
    add_block_rule(add(spec), by_code({"BR"}), BlockMode::kL4Drop);
  }
  // Tegna Inc.: digital media group blocking every non-US origin.
  for (int i = 0; i < 6; ++i) {
    AsSpec spec{.name = "Tegna Station " + std::to_string(i + 1),
                .country = c::kUS,
                .blocks = 1,
                .density = 0.3};
    add_block_rule(add(spec), non_us(), BlockMode::kL4Drop);
  }
  // Government networks (40% of the full-AS Censys blocks) and consumer
  // businesses (22%, the Jack-in-the-Box pattern).
  for (int i = 0; i < 12; ++i) {
    AsSpec spec{.name = "US Federal Agency " + std::to_string(i + 1),
                .country = c::kUS,
                .blocks = 1,
                .density = 0.18};
    add_block_rule(add(spec), by_code({"CEN"}), BlockMode::kL4Drop);
  }
  for (int i = 0; i < 6; ++i) {
    static constexpr const char* kBiz[] = {
        "Jack in the Box", "Retail Chain Net", "Dine Brands Digital",
        "Parcel Logistics Co"};
    AsSpec spec{.name = std::string(kBiz[i % 4]) + (i < 4 ? "" : " 2"),
                .country = c::kUS,
                .blocks = 1,
                .density = 0.25};
    add_block_rule(add(spec), by_code({"CEN"}), BlockMode::kL4Drop);
  }

  // ---- Rate-detecting IDSes (Section 4.3) ------------------------------
  {
    AsSpec spec{.name = "Ruhr-Universitaet Bochum",
                .country = c::kDE,
                .blocks = 4,
                .density = 0.35,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      RateIdsRule ids;
      // Trips roughly two hours into the first 2-probe scan.
      ids.probe_threshold = static_cast<std::uint32_t>(
          world_.topology.as_info(as).address_count() * 2 * 2.0 / 21.0);
      world_.policies.edit(as).rate_ids = ids;
    }
  }
  {
    AsSpec spec{.name = "SK Broadband",
                .country = c::kKR,
                .blocks = 12,
                .density = 0.35,
                .ssh = 0.5,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      RateIdsRule ids;
      ids.protocol = proto::Protocol::kSsh;
      ids.probe_threshold = static_cast<std::uint32_t>(
          world_.topology.as_info(as).address_count() * 2 * 1.5 / 21.0);
      world_.policies.edit(as).rate_ids = ids;
    }
  }

  // ---- Japan: in-country-only access (Section 4.4) --------------------
  {
    AsSpec spec{.name = "Bekkoame Internet",
                .country = c::kJP,
                .blocks = 8,
                .density = 0.5,
                .http = 0.95,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kJP}, .host_fraction = 0.10};
    }
  }
  {
    AsSpec spec{.name = "NTT Communications",
                .country = c::kJP,
                .blocks = 30,
                .density = 0.4,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kJP}, .host_fraction = 0.02};
    }
  }
  add({.name = "IIJ", .country = c::kJP, .blocks = 12, .density = 0.35});
  add({.name = "SoftBank", .country = c::kJP, .blocks = 14, .density = 0.3});
  add({.name = "KDDI", .country = c::kJP, .blocks = 12, .density = 0.3});
  {
    // Registered in Japan, space geolocating to the US, JP-only access.
    AsSpec spec{.name = "Gateway Inc",
                .country = c::kJP,
                .blocks = 3,
                .density = 0.45,
                .geo = {{1.0, c::kUS}},
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kJP}, .host_fraction = 0.25};
    }
  }
  for (int i = 0; i < 5; ++i) {
    AsSpec spec{.name = "JP Hosting " + std::to_string(i + 1),
                .country = c::kJP,
                .blocks = 1,
                .density = 0.4};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kJP}, .host_fraction = 0.06};
    }
  }

  // ---- Australia -------------------------------------------------------
  add({.name = "Telstra", .country = c::kAU, .blocks = 14, .density = 0.3});
  add({.name = "Optus", .country = c::kAU, .blocks = 10, .density = 0.3});
  add({.name = "TPG Telecom", .country = c::kAU, .blocks = 8, .density = 0.3});
  add({.name = "AARNet", .country = c::kAU, .blocks = 4, .density = 0.25});
  {
    AsSpec spec{.name = "WebCentral",
                .country = c::kAU,
                .blocks = 3,
                .density = 0.5,
                .http = 0.95,
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kAU}, .host_fraction = 0.35};
    }
  }
  {
    // Cloudflare anycast misconfiguration: one quarter of this space is
    // reachable only from Australia while geolocating to Europe/US.
    AsSpec spec{.name = "Cloudflare",
                .country = c::kUS,
                .blocks = 10,
                .density = 0.6,
                .geo = {{0.30, c::kUS},
                        {0.20, c::kDE},
                        {0.20, c::kGB},
                        {0.15, c::kNL},
                        {0.15, c::kFR}},
                .must_exist = true};
    const AsId as = add(spec);
    if (as != kNoAs) {
      world_.policies.edit(as).geo =
          GeoRestriction{.allowed_countries = {c::kAU}, .host_fraction = 0.02};
    }
  }

  // ---- WA K-20: serves Brazil a "Blocked Site" page (Section 4.4) -----
  {
    AsSpec spec{.name = "WA K-20 Telecommunications",
                .country = c::kUS,
                .blocks = 4,
                .density = 0.35,
                .http = 0.95,
                .https = 0.05,
                .ssh = 0.02,
                .must_exist = true};
    const AsId as = add(spec);
    add_block_rule(as, by_code({"BR"}), BlockMode::kServeBlockPage, 1.0, 0,
                   proto::Protocol::kHttp);
    add_block_rule(as, except_code({"BR"}), BlockMode::kL7Drop);
  }

  // ---- Paths that are consistently worst from Australia (Section 5.1) -
  const OriginId au = world_.origin_id("AU");
  auto au_worst = [&](AsId as) {
    if (as == kNoAs || au == ~OriginId{0}) return;
    PathProfile p;
    p.good_loss = 0.015;
    p.bad_loss = 0.95;
    p.bad_fraction = 0.10;
    p.mean_bad_duration_s = 2400;
    p.latency_ms = 320;
    world_.paths.set_pair_override(au, as, p);
  };
  {
    AsSpec spec{.name = "Kazakhtelecom", .country = c::kKZ, .blocks = 8,
                .density = 0.3, .must_exist = true};
    au_worst(add(spec));
  }
  au_worst(add({.name = "Rostelecom", .country = c::kRU, .blocks = 20,
                .density = 0.3}));
  au_worst(add({.name = "MTS", .country = c::kRU, .blocks = 10,
                .density = 0.3}));
  add({.name = "VimpelCom", .country = c::kRU, .blocks = 8, .density = 0.3});
  au_worst(add({.name = "CenturyLink", .country = c::kUS, .blocks = 10,
                .density = 0.25}));
  au_worst(add({.name = "Frontier Communications", .country = c::kUS,
                .blocks = 8, .density = 0.25}));
  au_worst(add({.name = "Windstream", .country = c::kUS, .blocks = 6,
                .density = 0.25}));

  // ---- Large flip-prone clouds/ISPs (Section 5.1) ----------------------
  add({.name = "Amazon", .country = c::kUS, .blocks = 40, .density = 0.45,
       .profile = kFlip, .must_exist = true});
  add({.name = "Google", .country = c::kUS, .blocks = 24, .density = 0.4,
       .profile = kFlip, .must_exist = true});
  add({.name = "Microsoft", .country = c::kUS, .blocks = 20, .density = 0.4,
       .profile = kFlip});
  add({.name = "Digital Ocean", .country = c::kUS, .blocks = 16,
       .density = 0.5, .profile = kFlip, .must_exist = true});
  add({.name = "OVH", .country = c::kFR, .blocks = 14, .density = 0.5,
       .profile = kFlip});
  add({.name = "Hetzner", .country = c::kDE, .blocks = 12, .density = 0.5,
       .profile = kFlip});
  add({.name = "Comcast", .country = c::kUS, .blocks = 30, .density = 0.2});
  add({.name = "Charter", .country = c::kUS, .blocks = 20, .density = 0.2});
  add({.name = "AT&T", .country = c::kUS, .blocks = 24, .density = 0.2});
  add({.name = "Verizon", .country = c::kUS, .blocks = 20, .density = 0.2});
  add({.name = "Level3", .country = c::kUS, .blocks = 12, .density = 0.25});

  // ---- Niche-country dominant ISPs (Table 2 / Table 5) -----------------
  struct Niche {
    const char* name;
    CountryCode cc;
    int blocks;
    std::vector<std::string_view> blocked;
    double fraction;
  };
  const std::vector<Niche> niches = {
           Niche{"Telecom Argentina", c::kAR, 8, {"DE"}, 0.10},
           Niche{"CANTV", c::kVE, 5, {"DE"}, 0.08},
           Niche{"Telconet", c::kEC, 4, {"DE", "CEN", "US1"}, 0.10},
           Niche{"Armentel", c::kAM, 3, {"DE"}, 0.125},
           Niche{"Libya Telecom", c::kLY, 1, {"DE"}, 0.5},
           Niche{"LTT Libya", c::kLY, 1, {"CEN"}, 0.35},
           Niche{"Sudatel", c::kSD, 2, {"DE"}, 0.35},
           Niche{"MobiCom Mongolia", c::kMN, 2, {"CEN"}, 0.32},
           Niche{"Onatel Burkina", c::kBF, 1, {"JP", "US1", "CEN"}, 0.38},
           Niche{"Malawi Net", c::kMW, 1, {"JP", "US1", "CEN"}, 0.28},
           Niche{"Albtelecom", c::kAL, 2, {"BR", "JP"}, 0.10},
           Niche{"A1 Telekom Austria", c::kAT, 6, {"BR", "JP"}, 0.078},
  };
  for (const Niche& n : niches) {
    AsSpec spec{.name = n.name, .country = n.cc, .blocks = n.blocks,
                .density = 0.35};
    add_block_rule(add(spec), mask_of(world_.origins, n.blocked),
                   BlockMode::kL4Drop, n.fraction);
  }
  // Libya's third network, unblocked, so no single ISP dominates there.
  add({.name = "Libyan Spider", .country = c::kLY, .blocks = 1,
       .density = 0.35});
  // Bangladesh's own carriers: the country must not consist solely of
  // DXTL's announced space, or its Censys cell degenerates to 100%.
  add({.name = "Bangladesh Telecom", .country = c::kBD, .blocks = 8,
       .density = 0.3, .must_exist = true});
  add({.name = "Grameenphone", .country = c::kBD, .blocks = 4,
       .density = 0.3});
  // Sudan/CEN partial block lives on a second network.
  add_block_rule(add({.name = "Canar Telecom", .country = c::kSD, .blocks = 1,
                      .density = 0.35}),
                 by_code({"CEN"}), BlockMode::kL4Drop, 0.30);
}

void Builder::add_reputation_rules(AsId as) {
  // Reputation-driven blocking: full-AS blocks (rare, mostly Censys)
  // and partial per-origin host blocks (ordinary firewall decisions).
  for (OriginId o = 0; o < world_.origins.size(); ++o) {
    const double rep = world_.origins[o].scan_reputation;
    const double p_full = 0.0004 + 0.009 * rep * rep;
    const double p_partial = 0.006 + 0.045 * rep;
    if (rng_.bernoulli(p_full)) {
      add_block_rule(as, origin_bit(o), BlockMode::kL4Drop);
    } else if (rng_.bernoulli(p_partial)) {
      const double fraction = rng_.uniform(0.02, 0.15);
      const BlockMode mode =
          rng_.bernoulli(0.85) ? BlockMode::kL4Drop : BlockMode::kL7Drop;
      std::optional<proto::Protocol> protocol;
      if (rng_.bernoulli(0.25)) {
        protocol = proto::kAllProtocols[rng_.below(3)];
      }
      add_block_rule(as, origin_bit(o), mode, fraction, 0, protocol);
    }
  }
}

void Builder::add_generic_fill() {
  namespace c = country;
  const double total_weight = total_country_weight();

  int counter = 0;
  while (remaining_blocks() > 0) {
    const CountryCode cc = sample_country(rng_, total_weight);
    int blocks = static_cast<int>(std::lround(rng_.lognormal(1.0, 1.0)));
    blocks = std::clamp(blocks, 1, std::max(1, remaining_blocks()));
    blocks = std::min(blocks, 40);

    AsSpec spec;
    spec.name = "ISP " + cc.to_string() + "-" + std::to_string(++counter);
    spec.country = cc;
    spec.density = rng_.uniform(0.15, 0.55);
    spec.profile = cc == c::kCN ? ProfileTag::kChina
                                : (rng_.bernoulli(0.06)
                                       ? ProfileTag::kFlipProne
                                       : ProfileTag::kStandard);
    // A few networks are SSH-fragile (aggressive MaxStartups fleets).
    if (rng_.bernoulli(0.03)) {
      spec.maxstartups_share = 0.85;
      spec.aggressive_maxstartups = true;
    }
    const AsId as = add_impl(spec, blocks);
    if (as == kNoAs) break;
    add_reputation_rules(as);
  }
}

void Builder::build_catalog() {
  namespace c = country;
  // The catalog: generic AS archetypes that own the procedural space.
  // Registered as ordinary (prefix-less) ASes so path profiles, outage
  // schedules, and block policies attach through the existing engines;
  // only *stateless* policies are drawn here — rate-IDS and temporal-RST
  // rules stay confined to the override region, which is what lets the
  // parallel executor's deferred lane stay bounded at full-IPv4 scale.
  constexpr int kCatalogEntries = 192;
  const double total_weight = total_country_weight();

  world_.procedural.configure(config_.seed, config_.procedural_override,
                              config_.universe_size);
  for (int i = 0; i < kCatalogEntries; ++i) {
    const CountryCode cc = sample_country(rng_, total_weight);
    const AsId as = world_.topology.add_as(
        "Procedural " + cc.to_string() + "-" + std::to_string(i + 1), cc);

    int weight = static_cast<int>(std::lround(rng_.lognormal(1.0, 1.0)));
    weight = std::clamp(weight, 1, 40);

    GenMeta meta;
    meta.density = rng_.uniform(0.15, 0.55);
    if (rng_.bernoulli(0.03)) {
      meta.maxstartups_share = 0.85;
      meta.aggressive_maxstartups = true;
    }
    meta_[as] = meta;

    // Same profile classes, same per-AS substream, as add_impl.
    Rng profile_rng(net::mix_u64(config_.seed, as, 0x9F0F11Eu));
    if (cc == c::kCN) {
      world_.paths.set_as_profile(as, china_profile(profile_rng));
    } else if (rng_.bernoulli(0.06)) {
      world_.paths.set_as_profile(as, flip_prone_profile(profile_rng));
    }

    add_reputation_rules(as);

    ProceduralEntry entry;
    entry.as = as;
    entry.country = cc;
    entry.params = resolve_params(as, meta);
    entry.weight = static_cast<std::uint32_t>(weight);
    world_.procedural.add_entry(entry);
  }
  world_.procedural.freeze();
}

void Builder::materialize_procedural_region() {
  // Test-only twin construction: replay the catalog's block assignment
  // into ordinary prefixes, then turn derivation off. generate_hosts()
  // picks the new prefixes up through meta_, and hostgen purity makes
  // the populations bit-identical.
  const std::uint32_t first_block = config_.procedural_override / 256;
  const std::uint32_t last_block = config_.universe_size / 256;
  for (std::uint32_t block = first_block; block < last_block; ++block) {
    const BlockFacts facts = world_.procedural.block_facts(block);
    if (facts.as == kNoAs) continue;
    world_.topology.add_prefix(facts.as, Prefix(Ipv4Addr(block * 256u), 24),
                               facts.country);
  }
  world_.procedural.disable();
}

void Builder::generate_hosts() {
  for (const AsInfo& as : world_.topology.ases()) {
    const HostGenParams params = resolve_params(as.id, meta_.at(as.id));
    for (const PrefixEntry& entry : as.prefixes) {
      const std::uint32_t first = entry.prefix.first().value();
      const std::uint32_t last = entry.prefix.last().value();
      for (std::uint32_t addr = first; addr <= last; ++addr) {
        if (auto host = generate_host(config_.seed, addr, as.id, params)) {
          world_.hosts.add(*host);
        }
      }
    }
  }
}

World Builder::build() {
  world_.flaky_miss_probability = config_.flaky_miss_probability;
  add_special_ases();
  add_generic_fill();
  if (config_.procedural) {
    build_catalog();
    if (config_.materialize_procedural) materialize_procedural_region();
  }
  world_.topology.freeze();
  generate_hosts();
  world_.hosts.freeze();

  // Outage configuration: Australia is burst-prone.
  world_.outages.origin_rate_multiplier.assign(world_.origins.size(), 1.0);
  for (OriginId i = 0; i < world_.origins.size(); ++i) {
    if (world_.origins[i].code == "AU") {
      world_.outages.origin_rate_multiplier[i] = 2.5;
    }
  }
  return std::move(world_);
}

}  // namespace

std::vector<OriginSpec> paper_origins(std::uint32_t universe_size) {
  namespace c = country;
  std::vector<OriginSpec> origins;
  origins.push_back(make_origin("AU", "Australia", c::kAU,
                                OriginKind::kAcademic,
                                source_block(universe_size, 0), 1, 0.30, 1.6));
  origins.push_back(make_origin("BR", "Brazil", c::kBR, OriginKind::kAcademic,
                                source_block(universe_size, 1), 1, 0.0, 1.15));
  origins.push_back(make_origin("DE", "Germany", c::kDE, OriginKind::kAcademic,
                                source_block(universe_size, 2), 1, 0.30, 1.0));
  origins.push_back(make_origin("JP", "Japan", c::kJP, OriginKind::kAcademic,
                                source_block(universe_size, 3), 1, 0.0, 1.0));
  origins.push_back(make_origin("US1", "US 1 IP", c::kUS,
                                OriginKind::kAcademic,
                                source_block(universe_size, 4), 1, 0.15, 0.9));
  origins.push_back(make_origin("US64", "US 64 IPs", c::kUS,
                                OriginKind::kAcademic,
                                source_block(universe_size, 5), 64, 0.15,
                                0.9));
  origins.push_back(make_origin("CEN", "Censys", c::kUS,
                                OriginKind::kCommercial,
                                source_block(universe_size, 6), 1, 1.0, 1.0));
  return origins;
}

std::vector<OriginSpec> paper_origins_with_carinet(
    std::uint32_t universe_size) {
  auto origins = paper_origins(universe_size);
  origins.push_back(make_origin("CAR", "Carinet", country::kUS,
                                OriginKind::kCloud,
                                source_block(universe_size, 7), 1, 0.5, 1.0));
  return origins;
}

std::vector<OriginSpec> colocated_origins(std::uint32_t universe_size) {
  namespace c = country;
  std::vector<OriginSpec> origins;
  origins.push_back(make_origin("AU", "Australia", c::kAU,
                                OriginKind::kAcademic,
                                source_block(universe_size, 0), 1, 0.30, 1.6));
  origins.push_back(make_origin("DE", "Germany", c::kDE, OriginKind::kAcademic,
                                source_block(universe_size, 2), 1, 0.30, 1.0));
  origins.push_back(make_origin("JP", "Japan", c::kJP, OriginKind::kAcademic,
                                source_block(universe_size, 3), 1, 0.0, 1.0));
  origins.push_back(make_origin("US1", "US 1 IP", c::kUS,
                                OriginKind::kAcademic,
                                source_block(universe_size, 4), 1, 0.15, 0.9));
  // Fresh address range: the DXTL/EGI/Enzu rules key on the old "CEN"
  // identity and do not follow the new block (Section 7's confirmation).
  origins.push_back(make_origin("CEN*", "Censys (new IPs)", c::kUS,
                                OriginKind::kCommercial,
                                source_block(universe_size, 8), 1, 0.10, 1.0));
  // The three colocated Tier-1s: fresh /24s, shared data center.
  OriginSpec he = make_origin("HE", "Hurricane Electric", c::kUS,
                              OriginKind::kCloud,
                              source_block(universe_size, 9), 1, 0.0, 0.98);
  he.colocation_group = 0;
  OriginSpec ntt = make_origin("NTT", "NTT America", c::kUS,
                               OriginKind::kCloud,
                               source_block(universe_size, 10), 1, 0.0, 1.0);
  ntt.colocation_group = 0;
  OriginSpec telia = make_origin("TELIA", "Telia Carrier", c::kUS,
                                 OriginKind::kCloud,
                                 source_block(universe_size, 11), 1, 0.0,
                                 1.02);
  telia.colocation_group = 0;
  origins.push_back(std::move(he));
  origins.push_back(std::move(ntt));
  origins.push_back(std::move(telia));
  return origins;
}

OriginMask mask_of(const std::vector<OriginSpec>& origins,
                   std::span<const std::string_view> codes) {
  OriginMask mask = 0;
  for (std::string_view code : codes) {
    for (std::size_t i = 0; i < origins.size(); ++i) {
      if (origins[i].code == code) mask |= origin_bit(static_cast<OriginId>(i));
    }
  }
  return mask;
}

OriginMask mask_of(const std::vector<OriginSpec>& origins,
                   std::initializer_list<std::string_view> codes) {
  return mask_of(origins, std::span<const std::string_view>(codes.begin(),
                                                            codes.size()));
}

OriginMask mask_all_except(const std::vector<OriginSpec>& origins,
                           std::initializer_list<std::string_view> codes) {
  OriginMask mask = 0;
  for (std::size_t i = 0; i < origins.size(); ++i) {
    bool excluded = false;
    for (std::string_view code : codes) {
      if (origins[i].code == code) excluded = true;
    }
    if (!excluded) mask |= origin_bit(static_cast<OriginId>(i));
  }
  return mask;
}

World build_world(const ScenarioConfig& config,
                  std::vector<OriginSpec> origins) {
  Builder builder(config, std::move(origins));
  return builder.build();
}

}  // namespace originscan::sim
