// The policy layer: everything destination networks do *on purpose* to
// scanners. Four mechanisms from the paper:
//
//   * BlockRule      — static blocking of specific origins by an AS
//                      (firewall drop at L4, drop at L7, or a geo page),
//                      optionally only some hosts, optionally phased in
//                      at a later trial (the EGI archetype);
//   * GeoRestriction — only origins in given countries may reach the AS
//                      (Bekkoame/WebCentral "in-country only" archetypes);
//   * RateIdsRule    — an IDS that counts probes per source IP and
//                      permanently blocks IPs that exceed a threshold
//                      (Ruhr-Universität Bochum / SK Broadband archetype;
//                      the mechanism US64 evades by spreading load);
//   * TemporalRstRule— network-wide scan detection that, once tripped,
//                      makes every host RST right after the TCP handshake
//                      (the Alibaba SSH archetype).
//
// RateIds state persists across trials (the paper confirmed Bochum's
// block outlived the triggering scan); it lives in PersistentState owned
// by the experiment, not the per-trial Internet.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/vtime.h"
#include "proto/protocol.h"
#include "sim/country.h"
#include "sim/origin.h"
#include "sim/types.h"

namespace originscan::sim {

enum class BlockMode : std::uint8_t {
  kL4Drop,          // SYNs silently dropped (host looks dead)
  kL7Drop,          // TCP completes; connection then hangs (drop)
  kRstAfterAccept,  // TCP completes; immediate RST
  kServeBlockPage,  // HTTP only: serve a "Blocked Site" page instead
};

struct BlockRule {
  OriginMask origins = 0;  // origins the rule applies to
  std::optional<proto::Protocol> protocol;  // nullopt = all protocols
  BlockMode mode = BlockMode::kL4Drop;
  double host_fraction = 1.0;  // fraction of the AS's hosts affected
  int start_trial = 0;         // rule active from this trial onward
};

struct GeoRestriction {
  std::vector<CountryCode> allowed_countries;
  double host_fraction = 1.0;
};

struct RateIdsRule {
  // Probes from one source IP to this AS beyond this count trigger a
  // permanent block of that source IP.
  std::uint32_t probe_threshold = 2000;
  std::optional<proto::Protocol> protocol;  // nullopt = all
};

struct TemporalRstRule {
  proto::Protocol protocol = proto::Protocol::kSsh;
  // Detection time as a fraction of scan duration, drawn uniformly from
  // [min_detect_fraction, max_detect_fraction] per (origin, trial).
  double min_detect_fraction = 0.45;
  double max_detect_fraction = 0.95;
  // Only origins scanning from a single source IP are detected.
  bool single_ip_only = true;
};

// Per-AS policy configuration assembled by the scenario builder.
struct AsPolicies {
  std::vector<BlockRule> blocks;
  std::optional<GeoRestriction> geo;
  std::optional<RateIdsRule> rate_ids;
  std::optional<TemporalRstRule> temporal_rst;
};

class PolicyConfig {
 public:
  void set(AsId as, AsPolicies policies) { per_as_[as] = std::move(policies); }
  [[nodiscard]] const AsPolicies* find(AsId as) const {
    auto it = per_as_.find(as);
    return it == per_as_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] AsPolicies& edit(AsId as) { return per_as_[as]; }
  [[nodiscard]] const std::map<AsId, AsPolicies>& all() const {
    return per_as_;
  }

 private:
  std::map<AsId, AsPolicies> per_as_;
};

// Mutable cross-trial state: IDS probe counters and tripped blocks.
//
// Thread-safety contract: the outer `ids` map is populated once, serially
// (PolicyEngine's constructor pre-inserts an entry per rate-IDS AS), and
// never structurally mutated afterwards. The *inner* counters are guarded
// by a small array of sharded mutexes keyed by AS, so scans from origins
// with disjoint source IPs may feed the IDS concurrently. The locks live
// behind a unique_ptr so the struct stays movable (moving is only done
// while no scan is running).
struct PersistentState {
  struct IdsCounters {
    // probes seen per source IP for one AS
    std::map<std::uint32_t, std::uint32_t> probe_counts;
    // source IPs permanently blocked (value: trial when tripped)
    std::map<std::uint32_t, int> blocked_ips;
  };
  std::map<AsId, IdsCounters> ids;

  [[nodiscard]] std::mutex& ids_lock(AsId as) {
    return (*ids_locks)[as % ids_locks->size()];
  }

 private:
  std::unique_ptr<std::array<std::mutex, 16>> ids_locks =
      std::make_unique<std::array<std::mutex, 16>>();
};

// Per-scan policy evaluator. Consulted by the Internet on every probe and
// connection. Holds const configuration plus a pointer to the persistent
// IDS state it mutates.
class PolicyEngine {
 public:
  PolicyEngine(const PolicyConfig* config,
               const std::vector<OriginSpec>* origins,
               PersistentState* persistent, int trial,
               std::uint64_t trial_seed, net::VirtualTime scan_duration);

  // Decision for a SYN probe. Also feeds the IDS counters.
  enum class L4Decision : std::uint8_t { kAllow, kDrop };
  L4Decision on_probe(OriginId origin, net::Ipv4Addr src_ip, AsId as,
                      net::Ipv4Addr dst, proto::Protocol protocol,
                      net::VirtualTime t);

  // Hot-path variant: the caller already resolved the AS's policies (a
  // ProbeContext caches them per AS), so the per-probe map lookup is
  // skipped. `policies` must be config->find(as) or nullptr.
  L4Decision on_probe(const AsPolicies* policies, OriginId origin,
                      net::Ipv4Addr src_ip, AsId as, net::Ipv4Addr dst,
                      proto::Protocol protocol, net::VirtualTime t);

  // Decision applied once a TCP connection to a host is established.
  enum class L7Decision : std::uint8_t {
    kAllow,
    kDrop,            // hang the connection
    kRstAfterAccept,  // immediate RST
    kServeBlockPage,
  };
  L7Decision on_connection(OriginId origin, net::Ipv4Addr src_ip, AsId as,
                           net::Ipv4Addr dst, proto::Protocol protocol,
                           net::VirtualTime t) const;

  // Alibaba-style detection time for (as, origin) in this trial, if the
  // AS has a TemporalRstRule that applies to the origin.
  [[nodiscard]] std::optional<net::VirtualTime> temporal_rst_time(
      AsId as, OriginId origin, proto::Protocol protocol) const;

  // Whether probes to `as` feed a rate-IDS counter for this protocol —
  // i.e. whether on_probe touches order-sensitive shared state. The
  // parallel executor routes such targets to its serial lane.
  [[nodiscard]] bool rate_ids_applies(AsId as,
                                      proto::Protocol protocol) const;

 private:
  // Whether `dst` falls in the rule's affected host fraction
  // (deterministic per (as, dst, rule index)).
  [[nodiscard]] bool host_selected(AsId as, net::Ipv4Addr dst,
                                   double fraction,
                                   std::uint64_t rule_tag) const;

  const PolicyConfig* config_;
  const std::vector<OriginSpec>* origins_;
  PersistentState* persistent_;
  int trial_;
  std::uint64_t trial_seed_;
  net::VirtualTime scan_duration_;
};

}  // namespace originscan::sim
