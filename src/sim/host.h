// The edge-host population: which addresses run which services, plus the
// per-host behaviours the paper observed (middleboxes that SYN-ACK but
// never complete L7; OpenSSH MaxStartups refusal; trial-to-trial churn).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv4.h"
#include "proto/protocol.h"
#include "proto/ssh.h"
#include "sim/types.h"

namespace originscan::sim {

struct Host {
  net::Ipv4Addr addr;
  AsId as = kNoAs;

  // Bitmask over proto::Protocol (1 << index_of(p)).
  std::uint8_t services = 0;

  // A middlebox/DDoS-protection front end: responds SYN-ACK on any
  // scanned port but never completes an application handshake. These
  // hosts exist so the "restrict ground truth to L7 completions"
  // methodology has something to filter out.
  bool middlebox = false;

  // OpenSSH MaxStartups enabled on this host's SSH daemon.
  bool maxstartups_enabled = false;
  proto::MaxStartups maxstartups;

  // Probability (percent) that the host is online in any given trial;
  // models temporal churn, the source of the paper's "unknown" hosts.
  std::uint8_t live_percent = 100;

  // Marginal connectivity: when live, the host still fails to answer a
  // given origin in a given trial with World::flaky_miss_probability
  // (both probes and the L7 connect look dead together). These hosts
  // supply the paper's single-trial "unknown" population and part of the
  // transient churn.
  bool flaky = false;

  // Per-host deterministic substream seed.
  std::uint64_t seed = 0;

  [[nodiscard]] bool runs(proto::Protocol p) const {
    return (services & (1u << proto::index_of(p))) != 0;
  }
};

class HostTable {
 public:
  void add(Host host) { hosts_.push_back(host); }

  // Sorts by address and builds the lookup index. Duplicate addresses are
  // a scenario bug and abort.
  void freeze();

  [[nodiscard]] const Host* find(net::Ipv4Addr addr) const;
  [[nodiscard]] std::span<const Host> all() const { return hosts_; }
  [[nodiscard]] std::size_t size() const { return hosts_.size(); }

  // Whether the host is online during the given trial (deterministic in
  // (host seed, trial, experiment seed)).
  static bool live_in_trial(const Host& host, int trial,
                            std::uint64_t experiment_seed);

  // Count of hosts running a protocol (ignoring liveness).
  [[nodiscard]] std::size_t count_running(proto::Protocol p) const;

 private:
  std::vector<Host> hosts_;
  // addr -> index into hosts_ plus one (0 = no host), built by freeze()
  // when the populated span fits sim::kDirectMapLimit (types.h, same cap
  // as Topology's direct map); find() falls back to binary search
  // otherwise.
  std::vector<std::uint32_t> direct_;
  bool frozen_ = false;
};

}  // namespace originscan::sim
