// Enumeration of k-element subsets of {0..n-1}, used by the multi-origin
// coverage analysis (Fig 15/17/18: every pair and triad of origins).
#pragma once

#include <cstddef>
#include <vector>

namespace originscan::stats {

// All k-subsets in lexicographic order. Intended for the small n (<= ~10
// origins) this library deals in; the count is C(n, k).
std::vector<std::vector<std::size_t>> k_subsets(std::size_t n, std::size_t k);

// C(n, k) without overflow for the small arguments used here.
std::size_t binomial_coefficient(std::size_t n, std::size_t k);

}  // namespace originscan::stats
