#include "stats/combinatorics.h"

namespace originscan::stats {

std::vector<std::vector<std::size_t>> k_subsets(std::size_t n,
                                                std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> current(k);
  for (std::size_t i = 0; i < k; ++i) current[i] = i;
  for (;;) {
    out.push_back(current);
    // Advance to the next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (current[i] != i + n - k) {
        ++current[i];
        for (std::size_t j = i + 1; j < k; ++j) current[j] = current[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
    if (k == 0) return out;
  }
}

std::size_t binomial_coefficient(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace originscan::stats
