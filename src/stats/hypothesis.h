// Hypothesis tests used in the paper's Section 3 methodology:
//   * McNemar's test on paired host visibility between two origins
//     (chi-square with continuity correction; exact binomial fallback when
//     discordant pairs are few),
//   * Cochran's Q (the k-group extension the paper deliberately avoids —
//     implemented so the comparison can be reproduced),
//   * Bonferroni correction for the multiple pairwise comparisons,
//   * Spearman rank correlation with a t-approximation p-value
//     (used for host-count vs inaccessibility, and loss correlations).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace originscan::stats {

struct McNemarResult {
  // Discordant counts: b = yes/no, c = no/yes.
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  double statistic = 0;  // chi-square statistic (0 for the exact branch)
  double p_value = 1.0;
  bool exact = false;  // true when the exact binomial test was used
};

// McNemar's test from a 2x2 paired table. `a` (yes/yes) and `d` (no/no)
// are accepted for completeness but only the discordant cells matter.
McNemarResult mcnemar_test(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                           std::uint64_t d);

// Convenience: run McNemar directly on two aligned boolean visibility
// vectors (host i visible from origin X / origin Y).
McNemarResult mcnemar_test(std::span<const bool> x, std::span<const bool> y);

struct CochranQResult {
  double statistic = 0;
  double degrees_of_freedom = 0;
  double p_value = 1.0;
};

// Cochran's Q over k treatments x n subjects. `table[subject][treatment]`.
CochranQResult cochran_q(const std::vector<std::vector<bool>>& table);

// Bonferroni-adjusted p-values (clamped to 1).
std::vector<double> bonferroni(std::span<const double> p_values);

struct SpearmanResult {
  double rho = 0;
  double p_value = 1.0;
  std::size_t n = 0;
};

// Spearman rank correlation; p-value from the t-distribution
// approximation (valid for n >= ~10, the regime all our uses are in).
SpearmanResult spearman(std::span<const double> x, std::span<const double> y);

}  // namespace originscan::stats
