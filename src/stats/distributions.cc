#include "stats/distributions.h"

#include <algorithm>
#include <cmath>

namespace originscan::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// Series expansion of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for Q(a, x), valid for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

// Continued fraction for the incomplete beta (Lentz's algorithm).
double beta_continued_fraction(double x, double a, double b) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double log_gamma(double x) { return std::lgamma(x); }

double regularized_gamma_p(double a, double x) {
  if (x <= 0.0 || a <= 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_beta(double x, double a, double b) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(x, a, b) / a;
  }
  return 1.0 - front * beta_continued_fraction(1.0 - x, b, a) / b;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double chi_square_cdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

double chi_square_sf(double x, double k) {
  return std::clamp(1.0 - chi_square_cdf(x, k), 0.0, 1.0);
}

double student_t_cdf(double t, double v) {
  if (v <= 0.0) return 0.5;
  const double x = v / (v + t * t);
  const double tail = 0.5 * regularized_beta(x, v / 2.0, 0.5);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double v) {
  const double x = v / (v + t * t);
  return std::clamp(regularized_beta(x, v / 2.0, 0.5), 0.0, 1.0);
}

double binomial_two_sided_p(int k, int n) {
  if (n <= 0) return 1.0;
  // Symmetric p = 0.5 case: P(min tail) doubled, capped at 1.
  const int lo = std::min(k, n - k);
  double tail = 0.0;
  const double log_half_n = -n * std::log(2.0);
  for (int i = 0; i <= lo; ++i) {
    const double log_choose =
        log_gamma(n + 1.0) - log_gamma(i + 1.0) - log_gamma(n - i + 1.0);
    tail += std::exp(log_choose + log_half_n);
  }
  return std::min(1.0, 2.0 * tail);
}

}  // namespace originscan::stats
