#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"

namespace originscan::stats {

std::vector<double> rolling_mean(std::span<const double> xs,
                                 std::size_t window) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  window = std::max<std::size_t>(1, window);
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(xs.size(), i + window - half);
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += xs[j];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> noise_component(std::span<const double> xs,
                                    std::size_t window) {
  auto smoothed = rolling_mean(xs, window);
  for (std::size_t i = 0; i < xs.size(); ++i) smoothed[i] = xs[i] - smoothed[i];
  return smoothed;
}

BurstDetection detect_bursts(std::span<const double> xs, std::size_t window,
                             double sigma_multiplier) {
  BurstDetection result;
  result.noise = noise_component(xs, window);
  result.noise_stddev = stddev(result.noise);
  result.threshold = sigma_multiplier * result.noise_stddev;
  if (result.threshold <= 0.0) return result;
  for (std::size_t i = 0; i < result.noise.size(); ++i) {
    if (result.noise[i] > result.threshold) result.burst_indices.push_back(i);
  }
  return result;
}

std::size_t best_smoothing_window(std::span<const double> xs,
                                  std::size_t min_window,
                                  std::size_t max_window) {
  min_window = std::max<std::size_t>(1, min_window);
  max_window = std::max(min_window, max_window);
  std::size_t best = min_window;
  double best_mse = std::numeric_limits<double>::infinity();
  for (std::size_t w = min_window; w <= max_window; ++w) {
    const auto smoothed = rolling_mean(xs, w);
    double mse = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double err = xs[i] - smoothed[i];
      mse += err * err;
    }
    if (!xs.empty()) mse /= static_cast<double>(xs.size());
    // Penalize degenerate window=1 (zero error by construction) by
    // requiring real smoothing: skip windows that reproduce the series.
    if (w == 1) continue;
    if (mse < best_mse) {
      best_mse = mse;
      best = w;
    }
  }
  return best;
}

}  // namespace originscan::stats
