// Cumulative distribution functions needed by the hypothesis tests:
// standard normal, chi-square (via the regularized incomplete gamma), and
// Student's t (via the regularized incomplete beta). Implemented from
// standard continued-fraction / series forms (Numerical Recipes style) —
// accurate to ~1e-10 over the ranges the tests use.
#pragma once

namespace originscan::stats {

// Standard normal CDF.
double normal_cdf(double z);

// P(X <= x) for chi-square with k degrees of freedom.
double chi_square_cdf(double x, double k);

// Upper-tail p-value for a chi-square statistic.
double chi_square_sf(double x, double k);

// P(T <= t) for Student's t with v degrees of freedom.
double student_t_cdf(double t, double v);

// Two-sided p-value for a t statistic.
double student_t_two_sided_p(double t, double v);

// Regularized lower incomplete gamma P(a, x).
double regularized_gamma_p(double a, double x);

// Regularized incomplete beta I_x(a, b).
double regularized_beta(double x, double a, double b);

// log Gamma(x) for x > 0.
double log_gamma(double x);

// Exact binomial two-sided test: probability of a result at least as
// extreme as `k` successes in `n` trials with success probability 0.5.
// Used by the exact McNemar test when discordant pairs are few.
double binomial_two_sided_p(int k, int n);

}  // namespace originscan::stats
