// Time-series utilities implementing the paper's burst-outage detection
// (Section 5.3): smooth the hourly loss series with a centered rolling
// mean, subtract to get the noise component, and flag hours whose noise
// exceeds two standard deviations of the expected noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace originscan::stats {

// Centered rolling mean with the given window (shrinks at the edges).
std::vector<double> rolling_mean(std::span<const double> xs,
                                 std::size_t window);

// Noise component: xs - rolling_mean(xs, window).
std::vector<double> noise_component(std::span<const double> xs,
                                    std::size_t window);

struct BurstDetection {
  std::vector<std::size_t> burst_indices;  // hours flagged as bursts
  std::vector<double> noise;               // full noise component
  double noise_stddev = 0;
  double threshold = 0;  // sigma_multiplier * noise_stddev
};

// Flags indices where the positive noise deviation exceeds
// `sigma_multiplier` standard deviations of the noise (default: the
// paper's two sigma). Only positive excursions count — a burst is a spike
// in *missing* hosts.
BurstDetection detect_bursts(std::span<const double> xs, std::size_t window,
                             double sigma_multiplier = 2.0);

// Chooses the rolling-window size in [min_window, max_window] that
// minimizes the mean squared error between the smoothed and the original
// series' one-step-behind values (the paper picks ~4 hours this way).
std::size_t best_smoothing_window(std::span<const double> xs,
                                  std::size_t min_window,
                                  std::size_t max_window);

}  // namespace originscan::stats
