#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace originscan::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : Ecdf(samples, std::vector<double>(samples.size(), 1.0)) {}

Ecdf::Ecdf(std::span<const double> samples, std::span<const double> weights) {
  assert(samples.size() == weights.size());
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return samples[a] < samples[b];
  });
  values_.reserve(samples.size());
  cumulative_weight_.reserve(samples.size());
  double running = 0.0;
  for (std::size_t idx : order) {
    running += weights[idx];
    values_.push_back(samples[idx]);
    cumulative_weight_.push_back(running);
  }
  total_weight_ = running;
}

double Ecdf::at(double x) const {
  if (values_.empty() || total_weight_ <= 0.0) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - values_.begin()) - 1;
  return cumulative_weight_[idx] / total_weight_;
}

double Ecdf::quantile(double q) const {
  if (values_.empty()) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * total_weight_;
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), target);
  if (it == cumulative_weight_.end()) return values_.back();
  return values_[static_cast<std::size_t>(it - cumulative_weight_.begin())];
}

std::vector<Ecdf::Point> Ecdf::points() const {
  std::vector<Point> out;
  if (total_weight_ <= 0.0) return out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    // Collapse duplicate values to their final cumulative weight.
    if (i + 1 < values_.size() && values_[i + 1] == values_[i]) continue;
    out.push_back({values_[i], cumulative_weight_[i] / total_weight_});
  }
  return out;
}

}  // namespace originscan::stats
