// Descriptive statistics over double samples. The analysis layer reports
// medians/variances of coverage across origin combinations (Fig 15/17/18)
// and loss-rate summaries; everything funnels through these helpers.
#pragma once

#include <span>
#include <vector>

namespace originscan::stats {

double mean(std::span<const double> xs);

// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};

Summary summarize(std::span<const double> xs);

// Average ranks (1-based, ties get the mean of their positions), the
// building block for Spearman correlation.
std::vector<double> ranks(std::span<const double> xs);

}  // namespace originscan::stats
