#include "stats/hypothesis.h"

#include <cassert>
#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace originscan::stats {

McNemarResult mcnemar_test(std::uint64_t /*a*/, std::uint64_t b,
                           std::uint64_t c, std::uint64_t /*d*/) {
  McNemarResult result;
  result.b = b;
  result.c = c;
  const std::uint64_t n = b + c;
  if (n == 0) return result;  // no discordance: p = 1

  // Standard practice: exact binomial when the discordant count is small,
  // chi-square with Edwards' continuity correction otherwise.
  if (n < 25) {
    result.exact = true;
    result.p_value =
        binomial_two_sided_p(static_cast<int>(b), static_cast<int>(n));
    return result;
  }
  const double diff = std::abs(static_cast<double>(b) - static_cast<double>(c));
  const double corrected = std::max(0.0, diff - 1.0);
  result.statistic = corrected * corrected / static_cast<double>(n);
  result.p_value = chi_square_sf(result.statistic, 1.0);
  return result;
}

McNemarResult mcnemar_test(std::span<const bool> x, std::span<const bool> y) {
  assert(x.size() == y.size());
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] && y[i]) {
      ++a;
    } else if (x[i] && !y[i]) {
      ++b;
    } else if (!x[i] && y[i]) {
      ++c;
    } else {
      ++d;
    }
  }
  return mcnemar_test(a, b, c, d);
}

CochranQResult cochran_q(const std::vector<std::vector<bool>>& table) {
  CochranQResult result;
  if (table.empty() || table.front().empty()) return result;
  const std::size_t n = table.size();
  const std::size_t k = table.front().size();

  std::vector<double> column_totals(k, 0.0);
  double grand_total = 0.0;
  double row_square_sum = 0.0;
  for (const auto& row : table) {
    assert(row.size() == k);
    double row_total = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (row[j]) {
        row_total += 1.0;
        column_totals[j] += 1.0;
      }
    }
    grand_total += row_total;
    row_square_sum += row_total * row_total;
  }

  double column_square_sum = 0.0;
  for (double total : column_totals) column_square_sum += total * total;

  const double kf = static_cast<double>(k);
  const double denominator = kf * grand_total - row_square_sum;
  result.degrees_of_freedom = kf - 1.0;
  if (denominator <= 0.0) return result;  // all rows constant
  result.statistic = (kf - 1.0) *
                     (kf * column_square_sum - grand_total * grand_total) /
                     denominator;
  result.p_value = chi_square_sf(result.statistic, result.degrees_of_freedom);
  (void)n;
  return result;
}

std::vector<double> bonferroni(std::span<const double> p_values) {
  std::vector<double> adjusted;
  adjusted.reserve(p_values.size());
  const double m = static_cast<double>(p_values.size());
  for (double p : p_values) adjusted.push_back(std::min(1.0, p * m));
  return adjusted;
}

SpearmanResult spearman(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  SpearmanResult result;
  result.n = x.size();
  if (x.size() < 3) return result;

  const auto rx = ranks(x);
  const auto ry = ranks(y);

  // Pearson correlation of the ranks (handles ties correctly).
  const double mx = mean(rx);
  const double my = mean(ry);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double dx = rx[i] - mx;
    const double dy = ry[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return result;  // constant input
  result.rho = sxy / std::sqrt(sxx * syy);

  const double n = static_cast<double>(x.size());
  const double rho = std::clamp(result.rho, -0.9999999, 0.9999999);
  const double t = rho * std::sqrt((n - 2.0) / (1.0 - rho * rho));
  result.p_value = student_t_two_sided_p(t, n - 2.0);
  return result;
}

}  // namespace originscan::stats
