#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace originscan::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min_value(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = median(xs);
  s.p75 = quantile(xs, 0.75);
  s.max = max_value(xs);
  return s;
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Tied block [i, j]: average of 1-based ranks i+1 .. j+1.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

}  // namespace originscan::stats
