// Empirical CDFs, optionally weighted — Fig 4 (inaccessible hosts by AS),
// Fig 9 (transient-loss differences, plain and AS-size weighted) and the
// report-layer CDF charts are all built on this.
#pragma once

#include <span>
#include <vector>

namespace originscan::stats {

class Ecdf {
 public:
  // Unweighted: each sample has weight 1.
  explicit Ecdf(std::span<const double> samples);

  // Weighted: P(X <= x) computed over total weight.
  Ecdf(std::span<const double> samples, std::span<const double> weights);

  // Fraction of total weight at or below x, in [0, 1].
  [[nodiscard]] double at(double x) const;

  // Smallest sample value v with at(v) >= q.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t sample_count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  // Evaluation points for plotting: (value, cumulative fraction) pairs at
  // each distinct sample value.
  struct Point {
    double value = 0;
    double fraction = 0;
  };
  [[nodiscard]] std::vector<Point> points() const;

 private:
  std::vector<double> values_;           // sorted
  std::vector<double> cumulative_weight_;  // prefix sums aligned to values_
  double total_weight_ = 0;
};

}  // namespace originscan::stats
