#include "netbase/headers.h"

#include "netbase/byteio.h"

namespace originscan::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t seed) {
  std::uint64_t sum = seed;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t tcp_pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                    std::uint16_t tcp_length) {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xFFFF;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xFFFF;
  sum += 6;  // protocol = TCP
  sum += tcp_length;
  return sum;
}

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t byte = 0;
  if (fin) byte |= 0x01;
  if (syn) byte |= 0x02;
  if (rst) byte |= 0x04;
  if (psh) byte |= 0x08;
  if (ack) byte |= 0x10;
  return byte;
}

TcpFlags TcpFlags::from_byte(std::uint8_t byte) {
  return TcpFlags{
      .fin = (byte & 0x01) != 0,
      .syn = (byte & 0x02) != 0,
      .rst = (byte & 0x04) != 0,
      .psh = (byte & 0x08) != 0,
      .ack = (byte & 0x10) != 0,
  };
}

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16(total_length);
  w.u16(identification);
  w.u16(0x4000);  // flags: DF, fragment offset 0
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  const std::uint16_t checksum = internet_checksum(
      std::span(out).subspan(start, kSize));
  w.patch_u16(start + 10, checksum);
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if (internet_checksum(data.first(kSize)) != 0) return std::nullopt;
  ByteReader r(data);
  const std::uint8_t version_ihl = r.u8();
  if ((version_ihl >> 4) != 4 || (version_ihl & 0x0F) != 5) {
    return std::nullopt;
  }
  r.skip(1);  // DSCP/ECN
  Ipv4Header header;
  header.total_length = r.u16();
  header.identification = r.u16();
  r.skip(2);  // flags/fragment
  header.ttl = r.u8();
  header.protocol = r.u8();
  r.skip(2);  // checksum (already verified)
  header.src = Ipv4Addr(r.u32());
  header.dst = Ipv4Addr(r.u32());
  if (!r.ok()) return std::nullopt;
  return header;
}

void TcpHeader::serialize(Ipv4Addr src, Ipv4Addr dst,
                          std::span<const std::uint8_t> payload,
                          std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(flags.to_byte());
  w.u16(window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(payload);
  const auto tcp_length =
      static_cast<std::uint16_t>(kSize + payload.size());
  const std::uint16_t checksum = internet_checksum(
      std::span(out).subspan(start, tcp_length),
      tcp_pseudo_header_sum(src, dst, tcp_length));
  w.patch_u16(start + 16, checksum);
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  ByteReader r(data);
  TcpHeader header;
  header.src_port = r.u16();
  header.dst_port = r.u16();
  header.seq = r.u32();
  header.ack = r.u32();
  const std::uint8_t offset = r.u8();
  if ((offset >> 4) != 5) return std::nullopt;  // options unsupported
  header.flags = TcpFlags::from_byte(r.u8());
  header.window = r.u16();
  r.skip(4);  // checksum + urgent pointer
  if (!r.ok()) return std::nullopt;
  return header;
}

bool TcpHeader::verify_checksum(Ipv4Addr src, Ipv4Addr dst,
                                std::span<const std::uint8_t> segment) {
  if (segment.size() < kSize) return false;
  const auto tcp_length = static_cast<std::uint16_t>(segment.size());
  return internet_checksum(segment,
                           tcp_pseudo_header_sum(src, dst, tcp_length)) == 0;
}

std::vector<std::uint8_t> TcpPacket::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(out);
  return out;
}

void TcpPacket::serialize_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  out.reserve(Ipv4Header::kSize + TcpHeader::kSize + payload.size());
  Ipv4Header ip_copy = ip;
  ip_copy.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + TcpHeader::kSize + payload.size());
  ip_copy.serialize(out);
  tcp.serialize(ip.src, ip.dst, payload, out);
}

std::optional<TcpPacket> TcpPacket::parse(std::span<const std::uint8_t> data) {
  auto ip = Ipv4Header::parse(data);
  if (!ip) return std::nullopt;
  if (ip->total_length > data.size() ||
      ip->total_length < Ipv4Header::kSize + TcpHeader::kSize) {
    return std::nullopt;
  }
  auto segment = data.subspan(Ipv4Header::kSize,
                              ip->total_length - Ipv4Header::kSize);
  if (!TcpHeader::verify_checksum(ip->src, ip->dst, segment)) {
    return std::nullopt;
  }
  auto tcp = TcpHeader::parse(segment);
  if (!tcp) return std::nullopt;
  TcpPacket packet;
  packet.ip = *ip;
  packet.tcp = *tcp;
  auto payload = segment.subspan(TcpHeader::kSize);
  packet.payload.assign(payload.begin(), payload.end());
  return packet;
}

}  // namespace originscan::net
