// Bounds-checked big-endian (network byte order) buffer readers/writers.
// All header serialization in the library goes through these so that
// endianness handling lives in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace originscan::net {

// Appends network-byte-order fields to a growable byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

  // Patches a previously written 16-bit field (e.g. a length or checksum
  // that is only known once the rest of the message is serialized).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// Reads network-byte-order fields from a fixed span. Instead of throwing,
// the reader latches an error flag on overrun; callers check ok() once at
// the end, which keeps per-field parsing branch-light.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) return fail();
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      fail();
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) { (void)bytes(n); }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const {
    return ok_ ? data_.size() - pos_ : 0;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::uint8_t fail() {
    ok_ = false;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace originscan::net
