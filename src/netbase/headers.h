// IPv4 and TCP header value types with on-the-wire serialization.
//
// The scanner builds real packet bytes for its probes (the validation MAC
// is encoded in the sequence number and source port exactly as ZMap does),
// and the simulated hosts parse those bytes back — so the probe path is
// packet-level end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv4.h"

namespace originscan::net {

// Internet checksum (RFC 1071) over a byte span; `seed` carries the
// pseudo-header sum for TCP.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t seed = 0);

// Sum of the TCP pseudo-header fields, to seed internet_checksum().
std::uint32_t tcp_pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                    std::uint16_t tcp_length);

struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;

  [[nodiscard]] std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t byte);

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;  // TCP
  std::uint16_t identification = 0;
  std::uint16_t total_length = kSize;
  Ipv4Addr src;
  Ipv4Addr dst;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;

  // Serializes with a correct checksum for the given pseudo-header
  // endpoints and (possibly empty) payload.
  void serialize(Ipv4Addr src, Ipv4Addr dst,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out) const;
  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> data);

  // Verifies the checksum of a serialized TCP segment (header + payload).
  static bool verify_checksum(Ipv4Addr src, Ipv4Addr dst,
                              std::span<const std::uint8_t> segment);

  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

// A full probe/response packet: IPv4 header + TCP segment, serialized
// back-to-back. This is what crosses the simulated network on the L4 path.
struct TcpPacket {
  Ipv4Header ip;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  // Serializes into `out` (cleared first), reusing its capacity — the
  // scanner's send loop calls this once per probe, so the steady state
  // is allocation-free.
  void serialize_into(std::vector<std::uint8_t>& out) const;
  static std::optional<TcpPacket> parse(std::span<const std::uint8_t> data);
};

}  // namespace originscan::net
