// SHA-256 (FIPS 180-4), self-contained: golden-trace digests must be
// stable across platforms and toolchains, so we do not depend on any
// system crypto library. Performance is irrelevant here — digests are
// computed once per scan result, not per packet.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace originscan::net {

class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  void update(std::span<const std::uint8_t> data);

  // Finalizes and returns the digest. The hasher must not be reused
  // afterwards.
  [[nodiscard]] Digest finish();

  // One-shot convenience.
  static Digest of(std::span<const std::uint8_t> data);

  // Lower-case hex encoding of a digest.
  static std::string hex(const Digest& digest);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace originscan::net
