// Length-prefixed, CRC32-framed byte containers — the one framing
// implementation shared by the journal's sidecar segments (core/journal)
// and the master/worker wire protocol (core/dist).
//
// Wire form of one frame:
//
//   u32 length     payload byte count (big-endian, like all of byteio)
//   ...payload...  `length` bytes
//   u32 crc32      CRC-32 over the payload bytes only
//
// Two consumption modes share the parser:
//
//   * Files (journal segments): the frame must account for the whole
//     buffer. A declared length that exceeds the remaining bytes is
//     rejected as kTruncated — the reader never trusts the prefix and
//     over-reads past the end of the file.
//   * Streams (worker sockets): FrameDecoder accumulates bytes and
//     yields complete frames. A short buffer just means "feed more", but
//     a declared length above the decoder's payload cap is a fatal
//     kOversized — a hostile or corrupt peer must not make the decoder
//     buffer gigabytes before the CRC can catch it.
//
// Every failure is classified (FrameError), never a crash: the fuzz
// suite (tests/fuzz_test.cc) drives truncated, bit-flipped, oversized-
// length, and duplicated frames through both modes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace originscan::net {

enum class FrameError {
  kNone = 0,
  kTruncated,   // buffer ends before the declared payload + CRC
  kOversized,   // declared length exceeds the caller's payload cap
  kBadCrc,      // payload present but its CRC footer does not match
};

[[nodiscard]] std::string_view frame_error_name(FrameError error);

// Default payload cap. Generous for every real segment (a full cell's
// store segment is a few MiB at paper scale) while keeping a corrupt
// length field from turning into a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

// Appends one frame wrapping `payload` to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

// Convenience: a fresh buffer holding exactly one frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const std::uint8_t> payload);

struct FrameView {
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;  // total bytes the frame occupied in `data`
};

// Parses the frame at the start of `data`. On kNone, `out` views the
// payload inside `data` (no copy) and `consumed` covers header + payload
// + CRC. kTruncated means `data` ends before the declared frame does —
// for a file that is corruption, for a stream it means "need more
// bytes". kOversized and kBadCrc are fatal in both modes.
[[nodiscard]] FrameError parse_frame(std::span<const std::uint8_t> data,
                                     FrameView& out,
                                     std::size_t max_payload =
                                         kMaxFramePayload);

// Parses a file-shaped buffer that must hold exactly one frame: trailing
// bytes after the frame (e.g. a duplicated frame appended to a segment)
// are rejected as kBadCrc-class corruption via the returned error.
[[nodiscard]] FrameError parse_single_frame(
    std::span<const std::uint8_t> data,
    std::span<const std::uint8_t>& payload,
    std::size_t max_payload = kMaxFramePayload);

// Incremental decoder for stream transports. Feed bytes as they arrive;
// next() yields complete frame payloads in order. Once a fatal error is
// observed (kOversized, kBadCrc) the stream is poisoned: next() returns
// nullopt forever and error() reports the classification — the caller
// must drop the connection, there is no resynchronization.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes);

  // One complete frame payload, or nullopt when more bytes are needed
  // (error() == kNone) or the stream is poisoned (error() != kNone).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] FrameError error() const { return error_; }
  // Bytes buffered but not yet consumed by a complete frame. A nonzero
  // value at EOF means the peer died mid-frame (a torn write).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  FrameError error_ = FrameError::kNone;
};

}  // namespace originscan::net
