// Deterministic random number generation.
//
// Every stochastic element of the simulation (loss processes, policy
// detection times, outage schedules, host placement) draws from an
// explicitly seeded generator, never from global state — the same seed
// must reproduce a byte-identical experiment.
#pragma once

#include <cmath>
#include <cstdint>

namespace originscan::net {

// SplitMix64: used for seed expansion and cheap keyed sub-streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless mix of several values into one 64-bit hash; handy for deriving
// per-(origin, AS, trial) substream seeds without storing generators.
constexpr std::uint64_t mix_u64(std::uint64_t a, std::uint64_t b = 0,
                                std::uint64_t c = 0, std::uint64_t d = 0) {
  std::uint64_t state = a;
  std::uint64_t out = splitmix64(state);
  state ^= b + 0x9E3779B97F4A7C15ULL;
  out ^= splitmix64(state);
  state ^= c + 0xC2B2AE3D27D4EB4FULL;
  out ^= splitmix64(state);
  state ^= d + 0x165667B19E3779F9ULL;
  out ^= splitmix64(state);
  return out;
}

// Four-lane unrolled mix_u64: computes mix_u64(a[i], b[i], c, d) for
// i = 0..3 into out[0..3]. The lanes are fully independent dependency
// chains, so a superscalar core overlaps the 64-bit multiplies that
// serialize the scalar kernel (x86-64 has no packed 64-bit multiply, so
// the win here is instruction-level parallelism, not SIMD). Results are
// bit-identical to four scalar mix_u64 calls — the batch probe pipeline
// relies on that for scalar/batch byte-identity.
constexpr void mix_u64_x4(const std::uint64_t a[4], const std::uint64_t b[4],
                          std::uint64_t c, std::uint64_t d,
                          std::uint64_t out[4]) {
  std::uint64_t state[4];
  for (int i = 0; i < 4; ++i) state[i] = a[i];
  for (int i = 0; i < 4; ++i) out[i] = splitmix64(state[i]);
  for (int i = 0; i < 4; ++i) state[i] ^= b[i] + 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 4; ++i) out[i] ^= splitmix64(state[i]);
  for (int i = 0; i < 4; ++i) state[i] ^= c + 0xC2B2AE3D27D4EB4FULL;
  for (int i = 0; i < 4; ++i) out[i] ^= splitmix64(state[i]);
  for (int i = 0; i < 4; ++i) state[i] ^= d + 0x165667B19E3779F9ULL;
  for (int i = 0; i < 4; ++i) out[i] ^= splitmix64(state[i]);
}

// Scalar-b convenience overload: mix_u64(a[i], b, c, d) per lane.
constexpr void mix_u64_x4(const std::uint64_t a[4], std::uint64_t b,
                          std::uint64_t c, std::uint64_t d,
                          std::uint64_t out[4]) {
  const std::uint64_t bs[4] = {b, b, b, b};
  mix_u64_x4(a, bs, c, d, out);
}

// xoshiro256**: the workhorse generator. Satisfies (most of) the
// UniformRandomBitGenerator requirements so it composes with <random>,
// but the distribution helpers below avoid <random>'s
// implementation-defined algorithms for cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free would bias; use simple rejection on the top range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    return -std::log(1.0 - uniform()) / rate;
  }

  // Small-mean Poisson via inversion (used for outage counts per window).
  std::uint32_t poisson(double mean) {
    if (mean <= 0) return 0;
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint32_t count = 0;
    do {
      product *= uniform();
      if (product <= limit) break;
      ++count;
    } while (count < 10'000);
    return count;
  }

  // Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  // Log-normal sized draws, e.g. AS host counts (heavy-tailed like the
  // real AS size distribution).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace originscan::net
