#include "netbase/ipv4.h"

#include <charconv>

namespace originscan::net {
namespace {

// Parses one decimal octet from the front of `text`, advancing it.
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  // Reject leading zeros like "01" which some parsers treat as octal.
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_octet(text);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  int length = 32;
  std::string_view addr_part = text;
  if (slash != std::string_view::npos) {
    addr_part = text.substr(0, slash);
    std::string_view len_part = text.substr(slash + 1);
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(len_part.data(), len_part.data() + len_part.size(), value);
    if (ec != std::errc{} || ptr != len_part.data() + len_part.size() ||
        value > 32) {
      return std::nullopt;
    }
    length = static_cast<int>(value);
  }
  auto addr = Ipv4Addr::parse(addr_part);
  if (!addr) return std::nullopt;
  return Prefix(*addr, length);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace originscan::net
