// A set of uint64 values stored as disjoint, coalesced, half-open
// intervals [lo, hi). Used for scanner blocklists/allowlists and for
// address-universe bookkeeping: these sets are tiny relative to the ranges
// they cover, so interval storage beats bitmaps by orders of magnitude.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace originscan::net {

class IntervalSet {
 public:
  struct Interval {
    std::uint64_t lo = 0;  // inclusive
    std::uint64_t hi = 0;  // exclusive

    friend bool operator==(const Interval&, const Interval&) = default;
  };

  // Inserts [lo, hi), merging with any overlapping or adjacent intervals.
  // Empty ranges (lo >= hi) are ignored.
  void add(std::uint64_t lo, std::uint64_t hi);

  // Removes [lo, hi), splitting intervals that straddle the boundary.
  void remove(std::uint64_t lo, std::uint64_t hi);

  [[nodiscard]] bool contains(std::uint64_t value) const;

  // Total number of values covered.
  [[nodiscard]] std::uint64_t cardinality() const;

  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }

  void clear() { intervals_.clear(); }

  // Snapshot of the disjoint intervals in ascending order.
  [[nodiscard]] std::vector<Interval> intervals() const;

  // The k-th smallest value in the set (0-based). Precondition:
  // k < cardinality(). Supports uniform sampling from a blocklisted space.
  [[nodiscard]] std::uint64_t nth(std::uint64_t k) const;

 private:
  // Key: interval start; value: interval end (exclusive). Invariant:
  // intervals are disjoint and non-adjacent (gap >= 1 between them).
  std::map<std::uint64_t, std::uint64_t> intervals_;
};

}  // namespace originscan::net
