#include "netbase/siphash.h"

#include <bit>
#include <cstring>

namespace originscan::net {
namespace {

constexpr std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct State {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = std::rotl(v1, 13);
    v1 ^= v0;
    v0 = std::rotl(v0, 32);
    v2 += v3;
    v3 = std::rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = std::rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = std::rotl(v1, 17);
    v1 ^= v2;
    v2 = std::rotl(v2, 32);
  }
};

}  // namespace

SipHash::SipHash(const Key& key)
    : k0_(load_le64(key.data())), k1_(load_le64(key.data() + 8)) {}

std::uint64_t SipHash::hash(std::span<const std::uint8_t> data) const {
  State s{
      k0_ ^ 0x736f6d6570736575ULL,
      k1_ ^ 0x646f72616e646f6dULL,
      k0_ ^ 0x6c7967656e657261ULL,
      k1_ ^ 0x7465646279746573ULL,
  };

  const std::size_t full = data.size() / 8 * 8;
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load_le64(data.data() + i);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = std::uint64_t{data.size() & 0xFF} << 56;
  for (std::size_t i = 0; i < data.size() - full; ++i) {
    last |= std::uint64_t{data[full + i]} << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xFF;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t SipHash::hash_u64(std::uint64_t value) const {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  return hash(buf);
}

std::uint64_t SipHash::hash_u64_pair(std::uint64_t a, std::uint64_t b) const {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(a >> (8 * i));
  for (int i = 0; i < 8; ++i) {
    buf[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  return hash(buf);
}

SipHash::Key SipHash::key_from_seed(std::uint64_t seed) {
  // SplitMix64 expansion of the seed into 16 key bytes.
  Key key{};
  std::uint64_t state = seed;
  for (int half = 0; half < 2; ++half) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    for (int i = 0; i < 8; ++i) {
      key[static_cast<std::size_t>(half * 8 + i)] =
          static_cast<std::uint8_t>(z >> (8 * i));
    }
  }
  return key;
}

}  // namespace originscan::net
