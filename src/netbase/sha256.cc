#include "netbase/sha256.h"

#include <cstring>

namespace originscan::net {
namespace {

constexpr std::uint32_t kInit[8] = {
    0x6A09E667u, 0xBB67AE85u, 0x3C6EF372u, 0xA54FF53Au,
    0x510E527Fu, 0x9B05688Cu, 0x1F83D9ABu, 0x5BE0CD19u,
};

constexpr std::uint32_t kRound[64] = {
    0x428A2F98u, 0x71374491u, 0xB5C0FBCFu, 0xE9B5DBA5u, 0x3956C25Bu,
    0x59F111F1u, 0x923F82A4u, 0xAB1C5ED5u, 0xD807AA98u, 0x12835B01u,
    0x243185BEu, 0x550C7DC3u, 0x72BE5D74u, 0x80DEB1FEu, 0x9BDC06A7u,
    0xC19BF174u, 0xE49B69C1u, 0xEFBE4786u, 0x0FC19DC6u, 0x240CA1CCu,
    0x2DE92C6Fu, 0x4A7484AAu, 0x5CB0A9DCu, 0x76F988DAu, 0x983E5152u,
    0xA831C66Du, 0xB00327C8u, 0xBF597FC7u, 0xC6E00BF3u, 0xD5A79147u,
    0x06CA6351u, 0x14292967u, 0x27B70A85u, 0x2E1B2138u, 0x4D2C6DFCu,
    0x53380D13u, 0x650A7354u, 0x766A0ABBu, 0x81C2C92Eu, 0x92722C85u,
    0xA2BFE8A1u, 0xA81A664Bu, 0xC24B8B70u, 0xC76C51A3u, 0xD192E819u,
    0xD6990624u, 0xF40E3585u, 0x106AA070u, 0x19A4C116u, 0x1E376C08u,
    0x2748774Cu, 0x34B0BCB5u, 0x391C0CB3u, 0x4ED8AA4Au, 0x5B9CCA4Fu,
    0x682E6FF3u, 0x748F82EEu, 0x78A5636Fu, 0x84C87814u, 0x8CC70208u,
    0x90BEFFFAu, 0xA4506CEBu, 0xBEF9A3F7u, 0xC67178F2u,
};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() {
  for (int i = 0; i < 8; ++i) state_[i] = kInit[i];
}

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    compress(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha256::Digest Sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update({&zero, 1});
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update({length_bytes, 8});

  Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha256::Digest Sha256::of(std::span<const std::uint8_t> data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

std::string Sha256::hex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace originscan::net
