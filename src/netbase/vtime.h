// Virtual time for the simulation: a strong type over integral
// microseconds. Scans in the paper span ~21 hours; microsecond resolution
// covers inter-probe spacing at 100K pps (10 us) without floating error.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace originscan::net {

class VirtualTime {
 public:
  constexpr VirtualTime() = default;

  static constexpr VirtualTime from_micros(std::int64_t us) {
    return VirtualTime(us);
  }
  static constexpr VirtualTime from_millis(std::int64_t ms) {
    return VirtualTime(ms * 1'000);
  }
  static constexpr VirtualTime from_seconds(double s) {
    return VirtualTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr VirtualTime from_hours(double h) {
    return from_seconds(h * 3600.0);
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  // Which whole hour this instant falls in (bucket index for the paper's
  // burst-outage analysis, which works at hour granularity).
  [[nodiscard]] constexpr std::int64_t hour_bucket() const {
    return us_ / 3'600'000'000LL;
  }

  [[nodiscard]] std::string to_string() const {
    const std::int64_t total_seconds = us_ / 1'000'000;
    const std::int64_t h = total_seconds / 3600;
    const std::int64_t m = (total_seconds / 60) % 60;
    const std::int64_t s = total_seconds % 60;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
    return buf;
  }

  friend constexpr bool operator==(VirtualTime, VirtualTime) = default;
  friend constexpr auto operator<=>(VirtualTime, VirtualTime) = default;

  friend constexpr VirtualTime operator+(VirtualTime a, VirtualTime b) {
    return VirtualTime(a.us_ + b.us_);
  }
  friend constexpr VirtualTime operator-(VirtualTime a, VirtualTime b) {
    return VirtualTime(a.us_ - b.us_);
  }
  constexpr VirtualTime& operator+=(VirtualTime other) {
    us_ += other.us_;
    return *this;
  }

 private:
  constexpr explicit VirtualTime(std::int64_t us) : us_(us) {}

  std::int64_t us_ = 0;
};

}  // namespace originscan::net
