// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Used as a cheap bit-rot/truncation detector for on-disk formats (the
// .osnr v2 per-block footers and the experiment journal's sidecar files);
// SHA-256 (netbase/sha256.h) remains the integrity primitive where an
// adversarial or cross-machine guarantee is needed.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace originscan::net {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();

}  // namespace detail

// One-shot CRC32 of a byte span.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = ~seed;
  for (std::uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace originscan::net
