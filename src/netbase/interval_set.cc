#include "netbase/interval_set.h"

#include <cassert>

namespace originscan::net {

void IntervalSet::add(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return;

  // Find the first interval that could merge with [lo, hi): any interval
  // whose end >= lo, i.e. starting from the predecessor of lo.
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = intervals_.erase(prev);
    }
  }
  // Absorb all intervals that start within (or adjacent to) [lo, hi].
  while (it != intervals_.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = intervals_.erase(it);
  }
  intervals_.emplace(lo, hi);
}

void IntervalSet::remove(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi || intervals_.empty()) return;

  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) it = prev;
  }
  while (it != intervals_.end() && it->first < hi) {
    const std::uint64_t start = it->first;
    const std::uint64_t end = it->second;
    it = intervals_.erase(it);
    if (start < lo) intervals_.emplace(start, lo);
    if (end > hi) {
      intervals_.emplace(hi, end);
      break;
    }
  }
}

bool IntervalSet::contains(std::uint64_t value) const {
  auto it = intervals_.upper_bound(value);
  if (it == intervals_.begin()) return false;
  --it;
  return value >= it->first && value < it->second;
}

std::uint64_t IntervalSet::cardinality() const {
  std::uint64_t total = 0;
  for (const auto& [lo, hi] : intervals_) total += hi - lo;
  return total;
}

std::vector<IntervalSet::Interval> IntervalSet::intervals() const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& [lo, hi] : intervals_) out.push_back({lo, hi});
  return out;
}

std::uint64_t IntervalSet::nth(std::uint64_t k) const {
  for (const auto& [lo, hi] : intervals_) {
    const std::uint64_t span = hi - lo;
    if (k < span) return lo + k;
    k -= span;
  }
  assert(false && "nth: index out of range");
  return 0;
}

}  // namespace originscan::net
