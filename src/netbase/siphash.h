// SipHash-2-4 keyed PRF. ZMap validates responses by recomputing a MAC
// over (saddr, daddr, ports) and checking it against fields echoed by the
// destination host; we use the same construction so forged or mis-routed
// responses are rejected exactly as in the real tool.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace originscan::net {

class SipHash {
 public:
  using Key = std::array<std::uint8_t, 16>;

  explicit SipHash(const Key& key);

  // One-shot MAC of `data`.
  [[nodiscard]] std::uint64_t hash(std::span<const std::uint8_t> data) const;

  // Convenience for fixed-width integer messages (most scanner uses).
  [[nodiscard]] std::uint64_t hash_u64(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t hash_u64_pair(std::uint64_t a,
                                            std::uint64_t b) const;

  // Derives a key deterministically from a 64-bit seed (for reproducible
  // scans; real deployments would use random keys).
  static Key key_from_seed(std::uint64_t seed);

 private:
  std::uint64_t k0_ = 0;
  std::uint64_t k1_ = 0;
};

}  // namespace originscan::net
