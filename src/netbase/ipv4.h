// IPv4 address and CIDR prefix value types.
//
// These are the fundamental vocabulary types of the library: every module
// above netbase speaks in Ipv4Addr / Prefix. Both are small, trivially
// copyable value types with total ordering so they can be used as keys.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace originscan::net {

// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  // Dotted-quad parsing; returns nullopt on any syntactic error
  // (missing octets, out-of-range octet, trailing garbage).
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  // The /24 network containing this address (its "network unit" in the
  // paper's aggregation methodology).
  [[nodiscard]] constexpr Ipv4Addr slash24() const {
    return Ipv4Addr(value_ & 0xFFFFFF00u);
  }

  friend constexpr bool operator==(Ipv4Addr, Ipv4Addr) = default;
  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix: base address plus length in [0, 32]. The base is
// canonicalized (host bits zeroed) on construction.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr base, int length)
      : base_(Ipv4Addr(base.value() & mask(length))), length_(length) {}

  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  // Number of addresses covered; a /0 covers 2^32 which does not fit in
  // uint32, so size is 64-bit.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] constexpr Ipv4Addr first() const { return base_; }
  [[nodiscard]] constexpr Ipv4Addr last() const {
    return Ipv4Addr(base_.value() | ~mask(length_));
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    return (addr.value() & mask(length_)) == base_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Addr base_;
  int length_ = 32;
};

}  // namespace originscan::net
