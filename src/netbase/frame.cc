#include "netbase/frame.h"

#include "netbase/byteio.h"
#include "netbase/crc32.h"

namespace originscan::net {
namespace {

constexpr std::size_t kHeaderBytes = 4;  // u32 length
constexpr std::size_t kFooterBytes = 4;  // u32 crc32(payload)

}  // namespace

std::string_view frame_error_name(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kTruncated:
      return "truncated";
    case FrameError::kOversized:
      return "oversized_length";
    case FrameError::kBadCrc:
      return "bad_crc";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  ByteWriter writer(out);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.bytes(payload);
  writer.u32(crc32(payload));
}

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + kFooterBytes);
  append_frame(out, payload);
  return out;
}

FrameError parse_frame(std::span<const std::uint8_t> data, FrameView& out,
                       std::size_t max_payload) {
  if (data.size() < kHeaderBytes) return FrameError::kTruncated;
  ByteReader reader(data);
  const std::uint32_t length = reader.u32();
  // The length cap is checked before the remaining-bytes check so that a
  // corrupt prefix classifies as oversized even in a stream, where a
  // short buffer would otherwise read as "wait for more bytes" and stall
  // the connection until an allocation-bomb-sized buffer filled up.
  if (length > max_payload) return FrameError::kOversized;
  if (data.size() - kHeaderBytes < length + kFooterBytes) {
    return FrameError::kTruncated;
  }
  const std::span<const std::uint8_t> payload = reader.bytes(length);
  const std::uint32_t want_crc = reader.u32();
  if (!reader.ok()) return FrameError::kTruncated;
  if (crc32(payload) != want_crc) return FrameError::kBadCrc;
  out.payload = payload;
  out.consumed = kHeaderBytes + length + kFooterBytes;
  return FrameError::kNone;
}

FrameError parse_single_frame(std::span<const std::uint8_t> data,
                              std::span<const std::uint8_t>& payload,
                              std::size_t max_payload) {
  FrameView view;
  // File mode: the declared length is bounded by what the file actually
  // holds — parse_frame's remaining-bytes check is exactly the "never
  // over-read a lying prefix" rule, reported as kTruncated.
  const FrameError error = parse_frame(data, view, max_payload);
  if (error != FrameError::kNone) return error;
  if (view.consumed != data.size()) {
    // Trailing bytes (a duplicated or concatenated frame) mean the file
    // is not the single segment its writer produced.
    return FrameError::kBadCrc;
  }
  payload = view.payload;
  return FrameError::kNone;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != FrameError::kNone) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (error_ != FrameError::kNone) return std::nullopt;
  FrameView view;
  const FrameError error = parse_frame(buffer_, view, max_payload_);
  if (error == FrameError::kTruncated) return std::nullopt;  // need bytes
  if (error != FrameError::kNone) {
    error_ = error;
    return std::nullopt;
  }
  std::vector<std::uint8_t> payload(view.payload.begin(), view.payload.end());
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(view.consumed));
  return payload;
}

}  // namespace originscan::net
