// CSV export of scan results and analysis products, so downstream users
// can plot with their own tooling. Fields containing commas/quotes are
// quoted per RFC 4180.
#pragma once

#include <string>
#include <vector>

#include "core/access_matrix.h"
#include "core/analysis/coverage.h"
#include "core/classify.h"
#include "scanner/orchestrator.h"

namespace originscan::report {

// One CSV cell, escaped as needed.
std::string csv_escape(const std::string& field);

// Joins cells into one CSV line (with trailing newline).
std::string csv_line(const std::vector<std::string>& cells);

// Raw per-host scan records:
//   addr,origin,protocol,trial,synack_probes,rst_probes,l7_outcome,
//   explicit_close,probe_second
std::string scan_result_csv(const scan::ScanResult& result);

// Coverage matrix: origin,trial,two_probe,single_probe.
std::string coverage_csv(const core::CoverageTable& coverage);

// Per-(origin, host) classification:
//   addr,as,country,origin,class
std::string classification_csv(const core::Classification& classification,
                               const sim::Topology& topology);

// Writes `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace originscan::report
