#include "report/export.h"

#include <cstdio>

namespace originscan::report {
namespace {

const char* class_name(core::HostClass cls) {
  switch (cls) {
    case core::HostClass::kAccessible:
      return "accessible";
    case core::HostClass::kTransient:
      return "transient";
    case core::HostClass::kLongTerm:
      return "long-term";
    case core::HostClass::kUnknown:
      return "unknown";
    case core::HostClass::kNotInGroundTruth:
      return "absent";
  }
  return "?";
}

}  // namespace

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_line(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += csv_escape(cells[i]);
  }
  out += '\n';
  return out;
}

std::string scan_result_csv(const scan::ScanResult& result) {
  std::string out = csv_line({"addr", "origin", "protocol", "trial",
                              "synack_probes", "rst_probes", "l7_outcome",
                              "explicit_close", "probe_second"});
  for (const auto& record : result.records) {
    out += csv_line(
        {record.addr.to_string(), result.origin_code,
         std::string(proto::name_of(result.protocol)),
         std::to_string(result.trial + 1),
         std::to_string(__builtin_popcount(record.synack_mask)),
         std::to_string(__builtin_popcount(record.rst_mask)),
         std::string(sim::to_string(record.l7)),
         record.explicit_close ? "1" : "0",
         std::to_string(record.probe_second)});
  }
  return out;
}

std::string coverage_csv(const core::CoverageTable& coverage) {
  std::string out;
  // A resumed run that exhausted a cell's retry budget yields a partial
  // grid; label it so no one mistakes the file for a full reproduction.
  if (!coverage.lost_cells.empty()) {
    out += "# partial grid; lost cells:";
    for (const auto& [trial, code] : coverage.lost_cells) {
      out += " trial=" + std::to_string(trial + 1) + " origin=" + code + ";";
    }
    out += '\n';
  }
  out += csv_line({"origin", "trial", "two_probe", "single_probe"});
  for (std::size_t t = 0; t < coverage.two_probe.size(); ++t) {
    for (std::size_t o = 0; o < coverage.origin_codes.size(); ++o) {
      if (!coverage.cell_present.empty() && !coverage.cell_present[t][o]) {
        continue;  // lost cell: no row rather than a fabricated zero
      }
      char two[32], one[32];
      std::snprintf(two, sizeof(two), "%.6f", coverage.two_probe[t][o]);
      std::snprintf(one, sizeof(one), "%.6f", coverage.single_probe[t][o]);
      out += csv_line({coverage.origin_codes[o], std::to_string(t + 1), two,
                       one});
    }
  }
  return out;
}

std::string classification_csv(const core::Classification& classification,
                               const sim::Topology& topology) {
  const auto& matrix = classification.matrix();
  std::string out = csv_line({"addr", "as", "country", "origin", "class"});
  for (core::HostIdx h = 0; h < matrix.host_count(); ++h) {
    const auto as = matrix.host_as(h);
    const std::string as_name =
        as == sim::kNoAs ? "(unrouted)" : topology.as_info(as).name;
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      const auto cls = classification.host_class(o, h);
      if (cls == core::HostClass::kAccessible) continue;  // keep files small
      out += csv_line({matrix.host_addr(h).to_string(), as_name,
                       matrix.host_country(h).to_string(),
                       matrix.origin_codes()[o], class_name(cls)});
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const int close_result = std::fclose(file);
  return written == content.size() && close_result == 0;
}

}  // namespace originscan::report
