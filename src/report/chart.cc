#include "report/chart.h"

#include <algorithm>
#include <cstdio>

namespace originscan::report {

std::string bar(double value, double max, int width) {
  if (max <= 0) max = 1;
  const int fill = static_cast<int>(
      std::clamp(value / max, 0.0, 1.0) * width + 0.5);
  std::string out(static_cast<std::size_t>(fill), '#');
  out.append(static_cast<std::size_t>(width - fill), ' ');
  return out;
}

std::string bar_chart(const std::vector<BarRow>& rows, int width,
                      int value_precision) {
  double max = 0;
  std::size_t label_width = 0;
  for (const auto& row : rows) {
    max = std::max(max, row.value);
    label_width = std::max(label_width, row.label.size());
  }
  std::string out;
  for (const auto& row : rows) {
    out += row.label;
    out.append(label_width - row.label.size(), ' ');
    out += " |";
    out += bar(row.value, max, width);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "| %.*f\n", value_precision,
                  row.value);
    out += buffer;
  }
  return out;
}

std::string cdf_plot(const stats::Ecdf& ecdf, int width, int height,
                     const std::string& x_label) {
  if (ecdf.empty()) return "(no data)\n";
  const auto points = ecdf.points();
  const double x_min = points.front().value;
  const double x_max = std::max(points.back().value, x_min + 1e-12);

  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  for (int col = 0; col < width; ++col) {
    const double x =
        x_min + (x_max - x_min) * static_cast<double>(col) / (width - 1);
    const double y = ecdf.at(x);
    const int row =
        std::clamp(static_cast<int>(y * (height - 1) + 0.5), 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - row)]
        [static_cast<std::size_t>(col)] = '*';
  }

  std::string out;
  for (int r = 0; r < height; ++r) {
    const double y = 1.0 - static_cast<double>(r) / (height - 1);
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%4.2f |", y);
    out += buffer;
    out += grid[static_cast<std::size_t>(r)];
    out += "\n";
  }
  out += "     +";
  out.append(static_cast<std::size_t>(width), '-');
  out += "\n      ";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%-10.4g%*s%10.4g  (%s)\n", x_min,
                width - 20, "", x_max, x_label.c_str());
  out += buffer;
  return out;
}

}  // namespace originscan::report
