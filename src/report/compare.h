// Paper-vs-measured comparison rows: every bench binary ends with one of
// these so EXPERIMENTS.md can be assembled from bench output directly.
#pragma once

#include <string>
#include <vector>

namespace originscan::report {

struct ComparisonRow {
  std::string metric;
  std::string paper;     // the value (or range) the paper reports
  std::string measured;  // what this reproduction measured
  std::string note;      // e.g. "shape match: ordering preserved"
};

class Comparison {
 public:
  explicit Comparison(std::string title) : title_(std::move(title)) {}

  void add(std::string metric, std::string paper, std::string measured,
           std::string note = "") {
    rows_.push_back({std::move(metric), std::move(paper), std::move(measured),
                     std::move(note)});
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<ComparisonRow> rows_;
};

}  // namespace originscan::report
