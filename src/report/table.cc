#include "report/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace originscan::report {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignment)
    : headers_(std::move(headers)), alignment_(std::move(alignment)) {
  if (alignment_.empty()) {
    alignment_.assign(headers_.size(), Align::kRight);
    if (!alignment_.empty()) alignment_[0] = Align::kLeft;
  }
  assert(alignment_.size() == headers_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::percent(double fraction, int precision) {
  return num(100.0 * fraction, precision) + "%";
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      const std::size_t pad = widths[c] - cells[c].size();
      if (alignment_[c] == Align::kRight) line.append(pad, ' ');
      line += cells[c];
      if (alignment_[c] == Align::kLeft) line.append(pad, ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace originscan::report
