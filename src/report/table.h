// Fixed-width text table rendering for the bench binaries' paper-style
// tables.
#pragma once

#include <string>
#include <vector>

namespace originscan::report {

enum class Align { kLeft, kRight };

class Table {
 public:
  // Column headers; all rows must have the same arity.
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> alignment = {});

  void add_row(std::vector<std::string> cells);

  // Convenience: formats a double with the given precision.
  static std::string num(double value, int precision = 1);
  static std::string percent(double fraction, int precision = 1);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace originscan::report
