// Minimal ASCII charts: horizontal bars and CDF plots, for the figure-
// reproducing bench binaries.
#pragma once

#include <string>
#include <vector>

#include "stats/ecdf.h"

namespace originscan::report {

// A single horizontal bar scaled to `width` characters at value = max.
std::string bar(double value, double max, int width = 40);

struct BarRow {
  std::string label;
  double value = 0;
};

// Labeled bar chart; bars scale to the largest value.
std::string bar_chart(const std::vector<BarRow>& rows, int width = 40,
                      int value_precision = 1);

// ASCII CDF plot of an ECDF over a fixed grid.
std::string cdf_plot(const stats::Ecdf& ecdf, int width = 60, int height = 12,
                     const std::string& x_label = "value");

}  // namespace originscan::report
