#include "report/compare.h"

#include "report/table.h"

namespace originscan::report {

std::string Comparison::to_string() const {
  Table table({"metric", "paper", "measured", "note"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kLeft});
  for (const auto& row : rows_) {
    table.add_row({row.metric, row.paper, row.measured, row.note});
  }
  return "== paper vs measured: " + title_ + " ==\n" + table.to_string();
}

}  // namespace originscan::report
