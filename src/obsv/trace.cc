#include "obsv/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace originscan::obsv {
namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_args_json(std::string& out, const TraceArgs& args) {
  out += "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    append_json_escaped(out, key);
    out += "\": \"";
    append_json_escaped(out, value);
    out += "\"";
  }
  out += "}";
}

}  // namespace

void TraceRecorder::span(std::string_view track, std::string_view name,
                         net::VirtualTime start, net::VirtualTime end,
                         TraceArgs args) {
  std::scoped_lock lock(mutex_);
  events_.push_back(Event{std::string(track), std::string(name),
                          start.micros(), end.micros() - start.micros(),
                          /*is_instant=*/false, std::move(args)});
}

void TraceRecorder::instant(std::string_view track, std::string_view name,
                            net::VirtualTime at, TraceArgs args) {
  std::scoped_lock lock(mutex_);
  events_.push_back(Event{std::string(track), std::string(name), at.micros(),
                          0, /*is_instant=*/true, std::move(args)});
}

std::size_t TraceRecorder::event_count() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<Event> events;
  {
    std::scoped_lock lock(mutex_);
    events = events_;
  }
  // Deterministic order: events may have been recorded from any lane in
  // any interleaving; the export canonicalizes by sorting on stable keys
  // (args included, so identically named instants still order stably).
  auto sort_key = [](const Event& e) {
    std::string args_key;
    append_args_json(args_key, e.args);
    return std::tuple(e.track, e.start_us, e.name, e.dur_us, args_key);
  };
  std::stable_sort(events.begin(), events.end(),
                   [&](const Event& a, const Event& b) {
                     return sort_key(a) < sort_key(b);
                   });

  // Tracks become synthetic threads, tids assigned in sorted-name order.
  std::map<std::string, int> tids;
  for (const Event& e : events) tids.emplace(e.track, 0);
  int next_tid = 1;
  for (auto& [name, tid] : tids) tid = next_tid++;

  std::string out;
  out += "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    append_json_escaped(out, track);
    out += "\"}}";
  }
  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"";
    out += e.is_instant ? "i" : "X";
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(tids[e.track]);
    out += ", \"ts\": " + std::to_string(e.start_us);
    if (!e.is_instant) out += ", \"dur\": " + std::to_string(e.dur_us);
    out += ", \"name\": \"";
    append_json_escaped(out, e.name);
    if (e.is_instant) out += "\", \"s\": \"t";
    out += "\", \"args\": ";
    append_args_json(out, e.args);
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace originscan::obsv
