// Deterministic observability: a registry of counters, gauges, and
// fixed-bucket histograms with stable dotted names, designed so that
// enabling metrics can never change a scan's output and disabling them
// costs nothing on the hot path.
//
// Determinism contract (DESIGN.md §9):
//   * Every metric update is a pure consequence of simulation decisions
//     that are themselves pure functions of (seed, slot, host). No wall
//     time, no allocation counts, no thread identity.
//   * Hot-path updates go into a MetricBlock — a flat array of uint64
//     slots owned by exactly one scan lane (single writer, no locks),
//     mirroring the ProbeContext pattern from DESIGN.md §7. Lanes merge
//     at scan end; merging is commutative (counters and histogram
//     buckets add, gauges take the max), so the merged totals are
//     byte-identical for any lane count or interleaving.
//   * A metrics snapshot therefore compares equal across `--jobs`
//     values, and — because per-cell deltas are journaled next to the
//     MANIFEST — across killed-and-resumed vs uninterrupted runs.
//   * Disabled path: every tap is guarded by a null pointer check on a
//     pointer that defaults to null. No registry, no blocks, no atomics.
//
// The metric tables below are the single source of truth: docs/METRICS.md
// is checked against them by tools/metrics_doc_check (ctest label
// `metrics`), and the snapshot JSON emits them in definition order.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace originscan::obsv {

// ---- Counter registry -----------------------------------------------
// X(symbol, "dotted.name", "unit", "incremented-by site")
#define OSN_COUNTER_METRICS(X)                                                \
  X(kZmapTargetsProbed, "zmap.targets_probed", "targets",                     \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapProbesSent, "zmap.probes_sent", "packets",                           \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapBlocklistedSkipped, "zmap.blocklisted_skipped", "targets",           \
    "src/scanner/zmap.cc:run + src/scanner/orchestrator.cc:run_scan")         \
  X(kZmapSendRetries, "zmap.send_retries", "retries",                         \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapResponsesSynack, "zmap.responses_synack", "packets",                 \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapResponsesRst, "zmap.responses_rst", "packets",                       \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapValidationFailures, "zmap.validation_failures", "packets",           \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kZmapCooldownResponses, "zmap.cooldown_responses", "packets",             \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kSimProbesRouted, "sim.probes_routed", "packets",                         \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimDropsUnrouted, "sim.drops.unrouted", "packets",                       \
    "src/sim/internet.cc:ProbeContext::probe")                                \
  X(kSimDropsFault, "sim.drops.fault", "packets",                             \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimDropsOutage, "sim.drops.outage", "packets",                           \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimDropsLossModel, "sim.drops.loss_model", "packets",                    \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimDropsNoHost, "sim.drops.no_host", "packets",                          \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimDropsIds, "sim.drops.ids", "packets",                                 \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimResponsesSynack, "sim.responses_synack", "packets",                   \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kSimResponsesRst, "sim.responses_rst", "packets",                         \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kZgrabGrabs, "zgrab.grabs", "handshakes",                                 \
    "src/scanner/zgrab.cc:grab")                                              \
  X(kZgrabRetries, "zgrab.retries", "retries",                                \
    "src/scanner/zgrab.cc:grab")                                              \
  X(kZgrabConnectFailures, "zgrab.connect_failures", "attempts",              \
    "src/scanner/zgrab.cc:attempt")                                           \
  X(kZgrabCompleted, "zgrab.completed", "handshakes",                         \
    "src/scanner/zgrab.cc:grab")                                              \
  X(kFaultProbeDrop, "fault.probe_drop", "hits",                              \
    "src/scanner/zmap.cc:probe_target + src/sim/internet.cc:probe_impl")      \
  X(kFaultOutage, "fault.outage", "hits",                                     \
    "src/sim/internet.cc:probe_impl")                                         \
  X(kFaultSendFail, "fault.send_fail", "hits",                                \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kFaultMacCorrupt, "fault.mac_corrupt", "hits",                            \
    "src/scanner/zmap.cc:probe_target")                                       \
  X(kFaultConnectRst, "fault.connect_rst", "hits",                            \
    "src/scanner/zgrab.cc:attempt")                                           \
  X(kFaultBannerTrunc, "fault.banner_trunc", "hits",                          \
    "src/scanner/zgrab.cc:read_bytes")                                        \
  X(kFaultBannerStall, "fault.banner_stall", "hits",                          \
    "src/scanner/zgrab.cc:read_bytes")                                        \
  X(kFaultStoreEio, "fault.store_eio", "hits",                                \
    "src/core/store.cc:save_results")                                         \
  X(kFaultCellCrash, "fault.cell_crash", "hits",                              \
    "src/core/supervisor.cc:run_cell")                                        \
  X(kFaultCellHang, "fault.cell_hang", "hits",                                \
    "src/core/supervisor.cc:run_cell")                                        \
  X(kStoreWriteRetries, "store.write_retries", "writes",                      \
    "src/core/store.cc:save_results")                                         \
  X(kJournalCellsRecorded, "journal.cells_recorded", "cells",                 \
    "src/core/journal.cc:record_done")                                        \
  X(kJournalSegmentsFsynced, "journal.segments_fsynced", "files",             \
    "src/core/journal.cc:record_done")                                        \
  X(kSupervisorRetries, "supervisor.retries", "attempts",                     \
    "src/core/experiment.cc:run_journaled")                                   \
  X(kExperimentCellsLost, "experiment.cells_lost", "cells",                   \
    "src/core/experiment.cc:run_journaled")                                   \
  X(kUniverseBlockCacheHit, "universe.block_cache_hit", "fetches",           \
    "src/sim/internet.cc:ProbeContext::resolve_batch")                        \
  X(kUniverseBlockCacheMiss, "universe.block_cache_miss", "fetches",         \
    "src/sim/internet.cc:ProbeContext::resolve_batch")                        \
  X(kUniverseProceduralDerivations, "universe.procedural_derivations",        \
    "hosts", "src/sim/internet.cc:ProbeContext::resolve_batch")               \
  X(kUniverseBatchBatches, "universe.batch.batches", "batches",               \
    "src/sim/internet.cc:ProbeContext::resolve_batch")                        \
  X(kUniverseBatchTargets, "universe.batch.targets", "targets",               \
    "src/sim/internet.cc:ProbeContext::resolve_batch")                        \
  X(kDistWorkersSpawned, "dist.workers_spawned", "processes",                 \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistWorkersRestarted, "dist.workers_restarted", "processes",             \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistWorkersFailed, "dist.workers_failed", "processes",                   \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistChainsGranted, "dist.chains_granted", "grants",                      \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistGrantRetries, "dist.grant_retries", "grants",                        \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistCellsCompleted, "dist.cells_completed", "cells",                     \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistCellsLost, "dist.cells_lost", "cells",                               \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistSegmentsReceived, "dist.segments_received", "segments",              \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistFrameErrors, "dist.frame_errors", "frames",                          \
    "src/core/dist.cc:GridMaster")                                            \
  X(kDistDeadlinesExpired, "dist.deadlines_expired", "workers",               \
    "src/core/dist.cc:GridMaster")                                            \
  X(kFaultEnospc, "fault.enospc", "hits",                                     \
    "src/core/journal.cc:durable_write")                                      \
  X(kFaultSegmentCorrupt, "fault.segment_corrupt", "hits",                    \
    "src/core/journal.cc:durable_write")                                      \
  X(kFaultFrameGarble, "fault.frame_garble", "hits",                          \
    "src/core/dist.cc:send_message")                                          \
  X(kJournalQuarantinedCells, "journal.quarantined_cells", "cells",           \
    "src/core/experiment.cc:adopt_journal")                                   \
  X(kJournalQuarantinedFollowers, "journal.quarantined_followers", "cells",   \
    "src/core/experiment.cc:adopt_journal")                                   \
  X(kJournalWritesFailed, "journal.writes_failed", "writes",                  \
    "src/core/experiment.cc:run_journaled + src/core/dist.cc:GridMaster")     \
  X(kChaosEpisodes, "chaos.episodes", "episodes",                             \
    "src/core/chaos.cc:run_chaos_soak")                                       \
  X(kChaosResumes, "chaos.resumes", "episodes",                               \
    "src/core/chaos.cc:run_chaos_soak")                                       \
  X(kChaosPartialGrids, "chaos.partial_grids", "episodes",                    \
    "src/core/chaos.cc:run_chaos_soak")                                       \
  X(kChaosQuarantines, "chaos.quarantines", "cells",                          \
    "src/core/chaos.cc:run_chaos_soak")                                       \
  X(kChaosViolations, "chaos.violations", "episodes",                        \
    "src/core/chaos.cc:run_chaos_soak")                                       \
  X(kServiceConnections, "service.connections", "connections",                \
    "src/service/service.cc:Loop")                                            \
  X(kServiceRequestsAccepted, "service.requests_accepted", "requests",        \
    "src/service/service.cc:Loop")                                            \
  X(kServiceRequestsRejected, "service.requests_rejected", "requests",        \
    "src/service/service.cc:Loop")                                            \
  X(kServiceRequestsCompleted, "service.requests_completed", "requests",      \
    "src/service/service.cc:Loop")                                            \
  X(kServiceRequestsCancelled, "service.requests_cancelled", "requests",      \
    "src/service/service.cc:Loop")                                            \
  X(kServiceFramesMalformed, "service.frames_malformed", "frames",            \
    "src/service/service.cc:Loop")                                            \
  X(kServiceDisconnects, "service.disconnects", "connections",                \
    "src/service/service.cc:Loop")                                            \
  X(kServiceShutdownDrained, "service.shutdown_drained", "requests",          \
    "src/service/service.cc:Loop")

// ---- Gauge registry (merge = max) -----------------------------------
#define OSN_GAUGE_METRICS(X)                                                  \
  X(kScanUniverseSize, "scan.universe_size", "addresses",                     \
    "src/scanner/orchestrator.cc:run_scan")                                   \
  X(kExperimentCellsTotal, "experiment.cells_total", "cells",                 \
    "src/core/experiment.cc:run_journaled")                                   \
  X(kServiceInflightPeak, "service.inflight_peak", "requests",                \
    "src/service/service.cc:Loop")

// ---- Histogram registry (fixed bucket bounds, values <= bound) ------
// X(symbol, "dotted.name", "unit", "site", bounds...)
#define OSN_HISTOGRAM_METRICS(X)                                              \
  X(kZgrabAttempts, "zgrab.attempts", "attempts",                             \
    "src/scanner/zgrab.cc:grab", 1, 2, 3, 4, 8)                               \
  X(kJournalSegmentBytes, "journal.segment_bytes", "bytes",                   \
    "src/core/journal.cc:record_done", 1024, 16384, 262144, 1048576,          \
    16777216)                                                                 \
  X(kSupervisorBackoffMicros, "supervisor.backoff_micros", "microseconds",    \
    "src/core/experiment.cc:run_journaled", 1000000, 4000000, 16000000,       \
    64000000)                                                                 \
  X(kServiceQueueDepth, "service.queue_depth", "requests",                    \
    "src/service/service.cc:Loop", 1, 4, 16, 64, 256, 1024)

enum class Counter : int {
#define OSN_X(symbol, name, unit, site) symbol,
  OSN_COUNTER_METRICS(OSN_X)
#undef OSN_X
};

enum class Gauge : int {
#define OSN_X(symbol, name, unit, site) symbol,
  OSN_GAUGE_METRICS(OSN_X)
#undef OSN_X
};

enum class Histogram : int {
#define OSN_X(symbol, name, unit, site, ...) symbol,
  OSN_HISTOGRAM_METRICS(OSN_X)
#undef OSN_X
};

#define OSN_X(symbol, name, unit, site) +1
inline constexpr int kCounterCount = 0 OSN_COUNTER_METRICS(OSN_X);
inline constexpr int kGaugeCount = 0 OSN_GAUGE_METRICS(OSN_X);
#undef OSN_X
#define OSN_X(symbol, name, unit, site, ...) +1
inline constexpr int kHistogramCount = 0 OSN_HISTOGRAM_METRICS(OSN_X);
#undef OSN_X

enum class MetricKind { kCounter, kGauge, kHistogram };

// Introspection row, one per registered metric (used by the snapshot
// serializer and the docs/METRICS.md consistency check).
struct MetricInfo {
  std::string_view name;
  MetricKind kind = MetricKind::kCounter;
  std::string_view unit;
  std::string_view site;  // file:function responsible for updates
};

[[nodiscard]] std::span<const MetricInfo> all_metrics();
[[nodiscard]] std::string_view counter_name(Counter c);
[[nodiscard]] std::string_view gauge_name(Gauge g);
[[nodiscard]] std::string_view histogram_name(Histogram h);
[[nodiscard]] std::span<const std::uint64_t> histogram_bounds(Histogram h);

namespace detail {
// Slot layout: counters, then gauges, then per-histogram bucket counts
// (bounds + 1 overflow bucket) followed by a sum slot.
[[nodiscard]] int histogram_slot_offset(int histogram_index);
[[nodiscard]] int total_slot_count();
}  // namespace detail

// A flat block of metric slots with exactly one writer (a scan lane, a
// cell, or the merged registry). All updates are plain stores — the
// single-writer discipline is what keeps the hot path lock-free; cross-
// thread aggregation happens only through MetricsRegistry::merge_block
// after the writing lane has joined.
class MetricBlock {
 public:
  MetricBlock();

  void add(Counter c, std::uint64_t by = 1) {
    slots_[static_cast<int>(c)] += by;
  }
  void gauge_max(Gauge g, std::uint64_t value);
  void observe(Histogram h, std::uint64_t value);

  [[nodiscard]] std::uint64_t counter(Counter c) const {
    return slots_[static_cast<int>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const {
    return slots_[kCounterCount + static_cast<int>(g)];
  }
  // Bucket counts (bounds + overflow), then use histogram_sum for totals.
  [[nodiscard]] std::span<const std::uint64_t> histogram_buckets(
      Histogram h) const;
  [[nodiscard]] std::uint64_t histogram_count(Histogram h) const;
  [[nodiscard]] std::uint64_t histogram_sum(Histogram h) const;

  // Commutative merge: counters and histogram slots add, gauges max.
  void merge_from(const MetricBlock& other);

  [[nodiscard]] bool empty() const;

  // Versioned, CRC-guarded wire form (the journal's per-cell `.metrics`
  // sidecar). parse() rejects torn or corrupt blocks and blocks written
  // by a build with a different metric table (slot-count mismatch) —
  // a changed registry must not silently misattribute old deltas.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<MetricBlock> parse(std::span<const std::uint8_t> data);

  friend bool operator==(const MetricBlock&, const MetricBlock&) = default;

 private:
  std::vector<std::uint64_t> slots_;
};

// Deterministic JSON snapshot of a block: every registered metric, in
// definition order, zero or not — so two snapshots of equal blocks are
// byte-identical strings (`--metrics-out` and the determinism tests
// compare these bytes directly).
[[nodiscard]] std::string snapshot_json(const MetricBlock& block);

// Thread-safe aggregate over many single-writer blocks. merge_block is
// the only cross-thread entry point; it is called once per lane or cell
// (never per packet), so a plain mutex costs nothing measurable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void merge_block(const MetricBlock& block) {
    std::scoped_lock lock(mutex_);
    total_.merge_from(block);
  }
  void add(Counter c, std::uint64_t by = 1) {
    std::scoped_lock lock(mutex_);
    total_.add(c, by);
  }
  void gauge_max(Gauge g, std::uint64_t value) {
    std::scoped_lock lock(mutex_);
    total_.gauge_max(g, value);
  }
  void observe(Histogram h, std::uint64_t value) {
    std::scoped_lock lock(mutex_);
    total_.observe(h, value);
  }

  [[nodiscard]] MetricBlock snapshot() const {
    std::scoped_lock lock(mutex_);
    return total_;
  }
  [[nodiscard]] std::string snapshot_json() const {
    return obsv::snapshot_json(snapshot());
  }

 private:
  mutable std::mutex mutex_;
  MetricBlock total_;
};

}  // namespace originscan::obsv
