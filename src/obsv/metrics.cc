#include "obsv/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "netbase/byteio.h"
#include "netbase/crc32.h"

namespace originscan::obsv {
namespace {

constexpr MetricInfo kMetricTable[] = {
#define OSN_X(symbol, name, unit, site) \
  {name, MetricKind::kCounter, unit, site},
    OSN_COUNTER_METRICS(OSN_X)
#undef OSN_X
#define OSN_X(symbol, name, unit, site) {name, MetricKind::kGauge, unit, site},
        OSN_GAUGE_METRICS(OSN_X)
#undef OSN_X
#define OSN_X(symbol, name, unit, site, ...) \
  {name, MetricKind::kHistogram, unit, site},
            OSN_HISTOGRAM_METRICS(OSN_X)
#undef OSN_X
};

struct HistogramDef {
  std::string_view name;
  std::vector<std::uint64_t> bounds;
};

const std::vector<HistogramDef>& histogram_defs() {
  static const std::vector<HistogramDef> defs = [] {
    std::vector<HistogramDef> out;
#define OSN_X(symbol, name, unit, site, ...) \
  out.push_back({name, std::vector<std::uint64_t>{__VA_ARGS__}});
    OSN_HISTOGRAM_METRICS(OSN_X)
#undef OSN_X
    return out;
  }();
  return defs;
}

// Slot offsets of each histogram within a MetricBlock, computed once.
// Histogram i occupies [offset, offset + bounds + 1 buckets + 1 sum).
const std::vector<int>& histogram_offsets() {
  static const std::vector<int> offsets = [] {
    std::vector<int> out;
    int next = kCounterCount + kGaugeCount;
    for (const auto& def : histogram_defs()) {
      out.push_back(next);
      next += static_cast<int>(def.bounds.size()) + 2;
    }
    out.push_back(next);  // sentinel: total slot count
    return out;
  }();
  return offsets;
}

// Wire form of a serialized block: magic, version, slot count, slots,
// CRC32 footer over everything before it.
constexpr std::uint32_t kBlockMagic = 0x4f534d42;  // "OSMB"
constexpr std::uint16_t kBlockVersion = 1;

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::span<const MetricInfo> all_metrics() { return kMetricTable; }

std::string_view counter_name(Counter c) {
  return kMetricTable[static_cast<int>(c)].name;
}

std::string_view gauge_name(Gauge g) {
  return kMetricTable[kCounterCount + static_cast<int>(g)].name;
}

std::string_view histogram_name(Histogram h) {
  return kMetricTable[kCounterCount + kGaugeCount + static_cast<int>(h)].name;
}

std::span<const std::uint64_t> histogram_bounds(Histogram h) {
  return histogram_defs()[static_cast<int>(h)].bounds;
}

namespace detail {

int histogram_slot_offset(int histogram_index) {
  return histogram_offsets()[histogram_index];
}

int total_slot_count() { return histogram_offsets()[kHistogramCount]; }

}  // namespace detail

MetricBlock::MetricBlock() : slots_(detail::total_slot_count(), 0) {}

void MetricBlock::gauge_max(Gauge g, std::uint64_t value) {
  auto& slot = slots_[kCounterCount + static_cast<int>(g)];
  slot = std::max(slot, value);
}

void MetricBlock::observe(Histogram h, std::uint64_t value) {
  const int index = static_cast<int>(h);
  const auto& bounds = histogram_defs()[index].bounds;
  const int offset = detail::histogram_slot_offset(index);
  std::size_t bucket = 0;
  while (bucket < bounds.size() && value > bounds[bucket]) ++bucket;
  slots_[offset + static_cast<int>(bucket)] += 1;
  slots_[offset + static_cast<int>(bounds.size()) + 1] += value;  // sum
}

std::span<const std::uint64_t> MetricBlock::histogram_buckets(
    Histogram h) const {
  const int index = static_cast<int>(h);
  const auto& bounds = histogram_defs()[index].bounds;
  return {slots_.data() + detail::histogram_slot_offset(index),
          bounds.size() + 1};
}

std::uint64_t MetricBlock::histogram_count(Histogram h) const {
  std::uint64_t total = 0;
  for (std::uint64_t bucket : histogram_buckets(h)) total += bucket;
  return total;
}

std::uint64_t MetricBlock::histogram_sum(Histogram h) const {
  const int index = static_cast<int>(h);
  const auto& bounds = histogram_defs()[index].bounds;
  return slots_[detail::histogram_slot_offset(index) +
                static_cast<int>(bounds.size()) + 1];
}

void MetricBlock::merge_from(const MetricBlock& other) {
  // Counters and every histogram slot (bucket counts + sums) add; gauges
  // take the max. Both operations are commutative and associative, which
  // is what makes merged totals independent of lane count and join order.
  for (int i = 0; i < kCounterCount; ++i) slots_[i] += other.slots_[i];
  for (int i = kCounterCount; i < kCounterCount + kGaugeCount; ++i) {
    slots_[i] = std::max(slots_[i], other.slots_[i]);
  }
  for (std::size_t i = kCounterCount + kGaugeCount; i < slots_.size(); ++i) {
    slots_[i] += other.slots_[i];
  }
}

bool MetricBlock::empty() const {
  return std::all_of(slots_.begin(), slots_.end(),
                     [](std::uint64_t v) { return v == 0; });
}

std::vector<std::uint8_t> MetricBlock::serialize() const {
  std::vector<std::uint8_t> bytes;
  net::ByteWriter writer(bytes);
  writer.u32(kBlockMagic);
  writer.u16(kBlockVersion);
  writer.u32(static_cast<std::uint32_t>(slots_.size()));
  for (std::uint64_t slot : slots_) writer.u64(slot);
  writer.u32(net::crc32(bytes));  // footer CRC over everything above
  return bytes;
}

std::optional<MetricBlock> MetricBlock::parse(
    std::span<const std::uint8_t> data) {
  constexpr std::size_t kHeader = 4 + 2 + 4;
  if (data.size() < kHeader + 4) return std::nullopt;
  const std::size_t body = data.size() - 4;
  net::ByteReader footer(data.subspan(body));
  const std::uint32_t want_crc = footer.u32();
  if (net::crc32(data.first(body)) != want_crc) return std::nullopt;
  net::ByteReader reader(data.first(body));
  if (reader.u32() != kBlockMagic) return std::nullopt;
  if (reader.u16() != kBlockVersion) return std::nullopt;
  const std::uint32_t slot_count = reader.u32();
  // A block written by a build with a different metric table cannot be
  // attributed to today's slots; reject instead of guessing.
  if (slot_count != static_cast<std::uint32_t>(detail::total_slot_count())) {
    return std::nullopt;
  }
  if (body != kHeader + slot_count * 8ull) return std::nullopt;
  MetricBlock block;
  for (std::uint32_t i = 0; i < slot_count; ++i) block.slots_[i] = reader.u64();
  if (!reader.ok()) return std::nullopt;
  return block;
}

std::string snapshot_json(const MetricBlock& block) {
  std::string out;
  out += "{\n  \"schema\": \"originscan.metrics.v1\",\n  \"metrics\": {\n";
  bool first = true;
  auto emit_key = [&](std::string_view name) {
    if (!first) out += ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": ";
  };
#define OSN_X(symbol, name, unit, site)                \
  emit_key(name);                                      \
  out += std::to_string(block.counter(Counter::symbol));
  OSN_COUNTER_METRICS(OSN_X)
#undef OSN_X
#define OSN_X(symbol, name, unit, site)              \
  emit_key(name);                                    \
  out += std::to_string(block.gauge(Gauge::symbol));
  OSN_GAUGE_METRICS(OSN_X)
#undef OSN_X
  for (int i = 0; i < kHistogramCount; ++i) {
    const auto h = static_cast<Histogram>(i);
    emit_key(histogram_name(h));
    out += "{\"bounds\": [";
    bool inner_first = true;
    for (std::uint64_t bound : histogram_bounds(h)) {
      if (!inner_first) out += ", ";
      inner_first = false;
      out += std::to_string(bound);
    }
    out += "], \"counts\": [";
    inner_first = true;
    for (std::uint64_t count : block.histogram_buckets(h)) {
      if (!inner_first) out += ", ";
      inner_first = false;
      out += std::to_string(count);
    }
    out += "], \"sum\": " + std::to_string(block.histogram_sum(h));
    out += ", \"count\": " + std::to_string(block.histogram_count(h)) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace originscan::obsv
