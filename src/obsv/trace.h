// Deterministic scan-phase tracing on the virtual clock.
//
// A TraceRecorder collects named spans and instant events whose
// timestamps come from the simulation's VirtualTime — never wall time —
// so the exported timeline is a pure function of (world, config, seed)
// and compares byte-identical across runs and `--jobs` values. Spans
// describe the *logical* structure of a scan (permutation build, shard
// lanes of the canonical slot partition, cooldown, zgrab wave, journal
// replay, supervisor retries), not the accidents of thread scheduling.
//
// Export is Chrome trace_event JSON ("traceEvents" array, `ph:"X"`
// complete events and `ph:"i"` instants), loadable in chrome://tracing
// or Perfetto. Track names map to synthetic thread ids assigned in
// sorted-name order, with thread_name metadata events, so the file is
// stable no matter what order events were recorded in.
//
// The recorder is mutex-guarded but deliberately coarse: events are
// emitted per phase or per lane (dozens per scan), never per packet, so
// it stays off the hot path entirely. A null TraceRecorder pointer is
// the disabled state — callers guard every emission site with a branch
// on the pointer, same as the metrics taps.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netbase/vtime.h"

namespace originscan::obsv {

// Key/value annotation attached to a span ("args" in the Chrome format).
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // A complete span [start, end] on the named track.
  void span(std::string_view track, std::string_view name,
            net::VirtualTime start, net::VirtualTime end,
            TraceArgs args = {});

  // A zero-duration instant event.
  void instant(std::string_view track, std::string_view name,
               net::VirtualTime at, TraceArgs args = {});

  [[nodiscard]] std::size_t event_count() const;

  // Deterministic Chrome trace_event JSON: tracks sorted by name and
  // assigned tids in that order, events sorted by (track, start, name,
  // serialized args). Two recorders holding the same event multiset
  // export byte-identical strings.
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  struct Event {
    std::string track;
    std::string name;
    std::int64_t start_us = 0;
    std::int64_t dur_us = 0;
    bool is_instant = false;
    TraceArgs args;
  };

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace originscan::obsv
