// Figure 8: transient inaccessibility among origins. Paper: nearly half
// (two thirds by host-count wording) of transiently inaccessible HTTP(S)
// hosts are missed by only one origin; SSH transients are more likely to
// be shared across origins (MaxStartups hits everyone).
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/overlap.h"
#include "core/classify.h"
#include "report/chart.h"

using namespace originscan;

int main() {
  bench::print_header("Figure 8", "transient inaccessibility among origins");
  auto experiment = bench::run_paper_experiment(
      {proto::Protocol::kHttp, proto::Protocol::kHttps, proto::Protocol::kSsh});

  double http_single = 0, ssh_single = 0;
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const core::Classification classification(matrix);
    const auto overlap = core::transient_overlap(classification);

    std::printf("\n%s: transiently missed hosts by number of origins:\n",
                std::string(proto::name_of(protocol)).c_str());
    std::vector<report::BarRow> rows;
    for (std::size_t k = 1; k <= matrix.origins(); ++k) {
      rows.push_back({"k=" + std::to_string(k),
                      100.0 * overlap.fraction(k)});
    }
    std::printf("%s", report::bar_chart(rows, 40, 1).c_str());
    if (protocol == proto::Protocol::kHttp) http_single = overlap.fraction(1);
    if (protocol == proto::Protocol::kSsh) ssh_single = overlap.fraction(1);
  }

  report::Comparison comparison("Fig 8 transient overlap");
  comparison.add("HTTP transients missed by exactly one origin", "~50-66%",
                 bench::pct(http_single),
                 "transient loss is mostly origin-local");
  comparison.add("SSH single-origin share vs HTTP", "lower",
                 bench::pct(ssh_single) + " vs " + bench::pct(http_single),
                 "probabilistic blocking hits several origins at once");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
