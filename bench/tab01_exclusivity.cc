// Table 1: origins responsible for hosts exclusively (in)accessible from
// a single origin. Paper: US64 sees the most exclusively accessible
// hosts; Censys owns the most exclusively inaccessible hosts on every
// protocol (83.4% HTTP / 68.9% HTTPS / 36.7% SSH).
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/exclusivity.h"
#include "core/classify.h"

using namespace originscan;

int main() {
  bench::print_header("Table 1", "exclusively (in)accessible hosts by origin");
  auto experiment = bench::run_paper_experiment(
      {proto::Protocol::kHttp, proto::Protocol::kHttps, proto::Protocol::kSsh});

  std::vector<std::string> codes;
  std::vector<std::vector<double>> acc_rows, inacc_rows;
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const core::Classification classification(matrix);
    const auto result = core::compute_exclusivity(classification);
    codes = result.origin_codes;
    acc_rows.push_back(result.accessible_percent());
    inacc_rows.push_back(result.inaccessible_percent());
  }

  std::vector<std::string> headers = {"row"};
  headers.insert(headers.end(), codes.begin(), codes.end());
  report::Table table(headers);
  const char* protocol_names[3] = {"HTTP", "HTTPS", "SSH"};
  for (int p = 0; p < 3; ++p) {
    std::vector<std::string> row = {std::string("Acc. ") + protocol_names[p] +
                                    "%"};
    for (double value : acc_rows[static_cast<std::size_t>(p)]) {
      row.push_back(report::Table::num(value, 1));
    }
    table.add_row(row);
  }
  for (int p = 0; p < 3; ++p) {
    std::vector<std::string> row = {std::string("Inacc. ") +
                                    protocol_names[p] + "%"};
    for (double value : inacc_rows[static_cast<std::size_t>(p)]) {
      row.push_back(report::Table::num(value, 1));
    }
    table.add_row(row);
  }
  std::printf("\n%s", table.to_string().c_str());

  const std::size_t us64 = static_cast<std::size_t>(
      experiment.origin_id("US64"));
  const std::size_t cen = static_cast<std::size_t>(
      experiment.origin_id("CEN"));
  report::Comparison comparison("Table 1 exclusivity");
  comparison.add("CEN share of exclusively inaccessible (HTTP)", "83.4%",
                 report::Table::num(inacc_rows[0][cen], 1) + "%",
                 "Censys dominates exclusive blocking");
  comparison.add("US64 share of exclusively accessible (SSH)", "64.4%",
                 report::Table::num(acc_rows[2][us64], 1) + "%",
                 "multiple source IPs evade per-IP detection");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
