// Table 3: ASes with the largest range of transient host-loss rates
// between origins, per protocol. Paper: large Chinese and Italian ASes
// (HZ Alibaba, Akamai, Telecom Italia/Sparkle, Tencent, China Telecom,
// ABCDE, Psychz) top the list.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/transient.h"
#include "core/classify.h"

using namespace originscan;

int main() {
  bench::print_header("Table 3", "ASes with largest transient-loss range");
  auto experiment = bench::run_paper_experiment(
      {proto::Protocol::kHttp, proto::Protocol::kHttps, proto::Protocol::kSsh});

  int expected_archetypes = 0;
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const core::Classification classification(matrix);
    auto by_as = core::transient_by_as(classification,
                                       experiment.world().topology, 10);
    const auto top = core::largest_transient_spread(std::move(by_as), 100, 6);

    std::printf("\n%s:\n", std::string(proto::name_of(protocol)).c_str());
    report::Table table({"AS", "cc", "Δ(%)", "Diff", "Ratio"});
    for (const auto& entry : top) {
      table.add_row({entry.name, entry.country,
                     report::Table::num(entry.delta_percent(), 1),
                     std::to_string(entry.diff_hosts()),
                     report::Table::num(entry.ratio(), 1)});
      for (const char* name :
           {"Alibaba", "Telecom Italia", "Akamai", "Tencent", "China",
            "ABCDE", "Psychz"}) {
        if (entry.name.find(name) != std::string::npos) {
          ++expected_archetypes;
          break;
        }
      }
    }
    std::printf("%s", table.to_string().c_str());
  }

  report::Comparison comparison("Table 3 top transient-spread ASes");
  comparison.add("paper archetypes among the 18 top slots", "most",
                 std::to_string(expected_archetypes) + "/18",
                 "Chinese + Italian + CDN networks dominate the spread");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
