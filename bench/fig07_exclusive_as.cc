// Figure 7: AS distribution of exclusively accessible HTTP hosts — the
// networks holding the hosts only one origin can reach. Paper: Bekkoame
// (40%) and NTT (29%) dominate Japan's exclusives; WebCentral holds >80%
// of Australia's; WA K-20 holds about two-thirds of Brazil's.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/exclusivity.h"
#include "core/classify.h"

using namespace originscan;

int main() {
  bench::print_header("Figure 7", "AS distribution of exclusive hosts");
  auto experiment = bench::run_paper_experiment({proto::Protocol::kHttp});
  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const core::Classification classification(matrix);
  const auto exclusivity = core::compute_exclusivity(classification);
  const auto& topology = experiment.world().topology;

  double jp_top_share = 0, au_top_share = 0;
  std::string jp_top_name, au_top_name;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    std::uint64_t total = exclusivity.exclusively_accessible[o];
    if (total == 0) continue;
    std::vector<std::pair<std::uint64_t, std::string>> rows;
    for (const auto& [as, count] : exclusivity.accessible_by_as[o]) {
      rows.emplace_back(count, as == sim::kNoAs ? "(unrouted)"
                                                : topology.as_info(as).name);
    }
    std::sort(rows.rbegin(), rows.rend());

    std::printf("\n%s (%llu exclusive hosts):\n",
                matrix.origin_codes()[o].c_str(),
                static_cast<unsigned long long>(total));
    report::Table table({"AS", "hosts", "share"});
    for (std::size_t i = 0; i < rows.size() && i < 4; ++i) {
      table.add_row({rows[i].second, std::to_string(rows[i].first),
                     bench::pct(static_cast<double>(rows[i].first) / total)});
    }
    std::printf("%s", table.to_string().c_str());

    if (matrix.origin_codes()[o] == "JP" && !rows.empty()) {
      jp_top_share = static_cast<double>(rows[0].first) / total;
      jp_top_name = rows[0].second;
    }
    if (matrix.origin_codes()[o] == "AU" && !rows.empty()) {
      au_top_share = static_cast<double>(rows[0].first) / total;
      au_top_name = rows[0].second;
    }
  }

  report::Comparison comparison("Fig 7 exclusive-host AS concentration");
  comparison.add("top AS share of JP exclusives", "40% (Bekkoame)",
                 bench::pct(jp_top_share) + " (" + jp_top_name + ")",
                 "one hosting provider dominates");
  comparison.add("top AS share of AU exclusives", ">80% (WebCentral)",
                 bench::pct(au_top_share) + " (" + au_top_name + ")",
                 "geo-restricted digital agency");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
