// Appendix A, Table 4a: fraction of ground-truth hosts perceived from
// each origin in every trial (2 probes), with the all-origin agreement
// (∩) and union sizes. Paper: all origins agree on only 87% of HTTP,
// 91% of HTTPS, and 71% of SSH hosts.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/coverage.h"

using namespace originscan;

int main() {
  bench::print_header("Table 4a", "per-trial ground-truth coverage");
  auto experiment = bench::run_paper_experiment(
      {proto::Protocol::kHttp, proto::Protocol::kHttps, proto::Protocol::kSsh});

  double agreement[3] = {0, 0, 0};
  int index = 0;
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const auto coverage = core::compute_coverage(matrix);

    std::printf("\n%s:\n", std::string(proto::name_of(protocol)).c_str());
    std::vector<std::string> headers = {"trial"};
    for (const auto& code : matrix.origin_codes()) headers.push_back(code);
    headers.push_back("∩");
    headers.push_back("∪");
    report::Table table(headers);
    for (int t = 0; t < matrix.trials(); ++t) {
      std::vector<std::string> row = {std::to_string(t + 1)};
      for (std::size_t o = 0; o < matrix.origins(); ++o) {
        row.push_back(bench::pct(coverage.two_probe[t][o]));
      }
      row.push_back(bench::pct(coverage.intersection_fraction[t]));
      row.push_back(std::to_string(coverage.union_size[t]));
      table.add_row(row);
      agreement[index] += coverage.intersection_fraction[t] / matrix.trials();
    }
    std::vector<std::string> mean_row = {"μ"};
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      mean_row.push_back(bench::pct(coverage.mean_two_probe(o)));
    }
    mean_row.push_back(bench::pct(agreement[index]));
    mean_row.push_back("-");
    table.add_row(mean_row);
    std::printf("%s", table.to_string().c_str());
    ++index;
  }

  report::Comparison comparison("Table 4a agreement");
  comparison.add("all-origin HTTP agreement", "86.7%",
                 bench::pct(agreement[0]), "");
  comparison.add("all-origin HTTPS agreement", "90.5%",
                 bench::pct(agreement[1]), "");
  comparison.add("all-origin SSH agreement", "70.6%", bench::pct(agreement[2]),
                 "SSH origins disagree the most");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
