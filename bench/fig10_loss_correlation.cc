// Figure 10 / Section 5.2: transient host loss vs estimated packet loss.
// Paper: only a weak correlation per origin across ASes (Spearman rho =
// 0.40-0.52), and within high-variance ASes (Alibaba archetype) the
// origins with the most packet loss are NOT the ones missing the most
// hosts (rho ~ 0.18, p = 0.44).
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/packet_loss.h"
#include "core/analysis/transient.h"
#include "core/classify.h"

using namespace originscan;

int main() {
  bench::print_header("Figure 10", "transient host loss vs packet loss");
  auto experiment = bench::run_paper_experiment({proto::Protocol::kHttp});
  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const core::Classification classification(matrix);
  const auto& topology = experiment.world().topology;

  // Per-origin correlation across ASes.
  const auto correlations =
      core::loss_vs_transient_correlation(classification, topology, 20);
  std::printf("\nper-origin Spearman(packet loss, transient loss) across "
              "ASes:\n");
  report::Table table({"origin", "rho", "p"});
  double rho_sum = 0;
  for (std::size_t o = 0; o < correlations.size(); ++o) {
    table.add_row({matrix.origin_codes()[o],
                   report::Table::num(correlations[o].rho, 2),
                   report::Table::num(correlations[o].p_value, 4)});
    rho_sum += correlations[o].rho;
  }
  std::printf("%s", table.to_string().c_str());

  // Within the wild-variance archetype: across origins.
  const auto by_as =
      core::transient_by_as(classification, topology, /*min_hosts=*/10);
  const auto losses = core::loss_by_as(matrix, topology, 10);
  double abcde_rho = 0;
  bool found = false;
  for (const auto& as_loss : losses) {
    if (as_loss.name != "ABCDE Group Co.") continue;
    for (const auto& transient : by_as) {
      if (transient.as != as_loss.as) continue;
      const auto result = core::per_as_loss_vs_transient(
          classification, as_loss, transient.transient_hosts);
      abcde_rho = result.rho;
      found = true;
      std::printf("\nABCDE Group (wild-variance archetype): per-origin "
                  "rho = %.2f (p = %.2f)\n",
                  result.rho, result.p_value);
    }
  }

  report::Comparison comparison("Fig 10 loss correlation");
  comparison.add("mean per-origin Spearman rho", "0.40-0.52",
                 report::Table::num(rho_sum / correlations.size(), 2),
                 "packet loss only weakly predicts missing hosts");
  if (found) {
    comparison.add("high-variance AS per-origin rho", "~0.18 (n.s.)",
                   report::Table::num(abcde_rho, 2),
                   "within wild ASes packet loss does not rank origins");
  }
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
