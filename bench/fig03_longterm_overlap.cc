// Figure 3: long-term inaccessibility among origins — of the hosts
// long-term inaccessible from somewhere, how many origins miss each?
// Paper: excluding Censys, nearly half (47%) are inaccessible from only
// one origin; 5-10% of inaccessible hosts are exclusively accessible
// from a single origin.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/overlap.h"
#include "core/classify.h"
#include "report/chart.h"

using namespace originscan;

int main() {
  bench::print_header("Figure 3", "long-term inaccessibility among origins");
  auto experiment = bench::run_paper_experiment(
      {proto::Protocol::kHttp, proto::Protocol::kHttps, proto::Protocol::kSsh});
  const auto cen = static_cast<std::size_t>(experiment.origin_id("CEN"));

  double http_single_share = 0;
  for (proto::Protocol protocol : proto::kAllProtocols) {
    const auto matrix = core::AccessMatrix::build(experiment, protocol);
    const core::Classification classification(matrix);
    const auto with_cen = core::longterm_overlap(classification);
    const auto without_cen = core::longterm_overlap(classification, {cen});

    std::printf("\n%s: hosts long-term inaccessible from k origins "
                "(excluding Censys):\n",
                std::string(proto::name_of(protocol)).c_str());
    std::vector<report::BarRow> rows;
    for (std::size_t k = 1; k <= matrix.origins() - 1; ++k) {
      rows.push_back({"k=" + std::to_string(k),
                      100.0 * without_cen.fraction(k)});
    }
    std::printf("%s", report::bar_chart(rows, 40, 1).c_str());
    std::printf("total long-term-missed hosts: %llu (incl. Censys: %llu)\n",
                static_cast<unsigned long long>(without_cen.total),
                static_cast<unsigned long long>(with_cen.total));
    if (protocol == proto::Protocol::kHttp) {
      http_single_share = without_cen.fraction(1);
    }
  }

  report::Comparison comparison("Fig 3 long-term overlap");
  comparison.add("HTTP hosts missed by exactly one origin (excl CEN)",
                 "~47%", bench::pct(http_single_share),
                 "long-term loss is mostly origin-specific");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
