// Section 2's eighth origin: Carinet, the scanning-tolerant cloud
// provider Rapid7 uses for Project Sonar, scanned in one trial only and
// excluded from the paper's aggregates. We run it alongside the main
// roster for one trial and check it behaves like a mid-reputation cloud
// origin — worse than fresh academics, better than Censys.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/coverage.h"

using namespace originscan;

int main() {
  bench::print_header("Section 2", "the Carinet one-trial origin");

  core::ExperimentConfig config;
  config.scenario.universe_size = bench::bench_universe_size();
  config.scenario.seed = bench::bench_seed();
  config.roster = core::ExperimentConfig::Roster::kPaperWithCarinet;
  config.trials = 1;  // Carinet participated in a single trial
  config.protocols = {proto::Protocol::kHttp};
  core::Experiment experiment(std::move(config));
  experiment.run([](std::string_view line) {
    std::printf("  [scan] %.*s\n", static_cast<int>(line.size()), line.data());
  });

  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const auto coverage = core::compute_coverage(matrix);

  report::Table table({"origin", "HTTP coverage (2 probes)"});
  double car = 0, cen = 0, academic = 0;
  int academic_count = 0;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    const double value = coverage.two_probe[0][o];
    table.add_row({matrix.origin_codes()[o], bench::pct(value, 2)});
    if (matrix.origin_codes()[o] == "CAR") {
      car = value;
    } else if (matrix.origin_codes()[o] == "CEN") {
      cen = value;
    } else if (matrix.origin_codes()[o] != "US64") {
      academic += value;
      ++academic_count;
    }
  }
  std::printf("\n%s", table.to_string().c_str());

  report::Comparison comparison("Section 2 Carinet");
  comparison.add("Carinet vs Censys coverage", "higher (less blocked)",
                 bench::pct(car, 2) + " vs " + bench::pct(cen, 2),
                 "Carinet scans less and from rotating space");
  comparison.add("Carinet vs academic mean", "comparable",
                 bench::pct(car, 2) + " vs " +
                     bench::pct(academic / academic_count, 2),
                 "(the paper excluded Carinet from aggregates)");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
