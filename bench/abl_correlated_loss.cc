// Ablation: correlated (Gilbert-Elliott) loss vs uniform random loss at
// the same stationary rate. The paper's core methodological point: under
// the uniform-random assumption of the original ZMap estimate, a second
// back-to-back probe recovers almost all loss; under realistic bursty
// loss it recovers almost none, because >93% of loss events swallow both
// probes.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/coverage.h"

using namespace originscan;

namespace {

struct Outcome {
  double single_probe = 0;
  double two_probe = 0;
  double both_lost_ratio = 0;
};

Outcome run(bool uniform) {
  core::ExperimentConfig config;
  config.scenario.universe_size = bench::bench_universe_size();
  config.scenario.seed = bench::bench_seed();
  config.trials = 1;
  config.protocols = {proto::Protocol::kHttp};
  config.uniform_random_loss = uniform;
  core::Experiment experiment(std::move(config));
  experiment.run();

  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const auto coverage = core::compute_coverage(matrix);

  Outcome outcome;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    outcome.single_probe += coverage.single_probe[0][o] / matrix.origins();
    outcome.two_probe += coverage.two_probe[0][o] / matrix.origins();
  }
  std::uint64_t lost_any = 0, lost_both = 0;
  for (core::HostIdx h = 0; h < matrix.host_count(); ++h) {
    for (std::size_t o = 0; o < matrix.origins(); ++o) {
      const std::uint8_t mask = matrix.synack_mask(0, o, h);
      if (mask != 0b11) {
        ++lost_any;
        if (mask == 0) ++lost_both;
      }
    }
  }
  outcome.both_lost_ratio =
      lost_any == 0 ? 0.0
                    : static_cast<double>(lost_both) /
                          static_cast<double>(lost_any);
  return outcome;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "correlated vs uniform random loss");

  std::printf("\nrunning with realistic correlated loss...\n");
  const Outcome correlated = run(/*uniform=*/false);
  std::printf("running with uniform random loss (same stationary rates)...\n");
  const Outcome uniform = run(/*uniform=*/true);

  report::Table table({"loss model", "1-probe coverage", "2-probe coverage",
                       "retransmission gain", "both-probes-lost ratio"});
  table.add_row({"correlated (Gilbert-Elliott)",
                 bench::pct(correlated.single_probe, 2),
                 bench::pct(correlated.two_probe, 2),
                 report::Table::num(
                     100.0 * (correlated.two_probe - correlated.single_probe),
                     2) + "pp",
                 bench::pct(correlated.both_lost_ratio)});
  table.add_row({"uniform random", bench::pct(uniform.single_probe, 2),
                 bench::pct(uniform.two_probe, 2),
                 report::Table::num(
                     100.0 * (uniform.two_probe - uniform.single_probe), 2) +
                     "pp",
                 bench::pct(uniform.both_lost_ratio)});
  std::printf("\n%s", table.to_string().c_str());

  report::Comparison comparison("loss-correlation ablation");
  comparison.add("both-probes-lost under correlated loss", ">93%",
                 bench::pct(correlated.both_lost_ratio),
                 "bursty loss defeats back-to-back retransmission");
  comparison.add("both-probes-lost under uniform loss", "much lower",
                 bench::pct(uniform.both_lost_ratio),
                 "residual double losses are dark flaky hosts, not drops");
  comparison.add("retransmission gain correlated vs uniform", "small vs large",
                 report::Table::num(
                     100.0 * (correlated.two_probe - correlated.single_probe),
                     2) + "pp vs " +
                     report::Table::num(
                         100.0 * (uniform.two_probe - uniform.single_probe),
                         2) + "pp",
                 "why the original ZMap estimate was optimistic");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
