// Figure 15 / Section 7: multi-origin coverage of HTTP hosts for one and
// two probes. Paper: single origin median 95.5% (1 probe) / 96.9%
// (2 probes); two origins 98.3%/98.9%; three origins 99.1%/99.4% with
// sigma = 0.08%; the best combination is hard to predict.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/multi_origin.h"

using namespace originscan;

int main() {
  bench::print_header("Figure 15", "multi-origin HTTP coverage");
  auto experiment = bench::run_paper_experiment({proto::Protocol::kHttp});
  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);

  // The paper excludes US64 from the combination analysis.
  const std::vector<std::size_t> exclude = {
      static_cast<std::size_t>(experiment.origin_id("US64"))};

  report::Table table({"k origins", "median 1-probe", "median 2-probe",
                       "min", "max", "sigma (2-probe)"});
  std::vector<core::MultiOriginResult> results;
  for (int k = 1; k <= 4; ++k) {
    auto result = core::multi_origin_coverage(matrix, k, exclude);
    const auto s1 = result.summary_single_probe();
    const auto s2 = result.summary_two_probe();
    table.add_row({std::to_string(k), bench::pct(s1.median, 2),
                   bench::pct(s2.median, 2), bench::pct(s2.min, 2),
                   bench::pct(s2.max, 2),
                   report::Table::num(100.0 * s2.stddev, 2) + "pp"});
    results.push_back(std::move(result));
  }
  std::printf("\n%s", table.to_string().c_str());

  std::printf("\nbest/worst combinations by mean 2-probe coverage:\n");
  for (const auto& result : results) {
    const auto* best = result.best();
    const auto* worst = result.worst();
    if (best == nullptr || worst == nullptr) continue;
    std::printf("  k=%d: best %-18s %s   worst %-18s %s\n", result.k,
                best->label.c_str(), bench::pct(best->mean_two_probe, 2).c_str(),
                worst->label.c_str(),
                bench::pct(worst->mean_two_probe, 2).c_str());
  }

  const auto s1 = results[0].summary_two_probe();
  const auto s2 = results[1].summary_two_probe();
  const auto s3 = results[2].summary_two_probe();
  report::Comparison comparison("Fig 15 multi-origin coverage");
  comparison.add("median single-origin coverage (2 probes)", "96.9%",
                 bench::pct(s1.median, 2), "");
  comparison.add("median 2-origin coverage", "98.9%", bench::pct(s2.median, 2),
                 "two diverse origins recover most loss");
  comparison.add("median 3-origin coverage", "99.4%", bench::pct(s3.median, 2),
                 "");
  comparison.add("3-origin sigma", "0.08pp",
                 report::Table::num(100.0 * s3.stddev, 2) + "pp",
                 "variance collapses with diversity");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
