// Table 2: countries with the most long-term inaccessible HTTP hosts,
// bucketed by country size. Paper: coverage of small countries is
// heavily origin-dependent and usually dominated by one or two ASes
// (e.g. 43% of Bangladesh / 27% of South Africa unreachable from Censys
// via DXTL); host count vs inaccessibility Spearman rho = 0.92.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/country.h"
#include "core/classify.h"

using namespace originscan;

int main() {
  bench::print_header("Table 2", "countries with most LT-inaccessible HTTP");
  auto experiment = bench::run_paper_experiment({proto::Protocol::kHttp});
  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const core::Classification classification(matrix);
  const auto table =
      core::compute_country_table(classification, experiment.world().topology);
  const auto buckets = core::bucket_top_countries(table, 5);

  const char* bucket_names[4] = {">1M-equivalent hosts", ">100K-equivalent",
                                 ">10K-equivalent", ">1K-equivalent"};
  for (int b = 0; b < 4; ++b) {
    std::printf("\n%s:\n", bucket_names[b]);
    std::vector<std::string> headers = {"country", "GT hosts"};
    for (const auto& code : table.origin_codes) headers.push_back(code);
    headers.push_back("#dominant AS");
    report::Table out(headers);
    for (const auto& row : buckets[static_cast<std::size_t>(b)]) {
      std::vector<std::string> cells = {row.country.to_string(),
                                        std::to_string(row.ground_truth_hosts)};
      for (double pct_value : row.inaccessible_percent) {
        cells.push_back(report::Table::num(pct_value, 1));
      }
      cells.push_back(std::to_string(row.dominating_ases));
      out.add_row(cells);
    }
    std::printf("%s", out.to_string().c_str());
  }

  // Headline cells: BD and ZA from Censys.
  const auto cen = static_cast<std::size_t>(experiment.origin_id("CEN"));
  double bd = 0, za = 0;
  for (const auto& row : table.rows) {
    if (row.country == sim::country::kBD) bd = row.inaccessible_percent[cen];
    if (row.country == sim::country::kZA) za = row.inaccessible_percent[cen];
  }
  const double rho = core::host_count_inaccessibility_correlation(
      classification);

  report::Comparison comparison("Table 2 country-level blocking");
  comparison.add("Bangladesh inaccessible from Censys", "42.9%",
                 report::Table::num(bd, 1) + "%", "driven by DXTL");
  comparison.add("South Africa inaccessible from Censys", "27.0%",
                 report::Table::num(za, 1) + "%", "driven by DXTL");
  comparison.add("Spearman rho, host count vs inaccessible count", "0.92",
                 report::Table::num(rho, 2),
                 "big countries lose the most hosts in absolute terms");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
