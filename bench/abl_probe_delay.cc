// Ablation: delay between the two probes to each target (Bano et al.,
// endorsed by the paper's Section 7). Back-to-back probes die together in
// the same Bad period; spacing them by more than typical Bad-period
// lengths makes the second probe an independent draw.
#include "bench/bench_common.h"
#include "core/access_matrix.h"
#include "core/analysis/coverage.h"

using namespace originscan;

namespace {

double mean_two_probe_coverage(net::VirtualTime interval) {
  core::ExperimentConfig config;
  config.scenario.universe_size = bench::bench_universe_size();
  config.scenario.seed = bench::bench_seed();
  config.trials = 1;
  config.protocols = {proto::Protocol::kHttp};
  config.probe_interval = interval;
  core::Experiment experiment(std::move(config));
  experiment.run();
  const auto matrix =
      core::AccessMatrix::build(experiment, proto::Protocol::kHttp);
  const auto coverage = core::compute_coverage(matrix);
  double mean = 0;
  for (std::size_t o = 0; o < matrix.origins(); ++o) {
    mean += coverage.two_probe[0][o] / matrix.origins();
  }
  return mean;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "delay between probes to the same target");

  struct Point {
    const char* label;
    net::VirtualTime interval;
    double coverage = 0;
  };
  Point points[] = {
      {"back-to-back (ZMap default)", net::VirtualTime{}, 0},
      {"10 s apart", net::VirtualTime::from_seconds(10), 0},
      {"2 min apart", net::VirtualTime::from_seconds(120), 0},
      {"15 min apart", net::VirtualTime::from_seconds(900), 0},
      {"60 min apart", net::VirtualTime::from_seconds(3600), 0},
  };
  for (auto& point : points) {
    std::printf("running with probes %s...\n", point.label);
    point.coverage = mean_two_probe_coverage(point.interval);
  }

  report::Table table({"probe spacing", "mean 2-probe coverage", "gain vs "
                       "back-to-back"});
  for (const auto& point : points) {
    table.add_row({point.label, bench::pct(point.coverage, 2),
                   report::Table::num(
                       100.0 * (point.coverage - points[0].coverage), 2) +
                       "pp"});
  }
  std::printf("\n%s", table.to_string().c_str());

  report::Comparison comparison("probe-delay ablation");
  comparison.add("delayed probes vs back-to-back", "higher coverage",
                 report::Table::num(
                     100.0 * (points[4].coverage - points[0].coverage), 2) +
                     "pp gain at 60 min",
                 "matches Bano et al. / paper Section 7 advice");
  std::printf("\n%s", comparison.to_string().c_str());
  return 0;
}
